#!/usr/bin/env bash
# Docs-drift gate: every `--bin NAME` command the docs advertise must
# point at a binary that exists and whose `--help` exits 0. Catches
# renamed/removed binaries and broken flag parsing without running any
# experiment. CI runs this after the build; run locally with
#   ./scripts/check_docs_drift.sh
set -u

cd "$(dirname "$0")/.."

DOCS="EXPERIMENTS.md README.md OBSERVABILITY.md DESIGN.md PERFORMANCE.md"
fail=0

bins=$(grep -ho -- '--bin [a-z0-9_]*' $DOCS | awk '{print $2}' | sort -u)
if [ -z "$bins" ]; then
    echo "docs-drift: no --bin commands found in $DOCS (unexpected)" >&2
    exit 1
fi

for bin in $bins; do
    src=""
    for dir in crates/bench/src/bin crates/analyze/src/bin; do
        if [ -f "$dir/$bin.rs" ]; then
            src="$dir/$bin.rs"
            break
        fi
    done
    if [ -z "$src" ]; then
        echo "docs-drift: docs reference --bin $bin but no such binary source exists" >&2
        fail=1
        continue
    fi
    exe="target/release/$bin"
    if [ ! -x "$exe" ]; then
        echo "docs-drift: $exe not built (run cargo build --release first)" >&2
        fail=1
        continue
    fi
    if ! "$exe" --help >/dev/null 2>&1; then
        echo "docs-drift: $bin --help exited non-zero" >&2
        fail=1
    fi
done

# Advertised flags must be accepted: for each documented invocation of
# the observability binaries, every long flag must appear in the
# binary's --help output.
for bin in heterollm_sim timeline fault_sweep fleet_sweep fig13_prefill \
    fig16_decode bench_sim compare_socs rollout_sweep; do
    exe="target/release/$bin"
    [ -x "$exe" ] || continue
    help=$("$exe" --help 2>&1)
    flags=$(grep -ho -- "--bin $bin [^\`]*" $DOCS | grep -o -- '--[a-z-]*' |
        grep -v -- '--bin' | sort -u)
    for flag in $flags; do
        if ! printf '%s' "$help" | grep -q -- "$flag"; then
            echo "docs-drift: docs pass $flag to $bin but its --help does not list it" >&2
            fail=1
        fi
    done
done

# Every scripts/*.sh the docs advertise must exist and be executable
# (catches renamed harness scripts like bench_sim.sh / bench_fleet.sh).
scripts=$(grep -ho -- 'scripts/[a-z0-9_]*\.sh' $DOCS | sort -u)
for script in $scripts; do
    if [ ! -x "$script" ]; then
        echo "docs-drift: docs reference $script but it is missing or not executable" >&2
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "docs-drift: $(echo "$bins" | wc -w | tr -d ' ') documented binaries all exist and take --help"
fi
exit $fail
