#!/usr/bin/env bash
# Simulator performance benchmark: run the bench_sim micro-benchmarks
# (calibration sessions/s serial vs parallel, blocked-GEMM MFLOP/s,
# calendar-queue DES events/s, temporal-monitor events/s), then time
# the full 1000-device fleet_sweep serial (--jobs 1) vs parallel
# (--jobs $(nproc)) and `cmp` the two outputs — the
# determinism-under-parallelism gate from PERFORMANCE.md. Writes the
# combined all-integer BENCH_sim.json and, when a checked-in baseline
# is present, fails if calibration sessions/s regresses by more than
# 20% against it. The parallel speedup gate only arms on machines
# with at least 4 cores (a 1-core runner can only prove determinism,
# not speedup). CI runs this after the build and uploads the JSON as
# an artifact; run locally with
#   ./scripts/bench_sim.sh
# Knobs: DEVICES / REQUESTS / SEED / JOBS / OUT / BASELINE
# environment variables; set BASELINE= (empty) to skip the
# regression gate.
set -eu

cd "$(dirname "$0")/.."

DEVICES="${DEVICES:-1000}"
REQUESTS="${REQUESTS:-3000}"
SEED="${SEED:-42}"
# At least 4 workers by default: on a small runner the speedup gate
# stays disarmed, but oversubscription still exercises the executor's
# steal path for the byte-identity cmp below.
JOBS="${JOBS:-$(( $(nproc) > 4 ? $(nproc) : 4 ))}"
OUT="${OUT:-BENCH_sim.json}"
BASELINE="${BASELINE-BENCH_sim.json}"

SWEEP=target/release/fleet_sweep
BENCH=target/release/bench_sim
if [ ! -x "$SWEEP" ] || [ ! -x "$BENCH" ]; then
    cargo build --release -p hetero-bench
fi

# --- micro-benchmarks -------------------------------------------------
micro="$("$BENCH" --devices 256 --jobs "$JOBS" --json | grep '^{')"

field() {
    printf '%s\n' "$micro" | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}
calib_serial_sessions_per_sec=$(field calib_serial_sessions_per_sec)
calib_parallel_sessions_per_sec=$(field calib_parallel_sessions_per_sec)
gemm_mflops=$(field gemm_mflops)
des_events_per_sec=$(field des_events_per_sec)
monitor_events_per_sec=$(field monitor_events_per_sec)
for var in calib_serial_sessions_per_sec calib_parallel_sessions_per_sec \
    gemm_mflops des_events_per_sec monitor_events_per_sec; do
    if [ -z "${!var}" ]; then
        echo "bench_sim: failed to parse $var from bench_sim --json output" >&2
        printf '%s\n' "$micro" >&2
        exit 1
    fi
done

# --- fleet sweep, serial vs parallel, byte-identity gate --------------
serial_out="$(mktemp)"
parallel_out="$(mktemp)"
trap 'rm -f "$serial_out" "$parallel_out"' EXIT

t0=$(date +%s%N)
"$SWEEP" --seed "$SEED" --devices "$DEVICES" --requests "$REQUESTS" \
    --jobs 1 > "$serial_out"
t1=$(date +%s%N)
"$SWEEP" --seed "$SEED" --devices "$DEVICES" --requests "$REQUESTS" \
    --jobs "$JOBS" > "$parallel_out"
t2=$(date +%s%N)

if ! cmp -s "$serial_out" "$parallel_out"; then
    echo "bench_sim: fleet_sweep --jobs 1 and --jobs $JOBS outputs differ:" >&2
    diff "$serial_out" "$parallel_out" >&2 || true
    echo "bench_sim: the determinism-under-parallelism contract is broken" >&2
    exit 1
fi
echo "bench_sim: fleet_sweep --jobs 1 vs --jobs $JOBS byte-identical [verified]"

serial_wall_ns=$((t1 - t0))
parallel_wall_ns=$((t2 - t1))
speedup_x100=$((serial_wall_ns * 100 / (parallel_wall_ns > 0 ? parallel_wall_ns : 1)))

cores=$(nproc)
if [ "$cores" -ge 4 ] && [ "$JOBS" -ge 4 ]; then
    # Parallel calibration must pay for itself on a real multi-core
    # machine: at least 2x on 4 cores (the calibration phase is the
    # parallel fraction; the replay phase stays serial).
    if [ "$speedup_x100" -lt 200 ]; then
        echo "bench_sim: fleet_sweep --jobs $JOBS speedup ${speedup_x100}/100x < 2x on $cores cores" >&2
        exit 1
    fi
fi

# --- regression gate vs the checked-in baseline -----------------------
# Wall-clock rates are machine-dependent, so the gate is relative:
# serial calibration sessions/s (the tentpole hot path) must stay
# within 20% of the baseline measured on the same class of runner.
# Read the baseline before (possibly) overwriting it with $OUT.
if [ -n "$BASELINE" ] && [ -f "$BASELINE" ]; then
    base=$(grep -o '"calib_serial_sessions_per_sec":[ ]*[0-9]*' "$BASELINE" \
        | head -1 | grep -o '[0-9]*$')
    if [ -n "$base" ] && [ "$base" -gt 0 ]; then
        floor=$((base * 80 / 100))
        if [ "$calib_serial_sessions_per_sec" -lt "$floor" ]; then
            echo "bench_sim: calibration sessions/s $calib_serial_sessions_per_sec regressed >20% vs baseline $base" >&2
            exit 1
        fi
        echo "bench_sim: sessions/s $calib_serial_sessions_per_sec vs baseline $base (floor $floor) [ok]"
    fi
fi

cat > "$OUT" <<EOF
{
  "bench": "simulator_performance",
  "seed": $SEED,
  "devices": $DEVICES,
  "requests": $REQUESTS,
  "jobs": $JOBS,
  "cores": $cores,
  "calib_serial_sessions_per_sec": $calib_serial_sessions_per_sec,
  "calib_parallel_sessions_per_sec": $calib_parallel_sessions_per_sec,
  "gemm_mflops": $gemm_mflops,
  "des_events_per_sec": $des_events_per_sec,
  "monitor_events_per_sec": $monitor_events_per_sec,
  "fleet_serial_wall_ns": $serial_wall_ns,
  "fleet_parallel_wall_ns": $parallel_wall_ns,
  "fleet_speedup_x100": $speedup_x100
}
EOF

echo "bench_sim: wrote $OUT"
cat "$OUT"
