#!/usr/bin/env bash
# Fleet temporal-certification benchmark: run the seeded fleet sweep
# with event recording, sweep both arms through the past-time-LTL
# monitor (plus the policy model check), then run the staged canary
# rollout (regressing + improving candidates, in-binary certification)
# and write BENCH_fleet.json — all-integer wall times, monitored-event
# counts, throughput, rollback latency, and blast radius. CI runs this
# after the build and uploads the JSON as an artifact; run locally with
#   ./scripts/bench_fleet.sh
# Knobs: DEVICES / REQUESTS / ROLLOUT_DEVICES / ROLLOUT_REQUESTS /
# SEED / OUT environment variables.
set -eu

cd "$(dirname "$0")/.."

DEVICES="${DEVICES:-256}"
REQUESTS="${REQUESTS:-3000}"
ROLLOUT_DEVICES="${ROLLOUT_DEVICES:-256}"
ROLLOUT_REQUESTS="${ROLLOUT_REQUESTS:-1500}"
SEED="${SEED:-42}"
OUT="${OUT:-BENCH_fleet.json}"

SWEEP=target/release/fleet_sweep
ROLLOUT=target/release/rollout_sweep
ANALYZE=target/release/analyze
if [ ! -x "$SWEEP" ] || [ ! -x "$ROLLOUT" ] || [ ! -x "$ANALYZE" ]; then
    cargo build --release -p hetero-bench -p hetero-analyze
fi

events="$(mktemp)"
trap 'rm -f "$events"' EXIT

t0=$(date +%s%N)
"$SWEEP" --seed "$SEED" --devices "$DEVICES" --requests "$REQUESTS" \
    --events-out "$events" > /dev/null
t1=$(date +%s%N)
monitor_out="$("$ANALYZE" monitor "$events")"
t2=$(date +%s%N)

# Parse the analyzer's stats lines, e.g.
#   model-check[standard]: 68 states, 144 transitions, ...
#   monitor[fleet[42]/robust]: events=10291 instances=3068 violations=0
robust_events=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/robust\]: events=\([0-9]*\).*|\1|p')
robust_instances=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/robust\]: .*instances=\([0-9]*\).*|\1|p')
robust_violations=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/robust\]: .*violations=\([0-9]*\).*|\1|p')
naive_events=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/round-robin\]: events=\([0-9]*\).*|\1|p')
naive_violations=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/round-robin\]: .*violations=\([0-9]*\).*|\1|p')
model_states=$(printf '%s\n' "$monitor_out" | sed -n 's|^model-check\[standard\]: \([0-9]*\) states.*|\1|p')
model_transitions=$(printf '%s\n' "$monitor_out" | sed -n 's|^model-check\[standard\]: .* \([0-9]*\) transitions.*|\1|p')

for var in robust_events robust_instances robust_violations naive_events \
    naive_violations model_states model_transitions; do
    if [ -z "${!var}" ]; then
        echo "bench_fleet: failed to parse $var from analyze monitor output" >&2
        printf '%s\n' "$monitor_out" >&2
        exit 1
    fi
done

# Staged canary rollout: the binary gates itself (rollback at the 1%
# stage for the regressing candidate, promotion for the improving one,
# clean monitor sweeps, ladder model check); here we time it and pull
# the headline integers out of its JSON summary and monitor lines.
t3=$(date +%s%N)
rollout_out="$("$ROLLOUT" --seed "$SEED" --devices "$ROLLOUT_DEVICES" \
    --requests "$ROLLOUT_REQUESTS" --json)"
t4=$(date +%s%N)

# First occurrence = the regressing candidate's report (serialized
# before the improving one in SweepSummary).
rollback_latency_ns=$(printf '%s\n' "$rollout_out" \
    | grep -o '"rollback_latency_ns":[0-9]*' | head -1 | cut -d: -f2)
rollout_exposed_ppm=$(printf '%s\n' "$rollout_out" \
    | grep -o '"exposed_ppm":[0-9]*' | head -1 | cut -d: -f2)
# Sum of both master logs' monitored events, from the in-binary
# temporal-monitor lines: "temporal monitor [x]: clean (N events, ...".
rollout_events=$(printf '%s\n' "$rollout_out" \
    | sed -n 's|^temporal monitor \[.*\]: clean (\([0-9]*\) events.*|\1|p' \
    | awk '{s += $1} END {print s + 0}')

for var in rollback_latency_ns rollout_exposed_ppm; do
    if [ -z "${!var}" ]; then
        echo "bench_fleet: failed to parse $var from rollout_sweep output" >&2
        printf '%s\n' "$rollout_out" >&2
        exit 1
    fi
done
if [ "$rollout_events" -eq 0 ]; then
    echo "bench_fleet: no temporal-monitor lines in rollout_sweep output" >&2
    printf '%s\n' "$rollout_out" >&2
    exit 1
fi
printf '%s\n' "$rollout_out" | grep -q '"outcome":"rolled-back"'
printf '%s\n' "$rollout_out" | grep -q '"outcome":"promoted"'

sweep_wall_ns=$((t1 - t0))
monitor_wall_ns=$((t2 - t1))
rollout_wall_ns=$((t4 - t3))
monitored_events=$((robust_events + naive_events))
if [ "$monitor_wall_ns" -gt 0 ]; then
    # Throughput of the certification pass (model check + both arms).
    events_per_sec=$((monitored_events * 1000000000 / monitor_wall_ns))
else
    events_per_sec=0
fi

cat > "$OUT" <<EOF
{
  "bench": "fleet_temporal_certification",
  "seed": $SEED,
  "devices": $DEVICES,
  "requests": $REQUESTS,
  "sweep_wall_ns": $sweep_wall_ns,
  "monitor_wall_ns": $monitor_wall_ns,
  "monitored_events": $monitored_events,
  "robust_events": $robust_events,
  "robust_instances": $robust_instances,
  "robust_violations": $robust_violations,
  "naive_events": $naive_events,
  "naive_violations": $naive_violations,
  "model_states": $model_states,
  "model_transitions": $model_transitions,
  "monitor_events_per_sec": $events_per_sec,
  "rollout_devices": $ROLLOUT_DEVICES,
  "rollout_requests": $ROLLOUT_REQUESTS,
  "rollout_wall_ns": $rollout_wall_ns,
  "rollout_events": $rollout_events,
  "rollout_rollback_latency_ns": $rollback_latency_ns,
  "rollout_blast_radius_ppm": $rollout_exposed_ppm
}
EOF

echo "bench_fleet: wrote $OUT"
cat "$OUT"
