#!/usr/bin/env bash
# Fleet temporal-certification benchmark: run the seeded fleet sweep
# with event recording, sweep both arms through the past-time-LTL
# monitor (plus the policy model check), and write BENCH_fleet.json —
# all-integer wall times, monitored-event counts, and throughput. CI
# runs this after the build and uploads the JSON as an artifact; run
# locally with
#   ./scripts/bench_fleet.sh
# Knobs: DEVICES / REQUESTS / SEED / OUT environment variables.
set -eu

cd "$(dirname "$0")/.."

DEVICES="${DEVICES:-256}"
REQUESTS="${REQUESTS:-3000}"
SEED="${SEED:-42}"
OUT="${OUT:-BENCH_fleet.json}"

SWEEP=target/release/fleet_sweep
ANALYZE=target/release/analyze
if [ ! -x "$SWEEP" ] || [ ! -x "$ANALYZE" ]; then
    cargo build --release -p hetero-bench -p hetero-analyze
fi

events="$(mktemp)"
trap 'rm -f "$events"' EXIT

t0=$(date +%s%N)
"$SWEEP" --seed "$SEED" --devices "$DEVICES" --requests "$REQUESTS" \
    --events-out "$events" > /dev/null
t1=$(date +%s%N)
monitor_out="$("$ANALYZE" monitor "$events")"
t2=$(date +%s%N)

# Parse the analyzer's stats lines, e.g.
#   model-check[standard]: 68 states, 144 transitions, ...
#   monitor[fleet[42]/robust]: events=10291 instances=3068 violations=0
robust_events=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/robust\]: events=\([0-9]*\).*|\1|p')
robust_instances=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/robust\]: .*instances=\([0-9]*\).*|\1|p')
robust_violations=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/robust\]: .*violations=\([0-9]*\).*|\1|p')
naive_events=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/round-robin\]: events=\([0-9]*\).*|\1|p')
naive_violations=$(printf '%s\n' "$monitor_out" | sed -n 's|.*/round-robin\]: .*violations=\([0-9]*\).*|\1|p')
model_states=$(printf '%s\n' "$monitor_out" | sed -n 's|^model-check\[standard\]: \([0-9]*\) states.*|\1|p')
model_transitions=$(printf '%s\n' "$monitor_out" | sed -n 's|^model-check\[standard\]: .* \([0-9]*\) transitions.*|\1|p')

for var in robust_events robust_instances robust_violations naive_events \
    naive_violations model_states model_transitions; do
    if [ -z "${!var}" ]; then
        echo "bench_fleet: failed to parse $var from analyze monitor output" >&2
        printf '%s\n' "$monitor_out" >&2
        exit 1
    fi
done

sweep_wall_ns=$((t1 - t0))
monitor_wall_ns=$((t2 - t1))
monitored_events=$((robust_events + naive_events))
if [ "$monitor_wall_ns" -gt 0 ]; then
    # Throughput of the certification pass (model check + both arms).
    events_per_sec=$((monitored_events * 1000000000 / monitor_wall_ns))
else
    events_per_sec=0
fi

cat > "$OUT" <<EOF
{
  "bench": "fleet_temporal_certification",
  "seed": $SEED,
  "devices": $DEVICES,
  "requests": $REQUESTS,
  "sweep_wall_ns": $sweep_wall_ns,
  "monitor_wall_ns": $monitor_wall_ns,
  "monitored_events": $monitored_events,
  "robust_events": $robust_events,
  "robust_instances": $robust_instances,
  "robust_violations": $robust_violations,
  "naive_events": $naive_events,
  "naive_violations": $naive_violations,
  "model_states": $model_states,
  "model_transitions": $model_transitions,
  "monitor_events_per_sec": $events_per_sec
}
EOF

echo "bench_fleet: wrote $OUT"
cat "$OUT"
