//! Gaming assistant scenario (the paper's §5.5 motivation): an
//! in-game AI assistant answers a prompt while a 60 FPS game renders.
//!
//! Shows why the execution strategy matters: a GPU-flooding engine
//! destroys the game's frame rate, while HeteroLLM's NPU-dominant,
//! paced execution coexists with it.
//!
//! ```sh
//! cargo run --release --example gaming_assistant
//! ```

use heterollm_suite::engine::{EngineKind, ModelConfig};
use heterollm_suite::soc::interference::{simulate, RenderWorkload};
use heterollm_suite::soc::sync::SyncMechanism;
use heterollm_suite::soc::SimTime;
use heterollm_suite::workloads::bursts::{gpu_bursts, gpu_occupancy, pace_bursts};

fn main() {
    let model = ModelConfig::llama_3b();
    let game = RenderWorkload::game_60fps();
    println!("scenario: {} assistant + 60 FPS game\n", model.name);

    for kind in [EngineKind::PplOpenCl, EngineKind::HeteroTensor] {
        let mut engine = kind.build(&model, SyncMechanism::Fast);
        engine.soc_mut().enable_trace();
        let solo = engine.prefill(256);

        let raw = gpu_bursts(engine.soc().trace(), SimTime::from_micros(25));
        let occupancy = gpu_occupancy(&raw);
        let bursts = if kind == EngineKind::PplOpenCl {
            raw // stock runtime floods the submission queue
        } else {
            // HeteroLLM's control plane paces GPU submissions.
            pace_bursts(&raw, SimTime::from_millis(2), SimTime::from_micros(15))
        };
        let sim = simulate(&bursts, &game);

        println!("{}:", engine.name());
        println!(
            "  prompt processed alone:  {:.0} tokens/s",
            solo.tokens_per_sec()
        );
        println!("  GPU occupancy:           {:.0}%", occupancy * 100.0);
        println!("  game FPS while inferring: {:.0}", sim.fps.min(60.0));
        println!(
            "  assistant slowdown:       {:+.1}%\n",
            (sim.llm_slowdown() - 1.0) * 100.0
        );
    }
    println!("The GPU-only engine starves the render queue (FPS collapse);\nHeteroLLM leaves the GPU mostly idle and both workloads coexist.");
}
