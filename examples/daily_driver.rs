//! Daily-driver scenario: a multi-turn on-device chat session.
//!
//! Shows how context growth affects TTFT/TPOT over a realistic mobile
//! conversation, and compares HeteroLLM against the GPU-only engine a
//! stock phone would use.
//!
//! ```sh
//! cargo run --release --example daily_driver
//! ```

use heterollm_suite::engine::api::ChatTurn;
use heterollm_suite::engine::{EngineKind, InferenceSession, ModelConfig};

fn conversation() -> Vec<ChatTurn> {
    vec![
        ChatTurn {
            prompt_tokens: 210,
            response_tokens: 60,
        }, // system + first question
        ChatTurn {
            prompt_tokens: 45,
            response_tokens: 90,
        }, // follow-up
        ChatTurn {
            prompt_tokens: 30,
            response_tokens: 40,
        },
        ChatTurn {
            prompt_tokens: 120,
            response_tokens: 150,
        }, // pasted snippet
        ChatTurn {
            prompt_tokens: 25,
            response_tokens: 35,
        },
    ]
}

fn main() {
    let model = ModelConfig::llama_3b();
    println!(
        "5-turn chat on {} (simulated Snapdragon 8 Gen 3)\n",
        model.name
    );

    for kind in [EngineKind::PplOpenCl, EngineKind::HeteroTensor] {
        let mut session = InferenceSession::new(kind, &model);
        let report = session.run_conversation(&conversation());

        println!("== {} ==", kind.name());
        println!("turn  context  TTFT        TPOT");
        for (i, t) in report.turns.iter().enumerate() {
            println!(
                "{:>4}  {:>7}  {:>10}  {:>10}",
                i + 1,
                t.context_at_start,
                t.ttft.to_string(),
                t.tpot.to_string()
            );
        }
        println!(
            "total {}   avg power {:.2} W   energy {:.2} J\n",
            report.total, report.power.avg_power_w, report.power.energy_j
        );
    }
    println!("HeteroLLM keeps every turn's TTFT interactive; the GPU-only engine\nstalls noticeably on long prompts and burns substantially more energy.");
}
