//! Solver explorer: inspect the partition plans the tensor-partition
//! solver chooses for every operator of a model across request shapes.
//!
//! ```sh
//! cargo run --release --example solver_explorer [seq_len ...]
//! ```

use heterollm_suite::engine::ModelConfig;
use heterollm_suite::profiler::RealExecProvider;
use heterollm_suite::soc::sync::Dominance;
use heterollm_suite::soc::SocConfig;
use heterollm_suite::solver::{PartitionPlan, Solver, SolverConfig};
use heterollm_suite::tensor::shape::MatmulShape;

fn describe(plan: &PartitionPlan) -> String {
    match plan {
        PartitionPlan::GpuOnly => "GPU only".into(),
        PartitionPlan::NpuOnly { padded_m } => format!("NPU only (graph m={padded_m})"),
        PartitionPlan::NpuPipe {
            chunks,
            padded_rows,
        } => {
            format!("NPU pipe {chunks:?} (+{padded_rows} pad rows)")
        }
        PartitionPlan::RowCut { gpu_cols, padded_m } => {
            format!("row-cut: GPU {gpu_cols} cols, NPU graph m={padded_m}")
        }
        PartitionPlan::SeqCut {
            npu_chunks,
            gpu_rows,
        } => {
            format!("seq-cut: NPU {npu_chunks:?}, GPU {gpu_rows} rows")
        }
        PartitionPlan::HybridCut { padded_m, gpu_cols } => {
            format!("hybrid-cut: NPU padded to {padded_m}, GPU {gpu_cols} cols")
        }
    }
}

fn main() {
    let seqs: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("sequence lengths must be integers"))
        .collect();
    let seqs = if seqs.is_empty() {
        vec![64, 256, 300, 1024]
    } else {
        seqs
    };

    let model = ModelConfig::llama_8b();
    let solver = Solver::new(
        RealExecProvider::new(SocConfig::snapdragon_8gen3()),
        SolverConfig::default(),
    );

    println!(
        "partition plans for {} (prefill, NPU-dominant)\n",
        model.name
    );
    for seq in seqs {
        println!("sequence length {seq}:");
        for (name, k, n) in model.matmul_ops() {
            let choice = solver.solve(MatmulShape::new(seq, k, n), Dominance::NpuDominant);
            println!(
                "  {name:<9} [{seq:>4},{k:>5}]x[{k:>5},{n:>5}]  est {:>10}  {}",
                choice.est_time.to_string(),
                describe(&choice.plan)
            );
        }
        println!();
    }

    // Decode plans (memory-bound, bandwidth-aggregating row cuts).
    let decode_solver = Solver::new(
        RealExecProvider::new(SocConfig::snapdragon_8gen3()),
        SolverConfig::decode(1),
    );
    println!("decode plans (GPU-dominant, m=1):");
    for (name, k, n) in model.matmul_ops() {
        let choice = decode_solver.solve(MatmulShape::new(1, k, n), Dominance::GpuDominant);
        println!(
            "  {name:<9} est {:>10}  {}",
            choice.est_time.to_string(),
            describe(&choice.plan)
        );
    }
}
