//! Functional-mode chatbot: real W4A16 math on a scaled-down model.
//!
//! Demonstrates the correctness layer of the reproduction: tokens are
//! actually computed (embedding → decoder layers → sampling), and the
//! tensor-partition strategies of the heterogeneous engine are shown to
//! be numerically identical to monolithic execution.
//!
//! ```sh
//! cargo run --release --example chatbot_functional
//! ```

use heterollm_suite::engine::functional::{matmul_partitioned, FunctionalModel};
use heterollm_suite::engine::ModelConfig;
use heterollm_suite::solver::PartitionPlan;
use heterollm_suite::tensor::ops;
use heterollm_suite::tensor::quant::W4Matrix;
use heterollm_suite::tensor::rng::WeightRng;
use heterollm_suite::workloads::tokens::random_prompt;

fn main() {
    // A small but architecturally complete model (GQA, SwiGLU, RoPE).
    let cfg = ModelConfig::tiny();
    let mut model = FunctionalModel::new(cfg.clone(), 2024).expect("model builds");

    let prompt = random_prompt(7, 12, cfg.vocab);
    println!("prompt tokens: {prompt:?}");

    let generated = model.generate(&prompt, 16).expect("generation succeeds");
    println!("generated:     {generated:?}");
    println!("context length after generation: {}", model.context_len());

    // Re-running with the same seed reproduces the exact same tokens.
    let mut replay = FunctionalModel::new(cfg, 2024).expect("model builds");
    let again = replay.generate(&prompt, 16).expect("generation succeeds");
    assert_eq!(generated, again, "W4A16 inference is deterministic");
    println!("determinism check: identical tokens on replay");

    // Partition-equivalence demo: the heterogeneous engine may split
    // any weight Matmul across GPU and NPU; the merged result is
    // bit-identical to the monolithic product.
    let rng = WeightRng::new(5);
    let x = rng.uniform("acts", &[48, 64], 1.0).expect("activations");
    let w = W4Matrix::quantize(&rng.uniform("w", &[64, 96], 0.3).expect("weights"), 32)
        .expect("quantizes");
    let whole = ops::matmul_w4(&x, &w).expect("matmul");
    for plan in [
        PartitionPlan::RowCut {
            gpu_cols: 32,
            padded_m: 48,
        },
        PartitionPlan::SeqCut {
            npu_chunks: vec![32],
            gpu_rows: 16,
        },
        PartitionPlan::HybridCut {
            gpu_cols: 64,
            padded_m: 64,
        },
    ] {
        let split = matmul_partitioned(&x, &w, &plan).expect("partitioned matmul");
        assert_eq!(split.max_abs_diff(&whole).expect("same shape"), 0.0);
        println!(
            "partition {:<10} == monolithic result (exact)",
            plan.label()
        );
    }
}
