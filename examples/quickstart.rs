//! Quickstart: run HeteroLLM on the simulated Snapdragon 8 Gen 3 and
//! print the end-to-end latency profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use heterollm_suite::engine::{EngineKind, InferenceSession, ModelConfig};

fn main() {
    let model = ModelConfig::llama_8b();
    println!(
        "model: {} ({:.1}B params, {:.1} GB as W4A16)",
        model.name,
        model.param_count() as f64 / 1e9,
        model.weight_bytes_w4() as f64 / 1e9
    );

    // The full HeteroLLM engine: tensor-level GPU+NPU heterogeneous
    // execution with fast synchronization.
    let mut session = InferenceSession::new(EngineKind::HeteroTensor, &model);

    // A 256-token prompt followed by 64 generated tokens.
    let report = session.run(256, 64);

    println!("\nengine: {}", report.engine);
    println!(
        "prefill: {} tokens in {}  ({:.1} tokens/s)",
        report.prefill.tokens,
        report.prefill.elapsed,
        report.prefill.tokens_per_sec()
    );
    println!(
        "decode:  {} tokens in {}  ({:.1} tokens/s)",
        report.decode.tokens,
        report.decode.elapsed,
        report.decode.tokens_per_sec()
    );
    println!("TTFT: {}   TPOT: {}", report.ttft(), report.tpot());
    println!(
        "power: {:.2} W   energy: {:.2} J",
        report.power.avg_power_w, report.power.energy_j
    );

    // Compare with the GPU-only baseline HeteroLLM builds on.
    let mut baseline = InferenceSession::new(EngineKind::PplOpenCl, &model);
    let base = baseline.run(256, 64);
    println!(
        "\nvs {}: prefill {:.2}x, decode {:.2}x",
        base.engine,
        report.prefill.tokens_per_sec() / base.prefill.tokens_per_sec(),
        report.decode.tokens_per_sec() / base.decode.tokens_per_sec()
    );
}
