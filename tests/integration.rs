//! Cross-crate integration tests: profiler ↔ solver ↔ engine ↔
//! simulator consistency.

use heterollm_suite::engine::engines::{Engine, HeteroTensorEngine};
use heterollm_suite::engine::{EngineKind, ModelConfig};
use heterollm_suite::graph::{CompileModel, GraphCache};
use heterollm_suite::profiler::db::BwCondition;
use heterollm_suite::profiler::measure::{partition_shape_grid, profile_matmuls};
use heterollm_suite::profiler::{CostProvider, PredictedProvider, RealExecProvider};
use heterollm_suite::soc::sync::{Dominance, SyncMechanism};
use heterollm_suite::soc::{Backend, Soc, SocConfig};
use heterollm_suite::solver::{PartitionPlan, Solver, SolverConfig};
use heterollm_suite::tensor::shape::MatmulShape;
use heterollm_suite::tensor::DType;

/// The solver's estimate for a plan must track what the engine's
/// simulator actually charges for executing that plan.
#[test]
fn solver_estimates_match_simulated_execution() {
    let cfg = SocConfig::snapdragon_8gen3();
    let solver = Solver::new(RealExecProvider::new(cfg.clone()), SolverConfig::default());
    let shape = MatmulShape::new(256, 14336, 4096); // FFN-down

    let choice = solver.solve(shape, Dominance::NpuDominant);
    let mut soc = Soc::new(cfg);
    let elapsed = match &choice.plan {
        PartitionPlan::RowCut { gpu_cols, padded_m } => {
            let gpu = heterollm_suite::engine::engines::gpu_kernel(MatmulShape::new(
                shape.m, shape.k, *gpu_cols,
            ));
            let npu = heterollm_suite::engine::engines::npu_kernel(MatmulShape::new(
                *padded_m,
                shape.k,
                shape.n - gpu_cols,
            ));
            soc.run_parallel(&[gpu], &[npu], Dominance::NpuDominant);
            soc.clock()
        }
        other => panic!("expected a row cut for FFN-down, got {other:?}"),
    };
    let est = choice.est_time.as_secs_f64();
    let act = elapsed.as_secs_f64();
    assert!(
        (est / act - 1.0).abs() < 0.15,
        "solver {est} vs simulator {act}"
    );
}

/// Prediction-mode solving must produce plans whose real cost is close
/// to the real-execution solver's plans (§4.3: "minor inaccuracies ...
/// are tolerable for our solver").
#[test]
fn prediction_mode_solver_is_competitive() {
    let cfg = SocConfig::snapdragon_8gen3();
    let soc = Soc::new(cfg.clone());
    // Profile the model's operator grid offline — in the *permuted*
    // execution order the solver queries (INT4 weight streamed, FP16
    // activation stationary).
    let mut shapes = Vec::new();
    for (_, k, n) in ModelConfig::llama_8b().matmul_ops() {
        shapes.extend(
            partition_shape_grid(&[64, 256, 1024], k, n)
                .into_iter()
                .map(|s| s.reversed()),
        );
    }
    shapes.sort_unstable_by_key(|s| (s.m, s.k, s.n));
    shapes.dedup();
    let db = profile_matmuls(&soc, &shapes, &[Backend::Npu], DType::Int4, DType::F16);
    let predicted = PredictedProvider::train(&db, cfg.clone()).expect("training data exists");

    let real_solver = Solver::new(RealExecProvider::new(cfg.clone()), SolverConfig::default());
    let pred_solver = Solver::new(predicted, SolverConfig::default());
    let real_cost = RealExecProvider::new(cfg);

    for (name, k, n) in ModelConfig::llama_8b().matmul_ops() {
        let shape = MatmulShape::new(256, k, n);
        let real_choice = real_solver.solve(shape, Dominance::NpuDominant);
        let pred_choice = pred_solver.solve(shape, Dominance::NpuDominant);

        // Evaluate BOTH plans under the true cost model.
        let true_cost = |plan: &PartitionPlan| -> f64 {
            match plan {
                PartitionPlan::GpuOnly => real_cost
                    .matmul_cost(
                        Backend::Gpu,
                        shape,
                        DType::F16,
                        DType::Int4,
                        BwCondition::Solo,
                    )
                    .as_secs_f64(),
                PartitionPlan::NpuOnly { padded_m } => real_cost
                    .matmul_cost(
                        Backend::Npu,
                        MatmulShape {
                            m: *padded_m,
                            ..shape
                        }
                        .reversed(),
                        DType::Int4,
                        DType::F16,
                        BwCondition::Solo,
                    )
                    .as_secs_f64(),
                PartitionPlan::RowCut { gpu_cols, padded_m }
                | PartitionPlan::HybridCut { gpu_cols, padded_m } => {
                    let g = real_cost
                        .matmul_cost(
                            Backend::Gpu,
                            MatmulShape::new(shape.m, shape.k, *gpu_cols),
                            DType::F16,
                            DType::Int4,
                            BwCondition::Contended,
                        )
                        .as_secs_f64();
                    let n_ = real_cost
                        .matmul_cost(
                            Backend::Npu,
                            MatmulShape::new(*padded_m, shape.k, shape.n - gpu_cols).reversed(),
                            DType::Int4,
                            DType::F16,
                            BwCondition::Contended,
                        )
                        .as_secs_f64();
                    g.max(n_)
                }
                other => panic!("unexpected plan {other:?} for aligned prefill"),
            }
        };

        let t_real = true_cost(&real_choice.plan);
        let t_pred = true_cost(&pred_choice.plan);
        assert!(
            t_pred <= t_real * 1.6,
            "{name}: prediction-mode plan {:?} costs {t_pred}, real-mode {:?} costs {t_real}",
            pred_choice.plan,
            real_choice.plan
        );
    }
}

/// Graph-cache accounting must show up in engine latency: the first
/// misaligned request through an Online-prepare engine is slower than
/// the second by approximately the compile time.
#[test]
fn graph_compilation_charged_exactly_once() {
    let model = ModelConfig::llama_8b();
    let compile = CompileModel::default();
    let expected = compile
        .set_compile_time(&model.graph_set(), 300)
        .as_secs_f64();

    let mut engine = EngineKind::NpuOnlinePrepare.build(&model, SyncMechanism::Fast);
    let first = engine.prefill(300).elapsed.as_secs_f64();
    let second = engine.prefill(300).elapsed.as_secs_f64();
    let delta = first - second;
    assert!(
        (delta / expected - 1.0).abs() < 0.05,
        "compile charge {delta} vs expected {expected}"
    );
}

/// The engine's plan table reuses solved plans across layers: a 32-layer
/// prefill solves each of the 4 operator shapes only once.
#[test]
fn plan_table_amortizes_solver_work() {
    let model = ModelConfig::llama_8b();
    let mut engine = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
    // Warm: solving happens during the first prefill.
    engine.prefill(256);
    // All per-layer shapes plus the LM head => 5 distinct plans.
    let plan = engine.plan_for("ffn_down", MatmulShape::new(256, model.ffn, model.hidden));
    assert!(plan.is_parallel());
}

/// Cache reuse across engines: padding and pipe engines share the same
/// standard graph set semantics.
#[test]
fn preloaded_graph_sizes_cover_standards() {
    let model = ModelConfig::llama_8b();
    let mut cache = GraphCache::new(model.graph_set(), CompileModel::default());
    let t = cache.preload(&heterollm_suite::soc::calib::STANDARD_GRAPH_SIZES);
    assert!(
        t.as_secs_f64() > 1.0,
        "offline preparation is expensive: {t}"
    );
    for s in heterollm_suite::soc::calib::STANDARD_GRAPH_SIZES {
        assert!(cache.has(s));
    }
}

/// End-to-end session reports are internally consistent.
#[test]
fn session_reports_consistent_across_engines() {
    let model = ModelConfig::llama_3b();
    for kind in EngineKind::ALL {
        let mut session = heterollm_suite::engine::InferenceSession::new(kind, &model);
        let r = session.run(64, 4);
        assert_eq!(r.prefill.tokens, 64, "{}", r.engine);
        assert_eq!(r.decode.tokens, 4, "{}", r.engine);
        assert!(
            r.ttft() > heterollm_suite::soc::SimTime::ZERO,
            "{}",
            r.engine
        );
        assert!(
            r.power.avg_power_w > 0.2 && r.power.avg_power_w < 8.0,
            "{}",
            r.engine
        );
        // TPOT should exceed per-prompt-token time (decode is
        // memory-bound and unbatched).
        assert!(r.tpot() > r.prefill.per_token(), "{}", r.engine);
    }
}

/// Degenerate requests must not panic: zero-length prompts cost only
/// fixed per-kernel overheads and zero-token decodes cost nothing.
#[test]
fn zero_length_requests_are_harmless() {
    let model = ModelConfig::tiny();
    for kind in EngineKind::ALL {
        let mut e = kind.build(&model, SyncMechanism::Fast);
        let p = e.prefill(0);
        assert_eq!(p.tokens, 0, "{}", e.name());
        assert!(
            p.elapsed.as_millis_f64() < 5.0,
            "{}: {}",
            e.name(),
            p.elapsed
        );
        let d = e.decode(0, 0);
        assert_eq!(
            d.elapsed,
            heterollm_suite::soc::SimTime::ZERO,
            "{}",
            e.name()
        );
    }
}
