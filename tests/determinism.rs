//! Determinism and reproducibility guarantees.
//!
//! Every layer of the system — weights, functional inference, the
//! simulator, the solver — must be bit-deterministic so experiment
//! results are exactly reproducible run to run.

use heterollm_suite::engine::functional::FunctionalModel;
use heterollm_suite::engine::{EngineKind, ModelConfig};
use heterollm_suite::profiler::RealExecProvider;
use heterollm_suite::soc::sync::{Dominance, SyncMechanism};
use heterollm_suite::soc::SocConfig;
use heterollm_suite::solver::{Solver, SolverConfig};
use heterollm_suite::tensor::shape::MatmulShape;
use heterollm_suite::workloads::tokens::random_prompt;

#[test]
fn timing_engines_are_deterministic() {
    let model = ModelConfig::llama_3b();
    for kind in [
        EngineKind::HeteroTensor,
        EngineKind::HeteroLayer,
        EngineKind::PplOpenCl,
    ] {
        let run = || {
            let mut e = kind.build(&model, SyncMechanism::Fast);
            let p = e.prefill(300);
            let d = e.decode(300, 4);
            (p.elapsed, d.elapsed)
        };
        assert_eq!(run(), run(), "{}", kind.name());
    }
}

#[test]
fn functional_generation_is_deterministic() {
    let cfg = ModelConfig::tiny();
    let prompt = random_prompt(11, 10, cfg.vocab);
    let gen = |seed| {
        let mut m = FunctionalModel::new(cfg.clone(), seed).expect("model");
        m.generate(&prompt, 12).expect("generation")
    };
    assert_eq!(gen(1), gen(1));
    assert_ne!(
        gen(1),
        gen(2),
        "different weights should generate differently"
    );
}

#[test]
fn solver_is_deterministic() {
    let solve = || {
        let s = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            SolverConfig::default(),
        );
        s.solve(MatmulShape::new(300, 4096, 14336), Dominance::NpuDominant)
    };
    assert_eq!(solve(), solve());
}

#[test]
fn decode_rate_independent_of_measurement_length() {
    // Measuring 4 vs 12 decode tokens should give nearly the same rate
    // (context growth adds slight attention cost).
    let model = ModelConfig::llama_3b();
    let rate = |n: usize| {
        let mut e = EngineKind::HeteroTensor.build(&model, SyncMechanism::Fast);
        e.decode(256, n).tokens_per_sec()
    };
    let short = rate(4);
    let long = rate(12);
    assert!(
        (short / long - 1.0).abs() < 0.05,
        "short {short} vs long {long}"
    );
}

#[test]
fn prefill_of_same_length_costs_same_regardless_of_history() {
    // Engine state (graph cache warm, plan tables warm) must make
    // repeat requests *no slower*; with everything preloaded they are
    // identical for aligned lengths.
    let model = ModelConfig::llama_3b();
    let mut e = EngineKind::HeteroTensor.build(&model, SyncMechanism::Fast);
    let first = e.prefill(256).elapsed;
    let second = e.prefill(256).elapsed;
    assert_eq!(first, second);
}
