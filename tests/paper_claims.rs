//! End-to-end assertions of the paper's headline claims, as tests.
//!
//! These duplicate the checks the experiment binaries print, in a form
//! `cargo test` enforces on every change. Tolerances are loose — the
//! substrate is a simulator — but orderings and rough factors must hold.

use heterollm_suite::engine::{EngineKind, ModelConfig};
use heterollm_suite::soc::sync::SyncMechanism;

fn prefill_rate(kind: EngineKind, model: &ModelConfig, seq: usize) -> f64 {
    let mut e = kind.build(model, SyncMechanism::Fast);
    e.prefill(seq).tokens_per_sec()
}

fn decode_rate(kind: EngineKind, model: &ModelConfig) -> f64 {
    let mut e = kind.build(model, SyncMechanism::Fast);
    e.decode(256, 8).tokens_per_sec()
}

/// Abstract claim: §1 — "the first LLM engine to surpass 1000 tokens
/// per second in prefill phase using FLOAT calculations on mobile
/// devices for billion-scale LLMs."
#[test]
fn surpasses_1000_tokens_per_second_prefill() {
    let rate = prefill_rate(EngineKind::HeteroTensor, &ModelConfig::internlm_1_8b(), 256);
    assert!(rate > 1000.0, "InternLM-1.8B prefill {rate} tokens/s");
}

/// Abstract claim: 9.99× over MLC and 4.36× over MNN (±50%).
#[test]
fn headline_speedups_over_mlc_and_mnn() {
    let model = ModelConfig::llama_8b();
    let ht = prefill_rate(EngineKind::HeteroTensor, &model, 1024);
    let mlc = prefill_rate(EngineKind::Mlc, &model, 1024);
    let mnn = prefill_rate(EngineKind::MnnOpenCl, &model, 1024);
    let vs_mlc = ht / mlc;
    let vs_mnn = ht / mnn;
    assert!((5.0..15.0).contains(&vs_mlc), "vs MLC: {vs_mlc}");
    assert!((2.2..6.6).contains(&vs_mnn), "vs MNN: {vs_mnn}");
}

/// §5.2.1 — engine ordering in prefill is stable across all models and
/// aligned lengths: Hetero-tensor ≥ Hetero-layer > PPL > {MLC, MNN} >
/// llama.cpp.
#[test]
fn prefill_engine_ordering_is_stable() {
    for model in ModelConfig::evaluation_models() {
        for seq in [64usize, 256] {
            let ht = prefill_rate(EngineKind::HeteroTensor, &model, seq);
            let hl = prefill_rate(EngineKind::HeteroLayer, &model, seq);
            let ppl = prefill_rate(EngineKind::PplOpenCl, &model, seq);
            let mlc = prefill_rate(EngineKind::Mlc, &model, seq);
            let cpu = prefill_rate(EngineKind::LlamaCpp, &model, seq);
            assert!(
                ht >= hl * 0.99,
                "{} @{seq}: tensor {ht} < layer {hl}",
                model.name
            );
            assert!(hl > ppl, "{} @{seq}", model.name);
            assert!(ppl > mlc, "{} @{seq}", model.name);
            assert!(mlc > cpu, "{} @{seq}", model.name);
        }
    }
}

/// §5.3 — decode: Hetero-tensor wins on every model; Hetero-layer ties
/// PPL-OpenCL; llama.cpp is slowest.
#[test]
fn decode_engine_ordering_is_stable() {
    for model in ModelConfig::evaluation_models() {
        let ht = decode_rate(EngineKind::HeteroTensor, &model);
        let hl = decode_rate(EngineKind::HeteroLayer, &model);
        let ppl = decode_rate(EngineKind::PplOpenCl, &model);
        let cpu = decode_rate(EngineKind::LlamaCpp, &model);
        assert!(ht > ppl * 1.05, "{}: tensor {ht} vs ppl {ppl}", model.name);
        assert!(
            (hl / ppl - 1.0).abs() < 0.1,
            "{}: layer should tie ppl",
            model.name
        );
        assert!(cpu < ppl, "{}", model.name);
    }
}

/// §5.3 — the decode gain comes from bandwidth aggregation, so it is
/// bounded by the 59.1/43.3 bandwidth ratio.
#[test]
fn decode_gain_bounded_by_bandwidth_ratio() {
    let model = ModelConfig::llama_8b();
    let gain =
        decode_rate(EngineKind::HeteroTensor, &model) / decode_rate(EngineKind::PplOpenCl, &model);
    assert!(
        gain < 59.1 / 43.3 + 0.02,
        "gain {gain} exceeds the bandwidth ceiling"
    );
    assert!(gain > 1.1, "gain {gain} too small");
}

/// §5.2.2 — at misaligned lengths, Hetero-tensor beats every NPU-side
/// strategy, and the strategies order as Online-prepare ≥ Padding >
/// Pipe in latency (for first-time requests at moderate lengths).
#[test]
fn misaligned_strategy_ordering() {
    let model = ModelConfig::llama_8b();
    for seq in [300usize, 525] {
        let lat = |kind: EngineKind| {
            let mut e = kind.build(&model, SyncMechanism::Fast);
            e.prefill(seq).elapsed.as_secs_f64()
        };
        let online = lat(EngineKind::NpuOnlinePrepare);
        let pad = lat(EngineKind::NpuPadding);
        let pipe = lat(EngineKind::NpuPipe);
        let ht = lat(EngineKind::HeteroTensor);
        assert!(
            ht < pipe && pipe < pad,
            "@{seq}: ht {ht} pipe {pipe} pad {pad}"
        );
        assert!(
            online > pipe,
            "@{seq}: online {online} should pay graph generation"
        );
    }
}

/// §5.4 — fast synchronization helps decode by a larger factor than
/// prefill on every model.
#[test]
fn fast_sync_gain_decode_exceeds_prefill() {
    for model in [ModelConfig::llama_8b(), ModelConfig::internlm_1_8b()] {
        let gain = |prefill: bool| {
            let mut fast = EngineKind::HeteroTensor.build(&model, SyncMechanism::Fast);
            let mut slow = EngineKind::HeteroTensor.build(&model, SyncMechanism::Driver);
            if prefill {
                fast.prefill(256).tokens_per_sec() / slow.prefill(256).tokens_per_sec()
            } else {
                fast.decode(256, 4).tokens_per_sec() / slow.decode(256, 4).tokens_per_sec()
            }
        };
        let p = gain(true);
        let d = gain(false);
        assert!(d > p, "{}: decode {d} <= prefill {p}", model.name);
        assert!(d > 1.8, "{}: decode gain {d}", model.name);
    }
}

/// §5.6 — power ordering: Hetero-layer < Hetero-tensor < PPL-OpenCL,
/// and Hetero-tensor has the best energy per prompt.
#[test]
fn power_and_energy_ordering() {
    let model = ModelConfig::llama_8b();
    let run = |kind: EngineKind| {
        let mut e = kind.build(&model, SyncMechanism::Fast);
        e.prefill(256);
        e.finish()
    };
    let ppl = run(EngineKind::PplOpenCl);
    let layer = run(EngineKind::HeteroLayer);
    let tensor = run(EngineKind::HeteroTensor);
    assert!(
        layer.avg_power_w < tensor.avg_power_w,
        "layer should draw least power"
    );
    assert!(
        tensor.avg_power_w < ppl.avg_power_w,
        "tensor must draw less than GPU-only"
    );
    assert!(
        tensor.energy_j < ppl.energy_j * 0.5,
        "tensor energy should be ≪ PPL"
    );
}

/// Throughput scale sanity across all four models (Fig. 13/16 bands,
/// wide tolerances).
#[test]
fn absolute_rates_in_paper_bands() {
    let cases = [
        (ModelConfig::llama_8b(), 247.9, 14.01),
        (ModelConfig::llama_3b(), 700.0, 29.9),
        (ModelConfig::internlm_1_8b(), 1092.0, 51.12),
    ];
    for (model, _paper_prefill, paper_decode) in cases {
        let d = decode_rate(EngineKind::HeteroTensor, &model);
        assert!(
            (d / paper_decode - 1.0).abs() < 0.35,
            "{}: decode {d} vs paper {paper_decode}",
            model.name
        );
    }
}
