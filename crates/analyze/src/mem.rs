//! Mempool aliasing: live tensor regions in the shared host/device
//! memory pool must never overlap (§4.2).
//!
//! The fast-sync design keeps activations in persistently-mapped
//! buffers that both the GPU and NPU address directly. Nothing in the
//! driver re-checks ownership on each kernel, so a layout that maps two
//! simultaneously-live tensors onto overlapping byte ranges silently
//! corrupts one of them mid-inference. The checker takes a region table
//! — address range plus live interval for each tensor — and rejects any
//! pair that overlaps in both space and time.

use serde::{Deserialize, Serialize};

use crate::diag::Diagnostic;
use crate::rules;

/// One tensor's placement in the pool: an address range and the
/// half-open interval of execution steps during which it is live.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorRegion {
    /// Human-readable name, e.g. `"layer3.ffn_act"`.
    pub label: String,
    /// Byte offset of the region within the pool.
    pub offset: u64,
    /// Region size in bytes.
    pub bytes: u64,
    /// First execution step at which the tensor is live (inclusive).
    pub live_from: u64,
    /// Step after the last use (exclusive); `live_from < live_until`.
    pub live_until: u64,
}

impl TensorRegion {
    fn overlaps_space(&self, other: &Self) -> bool {
        self.offset < other.offset + other.bytes && other.offset < self.offset + self.bytes
    }

    fn overlaps_time(&self, other: &Self) -> bool {
        self.live_from < other.live_until && other.live_from < self.live_until
    }
}

fn emit(out: &mut Vec<Diagnostic>, location: &str, message: String, suggestion: Option<String>) {
    let info = rules::rule(rules::MEMPOOL_ALIASING).expect("registered");
    out.push(Diagnostic {
        rule_id: rules::MEMPOOL_ALIASING.into(),
        severity: info.severity,
        location: location.into(),
        message,
        suggestion,
    });
}

/// Check a pool layout for aliasing between live tensor regions.
pub fn check_regions(regions: &[TensorRegion], location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    for r in regions {
        if r.bytes == 0 {
            emit(
                &mut out,
                location,
                format!("region '{}' is empty (0 bytes)", r.label),
                None,
            );
        }
        if r.live_from >= r.live_until {
            emit(
                &mut out,
                location,
                format!(
                    "region '{}' has an empty or inverted live range [{}, {})",
                    r.label, r.live_from, r.live_until
                ),
                None,
            );
        }
    }

    for (i, a) in regions.iter().enumerate() {
        for b in &regions[i + 1..] {
            if a.overlaps_space(b) && a.overlaps_time(b) {
                emit(
                    &mut out,
                    location,
                    format!(
                        "regions '{}' [{}, {}) and '{}' [{}, {}) alias while both live",
                        a.label,
                        a.offset,
                        a.offset + a.bytes,
                        b.label,
                        b.offset,
                        b.offset + b.bytes
                    ),
                    Some("serialize the tensors' lifetimes or separate their slots".into()),
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(label: &str, offset: u64, bytes: u64, from: u64, until: u64) -> TensorRegion {
        TensorRegion {
            label: label.into(),
            offset,
            bytes,
            live_from: from,
            live_until: until,
        }
    }

    #[test]
    fn accepts_disjoint_addresses() {
        let rs = [region("x", 0, 4096, 0, 10), region("y", 4096, 4096, 0, 10)];
        assert!(check_regions(&rs, "test").is_empty());
    }

    #[test]
    fn accepts_slot_reuse_across_time() {
        // The §4.2 pool pattern: the same slot serves layer after layer
        // because lifetimes never overlap.
        let rs = [
            region("layer0.act", 0, 1 << 20, 0, 2),
            region("layer1.act", 0, 1 << 20, 2, 4),
            region("layer2.act", 0, 1 << 20, 4, 6),
        ];
        assert!(check_regions(&rs, "test").is_empty());
    }

    #[test]
    fn rejects_live_overlap() {
        let rs = [region("x", 0, 8192, 0, 10), region("y", 4096, 8192, 5, 15)];
        let diags = check_regions(&rs, "test");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("alias"), "{diags:?}");
    }

    #[test]
    fn rejects_inverted_live_range() {
        let rs = [region("x", 0, 4096, 7, 7)];
        let diags = check_regions(&rs, "test");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("inverted") || d.message.contains("empty or inverted")),
            "{diags:?}"
        );
    }

    #[test]
    fn rejects_empty_region() {
        let rs = [region("x", 0, 0, 0, 1)];
        let diags = check_regions(&rs, "test");
        assert!(
            diags.iter().any(|d| d.message.contains("0 bytes")),
            "{diags:?}"
        );
    }

    #[test]
    fn touching_regions_do_not_alias() {
        // End-exclusive: [0, 4096) and [4096, 8192) share no byte.
        let rs = [region("x", 0, 4096, 0, 10), region("y", 4096, 4096, 0, 10)];
        assert!(check_regions(&rs, "test").is_empty());
    }
}
