//! Fleet-serving robustness rules: `retry-storm` and
//! `shed-starvation`.
//!
//! `retry-storm` (deny) is a *configuration* rule: it rejects retry
//! policies that can amplify a correlated fault into a fleet-wide
//! traffic storm — unbounded attempt budgets, zero base delay,
//! multiplicative factors below 2 (not actually exponential), and
//! unjittered schedules that synchronize every client's retries onto
//! the same instant.
//!
//! `shed-starvation` (warn) is an *evidence* rule: it reads a
//! finished [`ArmReport`] and flags a priority class that lost more
//! than half its offered requests to admission control while the
//! fleet's measured busy fraction shows idle capacity — the shed
//! thresholds are tuned against the wrong utilization signal.

use hetero_fleet::{ArmReport, RetryPolicy};

use crate::diag::{Diagnostic, Severity};
use crate::rules;

/// A class is starving when it sheds more than this fraction of its
/// offered requests (in percent).
const STARVATION_SHED_PCT: u64 = 50;

/// Below this fleet busy fraction (parts per million) the fleet has
/// idle capacity, so heavy shedding is a mis-tune rather than an
/// overload response.
const IDLE_CAPACITY_PPM: u64 = 900_000;

fn storm(location: &str, message: String, suggestion: &str) -> Diagnostic {
    Diagnostic {
        rule_id: rules::RETRY_STORM.into(),
        severity: Severity::Deny,
        location: location.into(),
        message,
        suggestion: Some(suggestion.into()),
    }
}

/// Check one retry policy against the `retry-storm` rule.
pub fn check_retry_policy(policy: &RetryPolicy, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if policy.max_attempts == 0 {
        out.push(storm(
            location,
            "max_attempts = 0 means retry forever: a dead device turns every \
             request into an infinite dispatch loop"
                .into(),
            "bound the attempt budget (the shipped policy uses 4)",
        ));
    }
    if policy.base.as_nanos() == 0 && policy.max_attempts != 1 {
        out.push(storm(
            location,
            "zero base delay retries immediately: every failure is retried \
             within the same fault window it failed in"
                .into(),
            "use a non-zero base delay (the shipped policy uses 2 ms)",
        ));
    }
    if policy.factor < 2 && (policy.max_attempts > 2 || policy.max_attempts == 0) {
        out.push(storm(
            location,
            format!(
                "backoff factor {} is not exponential: retry pressure never \
                 decays, so a correlated fault keeps the full offered load \
                 hammering the surviving devices",
                policy.factor
            ),
            "use a multiplicative factor of at least 2 (the shipped policy uses 4)",
        ));
    }
    if policy.jitter_pct == 0 && policy.max_attempts != 1 {
        out.push(storm(
            location,
            "unjittered backoff synchronizes retries: every request that \
             failed in the same storm retries at the same instant"
                .into(),
            "add jitter (the shipped policy adds up to 20% of each delay)",
        ));
    }
    if policy.cap < policy.base {
        out.push(storm(
            location,
            format!(
                "delay cap {} ns is below the base delay {} ns: the schedule \
                 is capped into immediate-retry territory",
                policy.cap.as_nanos(),
                policy.base.as_nanos()
            ),
            "set the cap at or above the base delay",
        ));
    }
    out
}

/// Check one finished arm report against the `shed-starvation` rule.
pub fn check_fleet_arm(arm: &ArmReport, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if arm.busy_ppm >= IDLE_CAPACITY_PPM {
        // Genuinely saturated: shedding is the mechanism working.
        return out;
    }
    for class in &arm.by_priority {
        if class.offered == 0 {
            continue;
        }
        let shed_pct = class.shed * 100 / class.offered;
        if shed_pct > STARVATION_SHED_PCT {
            out.push(Diagnostic {
                rule_id: rules::SHED_STARVATION.into(),
                severity: Severity::Warn,
                location: format!("{location}/{}", class.class),
                message: format!(
                    "class shed {}/{} offered requests ({shed_pct}%) while the \
                     fleet was only {}.{:04}% busy — admission control is \
                     starving it despite idle capacity",
                    class.shed,
                    class.offered,
                    arm.busy_ppm / 10_000,
                    arm.busy_ppm % 10_000
                ),
                suggestion: Some(
                    "raise the class's shed threshold or fix the busy/healthy \
                     signal admission control reads"
                        .into(),
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_fleet::{FleetConfig, FleetSim, RouterPolicy};
    use hetero_soc::SimTime;

    #[test]
    fn shipped_policy_is_storm_safe() {
        assert!(check_retry_policy(&RetryPolicy::standard(), "std").is_empty());
    }

    #[test]
    fn storm_prone_policies_are_denied() {
        let bad = RetryPolicy {
            max_attempts: 0,
            base: SimTime::ZERO,
            factor: 1,
            cap: SimTime::ZERO,
            jitter_pct: 0,
            timeout: SimTime::from_millis(250),
        };
        let diags = check_retry_policy(&bad, "bad");
        assert!(diags.len() >= 3, "{diags:?}");
        assert!(diags
            .iter()
            .all(|d| d.rule_id == rules::RETRY_STORM && d.severity == Severity::Deny));
        // Factor 1 with a real budget is still a deny: no decay.
        let linear = RetryPolicy {
            factor: 1,
            ..RetryPolicy::standard()
        };
        assert_eq!(check_retry_policy(&linear, "linear").len(), 1);
    }

    #[test]
    fn real_fleet_run_passes_both_rules() {
        let sim = FleetSim::new(FleetConfig::standard(42, 32, 250));
        let arm = sim.run(RouterPolicy::Robust);
        assert!(
            check_fleet_arm(&arm, "fleet[42]").is_empty(),
            "shipped admission starves"
        );
    }

    #[test]
    fn starved_class_on_idle_fleet_warns() {
        let sim = FleetSim::new(FleetConfig::standard(42, 32, 250));
        let mut arm = sim.run(RouterPolicy::Robust);
        // Fabricate a mis-tuned outcome: batch shed 80% while idle.
        arm.busy_ppm = 200_000;
        let batch = arm
            .by_priority
            .iter_mut()
            .find(|c| c.class == "batch")
            .expect("batch class present");
        batch.offered = 100;
        batch.shed = 80;
        batch.served = 20;
        let diags = check_fleet_arm(&arm, "fleet[42]");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::SHED_STARVATION);
        assert_eq!(diags[0].severity, Severity::Warn);
        assert!(diags[0].location.ends_with("/batch"));

        // A saturated fleet shedding batch is the mechanism working.
        arm.busy_ppm = 950_000;
        assert!(check_fleet_arm(&arm, "fleet[42]").is_empty());
    }
}
