//! Chrome trace-event lint: structural checks over exported timelines.
//!
//! The observability layer (`heterollm::obs`) exports span timelines
//! as Chrome trace-event JSON (`--trace-out` on the experiment
//! binaries). This module re-checks an exported file from the
//! *outside* — parsing the JSON like any trace viewer would — so a
//! regression in the exporter (or a hand-edited trace) is caught by
//! the same CI gate that checks plans and schedules:
//!
//! - [`TRACE_FORMAT`](crate::rules::TRACE_FORMAT): the document is a
//!   trace-event object; every event has a `ph`, duration/flow events
//!   carry integer `pid`/`tid`/`ts` (floating-point timestamps would
//!   break byte-stable determinism).
//! - [`SPAN_NESTING`](crate::rules::SPAN_NESTING): per `(pid, tid)`
//!   track, `B`/`E` events observe stack discipline with
//!   non-decreasing timestamps — spans are either disjoint or nested,
//!   never partially overlapping.
//! - [`SUBMIT_COMPLETE`](crate::rules::SUBMIT_COMPLETE): every `B`
//!   (submit) has a matching `E` (complete) on its track and vice
//!   versa — no kernel is left in flight at the end of the trace.
//! - [`FLOW_MATCH`](crate::rules::FLOW_MATCH): every flow id has
//!   exactly one start (`s`) and one finish (`f`), and the finish does
//!   not precede the start.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Severity};
use crate::rules;

fn deny(rule_id: &str, loc: &str, message: String) -> Diagnostic {
    Diagnostic {
        rule_id: rule_id.into(),
        severity: Severity::Deny,
        location: loc.into(),
        message,
        suggestion: None,
    }
}

/// One parsed duration/flow event (the fields the lint needs).
struct Event {
    index: usize,
    ph: String,
    name: String,
    pid: u64,
    tid: u64,
    ts: u64,
    id: Option<u64>,
}

/// Lint a Chrome trace-event JSON document.
///
/// `loc` labels findings (typically the file path). Returns every
/// finding; an unparseable document yields a single
/// [`rules::TRACE_FORMAT`] finding.
pub fn check_trace(text: &str, loc: &str) -> Vec<Diagnostic> {
    let doc: serde_json::Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => {
            return vec![deny(
                rules::TRACE_FORMAT,
                loc,
                format!("not valid JSON: {e}"),
            )];
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(|v| v.as_array()) else {
        return vec![deny(
            rules::TRACE_FORMAT,
            loc,
            "document has no `traceEvents` array".into(),
        )];
    };

    let mut findings = Vec::new();
    let mut parsed: Vec<Event> = Vec::new();
    for (index, ev) in events.iter().enumerate() {
        let Some(ph) = ev.get("ph").and_then(|v| v.as_str()) else {
            findings.push(deny(
                rules::TRACE_FORMAT,
                loc,
                format!("event #{index} has no `ph` phase field"),
            ));
            continue;
        };
        if ph == "M" {
            continue; // metadata rows carry no timestamp
        }
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string();
        let int = |key: &str| ev.get(key).and_then(|v| v.as_u64());
        let (Some(pid), Some(tid), Some(ts)) = (int("pid"), int("tid"), int("ts")) else {
            findings.push(deny(
                rules::TRACE_FORMAT,
                loc,
                format!(
                    "event #{index} ({ph} {name:?}) lacks integer pid/tid/ts \
                     (fractional timestamps break determinism)"
                ),
            ));
            continue;
        };
        parsed.push(Event {
            index,
            ph: ph.to_string(),
            name,
            pid,
            tid,
            ts,
            id: int("id"),
        });
    }

    // Per-track stack discipline over B/E events, in file order.
    // Each open B is (event index, name, ts).
    type OpenSpans = Vec<(usize, String, u64)>;
    let mut stacks: BTreeMap<(u64, u64), OpenSpans> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for ev in &parsed {
        let track = (ev.pid, ev.tid);
        if ev.ph != "B" && ev.ph != "E" {
            continue;
        }
        let prev = last_ts.entry(track).or_insert(ev.ts);
        if ev.ts < *prev {
            findings.push(deny(
                rules::SPAN_NESTING,
                loc,
                format!(
                    "track {track:?}: event #{} ({} {:?}) at ts {} precedes \
                     earlier event at ts {} (timestamps must be non-decreasing)",
                    ev.index, ev.ph, ev.name, ev.ts, prev
                ),
            ));
        }
        *prev = (*prev).max(ev.ts);
        let stack = stacks.entry(track).or_default();
        if ev.ph == "B" {
            stack.push((ev.index, ev.name.clone(), ev.ts));
        } else {
            match stack.pop() {
                Some((_, open_name, open_ts)) => {
                    if ev.ts < open_ts {
                        findings.push(deny(
                            rules::SPAN_NESTING,
                            loc,
                            format!(
                                "track {track:?}: span {open_name:?} completes at ts {} \
                                 before its submit at ts {open_ts}",
                                ev.ts
                            ),
                        ));
                    }
                }
                None => {
                    findings.push(deny(
                        rules::SUBMIT_COMPLETE,
                        loc,
                        format!(
                            "track {track:?}: complete event #{} ({:?}) has no \
                             matching submit",
                            ev.index, ev.name
                        ),
                    ));
                }
            }
        }
    }
    for (track, stack) in &stacks {
        for (index, name, ts) in stack {
            findings.push(deny(
                rules::SUBMIT_COMPLETE,
                loc,
                format!(
                    "track {track:?}: submit event #{index} ({name:?} at ts {ts}) \
                     never completes"
                ),
            ));
        }
    }

    // Flow events: each id pairs one start with one finish, in order.
    let mut flows: BTreeMap<u64, (usize, usize, Option<u64>, Option<u64>)> = BTreeMap::new();
    for ev in &parsed {
        if ev.ph != "s" && ev.ph != "f" {
            continue;
        }
        let Some(id) = ev.id else {
            findings.push(deny(
                rules::FLOW_MATCH,
                loc,
                format!("flow event #{} ({:?}) has no integer id", ev.index, ev.name),
            ));
            continue;
        };
        let entry = flows.entry(id).or_insert((0, 0, None, None));
        if ev.ph == "s" {
            entry.0 += 1;
            entry.2 = Some(ev.ts);
        } else {
            entry.1 += 1;
            entry.3 = Some(ev.ts);
        }
    }
    for (id, (starts, finishes, s_ts, f_ts)) in &flows {
        if *starts != 1 || *finishes != 1 {
            findings.push(deny(
                rules::FLOW_MATCH,
                loc,
                format!("flow id {id}: {starts} start(s) and {finishes} finish(es), expected 1+1"),
            ));
            continue;
        }
        if let (Some(s), Some(f)) = (s_ts, f_ts) {
            if f < s {
                findings.push(deny(
                    rules::FLOW_MATCH,
                    loc,
                    format!("flow id {id}: finish at ts {f} precedes start at ts {s}"),
                ));
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(findings: &[Diagnostic]) -> Vec<&str> {
        findings.iter().map(|d| d.rule_id.as_str()).collect()
    }

    const GOOD: &str = r#"{"displayTimeUnit":"ns","traceEvents":[
{"name":"process_name","ph":"M","pid":1,"tid":1,"args":{"name":"GPU"}},
{"name":"a","cat":"kernel","ph":"B","pid":1,"tid":1,"ts":0},
{"name":"b","cat":"kernel","ph":"B","pid":1,"tid":1,"ts":10},
{"name":"b","cat":"kernel","ph":"E","pid":1,"tid":1,"ts":20},
{"name":"a","cat":"kernel","ph":"E","pid":1,"tid":1,"ts":30},
{"name":"x","cat":"sync","ph":"s","pid":1,"tid":1,"ts":20,"id":1},
{"name":"x","cat":"sync","ph":"f","bp":"e","pid":2,"tid":1,"ts":25,"id":1}
]}"#;

    #[test]
    fn well_formed_trace_is_clean() {
        assert!(check_trace(GOOD, "t").is_empty());
    }

    #[test]
    fn real_exporter_output_is_clean() {
        let mut tl = heterollm::obs::Timeline::default();
        use hetero_soc::SimTime;
        use heterollm::obs::{SpanKind, Track};
        tl.push_span(
            Track::Gpu,
            SpanKind::Kernel,
            "outer",
            SimTime::ZERO,
            SimTime::from_micros(30),
        );
        tl.push_span(
            Track::Gpu,
            SpanKind::Kernel,
            "inner",
            SimTime::from_micros(5),
            SimTime::from_micros(10),
        );
        tl.push_flow(
            "edge",
            Track::Gpu,
            SimTime::from_micros(10),
            Track::Npu,
            SimTime::from_micros(12),
        );
        let json = heterollm::obs::chrome::to_chrome_json(&tl);
        assert!(check_trace(&json, "t").is_empty(), "{json}");
    }

    #[test]
    fn garbage_is_a_format_finding() {
        let f = check_trace("not json", "t");
        assert_eq!(ids(&f), vec![rules::TRACE_FORMAT]);
        let f = check_trace(r#"{"foo": 1}"#, "t");
        assert_eq!(ids(&f), vec![rules::TRACE_FORMAT]);
    }

    #[test]
    fn fractional_timestamp_is_a_format_finding() {
        let bad = r#"{"traceEvents":[
{"name":"a","ph":"B","pid":1,"tid":1,"ts":1.5},
{"name":"a","ph":"E","pid":1,"tid":1,"ts":2}
]}"#;
        let f = check_trace(bad, "t");
        assert!(ids(&f).contains(&rules::TRACE_FORMAT), "{f:?}");
    }

    #[test]
    fn partial_overlap_is_a_nesting_finding() {
        // a: [0, 20), b: [10, 30) — E at 20 closes b (LIFO), fine; but
        // decreasing timestamps across B/E events are the giveaway.
        let bad = r#"{"traceEvents":[
{"name":"a","ph":"B","pid":1,"tid":1,"ts":0},
{"name":"b","ph":"B","pid":1,"tid":1,"ts":10},
{"name":"a","ph":"E","pid":1,"tid":1,"ts":5}
]}"#;
        let f = check_trace(bad, "t");
        assert!(ids(&f).contains(&rules::SPAN_NESTING), "{f:?}");
    }

    #[test]
    fn unmatched_events_are_submit_complete_findings() {
        let open = r#"{"traceEvents":[
{"name":"a","ph":"B","pid":1,"tid":1,"ts":0}
]}"#;
        let f = check_trace(open, "t");
        assert_eq!(ids(&f), vec![rules::SUBMIT_COMPLETE]);

        let stray = r#"{"traceEvents":[
{"name":"a","ph":"E","pid":1,"tid":1,"ts":0}
]}"#;
        let f = check_trace(stray, "t");
        assert_eq!(ids(&f), vec![rules::SUBMIT_COMPLETE]);
    }

    #[test]
    fn dangling_and_reversed_flows_are_findings() {
        let dangling = r#"{"traceEvents":[
{"name":"x","ph":"s","pid":1,"tid":1,"ts":0,"id":7}
]}"#;
        let f = check_trace(dangling, "t");
        assert_eq!(ids(&f), vec![rules::FLOW_MATCH]);

        let reversed = r#"{"traceEvents":[
{"name":"x","ph":"s","pid":1,"tid":1,"ts":10,"id":7},
{"name":"x","ph":"f","pid":2,"tid":1,"ts":5,"id":7}
]}"#;
        let f = check_trace(reversed, "t");
        assert_eq!(ids(&f), vec![rules::FLOW_MATCH]);
    }
}
