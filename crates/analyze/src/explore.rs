//! Bounded exhaustive interleaving exploration for sync schedules
//! (§4.2).
//!
//! The race detector ([`crate::race`]) proves ordering *edges* exist;
//! this module asks the complementary question: does the result depend
//! on which legal order actually happens? A [`SyncSchedule`]'s
//! `waits_on` graph admits many linear extensions — the orders the
//! hardware could really execute given FIFO queues and rendezvous
//! edges. Each extension is replayed through the discrete-event
//! machinery ([`EventQueue`] + per-backend [`FifoServer`]s) under both
//! phase dominances, producing a full [`SessionReport`]. The schedule
//! is *deterministic* iff every extension's report serializes to
//! byte-identical JSON.
//!
//! Walking every extension would be factorial, so extensions are
//! grouped into Mazurkiewicz-style classes by their per-backend
//! projections: two orders that agree on each actor's local sequence
//! feed every FIFO server identically and replay identically, so one
//! representative per class suffices. Exploration is bounded by
//! [`ExploreConfig::max_interleavings`]; hitting the bound is reported
//! as truncation, never silently.

use std::collections::HashSet;

use hetero_soc::des::{EventQueue, FifoServer};
use hetero_soc::power::EnergyMeter;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::{Backend, SimTime};
use heterollm::report::{PhaseReport, SessionReport};
use serde::Serialize;

use crate::diag::Diagnostic;
use crate::rules;
use crate::sched::{EventKind, SyncSchedule};

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Synchronization mechanism the replays cost with.
    pub mechanism: SyncMechanism,
    /// Maximum number of linear extensions to walk before truncating.
    pub max_interleavings: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            mechanism: SyncMechanism::Fast,
            max_interleavings: 10_000,
        }
    }
}

/// Outcome of exploring one schedule's interleaving space.
#[derive(Debug, Clone, Serialize)]
pub struct DeterminismCertificate {
    /// Linear extensions of the `waits_on` graph walked.
    pub interleavings: usize,
    /// Distinct per-backend-projection classes replayed.
    pub classes: usize,
    /// Whether enumeration stopped at the exploration bound.
    pub truncated: bool,
    /// Whether every replayed class produced a byte-identical report.
    pub deterministic: bool,
    /// The agreed serialized [`SessionReport`] when deterministic.
    pub canonical: Option<String>,
}

/// Enumerate linear extensions of the `waits_on` DAG, stopping after
/// `cap` complete orders. Returns the orders and whether more remained.
fn linear_extensions(schedule: &SyncSchedule, cap: usize) -> (Vec<Vec<usize>>, bool) {
    let n = schedule.events.len();
    let mut indeg = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in schedule.events.iter().enumerate() {
        for &w in &e.waits_on {
            if w < n {
                indeg[i] += 1;
                dependents[w].push(i);
            }
        }
    }
    let mut orders = Vec::new();
    let mut order = Vec::with_capacity(n);
    let mut truncated = false;
    fn dfs(
        n: usize,
        indeg: &mut [usize],
        dependents: &[Vec<usize>],
        order: &mut Vec<usize>,
        orders: &mut Vec<Vec<usize>>,
        cap: usize,
        truncated: &mut bool,
    ) {
        if orders.len() >= cap {
            *truncated = true;
            return;
        }
        if order.len() == n {
            orders.push(order.clone());
            return;
        }
        for i in 0..n {
            if indeg[i] != usize::MAX && indeg[i] == 0 {
                let saved = indeg[i];
                indeg[i] = usize::MAX; // taken
                for &d in &dependents[i] {
                    indeg[d] -= 1;
                }
                order.push(i);
                dfs(n, indeg, dependents, order, orders, cap, truncated);
                order.pop();
                for &d in &dependents[i] {
                    indeg[d] += 1;
                }
                indeg[i] = saved;
                if *truncated {
                    return;
                }
            }
        }
    }
    dfs(
        n,
        &mut indeg,
        &dependents,
        &mut order,
        &mut orders,
        cap,
        &mut truncated,
    );
    (orders, truncated)
}

/// Per-backend projection of an order: each actor's local sequence.
/// Orders with equal projections feed every FIFO server identically and
/// replay to the same report.
fn projection(schedule: &SyncSchedule, order: &[usize]) -> Vec<Vec<usize>> {
    let mut proj = vec![Vec::new(); 3];
    for &i in order {
        let a = match schedule.events[i].backend {
            Backend::Cpu => 0,
            Backend::Gpu => 1,
            Backend::Npu => 2,
        };
        proj[a].push(i);
    }
    proj
}

/// Replay one order through per-backend FIFO servers, returning the
/// makespan and per-actor busy time.
///
/// Event durations are index-dependent (submissions cost `100 µs +
/// 17 µs · index`) so FIFO reorderings of same-backend work surface as
/// timing differences instead of cancelling out.
fn replay(
    schedule: &SyncSchedule,
    order: &[usize],
    sync: &SyncModel,
    dominance: Dominance,
) -> (SimTime, [SimTime; 3]) {
    let n = schedule.events.len();
    let mut servers = [FifoServer::new(), FifoServer::new(), FifoServer::new()];
    let mut completion = vec![SimTime::ZERO; n];
    let mut busy = [SimTime::ZERO; 3];
    let mut queue: EventQueue<usize> = EventQueue::new();
    for &i in order {
        let e = &schedule.events[i];
        let ready = e
            .waits_on
            .iter()
            .filter(|&&w| w < n)
            .map(|&w| completion[w])
            .max()
            .unwrap_or(SimTime::ZERO);
        let duration = match e.kind {
            EventKind::Submit => SimTime::from_micros(100 + 17 * i as u64),
            EventKind::Switch => sync.backend_switch(),
            // Verification rendezvouses with the CPU control plane to
            // read the checksum vectors — same cost class as a join.
            EventKind::Rendezvous | EventKind::Verify => sync.rendezvous(dominance),
        };
        let a = match e.backend {
            Backend::Cpu => 0,
            Backend::Gpu => 1,
            Backend::Npu => 2,
        };
        let (_, end) = servers[a].serve(ready, duration);
        completion[i] = end;
        busy[a] += duration;
        queue.schedule(end, i);
    }
    let mut makespan = SimTime::ZERO;
    while let Some((at, _)) = queue.pop() {
        makespan = at;
    }
    (makespan, busy)
}

/// Build the session report one interleaving class implies: the
/// schedule replayed as a prefill (NPU-dominant rendezvous costs) and
/// as a decode pass (GPU-dominant), with energy integrated over both.
fn class_report(
    schedule: &SyncSchedule,
    order: &[usize],
    mechanism: SyncMechanism,
    model: &str,
) -> SessionReport {
    let sync = SyncModel::new(mechanism);
    let (pre_span, pre_busy) = replay(schedule, order, &sync, Dominance::NpuDominant);
    let (dec_span, dec_busy) = replay(schedule, order, &sync, Dominance::GpuDominant);
    let submits = schedule
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Submit)
        .count();
    let mut meter = EnergyMeter::new();
    for (a, backend) in [Backend::Cpu, Backend::Gpu, Backend::Npu]
        .into_iter()
        .enumerate()
    {
        meter.add_busy(backend, pre_busy[a] + dec_busy[a]);
    }
    meter.add_dram_bytes(submits as u64 * (1 << 20));
    meter.set_gpu_assist(true);
    meter.set_makespan(pre_span + dec_span);
    SessionReport {
        engine: "interleaving-replay".into(),
        model: model.into(),
        prefill: PhaseReport {
            tokens: submits,
            elapsed: pre_span,
        },
        decode: PhaseReport {
            tokens: submits,
            elapsed: dec_span,
        },
        power: meter.report(),
        degradation: None,
        integrity: None,
        metrics: None,
    }
}

/// Explore a schedule's legal interleavings and certify determinism.
///
/// Returns the certificate plus diagnostics: one
/// [`rules::INTERLEAVING_DETERMINISM`] deny finding if two interleaving
/// classes produce session reports that are not byte-identical.
pub fn explore_schedule(
    schedule: &SyncSchedule,
    cfg: &ExploreConfig,
    location: &str,
) -> (DeterminismCertificate, Vec<Diagnostic>) {
    let (orders, truncated) = linear_extensions(schedule, cfg.max_interleavings);
    let mut seen: HashSet<Vec<Vec<usize>>> = HashSet::new();
    let mut reps: Vec<Vec<usize>> = Vec::new();
    for order in &orders {
        if seen.insert(projection(schedule, order)) {
            reps.push(order.clone());
        }
    }
    let encoded: Vec<String> = reps
        .iter()
        .map(|order| {
            serde_json::to_string(&class_report(schedule, order, cfg.mechanism, location))
                .expect("session reports serialize")
        })
        .collect();
    let mut out = Vec::new();
    let divergent = encoded.iter().position(|e| e != &encoded[0]);
    if let Some(k) = divergent {
        let info = rules::rule(rules::INTERLEAVING_DETERMINISM).expect("registered");
        out.push(Diagnostic {
            rule_id: rules::INTERLEAVING_DETERMINISM.into(),
            severity: info.severity,
            location: location.into(),
            message: format!(
                "schedule output depends on the interleaving: {} of {} replayed \
                 classes diverge from class 0 (first at class {k}; {} extensions \
                 walked{})",
                encoded.iter().filter(|e| *e != &encoded[0]).count(),
                encoded.len(),
                orders.len(),
                if truncated { ", truncated" } else { "" },
            ),
            suggestion: Some(
                "add a waits_on edge ordering the unordered same-backend work so \
                 every legal execution yields the same report"
                    .into(),
            ),
        });
    }
    let deterministic = divergent.is_none() && !encoded.is_empty();
    let cert = DeterminismCertificate {
        interleavings: orders.len(),
        classes: reps.len(),
        truncated,
        deterministic,
        canonical: if deterministic {
            encoded.into_iter().next()
        } else {
            None
        },
    };
    (cert, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{retry_schedule, SyncEvent};
    use hetero_graph::partition::PartitionPlan;

    fn ev(label: &str, backend: Backend, kind: EventKind, waits_on: Vec<usize>) -> SyncEvent {
        SyncEvent {
            label: label.into(),
            backend,
            kind,
            waits_on,
        }
    }

    #[test]
    fn solver_schedules_are_deterministic() {
        for plan in [
            PartitionPlan::GpuOnly,
            PartitionPlan::NpuOnly { padded_m: 512 },
            PartitionPlan::SeqCut {
                npu_chunks: vec![256, 32],
                gpu_rows: 12,
            },
            PartitionPlan::HybridCut {
                padded_m: 512,
                gpu_cols: 1024,
            },
        ] {
            let s = SyncSchedule::for_plan(&plan);
            for base in [s.clone(), retry_schedule(&s)] {
                let (cert, diags) = explore_schedule(&base, &ExploreConfig::default(), "test");
                assert!(diags.is_empty(), "{plan:?}: {diags:?}");
                assert!(cert.deterministic, "{plan:?}: {cert:?}");
                assert_eq!(cert.classes, 1, "{plan:?}: {cert:?}");
                assert!(!cert.truncated);
                assert!(cert.canonical.is_some());
            }
        }
    }

    #[test]
    fn unordered_same_backend_work_diverges() {
        // Two unordered GPU submissions feeding a rendezvous: the FIFO
        // queue can serve either first, and the rendezvous sees its
        // dependency complete at different times.
        let s = SyncSchedule {
            events: vec![
                ev("gpu a", Backend::Gpu, EventKind::Submit, vec![]),
                ev("gpu b", Backend::Gpu, EventKind::Submit, vec![]),
                ev("npu c", Backend::Npu, EventKind::Submit, vec![]),
                ev("join", Backend::Cpu, EventKind::Rendezvous, vec![0, 2]),
            ],
        };
        let (cert, diags) = explore_schedule(&s, &ExploreConfig::default(), "test");
        assert_eq!(cert.classes, 2, "{cert:?}");
        assert!(!cert.deterministic);
        assert!(cert.canonical.is_none());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::INTERLEAVING_DETERMINISM);
    }

    #[test]
    fn certificates_are_reproducible() {
        let s = SyncSchedule::for_plan(&PartitionPlan::SeqCut {
            npu_chunks: vec![256, 32],
            gpu_rows: 12,
        });
        let cfg = ExploreConfig::default();
        let (a, _) = explore_schedule(&s, &cfg, "test");
        let (b, _) = explore_schedule(&s, &cfg, "test");
        assert_eq!(a.canonical, b.canonical);
        assert!(a.canonical.is_some());
    }

    #[test]
    fn exploration_bound_is_reported() {
        // Six mutually unordered submissions: 6! = 720 extensions.
        let events: Vec<SyncEvent> = (0..6)
            .map(|i| {
                let b = if i % 2 == 0 {
                    Backend::Gpu
                } else {
                    Backend::Npu
                };
                ev(&format!("s{i}"), b, EventKind::Submit, vec![])
            })
            .collect();
        let s = SyncSchedule { events };
        let cfg = ExploreConfig {
            max_interleavings: 10,
            ..ExploreConfig::default()
        };
        let (cert, _) = explore_schedule(&s, &cfg, "test");
        assert!(cert.truncated);
        assert_eq!(cert.interleavings, 10);
        // Unbounded, the full space fits and is walked exactly.
        let (full, _) = explore_schedule(&s, &ExploreConfig::default(), "test");
        assert!(!full.truncated);
        assert_eq!(full.interleavings, 720);
    }

    #[test]
    fn replay_respects_dependencies() {
        let s = SyncSchedule::for_plan(&PartitionPlan::HybridCut {
            padded_m: 512,
            gpu_cols: 1024,
        });
        let sync = SyncModel::new(SyncMechanism::Fast);
        let (span, busy) = replay(&s, &[0, 1, 2], &sync, Dominance::NpuDominant);
        // The rendezvous starts only after both submissions complete.
        assert!(span > SimTime::from_micros(117));
        assert!(busy[1] > SimTime::ZERO && busy[2] > SimTime::ZERO);
    }
}
