//! Rules over [`PartitionPlan`]s.

use hetero_graph::partition::PartitionPlan;
use hetero_soc::sync::SyncMechanism;

use crate::diag::Diagnostic;
use crate::rules;

/// Everything the plan rules need to know about the environment a plan
/// will execute in.
#[derive(Debug, Clone)]
pub struct PlanContext {
    /// Where the plan came from, e.g. `"Llama-8B/ffn_down[m=300]"`.
    pub location: String,
    /// Activation rows of the Matmul being partitioned.
    pub m: usize,
    /// Output features of the Matmul being partitioned.
    pub n: usize,
    /// Systolic-array tile edge (usually [`hetero_soc::calib::NPU_TILE`]).
    pub tile: usize,
    /// Solver row-cut alignment
    /// (usually [`hetero_soc::calib::ROW_PARTITION_ALIGN`]).
    pub row_align: usize,
    /// Sequence lengths with compiled NPU graphs.
    pub compiled_sizes: Vec<usize>,
    /// Synchronization mechanism the executing engine uses.
    pub mechanism: SyncMechanism,
    /// Whether the platform supports fast synchronization (a shared
    /// host/device memory pool + flag polling, §4.2).
    pub fast_sync_available: bool,
}

impl PlanContext {
    /// Context with the Snapdragon 8 Gen 3 calibration defaults: 32×32
    /// tiles, 256-column row alignment, the standard graph sizes
    /// compiled, and fast sync in use.
    pub fn standard(location: impl Into<String>, m: usize, n: usize) -> Self {
        Self {
            location: location.into(),
            m,
            n,
            tile: hetero_soc::calib::NPU_TILE,
            row_align: hetero_soc::calib::ROW_PARTITION_ALIGN,
            compiled_sizes: hetero_soc::calib::STANDARD_GRAPH_SIZES.to_vec(),
            mechanism: SyncMechanism::Fast,
            fast_sync_available: true,
        }
    }
}

fn emit(
    out: &mut Vec<Diagnostic>,
    rule_id: &str,
    ctx: &PlanContext,
    message: String,
    suggestion: Option<String>,
) {
    let info = rules::rule(rule_id).expect("emitting an unregistered rule");
    out.push(Diagnostic {
        rule_id: rule_id.into(),
        severity: info.severity,
        location: ctx.location.clone(),
        message,
        suggestion,
    });
}

/// Run every plan-level rule against `plan` in `ctx`.
pub fn check_plan(plan: &PartitionPlan, ctx: &PlanContext) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // shape-conservation (§4.1): no dropped or duplicated work.
    for v in plan.conservation_violations(ctx.m, ctx.n) {
        emit(&mut out, rules::SHAPE_CONSERVATION, ctx, v, None);
    }

    // tile-alignment (§3.2): NPU sequence sizes fit the systolic array.
    for v in plan.alignment_violations(ctx.tile) {
        emit(
            &mut out,
            rules::TILE_ALIGNMENT,
            ctx,
            v,
            Some(format!(
                "round NPU sequence sizes to multiples of {}",
                ctx.tile
            )),
        );
    }

    // graph-membership (§4.1.1): static graphs only.
    for v in plan.membership_violations(&ctx.compiled_sizes) {
        emit(
            &mut out,
            rules::GRAPH_MEMBERSHIP,
            ctx,
            v,
            Some(format!(
                "preload the size or restrict the plan to {:?}",
                ctx.compiled_sizes
            )),
        );
    }

    // plan-normalization: canonical serial form for degenerate splits,
    // and GPU column cuts on the solver's row alignment.
    if !plan.is_normalized() {
        emit(
            &mut out,
            rules::PLAN_NORMALIZATION,
            ctx,
            format!(
                "degenerate {} with an empty GPU share; canonical form is {}",
                plan.label(),
                plan.clone().normalize().label()
            ),
            Some("call PartitionPlan::normalize() on solver output".into()),
        );
    }
    if let PartitionPlan::RowCut { gpu_cols, .. } | PartitionPlan::HybridCut { gpu_cols, .. } = plan
    {
        if *gpu_cols % ctx.row_align != 0 {
            emit(
                &mut out,
                rules::PLAN_NORMALIZATION,
                ctx,
                format!(
                    "gpu_cols {gpu_cols} not a multiple of the row alignment {}: outside the \
                     solver search space and off the NPU's stage-performance plateau",
                    ctx.row_align
                ),
                Some(format!("align the column cut to {}", ctx.row_align)),
            );
        }
    }

    // sync-mechanism (§4.2): any plan that crosses backends pays sync;
    // driver-level sync wastes hundreds of µs per operator when the
    // fast path exists.
    if plan.uses_npu() && ctx.mechanism == SyncMechanism::Driver && ctx.fast_sync_available {
        emit(
            &mut out,
            rules::SYNC_MECHANISM,
            ctx,
            "plan crosses backends under driver synchronization (~400 µs mapped-buffer copy \
             per handoff) although fast sync is available"
                .into(),
            Some("use SyncMechanism::Fast (shared memory pool + flag polling)".into()),
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn ctx(m: usize, n: usize) -> PlanContext {
        PlanContext::standard("test", m, n)
    }

    fn ids(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule_id.as_str()).collect()
    }

    // -- shape-conservation ------------------------------------------------

    #[test]
    fn conservation_accepts_solver_style_seq_cut() {
        let plan = PartitionPlan::SeqCut {
            npu_chunks: vec![256, 32],
            gpu_rows: 12,
        };
        assert!(check_plan(&plan, &ctx(300, 4096)).is_empty());
    }

    #[test]
    fn conservation_rejects_row_duplication() {
        let plan = PartitionPlan::SeqCut {
            npu_chunks: vec![256, 64],
            gpu_rows: 12,
        };
        let diags = check_plan(&plan, &ctx(300, 4096));
        assert!(
            ids(&diags).contains(&rules::SHAPE_CONSERVATION),
            "{diags:?}"
        );
        assert_eq!(diags[0].severity, Severity::Deny);
    }

    // -- tile-alignment ----------------------------------------------------

    #[test]
    fn alignment_accepts_standard_sizes() {
        let plan = PartitionPlan::NpuOnly { padded_m: 512 };
        assert!(check_plan(&plan, &ctx(500, 4096)).is_empty());
    }

    #[test]
    fn alignment_rejects_partial_tiles() {
        let mut c = ctx(300, 4096);
        c.compiled_sizes.push(300); // isolate the alignment failure
        let plan = PartitionPlan::NpuOnly { padded_m: 300 };
        let diags = check_plan(&plan, &c);
        assert_eq!(ids(&diags), vec![rules::TILE_ALIGNMENT], "{diags:?}");
    }

    // -- graph-membership --------------------------------------------------

    #[test]
    fn membership_accepts_compiled_sizes() {
        let plan = PartitionPlan::NpuPipe {
            chunks: vec![1024, 512],
            padded_rows: 36,
        };
        assert!(check_plan(&plan, &ctx(1500, 4096)).is_empty());
    }

    #[test]
    fn membership_rejects_uncompiled_sizes() {
        // 96 is tile-aligned but no graph was generated for it.
        let plan = PartitionPlan::NpuOnly { padded_m: 96 };
        let diags = check_plan(&plan, &ctx(90, 4096));
        assert_eq!(ids(&diags), vec![rules::GRAPH_MEMBERSHIP], "{diags:?}");
    }

    // -- plan-normalization ------------------------------------------------

    #[test]
    fn normalization_accepts_canonical_plans() {
        let plan = PartitionPlan::NpuPipe {
            chunks: vec![256, 32],
            padded_rows: 0,
        };
        assert!(check_plan(&plan, &ctx(288, 4096)).is_empty());
    }

    #[test]
    fn normalization_flags_degenerate_seq_cut() {
        let plan = PartitionPlan::SeqCut {
            npu_chunks: vec![256, 32],
            gpu_rows: 0,
        };
        let diags = check_plan(&plan, &ctx(288, 4096));
        assert_eq!(ids(&diags), vec![rules::PLAN_NORMALIZATION], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn normalization_flags_misaligned_column_cut() {
        let plan = PartitionPlan::RowCut {
            gpu_cols: 100,
            padded_m: 256,
        };
        let diags = check_plan(&plan, &ctx(256, 4096));
        assert_eq!(ids(&diags), vec![rules::PLAN_NORMALIZATION], "{diags:?}");
    }

    // -- sync-mechanism ----------------------------------------------------

    #[test]
    fn mechanism_accepts_fast_sync() {
        let plan = PartitionPlan::RowCut {
            gpu_cols: 256,
            padded_m: 256,
        };
        assert!(check_plan(&plan, &ctx(256, 4096)).is_empty());
    }

    #[test]
    fn mechanism_flags_driver_sync_when_fast_available() {
        let mut c = ctx(256, 4096);
        c.mechanism = SyncMechanism::Driver;
        let plan = PartitionPlan::RowCut {
            gpu_cols: 256,
            padded_m: 256,
        };
        let diags = check_plan(&plan, &c);
        assert_eq!(ids(&diags), vec![rules::SYNC_MECHANISM], "{diags:?}");
    }

    #[test]
    fn mechanism_allows_driver_sync_when_it_is_all_there_is() {
        let mut c = ctx(256, 4096);
        c.mechanism = SyncMechanism::Driver;
        c.fast_sync_available = false;
        let plan = PartitionPlan::NpuOnly { padded_m: 256 };
        assert!(check_plan(&plan, &c).is_empty());
    }

    #[test]
    fn gpu_only_never_pays_sync() {
        let mut c = ctx(256, 4096);
        c.mechanism = SyncMechanism::Driver;
        assert!(check_plan(&PartitionPlan::GpuOnly, &c).is_empty());
    }
}
