//! Bounded exhaustive model checking of the fleet policy automata.
//!
//! [`check_policy_product`] enumerates every reachable state of the
//! product automaton *request lifecycle × circuit breaker* under a
//! given [`PolicyAutomata`] (breaker config × retry policy × admission
//! control) and proves three liveness/boundedness properties with
//! exact state and transition counts:
//!
//! - **no livelock** ([`rules::POLICY_LIVELOCK`]): every reachable
//!   state can reach a resolution (`Served`, `Shed`, or `Lost`);
//! - **bounded retry** ([`rules::RETRY_UNBOUNDED`]): no dispatch-fail
//!   edge sits on a cycle, i.e. no failure loop repeats without
//!   consuming retry budget (`max_attempts == 0` models "retry
//!   forever" and is caught here);
//! - **Open escapability** ([`rules::BREAKER_TRAP`]): every state with
//!   an `Open` breaker can reach a non-`Open` breaker state.
//!
//! The request side abstracts the router's per-request lifecycle:
//! `Start(p)` (admission decision under every representative census
//! band), `Admitted{p, attempt}` (dispatch in flight),
//! `Pending{p, attempt}` (failed, waiting to re-dispatch), and the
//! three terminal resolutions. Census state is abstracted into
//! *bands* — one representative `(busy, healthy)` pair per distinct
//! admission outcome (idle, each shed threshold, total outage) — so
//! the product stays finite while covering every admission branch.
//! `NextRequest` edges loop terminals back to `Start` with the breaker
//! state *preserved*, so breaker behaviour across consecutive requests
//! is part of the reachable space; these edges are excluded from the
//! retry-cycle analysis (budget is per request).
//!
//! Exploration reuses the truncation discipline of
//! [`crate::explore::ExploreConfig`]: a hard state cap, an explicit
//! `truncated` flag in the [`ProductCertificate`], and — when
//! truncated — *no* property claims (all three proofs report `false`
//! and no diagnostics are emitted, since the subgraph is incomplete).
//! Everything is deterministic: states are interned in `BTreeMap`
//! order and edges dedupe through a `BTreeSet`.

use hetero_fleet::{AdmissionControl, BreakerConfig, Priority, RetryPolicy, MAX_DISPATCHES};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::Diagnostic;
use crate::rules;

/// The three policy state machines whose product is checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyAutomata {
    /// Circuit-breaker tuning (threshold, cooldown).
    pub breaker: BreakerConfig,
    /// Retry/backoff schedule (only `max_attempts` shapes the graph).
    pub retry: RetryPolicy,
    /// Priority shed thresholds (shape the admission bands).
    pub admission: AdmissionControl,
}

impl PolicyAutomata {
    /// The shipped robust-router policy set.
    pub fn standard() -> Self {
        Self {
            breaker: BreakerConfig::standard(),
            retry: RetryPolicy::standard(),
            admission: AdmissionControl::standard(),
        }
    }
}

/// Exploration options (the fault-injection knobs exist so tests can
/// prove the checker *detects* broken automata, not just passes good
/// ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelOptions {
    /// Hard cap on interned states; exceeding it sets `truncated`.
    pub max_states: usize,
    /// Model the breaker's cooldown → half-open timer edge. Disabling
    /// it models a breaker with no recovery path.
    pub cooldown_edges: bool,
    /// Model the router's lost-penalty deadline edge out of a pending
    /// retry. Disabling it models a router that waits forever.
    pub deadline_edges: bool,
}

impl Default for ModelOptions {
    fn default() -> Self {
        Self {
            max_states: 1 << 16,
            cooldown_edges: true,
            deadline_edges: true,
        }
    }
}

/// Request-lifecycle side of the product state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ReqState {
    /// Arrived, admission not yet decided (priority index).
    Start(u8),
    /// Dispatch `attempt` in flight.
    Admitted { p: u8, attempt: u32 },
    /// Dispatch failed, waiting to re-dispatch `attempt`.
    Pending { p: u8, attempt: u32 },
    /// Completed within SLO accounting.
    Served,
    /// Rejected at admission.
    Shed,
    /// Dropped (budget exhausted or deadline).
    Lost,
}

/// Breaker side of the product state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Brk {
    /// Closed with this many consecutive failures (< threshold).
    Closed(u32),
    /// Tripped.
    Open,
    /// Cooldown elapsed, one probe may pass.
    HalfOpen,
}

type State = (ReqState, Brk);

/// Edge labels (dedupe key component; also used to classify fail
/// edges for the retry-cycle analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EdgeKind {
    Admit,
    Shed,
    DispatchOk,
    DispatchFail,
    Redispatch,
    Cooldown,
    Deadline,
    NextRequest,
}

/// Exact exploration results and property proofs. All counts are
/// integers and the whole struct serializes deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductCertificate {
    /// Reachable product states.
    pub states: u64,
    /// Distinct labeled transitions between explored states.
    pub transitions: u64,
    /// Whether the state cap cut exploration short (if so, no
    /// property below is claimed).
    pub truncated: bool,
    /// States whose breaker side is `Open`.
    pub open_states: u64,
    /// States whose request side is a resolution (served/shed/lost).
    pub terminal_states: u64,
    /// Maximum dispatches any single request performs (attempt index
    /// + 1 over in-flight states).
    pub max_retry_chain: u32,
    /// Every reachable state reaches a resolution.
    pub livelock_free: bool,
    /// Every `Open`-breaker state reaches a non-`Open` state.
    pub open_escapable: bool,
    /// No dispatch-fail edge lies on a per-request cycle.
    pub retry_bounded: bool,
}

/// Representative `(busy, healthy)` census bands: one per distinct
/// admission outcome of the given thresholds.
fn admission_bands(admission: &AdmissionControl) -> Vec<(usize, usize)> {
    let mut bands = vec![(0usize, 0usize), (0, 100)];
    for &pct in &admission.shed_busy_pct {
        if pct <= 100 {
            bands.push((pct as usize, 100));
        }
    }
    bands.sort_unstable();
    bands.dedup();
    bands
}

fn brk_on_success(b: Brk) -> Brk {
    match b {
        Brk::Closed(_) | Brk::HalfOpen => Brk::Closed(0),
        Brk::Open => Brk::Open,
    }
}

fn brk_on_failure(b: Brk, threshold: u32) -> Brk {
    match b {
        Brk::Closed(f) => {
            if f + 1 >= threshold.max(1) {
                Brk::Open
            } else {
                Brk::Closed(f + 1)
            }
        }
        Brk::HalfOpen => Brk::Open,
        Brk::Open => Brk::Open,
    }
}

fn successors(
    (req, brk): State,
    automata: &PolicyAutomata,
    opts: &ModelOptions,
    bands: &[(usize, usize)],
) -> Vec<(EdgeKind, State)> {
    // Budget: `max_attempts == 0` means retry forever (the attempt
    // counter then never advances, producing the fail cycle the SCC
    // pass detects); otherwise capped by the router's hard ceiling.
    let budget = if automata.retry.max_attempts == 0 {
        None
    } else {
        Some(automata.retry.max_attempts.min(MAX_DISPATCHES))
    };
    let mut out = Vec::new();
    match req {
        ReqState::Start(p) => {
            let priority = Priority::ALL[p as usize];
            for &(busy, healthy) in bands {
                if automata.admission.should_shed(priority, busy, healthy) {
                    out.push((EdgeKind::Shed, (ReqState::Shed, brk)));
                } else if brk == Brk::Open {
                    out.push((EdgeKind::Admit, (ReqState::Pending { p, attempt: 0 }, brk)));
                } else {
                    out.push((EdgeKind::Admit, (ReqState::Admitted { p, attempt: 0 }, brk)));
                }
            }
        }
        ReqState::Admitted { p, attempt } => {
            out.push((
                EdgeKind::DispatchOk,
                (ReqState::Served, brk_on_success(brk)),
            ));
            let brk_f = brk_on_failure(brk, automata.breaker.failure_threshold);
            let next_req = match budget {
                None => ReqState::Pending { p, attempt },
                Some(b) if attempt + 1 >= b => ReqState::Lost,
                Some(_) => ReqState::Pending {
                    p,
                    attempt: attempt + 1,
                },
            };
            out.push((EdgeKind::DispatchFail, (next_req, brk_f)));
        }
        ReqState::Pending { p, attempt } => {
            if brk != Brk::Open {
                out.push((
                    EdgeKind::Redispatch,
                    (ReqState::Admitted { p, attempt }, brk),
                ));
            } else if opts.cooldown_edges {
                out.push((
                    EdgeKind::Cooldown,
                    (ReqState::Pending { p, attempt }, Brk::HalfOpen),
                ));
            }
            if opts.deadline_edges {
                out.push((EdgeKind::Deadline, (ReqState::Lost, brk)));
            }
        }
        ReqState::Served | ReqState::Shed | ReqState::Lost => {
            for p in 0..Priority::ALL.len() as u8 {
                out.push((EdgeKind::NextRequest, (ReqState::Start(p), brk)));
            }
        }
    }
    out
}

fn is_terminal(req: ReqState) -> bool {
    matches!(req, ReqState::Served | ReqState::Shed | ReqState::Lost)
}

/// Tarjan-free SCC via Kosaraju (two BFS-ordered DFS passes,
/// iterative).
fn sccs(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut fwd = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    for &(u, v) in edges {
        fwd[u].push(v);
        rev[v].push(u);
    }
    // Pass 1: finish order on the forward graph.
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for root in 0..n {
        if seen[root] {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        seen[root] = true;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < fwd[u].len() {
                let v = fwd[u][*i];
                *i += 1;
                if !seen[v] {
                    seen[v] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
    }
    // Pass 2: components on the reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for &root in order.iter().rev() {
        if comp[root] != usize::MAX {
            continue;
        }
        let mut stack = vec![root];
        comp[root] = next;
        while let Some(u) = stack.pop() {
            for &v in &rev[u] {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Reverse-reachability: the set of nodes that can reach `targets`.
fn can_reach(n: usize, edges: &[(usize, usize)], targets: &[usize]) -> Vec<bool> {
    let mut rev = vec![Vec::new(); n];
    for &(u, v) in edges {
        rev[v].push(u);
    }
    let mut seen = vec![false; n];
    let mut queue: VecDeque<usize> = targets.iter().copied().collect();
    for &t in targets {
        seen[t] = true;
    }
    while let Some(u) = queue.pop_front() {
        for &v in &rev[u] {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

fn describe((req, brk): &State) -> String {
    format!("{req:?} x {brk:?}")
}

/// Exhaustively explore the product automaton and prove (or refute)
/// livelock freedom, bounded retry, and Open escapability. Returns
/// the exact-count certificate plus one diagnostic per refuted
/// property; diagnostics are suppressed (and all proofs report
/// `false`) when the state cap truncated exploration.
pub fn check_policy_product(
    automata: &PolicyAutomata,
    opts: &ModelOptions,
    location: &str,
) -> (ProductCertificate, Vec<Diagnostic>) {
    let bands = admission_bands(&automata.admission);
    let mut ids: BTreeMap<State, usize> = BTreeMap::new();
    let mut states: Vec<State> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut truncated = false;

    // One initial state per priority class, breaker fresh.
    for p in 0..Priority::ALL.len() as u8 {
        let s = (ReqState::Start(p), Brk::Closed(0));
        let id = states.len();
        ids.insert(s, id);
        states.push(s);
        queue.push_back(id);
    }

    let mut edge_set: BTreeSet<(usize, EdgeKind, usize)> = BTreeSet::new();
    while let Some(uid) = queue.pop_front() {
        for (kind, next) in successors(states[uid], automata, opts, &bands) {
            let vid = match ids.get(&next) {
                Some(&v) => v,
                None => {
                    if states.len() >= opts.max_states {
                        truncated = true;
                        continue;
                    }
                    let v = states.len();
                    ids.insert(next, v);
                    states.push(next);
                    queue.push_back(v);
                    v
                }
            };
            edge_set.insert((uid, kind, vid));
        }
    }

    let n = states.len();
    let open_states = states.iter().filter(|(_, b)| *b == Brk::Open).count() as u64;
    let terminal_states = states.iter().filter(|(r, _)| is_terminal(*r)).count() as u64;
    let max_retry_chain = states
        .iter()
        .filter_map(|(r, _)| match r {
            ReqState::Admitted { attempt, .. } | ReqState::Pending { attempt, .. } => {
                Some(attempt + 1)
            }
            _ => None,
        })
        .max()
        .unwrap_or(0);

    let mut cert = ProductCertificate {
        states: n as u64,
        transitions: edge_set.len() as u64,
        truncated,
        open_states,
        terminal_states,
        max_retry_chain,
        livelock_free: false,
        open_escapable: false,
        retry_bounded: false,
    };
    if truncated {
        // Incomplete subgraph: claim nothing, flag nothing.
        return (cert, Vec::new());
    }

    let all_edges: Vec<(usize, usize)> = edge_set.iter().map(|&(u, _, v)| (u, v)).collect();
    let per_request_edges: Vec<(usize, usize)> = edge_set
        .iter()
        .filter(|&&(_, k, _)| k != EdgeKind::NextRequest)
        .map(|&(u, _, v)| (u, v))
        .collect();

    let mut diags = Vec::new();
    let mut push = |rule_id: &str, message: String| {
        let info = rules::rule(rule_id).expect("model-check rules are registered");
        diags.push(Diagnostic {
            rule_id: rule_id.to_string(),
            severity: info.severity,
            location: location.to_string(),
            message,
            suggestion: None,
        });
    };

    // Livelock freedom: every state reaches a resolution.
    let resolutions: Vec<usize> = (0..n).filter(|&i| is_terminal(states[i].0)).collect();
    let reaches = can_reach(n, &all_edges, &resolutions);
    let stuck: Vec<usize> = (0..n).filter(|&i| !reaches[i]).collect();
    cert.livelock_free = stuck.is_empty();
    if let Some(&first) = stuck.first() {
        push(
            rules::POLICY_LIVELOCK,
            format!(
                "{} state(s) cannot reach served/shed/lost; e.g. {}",
                stuck.len(),
                describe(&states[first])
            ),
        );
    }

    // Open escapability: every Open state reaches a non-Open state.
    let non_open: Vec<usize> = (0..n).filter(|&i| states[i].1 != Brk::Open).collect();
    let escapes = can_reach(n, &all_edges, &non_open);
    let trapped: Vec<usize> = (0..n)
        .filter(|&i| states[i].1 == Brk::Open && !escapes[i])
        .collect();
    cert.open_escapable = trapped.is_empty();
    if let Some(&first) = trapped.first() {
        push(
            rules::BREAKER_TRAP,
            format!(
                "{} Open-breaker state(s) can never re-close; e.g. {}",
                trapped.len(),
                describe(&states[first])
            ),
        );
    }

    // Bounded retry: no fail edge inside a per-request cycle.
    let comp = sccs(n, &per_request_edges);
    let cyclic_fail = edge_set
        .iter()
        .find(|&&(u, k, v)| k == EdgeKind::DispatchFail && comp[u] == comp[v]);
    cert.retry_bounded = cyclic_fail.is_none();
    if let Some(&(u, _, _)) = cyclic_fail {
        push(
            rules::RETRY_UNBOUNDED,
            format!(
                "dispatch failure repeats without consuming retry budget; cycle through {}",
                describe(&states[u])
            ),
        );
    }

    (cert, diags)
}

/// The staged-rollout controller abstracted as a finite automaton:
/// per stage a canary cohort serves (possibly under drift), the stage
/// closes into a deciding state, and the verdict either promotes to
/// the next stage (or to full fleet after the last) or rolls back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutAutomata {
    /// Number of rollout stages (the shipped controller uses 4:
    /// 1% → 10% → 50% → 100%).
    pub stages: u32,
}

impl RolloutAutomata {
    /// The shipped staged-rollout ladder.
    pub fn standard() -> Self {
        Self { stages: 4 }
    }
}

/// Fault-injection knobs for the rollout checker (tests prove the
/// checker *detects* a controller that cannot promote or cannot roll
/// back, not just passes the shipped one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutOptions {
    /// Model the clean-verdict edge out of a deciding state. Disabling
    /// it models a controller that can never promote past a stage.
    pub verdict_edges: bool,
    /// Model the regressed-verdict edge out of a deciding state.
    /// Disabling it models a controller with no rollback path.
    pub rollback_edges: bool,
}

impl Default for RolloutOptions {
    fn default() -> Self {
        Self {
            verdict_edges: true,
            rollback_edges: true,
        }
    }
}

/// Rollout-side automaton state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RolState {
    /// Stage `stage` is serving its canary cohort; `drifted` tracks
    /// whether the online profiler currently reports drift on a canary.
    Canary { stage: u32, drifted: bool },
    /// Stage `stage` closed; the controller is comparing canary vs
    /// control deltas.
    Deciding { stage: u32, drifted: bool },
    /// The candidate reached 100% and the rollout terminated clean.
    Promoted,
    /// The candidate was reverted fleet-wide.
    RolledBack,
}

/// Rollout edge labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RolEdge {
    DriftUp,
    DriftDown,
    StageDone,
    CleanVerdict,
    RegressedVerdict,
}

/// Exact exploration results for the rollout automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutCertificate {
    /// Reachable rollout states.
    pub states: u64,
    /// Distinct labeled transitions between explored states.
    pub transitions: u64,
    /// Terminal states (`Promoted`, `RolledBack`).
    pub terminal_states: u64,
    /// Stages the ladder models.
    pub stages: u32,
    /// `Promoted` is reachable from the initial 1%-stage state.
    pub promote_reachable: bool,
    /// `RolledBack` is reachable from every non-terminal state.
    pub rollback_reachable: bool,
}

fn rollout_successors(
    s: RolState,
    automata: &RolloutAutomata,
    opts: &RolloutOptions,
) -> Vec<(RolEdge, RolState)> {
    let mut out = Vec::new();
    match s {
        RolState::Canary { stage, drifted } => {
            if drifted {
                out.push((
                    RolEdge::DriftDown,
                    RolState::Canary {
                        stage,
                        drifted: false,
                    },
                ));
            } else {
                out.push((
                    RolEdge::DriftUp,
                    RolState::Canary {
                        stage,
                        drifted: true,
                    },
                ));
            }
            out.push((RolEdge::StageDone, RolState::Deciding { stage, drifted }));
        }
        RolState::Deciding { stage, .. } => {
            if opts.verdict_edges {
                let next = if stage >= automata.stages {
                    RolState::Promoted
                } else {
                    RolState::Canary {
                        stage: stage + 1,
                        drifted: false,
                    }
                };
                out.push((RolEdge::CleanVerdict, next));
            }
            if opts.rollback_edges {
                out.push((RolEdge::RegressedVerdict, RolState::RolledBack));
            }
        }
        RolState::Promoted | RolState::RolledBack => {}
    }
    out
}

/// Exhaustively explore the rollout automaton and prove (or refute)
/// that promotion is reachable and that rollback is reachable from
/// *every* non-terminal state — the blast-radius safety argument: no
/// matter where in the ladder a regression is detected, the controller
/// can always revert.
pub fn check_rollout_product(
    automata: &RolloutAutomata,
    opts: &RolloutOptions,
    location: &str,
) -> (RolloutCertificate, Vec<Diagnostic>) {
    let mut ids: BTreeMap<RolState, usize> = BTreeMap::new();
    let mut states: Vec<RolState> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let init = RolState::Canary {
        stage: 1,
        drifted: false,
    };
    ids.insert(init, 0);
    states.push(init);
    queue.push_back(0);
    let mut edge_set: BTreeSet<(usize, RolEdge, usize)> = BTreeSet::new();
    while let Some(uid) = queue.pop_front() {
        for (kind, next) in rollout_successors(states[uid], automata, opts) {
            let vid = *ids.entry(next).or_insert_with(|| {
                let v = states.len();
                states.push(next);
                queue.push_back(v);
                v
            });
            edge_set.insert((uid, kind, vid));
        }
    }

    let n = states.len();
    let terminal = |s: &RolState| matches!(s, RolState::Promoted | RolState::RolledBack);
    let edges: Vec<(usize, usize)> = edge_set.iter().map(|&(u, _, v)| (u, v)).collect();

    let promoted: Vec<usize> = (0..n)
        .filter(|&i| states[i] == RolState::Promoted)
        .collect();
    let promote_reachable = can_reach(n, &edges, &promoted)[0];

    let rolled_back: Vec<usize> = (0..n)
        .filter(|&i| states[i] == RolState::RolledBack)
        .collect();
    let reaches_rollback = can_reach(n, &edges, &rolled_back);
    let unrevertable: Vec<usize> = (0..n)
        .filter(|&i| !terminal(&states[i]) && !reaches_rollback[i])
        .collect();

    let cert = RolloutCertificate {
        states: n as u64,
        transitions: edge_set.len() as u64,
        terminal_states: states.iter().filter(|s| terminal(s)).count() as u64,
        stages: automata.stages,
        promote_reachable,
        rollback_reachable: unrevertable.is_empty(),
    };

    let mut diags = Vec::new();
    let mut push = |rule_id: &str, message: String| {
        let info = rules::rule(rule_id).expect("model-check rules are registered");
        diags.push(Diagnostic {
            rule_id: rule_id.to_string(),
            severity: info.severity,
            location: location.to_string(),
            message,
            suggestion: None,
        });
    };
    if !promote_reachable {
        push(
            rules::ROLLOUT_STUCK,
            format!(
                "no path from the initial 1% stage to Promoted across {} stage(s)",
                automata.stages
            ),
        );
    }
    if let Some(&first) = unrevertable.first() {
        push(
            rules::ROLLBACK_MISSED,
            format!(
                "{} non-terminal state(s) cannot reach RolledBack; e.g. {:?}",
                unrevertable.len(),
                states[first]
            ),
        );
    }
    (cert, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(automata: PolicyAutomata, opts: ModelOptions) -> (ProductCertificate, Vec<String>) {
        let (cert, diags) = check_policy_product(&automata, &opts, "test");
        (cert, diags.into_iter().map(|d| d.rule_id).collect())
    }

    #[test]
    fn standard_policies_certify_with_exact_counts() {
        let (cert, rules_hit) = check(PolicyAutomata::standard(), ModelOptions::default());
        assert!(rules_hit.is_empty(), "{rules_hit:?}");
        assert!(!cert.truncated);
        assert!(cert.livelock_free);
        assert!(cert.open_escapable);
        assert!(cert.retry_bounded);
        assert_eq!(cert.max_retry_chain, 4, "max_attempts dispatches");
        // Exact reachable product: pinned so any policy or abstraction
        // change shows up as a diff here.
        assert_eq!(cert.states, 68);
        assert_eq!(cert.transitions, 144);
    }

    #[test]
    fn unbounded_retry_is_refuted() {
        let mut automata = PolicyAutomata::standard();
        automata.retry.max_attempts = 0;
        let (cert, rules_hit) = check(automata, ModelOptions::default());
        assert!(!cert.retry_bounded);
        assert!(rules_hit.contains(&rules::RETRY_UNBOUNDED.to_string()));
        assert!(cert.livelock_free, "ok edges still resolve requests");
    }

    #[test]
    fn missing_cooldown_edge_traps_the_breaker() {
        let opts = ModelOptions {
            cooldown_edges: false,
            ..ModelOptions::default()
        };
        let (cert, rules_hit) = check(PolicyAutomata::standard(), opts);
        assert!(!cert.open_escapable);
        assert!(rules_hit.contains(&rules::BREAKER_TRAP.to_string()));
    }

    #[test]
    fn no_cooldown_and_no_deadline_livelocks() {
        let opts = ModelOptions {
            cooldown_edges: false,
            deadline_edges: false,
            ..ModelOptions::default()
        };
        let (cert, rules_hit) = check(PolicyAutomata::standard(), opts);
        assert!(!cert.livelock_free);
        assert!(rules_hit.contains(&rules::POLICY_LIVELOCK.to_string()));
    }

    #[test]
    fn truncation_is_flagged_and_claims_nothing() {
        let opts = ModelOptions {
            max_states: 10,
            ..ModelOptions::default()
        };
        let (cert, rules_hit) = check(PolicyAutomata::standard(), opts);
        assert!(cert.truncated);
        assert_eq!(cert.states, 10);
        assert!(!cert.livelock_free && !cert.open_escapable && !cert.retry_bounded);
        assert!(rules_hit.is_empty(), "no claims from a truncated graph");
    }

    #[test]
    fn certificate_roundtrips_through_json() {
        let (cert, _) = check_policy_product(
            &PolicyAutomata::standard(),
            &ModelOptions::default(),
            "test",
        );
        let json = serde_json::to_string(&cert).expect("serialize");
        let back: ProductCertificate = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, cert);
    }

    #[test]
    fn rollout_ladder_certifies_with_exact_counts() {
        let (cert, diags) = check_rollout_product(
            &RolloutAutomata::standard(),
            &RolloutOptions::default(),
            "test",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert!(cert.promote_reachable);
        assert!(cert.rollback_reachable);
        assert_eq!(cert.terminal_states, 2);
        // 4 stages × {Canary, Deciding} × {drifted, not} + 2 terminals.
        assert_eq!(cert.states, 18);
        // Per stage: DriftUp, DriftDown, 2×StageDone, 2×CleanVerdict,
        // 2×RegressedVerdict = 8 edges × 4 stages.
        assert_eq!(cert.transitions, 32);
    }

    #[test]
    fn missing_clean_verdict_edge_is_rollout_stuck() {
        let opts = RolloutOptions {
            verdict_edges: false,
            ..RolloutOptions::default()
        };
        let (cert, diags) = check_rollout_product(&RolloutAutomata::standard(), &opts, "test");
        assert!(!cert.promote_reachable);
        assert!(cert.rollback_reachable, "rollback path is intact");
        assert!(diags.iter().any(|d| d.rule_id == rules::ROLLOUT_STUCK));
    }

    #[test]
    fn missing_rollback_edge_is_rollback_missed() {
        let opts = RolloutOptions {
            rollback_edges: false,
            ..RolloutOptions::default()
        };
        let (cert, diags) = check_rollout_product(&RolloutAutomata::standard(), &opts, "test");
        assert!(cert.promote_reachable, "promotion path is intact");
        assert!(!cert.rollback_reachable);
        assert!(diags.iter().any(|d| d.rule_id == rules::ROLLBACK_MISSED));
    }

    #[test]
    fn rollout_certificate_roundtrips_through_json() {
        let (cert, _) = check_rollout_product(
            &RolloutAutomata::standard(),
            &RolloutOptions::default(),
            "test",
        );
        let json = serde_json::to_string(&cert).expect("serialize");
        let back: RolloutCertificate = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, cert);
    }
}
