//! Lint solver output across the paper's model configurations.
//!
//! For every evaluation model, the tool solves the per-layer weight
//! Matmuls over a sweep of aligned and misaligned sequence lengths
//! (prefill, NPU-dominant) plus the decode shape (m = 1,
//! GPU-dominant), then runs every analyzer rule on each chosen plan.
//!
//! ```text
//! analyze [race|explore|integrity] [--json] [--model NAME]
//!         [--mechanism fast|driver] [--seq N,N,...] [--rules]
//! ```
//!
//! Subcommands:
//!
//! - *(none)* — the static plan/schedule lint sweep.
//! - `race` — record concurrency event logs from real engine runs
//!   (plus a seeded degraded controller session) and run the
//!   vector-clock happens-before race detector over them.
//! - `explore` — replay every legal interleaving class of each
//!   solver-chosen plan's sync schedule and certify byte-identical
//!   session reports.
//! - `integrity` — rewrite each solver-chosen plan's schedule with
//!   per-submission ABFT verify nodes and check the result against the
//!   schedule sanity, `unverified-sink`, and race rules.
//! - `bound` — abstract-interpretation cost certification: static peak
//!   footprint and `[lo, hi]` latency bounds per model (plus every
//!   condition point of a seeded degraded session), checked against
//!   the pool capacity and calibrated SLOs, and gated for soundness
//!   against fresh DES runs (`bound-unsound` on any escape).
//! - `timeline FILE` — lint an exported Chrome trace-event JSON file
//!   (`--trace-out` output): spans nest per track, every submit has a
//!   matching complete, flow arrows pair up, timestamps are integers.
//! - `fleet` — fleet-serving robustness gate: check the shipped retry
//!   policy against `retry-storm`, then run a seeded fleet comparison
//!   and check the robust arm's evidence against `shed-starvation`
//!   (and that no request went unrecovered).
//! - `monitor [FILE|-]` — temporal fleet-policy certification:
//!   model-check the shipped breaker × retry × admission product
//!   automaton (exact state counts; livelock freedom, bounded retry,
//!   Open escapability) and the staged-rollout ladder (promotion
//!   reachable, rollback reachable from every non-terminal state),
//!   then sweep the past-time-LTL spec library over fleet event logs —
//!   `FILE` (JSON written by `fleet_sweep --events-out` or
//!   `rollout_sweep --events-out`), `-` for the same JSON on stdin, or
//!   a fresh seeded in-process run. Naive-arm findings are expected
//!   evidence; CI greps for them.
//!
//! Exit status: 0 when no deny-level finding, 1 otherwise, 2 on usage
//! errors. CI gates on this.

use std::process::ExitCode;

use hetero_analyze::sweep::{
    explore_models, integrity_lint_models, lint_models, race_lint_degraded_session,
    race_lint_models, DEFAULT_SEQS,
};
use hetero_analyze::RULES;
use hetero_analyze::{bound_lint_degraded_session, bound_lint_models, DEFAULT_POOL_BYTES};
use hetero_fleet::{FleetConfig, FleetSim, RetryPolicy};
use hetero_soc::sync::SyncMechanism;
use heterollm::ModelConfig;

const USAGE: &str = "usage: analyze [race|explore|integrity|bound|fleet|monitor [FILE|-]|timeline \
     FILE] [--json] [--model NAME] [--mechanism fast|driver] [--seq N,N,...] [--rules]";

#[derive(PartialEq, Eq, Clone)]
enum Command {
    Lint,
    Race,
    Explore,
    Integrity,
    Bound,
    Fleet,
    Monitor(Option<String>),
    Timeline(String),
}

struct Args {
    command: Command,
    json: bool,
    help: bool,
    list_rules: bool,
    models: Vec<String>,
    mechanism: SyncMechanism,
    seqs: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: Command::Lint,
        json: false,
        help: false,
        list_rules: false,
        models: Vec::new(),
        mechanism: SyncMechanism::Fast,
        seqs: DEFAULT_SEQS.to_vec(),
    };
    let mut first = true;
    let mut it = std::env::args().skip(1);
    // A flag consumed while probing for `monitor`'s optional
    // positional gets replayed here.
    let mut pushed_back: Option<String> = None;
    while let Some(arg) = pushed_back.take().or_else(|| it.next()) {
        let positional = first && !arg.starts_with('-');
        first = false;
        if positional {
            args.command = match arg.as_str() {
                "race" => Command::Race,
                "explore" => Command::Explore,
                "integrity" => Command::Integrity,
                "bound" => Command::Bound,
                "fleet" => Command::Fleet,
                "monitor" => {
                    // Optional positional log file (`-` = stdin);
                    // flags keep parsing.
                    let path = match it.next() {
                        Some(next) if next == "-" || !next.starts_with('-') => Some(next),
                        Some(flag) => {
                            pushed_back = Some(flag);
                            None
                        }
                        None => None,
                    };
                    Command::Monitor(path)
                }
                "timeline" => {
                    let path = it.next().ok_or("timeline needs a trace file path")?;
                    Command::Timeline(path)
                }
                other => return Err(format!("unknown subcommand '{other}'")),
            };
            continue;
        }
        match arg.as_str() {
            "--json" => args.json = true,
            "--rules" => args.list_rules = true,
            "--model" => {
                let name = it.next().ok_or("--model needs a value")?;
                args.models.push(name);
            }
            "--mechanism" => {
                args.mechanism = match it.next().as_deref() {
                    Some("fast") => SyncMechanism::Fast,
                    Some("driver") => SyncMechanism::Driver,
                    other => return Err(format!("--mechanism needs fast|driver, got {other:?}")),
                };
            }
            "--seq" => {
                let csv = it.next().ok_or("--seq needs a comma-separated list")?;
                args.seqs = csv
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad --seq '{s}': {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn models_for(args: &Args) -> Result<Vec<ModelConfig>, String> {
    if args.models.is_empty() {
        return Ok(ModelConfig::evaluation_models());
    }
    args.models
        .iter()
        .map(|name| ModelConfig::by_name(name).ok_or_else(|| format!("unknown model '{name}'")))
        .collect()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if args.list_rules {
        for r in &RULES {
            println!(
                "{:<20} {:<5} {} [{}]",
                r.id,
                r.severity.to_string(),
                r.summary,
                r.paper
            );
        }
        return ExitCode::SUCCESS;
    }

    let models = match models_for(&args) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match args.command.clone() {
        Command::Lint => lint_models(&models, &args.seqs, args.mechanism),
        Command::Timeline(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let mut report = hetero_analyze::Report::new();
            report.extend(hetero_analyze::check_trace(&text, &path));
            report
        }
        Command::Race => {
            // One representative prefill length (the paper's misaligned
            // 300) unless the user narrowed --seq.
            let seq = if args.seqs == DEFAULT_SEQS {
                300
            } else {
                args.seqs.first().copied().unwrap_or(300)
            };
            let mut report = race_lint_models(&models, args.mechanism, seq);
            for model in &models {
                report.merge(race_lint_degraded_session(model, 42, 6));
            }
            report
        }
        Command::Explore => {
            let seqs: &[usize] = if args.seqs == DEFAULT_SEQS {
                &[300]
            } else {
                &args.seqs
            };
            let (report, certs) = explore_models(&models, seqs, args.mechanism);
            if !args.json {
                for (loc, cert) in &certs {
                    println!(
                        "{loc}: {} interleavings, {} classes, {}{}",
                        cert.interleavings,
                        cert.classes,
                        if cert.deterministic {
                            "deterministic"
                        } else {
                            "NON-DETERMINISTIC"
                        },
                        if cert.truncated { " (truncated)" } else { "" },
                    );
                }
            }
            report
        }
        Command::Integrity => integrity_lint_models(&models, &args.seqs, args.mechanism),
        Command::Fleet => {
            let mut report = hetero_analyze::Report::new();
            report.extend(hetero_analyze::check_retry_policy(
                &RetryPolicy::standard(),
                "RetryPolicy::standard",
            ));
            let sim = FleetSim::new(FleetConfig::standard(42, 64, 600));
            let cmp = sim.compare();
            if !args.json {
                println!(
                    "fleet[seed=42,devices=64]: robust lost={} att={}ppm | naive lost={} att={}ppm",
                    cmp.robust.lost,
                    cmp.robust.attainment_ppm,
                    cmp.naive.lost,
                    cmp.naive.attainment_ppm
                );
            }
            report.extend(hetero_analyze::check_fleet_arm(
                &cmp.robust,
                "fleet[42]/robust",
            ));
            report
        }
        Command::Monitor(path) => {
            let mut report = hetero_analyze::Report::new();
            // (c) exhaustive model check of the shipped policy product.
            let (cert, diags) = hetero_analyze::check_policy_product(
                &hetero_analyze::PolicyAutomata::standard(),
                &hetero_analyze::ModelOptions::default(),
                "PolicyAutomata::standard",
            );
            if !args.json {
                println!(
                    "model-check[standard]: {} states, {} transitions, max-retry-chain={}, \
                     livelock-free={}, open-escapable={}, retry-bounded={}{}",
                    cert.states,
                    cert.transitions,
                    cert.max_retry_chain,
                    cert.livelock_free,
                    cert.open_escapable,
                    cert.retry_bounded,
                    if cert.truncated { " (truncated)" } else { "" },
                );
            }
            report.extend(diags);
            // Same treatment for the staged-rollout ladder.
            let (rollout_cert, rollout_diags) = hetero_analyze::check_rollout_product(
                &hetero_analyze::RolloutAutomata::standard(),
                &hetero_analyze::RolloutOptions::default(),
                "RolloutAutomata::standard",
            );
            if !args.json {
                println!(
                    "model-check[rollout]: {} states, {} transitions, promote-reachable={}, \
                     rollback-reachable={}",
                    rollout_cert.states,
                    rollout_cert.transitions,
                    rollout_cert.promote_reachable,
                    rollout_cert.rollback_reachable,
                );
            }
            report.extend(rollout_diags);
            // (b) pLTL sweep over event logs: from FILE (a fleet log
            // pair or a rollout log set), stdin (`-`), or a fresh
            // seeded in-process run.
            let logs: Vec<hetero_fleet::FleetEventLog> = match path {
                Some(path) => {
                    let text = if path == "-" {
                        match std::io::read_to_string(std::io::stdin()) {
                            Ok(t) => t,
                            Err(e) => {
                                eprintln!("cannot read stdin: {e}");
                                return ExitCode::from(2);
                            }
                        }
                    } else {
                        match std::fs::read_to_string(&path) {
                            Ok(t) => t,
                            Err(e) => {
                                eprintln!("cannot read {path}: {e}");
                                return ExitCode::from(2);
                            }
                        }
                    };
                    if let Ok(pair) = serde_json::from_str::<hetero_fleet::FleetLogPair>(&text) {
                        vec![pair.robust, pair.naive]
                    } else {
                        match serde_json::from_str::<hetero_fleet::RolloutLogSet>(&text) {
                            Ok(set) => set.runs,
                            Err(e) => {
                                eprintln!(
                                    "cannot parse {path} as a fleet event-log pair or a rollout \
                                     log set: {e}"
                                );
                                return ExitCode::from(2);
                            }
                        }
                    }
                }
                None => {
                    let sim = FleetSim::new(FleetConfig::standard(42, 64, 600));
                    let pair = sim.compare_events().1;
                    vec![pair.robust, pair.naive]
                }
            };
            for log in &logs {
                let verdict = hetero_analyze::monitor_fleet_log(log);
                if !args.json {
                    println!(
                        "monitor[fleet[{}]/{}]: events={} instances={} violations={}",
                        log.seed, log.policy, verdict.events, verdict.instances, verdict.violations
                    );
                }
                report.extend(verdict.findings);
            }
            report
        }
        Command::Bound => {
            // One representative prefill length (the paper's misaligned
            // 300) unless the user narrowed --seq, like `race`.
            let seq = if args.seqs == DEFAULT_SEQS {
                300
            } else {
                args.seqs.first().copied().unwrap_or(300)
            };
            let mut report = bound_lint_models(&models, seq, 4, DEFAULT_POOL_BYTES);
            for model in &models {
                report.merge(bound_lint_degraded_session(model, 42, seq));
            }
            report
        }
    };

    if args.json {
        println!("{}", report.to_json());
    } else {
        for d in &report.findings {
            println!("{d}");
        }
        println!(
            "checked {} artifacts: {} deny, {} warn",
            report.summary.checked, report.summary.deny, report.summary.warn
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
