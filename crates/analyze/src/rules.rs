//! The named-rule registry.
//!
//! Every diagnostic the analyzer emits carries one of these stable
//! identifiers; severities are fixed per rule so a CI gate can fail on
//! deny-level findings without parsing messages.

use crate::diag::Severity;

/// Rule: a plan must neither drop nor duplicate rows/columns of the
/// Matmul it partitions.
pub const SHAPE_CONSERVATION: &str = "shape-conservation";
/// Rule: every NPU sequence size must be a multiple of the systolic
/// tile edge.
pub const TILE_ALIGNMENT: &str = "tile-alignment";
/// Rule: every NPU sequence size must have a compiled graph.
pub const GRAPH_MEMBERSHIP: &str = "graph-membership";
/// Rule: degenerate parallel forms should be in canonical serial form.
pub const PLAN_NORMALIZATION: &str = "plan-normalization";
/// Rule: prefer fast synchronization when the platform supports it.
pub const SYNC_MECHANISM: &str = "sync-mechanism";
/// Rule: the submission happens-before graph must be sane.
pub const SYNC_SCHEDULE: &str = "sync-schedule";
/// Rule: live pooled tensor regions must not overlap.
pub const MEMPOOL_ALIASING: &str = "mempool-aliasing";
/// Rule: plans adopted by the runtime controller while degrading must
/// satisfy every plan/sync-schedule invariant, including an acyclic
/// submission graph after flaky rendezvous are rescheduled for retry.
pub const FALLBACK_INTEGRITY: &str = "fallback-integrity";
/// Rule: conflicting accesses to a pooled buffer from different actors
/// must be ordered by a signal→wait or FIFO-queue happens-before edge.
pub const DATA_RACE: &str = "data-race";
/// Rule: a pooled slot must not be re-acquired while an earlier
/// lifetime's accesses are unordered with the new owner.
pub const UNSYNCHRONIZED_REUSE: &str = "unsynchronized-reuse";
/// Rule: every wait must observe a flag some actor actually signals.
pub const LOST_SIGNAL: &str = "lost-signal";
/// Rule: every legal interleaving of a sync schedule must produce a
/// byte-identical session report.
pub const INTERLEAVING_DETERMINISM: &str = "interleaving-determinism";
/// Rule: no submission's output may reach a sink without passing
/// through an ABFT verify node first.
pub const UNVERIFIED_SINK: &str = "unverified-sink";
/// Rule: an exported trace is a Chrome trace-event document with
/// integer `pid`/`tid`/`ts` fields on every duration/flow event.
pub const TRACE_FORMAT: &str = "trace-format";
/// Rule: per track, submit/complete events observe stack discipline
/// with non-decreasing timestamps (spans nest, never partially
/// overlap).
pub const SPAN_NESTING: &str = "span-nesting";
/// Rule: every submit (`B`) has a matching complete (`E`) on its
/// track, and vice versa.
pub const SUBMIT_COMPLETE: &str = "submit-complete";
/// Rule: every flow id pairs exactly one start with one finish, and
/// the finish never precedes the start.
pub const FLOW_MATCH: &str = "flow-match";
/// Rule: the static peak-footprint bound of a plan's region table plus
/// KV growth must fit inside the declared memory-pool capacity.
pub const MEM_OVERCOMMIT: &str = "mem-overcommit";
/// Rule: no pooled region may stay live past its last structural
/// reader in the submission DAG.
pub const BUFFER_LEAK: &str = "buffer-leak";
/// Rule: the static *lower* latency bound of a schedule must not
/// already exceed the SLO deadline (such a plan is provably doomed).
pub const DEADLINE_INFEASIBLE: &str = "deadline-infeasible";
/// Rule: the static *upper* latency bound of a schedule exceeds the
/// SLO deadline even though the lower bound meets it.
pub const DEADLINE_AT_RISK: &str = "deadline-at-risk";
/// Rule: DES-simulated peak bytes and observed TTFT/TPOT must fall
/// inside the abstract interpreter's static bounds.
pub const BOUND_UNSOUND: &str = "bound-unsound";
/// Rule: a retry policy must have a bounded attempt budget and a real
/// exponential backoff (factor ≥ 2, non-zero base) so correlated
/// failures cannot amplify into a fleet-wide retry storm.
pub const RETRY_STORM: &str = "retry-storm";
/// Rule: no priority class may be starved by load shedding while the
/// fleet still has idle capacity.
pub const SHED_STARVATION: &str = "shed-starvation";
/// Rule (temporal): a breaker may only close after a successful
/// half-open probe — the event log must show `HalfOpen` immediately
/// before every `Closed` entry, per device.
pub const BREAKER_SKIP_PROBE: &str = "breaker-skip-probe";
/// Rule (temporal): no dispatch may happen after the request's 4×-SLO
/// lost-penalty deadline.
pub const RETRY_PAST_DEADLINE: &str = "retry-past-deadline";
/// Rule (temporal): no lower-priority request may be admitted while a
/// higher-priority one was shed within the same census epoch.
pub const SHED_INVERSION: &str = "shed-inversion";
/// Rule (temporal): every routing decision must act on a census no
/// older than the probe contract.
pub const CENSUS_STALENESS: &str = "census-staleness";
/// Rule (temporal): inside a fault window, retry dispatches must stay
/// within K× the offered load plus slack.
pub const STORM_AMPLIFICATION: &str = "storm-amplification";
/// Rule (temporal): inside a fault window, batch-class admissions
/// require either a fresh census or prior load shedding.
pub const BROWNOUT_UNSHED: &str = "brownout-unshed";
/// Rule (temporal): every baseline-revert `ProfileUpdate` in a rollout
/// log must follow a `Rollback` verdict with no newer stage in
/// between, and every `Rollback` must land inside its stage window.
pub const ROLLBACK_COMPLETENESS: &str = "rollback-completeness";
/// Rule (temporal): a `Promote` verdict is only legal immediately
/// after a cleanly completed stage — no double-promotion and no
/// promotion after a rollback without a fresh stage.
pub const PROMOTION_LEGALITY: &str = "promotion-legality";
/// Rule (temporal): inside stage `k` of a rollout, canary-apply
/// profile updates never exceed the stage's declared cohort size
/// (`⌈devices × pct / 100⌉`).
pub const BLAST_RADIUS: &str = "blast-radius";
/// Rule (evidence): a rollout run must terminate — the report outcome
/// is `promoted` or `rolled-back` and is consistent with its per-stage
/// verdicts.
pub const ROLLOUT_STUCK: &str = "rollout-stuck";
/// Rule (evidence): a stage whose re-derived canary-vs-control deltas
/// regress past the echoed thresholds must not have been promoted.
pub const ROLLBACK_MISSED: &str = "rollback-missed";
/// Rule (evidence): every decided stage must have served the canary
/// cohort at least the configured minimum sample count.
pub const CANARY_STARVED: &str = "canary-starved";
/// Rule (model checker): every non-terminal state of the
/// breaker×retry×admission product must reach a request resolution.
pub const POLICY_LIVELOCK: &str = "policy-livelock";
/// Rule (model checker): no cycle of the product automaton may
/// contain a dispatch-failure edge (retry chains are bounded).
pub const RETRY_UNBOUNDED: &str = "retry-unbounded";
/// Rule (model checker): from every reachable Open-breaker state the
/// breaker can eventually leave Open.
pub const BREAKER_TRAP: &str = "breaker-trap";

/// Metadata for one registered rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable identifier (used in diagnostics and CLI filters).
    pub id: &'static str,
    /// Severity of every finding this rule emits.
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
    /// Paper anchor the invariant traces to.
    pub paper: &'static str,
}

/// All registered rules.
pub const RULES: [RuleInfo; 39] = [
    RuleInfo {
        id: SHAPE_CONSERVATION,
        severity: Severity::Deny,
        summary: "partition covers the Matmul exactly: Σnpu_chunks + gpu_rows = m, \
                  gpu_cols < n, padded_m ≥ m",
        paper: "§4.1",
    },
    RuleInfo {
        id: TILE_ALIGNMENT,
        severity: Severity::Deny,
        summary: "NPU sequence sizes are multiples of the 32×32 systolic tile",
        paper: "§3.2, §4.3",
    },
    RuleInfo {
        id: GRAPH_MEMBERSHIP,
        severity: Severity::Deny,
        summary: "every NPU sequence size has a pre-compiled static graph",
        paper: "§4.1.1, §5.2.2",
    },
    RuleInfo {
        id: PLAN_NORMALIZATION,
        severity: Severity::Warn,
        summary: "degenerate parallel plans (empty GPU share) are written in \
                  canonical serial form; GPU column cuts stay on the solver's \
                  row alignment",
        paper: "§4.1.1, §4.3",
    },
    RuleInfo {
        id: SYNC_MECHANISM,
        severity: Severity::Warn,
        summary: "driver-level synchronization used where fast sync is available",
        paper: "§4.2",
    },
    RuleInfo {
        id: SYNC_SCHEDULE,
        severity: Severity::Deny,
        summary: "the GPU/NPU submission graph is acyclic and every rendezvous \
                  joins both backends",
        paper: "§4.2",
    },
    RuleInfo {
        id: MEMPOOL_ALIASING,
        severity: Severity::Deny,
        summary: "live tensor regions in the shared memory pool never overlap",
        paper: "§4.2",
    },
    RuleInfo {
        id: FALLBACK_INTEGRITY,
        severity: Severity::Deny,
        summary: "degradation-time fallback plans keep every invariant; the \
                  submission graph stays acyclic when flaky rendezvous are \
                  rescheduled for retry",
        paper: "§4.2",
    },
    RuleInfo {
        id: DATA_RACE,
        severity: Severity::Deny,
        summary: "conflicting pooled-buffer accesses from different actors are \
                  ordered by a signal→wait or FIFO-queue happens-before edge",
        paper: "§4.2",
    },
    RuleInfo {
        id: UNSYNCHRONIZED_REUSE,
        severity: Severity::Deny,
        summary: "a recycled pool slot is only re-acquired after every access \
                  of its previous lifetime happens-before the new owner",
        paper: "§4.2",
    },
    RuleInfo {
        id: LOST_SIGNAL,
        severity: Severity::Deny,
        summary: "every rendezvous wait observes a flag some actor signals \
                  (no wait-on-nothing, including after rendezvous retry)",
        paper: "§4.2",
    },
    RuleInfo {
        id: INTERLEAVING_DETERMINISM,
        severity: Severity::Deny,
        summary: "all legal interleavings of a sync schedule yield a \
                  byte-identical session report",
        paper: "§4.2",
    },
    RuleInfo {
        id: UNVERIFIED_SINK,
        severity: Severity::Deny,
        summary: "with integrity verification on, every submission's output \
                  passes an ABFT verify node before any sink consumes it",
        paper: "§4.2",
    },
    RuleInfo {
        id: TRACE_FORMAT,
        severity: Severity::Deny,
        summary: "an exported trace is a Chrome trace-event document whose \
                  duration/flow events all carry integer pid/tid/ts",
        paper: "§5 (methodology)",
    },
    RuleInfo {
        id: SPAN_NESTING,
        severity: Severity::Deny,
        summary: "per backend track, submit/complete events keep stack \
                  discipline with non-decreasing timestamps",
        paper: "§5 (methodology)",
    },
    RuleInfo {
        id: SUBMIT_COMPLETE,
        severity: Severity::Deny,
        summary: "every kernel submit has a matching complete on its track \
                  (nothing left in flight at end of trace)",
        paper: "§5 (methodology)",
    },
    RuleInfo {
        id: FLOW_MATCH,
        severity: Severity::Deny,
        summary: "every cross-backend flow arrow pairs one start with one \
                  finish, finish never before start",
        paper: "§4.2",
    },
    RuleInfo {
        id: MEM_OVERCOMMIT,
        severity: Severity::Deny,
        summary: "the static peak-footprint bound (region table + KV growth) \
                  fits inside the declared memory-pool capacity",
        paper: "§4.2",
    },
    RuleInfo {
        id: BUFFER_LEAK,
        severity: Severity::Deny,
        summary: "no pooled region stays live past its last structural reader \
                  in the submission DAG",
        paper: "§4.2",
    },
    RuleInfo {
        id: DEADLINE_INFEASIBLE,
        severity: Severity::Deny,
        summary: "the static lower latency bound already exceeds the SLO \
                  deadline: the plan is provably doomed, do not simulate it",
        paper: "§4.3",
    },
    RuleInfo {
        id: DEADLINE_AT_RISK,
        severity: Severity::Warn,
        summary: "the static upper latency bound exceeds the SLO deadline \
                  while the lower bound meets it",
        paper: "§4.3",
    },
    RuleInfo {
        id: BOUND_UNSOUND,
        severity: Severity::Deny,
        summary: "DES-simulated peak bytes and observed TTFT/TPOT fall inside \
                  the abstract interpreter's static bounds",
        paper: "§4.2, §4.3",
    },
    RuleInfo {
        id: RETRY_STORM,
        severity: Severity::Deny,
        summary: "retry policies are storm-safe: bounded attempts, non-zero \
                  base delay, backoff factor ≥ 2, jittered, with a finite \
                  total-backoff bound",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: SHED_STARVATION,
        severity: Severity::Warn,
        summary: "load shedding never starves a priority class while the \
                  fleet has idle capacity",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: BREAKER_SKIP_PROBE,
        severity: Severity::Deny,
        summary: "per device, every logged breaker Closed entry follows a \
                  successful half-open probe (no Open → Closed shortcut in \
                  the event log)",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: RETRY_PAST_DEADLINE,
        severity: Severity::Deny,
        summary: "no dispatch of a request happens after its 4×-SLO \
                  lost-penalty deadline",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: SHED_INVERSION,
        severity: Severity::Deny,
        summary: "no lower-priority request is admitted while a \
                  higher-priority one was shed in the same census epoch",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: CENSUS_STALENESS,
        severity: Severity::Warn,
        summary: "every routing decision acts on a health census no older \
                  than the probe contract",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: STORM_AMPLIFICATION,
        severity: Severity::Deny,
        summary: "inside any fault window, retry dispatches stay within K× \
                  the offered load plus a fixed slack",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: BROWNOUT_UNSHED,
        severity: Severity::Warn,
        summary: "batch admissions inside a fault window require a \
                  contract-fresh census or prior shedding since the window \
                  opened",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: ROLLBACK_COMPLETENESS,
        severity: Severity::Deny,
        summary: "every baseline-revert profile update follows a Rollback \
                  verdict with no newer stage between them, and every \
                  Rollback lands inside its stage window",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: PROMOTION_LEGALITY,
        severity: Severity::Deny,
        summary: "a Promote verdict only follows a cleanly completed stage: \
                  no double promotion, no promotion after a rollback \
                  without a fresh stage",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: BLAST_RADIUS,
        severity: Severity::Deny,
        summary: "inside stage k, canary-apply profile updates never exceed \
                  the stage's declared cohort size ⌈devices × pct / 100⌉",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: ROLLOUT_STUCK,
        severity: Severity::Deny,
        summary: "a rollout terminates in promoted or rolled-back, \
                  consistent with its per-stage verdicts",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: ROLLBACK_MISSED,
        severity: Severity::Deny,
        summary: "a stage whose re-derived canary-vs-control deltas regress \
                  past the echoed thresholds is never promoted",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: CANARY_STARVED,
        severity: Severity::Warn,
        summary: "every decided rollout stage served the canary cohort at \
                  least the configured minimum sample count",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: POLICY_LIVELOCK,
        severity: Severity::Deny,
        summary: "every reachable breaker×retry×admission product state can \
                  still reach a request resolution (served/shed/lost)",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: RETRY_UNBOUNDED,
        severity: Severity::Deny,
        summary: "no cycle of the policy product automaton contains a \
                  dispatch-failure edge: every retry chain is finite",
        paper: "§6 (fleet serving)",
    },
    RuleInfo {
        id: BREAKER_TRAP,
        severity: Severity::Deny,
        summary: "from every reachable Open-breaker product state the \
                  breaker can eventually leave Open",
        paper: "§6 (fleet serving)",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn every_exported_const_is_registered() {
        for id in [
            SHAPE_CONSERVATION,
            TILE_ALIGNMENT,
            GRAPH_MEMBERSHIP,
            PLAN_NORMALIZATION,
            SYNC_MECHANISM,
            SYNC_SCHEDULE,
            MEMPOOL_ALIASING,
            FALLBACK_INTEGRITY,
            DATA_RACE,
            UNSYNCHRONIZED_REUSE,
            LOST_SIGNAL,
            INTERLEAVING_DETERMINISM,
            UNVERIFIED_SINK,
            TRACE_FORMAT,
            SPAN_NESTING,
            SUBMIT_COMPLETE,
            FLOW_MATCH,
            MEM_OVERCOMMIT,
            BUFFER_LEAK,
            DEADLINE_INFEASIBLE,
            DEADLINE_AT_RISK,
            BOUND_UNSOUND,
            RETRY_STORM,
            SHED_STARVATION,
            BREAKER_SKIP_PROBE,
            RETRY_PAST_DEADLINE,
            SHED_INVERSION,
            CENSUS_STALENESS,
            STORM_AMPLIFICATION,
            BROWNOUT_UNSHED,
            ROLLBACK_COMPLETENESS,
            PROMOTION_LEGALITY,
            BLAST_RADIUS,
            ROLLOUT_STUCK,
            ROLLBACK_MISSED,
            CANARY_STARVED,
            POLICY_LIVELOCK,
            RETRY_UNBOUNDED,
            BREAKER_TRAP,
        ] {
            assert!(rule(id).is_some(), "{id} missing from RULES");
        }
        assert_eq!(RULES.len(), 39, "registry and const list out of sync");
    }

    #[test]
    fn bound_rule_severities() {
        assert_eq!(rule(MEM_OVERCOMMIT).unwrap().severity, Severity::Deny);
        assert_eq!(rule(BUFFER_LEAK).unwrap().severity, Severity::Deny);
        assert_eq!(rule(DEADLINE_INFEASIBLE).unwrap().severity, Severity::Deny);
        assert_eq!(rule(DEADLINE_AT_RISK).unwrap().severity, Severity::Warn);
        assert_eq!(rule(BOUND_UNSOUND).unwrap().severity, Severity::Deny);
    }

    #[test]
    fn fleet_rule_severities() {
        assert_eq!(rule(RETRY_STORM).unwrap().severity, Severity::Deny);
        assert_eq!(rule(SHED_STARVATION).unwrap().severity, Severity::Warn);
    }

    #[test]
    fn monitor_rule_severities() {
        for id in [
            BREAKER_SKIP_PROBE,
            RETRY_PAST_DEADLINE,
            SHED_INVERSION,
            STORM_AMPLIFICATION,
            ROLLBACK_COMPLETENESS,
            PROMOTION_LEGALITY,
            BLAST_RADIUS,
            ROLLOUT_STUCK,
            ROLLBACK_MISSED,
            POLICY_LIVELOCK,
            RETRY_UNBOUNDED,
            BREAKER_TRAP,
        ] {
            assert_eq!(rule(id).unwrap().severity, Severity::Deny, "{id}");
        }
        for id in [CENSUS_STALENESS, BROWNOUT_UNSHED, CANARY_STARVED] {
            assert_eq!(rule(id).unwrap().severity, Severity::Warn, "{id}");
        }
    }

    #[test]
    fn lookup_finds_registered_rules() {
        assert_eq!(rule(SHAPE_CONSERVATION).unwrap().severity, Severity::Deny);
        assert_eq!(rule(SYNC_MECHANISM).unwrap().severity, Severity::Warn);
        assert!(rule("no-such-rule").is_none());
    }
}
