//! Vector-clock happens-before race detection over concurrency event
//! logs (§4.2).
//!
//! The fast-synchronization runtime orders cross-backend buffer
//! accesses with shared-memory flags, not driver-managed events, so
//! nothing in the *mechanism* prevents a missing signal→wait edge from
//! silently corrupting an activation. This module proves (or refutes)
//! the ordering from evidence: a [`ConcurrencyLog`] recorded by the
//! engines, or one *lowered* from a [`SyncSchedule`] by
//! [`log_from_schedule`].
//!
//! Three actors participate — CPU control plane, GPU, NPU — each with a
//! three-component vector clock. Happens-before edges come from:
//!
//! - **program order** — events of one actor in recording order;
//! - **signal→wait** — a wait joins the clock the flag was signalled
//!   at (both [`SyncMechanism::Fast`] flag polls and
//!   [`SyncMechanism::Driver`] events create the same edge — they
//!   differ in *cost*, not in ordering semantics);
//! - **FIFO queues** — submissions on one backend retire in order, so
//!   completion order is checked against submission order.
//!
//! Deny rules emitted: [`rules::DATA_RACE`] for conflicting unordered
//! accesses, [`rules::UNSYNCHRONIZED_REUSE`] for a pool slot recycled
//! across an unordered lifetime boundary, and [`rules::LOST_SIGNAL`]
//! for a wait observing a flag nobody set.

use std::collections::{HashMap, HashSet, VecDeque};

use hetero_soc::sync::SyncMechanism;
use hetero_soc::{Backend, SimTime};
use heterollm::trace::{ConcurrencyEvent, ConcurrencyLog, ConcurrencyOp};

use crate::diag::Diagnostic;
use crate::rules;
use crate::sched::{EventKind, SyncSchedule};

/// Number of vector-clock components (CPU, GPU, NPU).
const ACTORS: usize = 3;

/// A three-actor vector clock.
type Vc = [u64; ACTORS];

fn actor_index(b: Backend) -> usize {
    match b {
        Backend::Cpu => 0,
        Backend::Gpu => 1,
        Backend::Npu => 2,
    }
}

fn join(into: &mut Vc, from: &Vc) {
    for (a, b) in into.iter_mut().zip(from.iter()) {
        *a = (*a).max(*b);
    }
}

/// One recorded access to a buffer: which actor, at what point of that
/// actor's own clock. `access` happens-before a later point iff the
/// observer's vector clock has caught up with the accessor's component.
#[derive(Debug, Clone, Copy)]
struct Access {
    actor: usize,
    clock: u64,
}

impl Access {
    fn happens_before(&self, vc: &Vc) -> bool {
        vc[self.actor] >= self.clock
    }
}

/// Tracked state of one pooled buffer id.
#[derive(Debug, Default)]
struct BufState {
    live: bool,
    last_write: Option<Access>,
    reads: Vec<Access>,
    last_release: Option<Access>,
}

/// Which finding classes have already been reported, so one root cause
/// does not flood the report.
#[derive(Default)]
struct Dedup {
    lost_signals: HashSet<u64>,
    buffer_findings: HashSet<(u64, &'static str)>,
}

struct Detector<'a> {
    location: &'a str,
    clocks: [Vc; ACTORS],
    signals: HashMap<u64, Vc>,
    pending: [VecDeque<u64>; ACTORS],
    buffers: HashMap<u64, BufState>,
    dedup: Dedup,
    out: Vec<Diagnostic>,
}

impl<'a> Detector<'a> {
    fn new(location: &'a str) -> Self {
        Self {
            location,
            clocks: [[0; ACTORS]; ACTORS],
            signals: HashMap::new(),
            pending: Default::default(),
            buffers: HashMap::new(),
            dedup: Dedup::default(),
            out: Vec::new(),
        }
    }

    fn emit(&mut self, rule_id: &'static str, message: String, suggestion: Option<String>) {
        let info = rules::rule(rule_id).expect("registered");
        self.out.push(Diagnostic {
            rule_id: rule_id.into(),
            severity: info.severity,
            location: self.location.into(),
            message,
            suggestion,
        });
    }

    fn emit_buffer(
        &mut self,
        rule_id: &'static str,
        buffer: u64,
        message: String,
        suggestion: Option<String>,
    ) {
        if self.dedup.buffer_findings.insert((buffer, rule_id)) {
            self.emit(rule_id, message, suggestion);
        }
    }

    fn step(&mut self, e: &ConcurrencyEvent) {
        let a = actor_index(e.actor);
        self.clocks[a][a] += 1;
        match e.op {
            ConcurrencyOp::Wait { token, mechanism } => self.wait(e, a, token, mechanism),
            ConcurrencyOp::Signal { token, .. } => {
                let vc = self.clocks[a];
                self.signals
                    .entry(token)
                    .and_modify(|s| join(s, &vc))
                    .or_insert(vc);
            }
            ConcurrencyOp::Submit { token } => self.pending[a].push_back(token),
            ConcurrencyOp::Complete { token } => self.complete(e, a, token),
            ConcurrencyOp::BufferAcquire { buffer, .. } => self.acquire(e, a, buffer),
            ConcurrencyOp::BufferRead { buffer } => self.read(e, a, buffer),
            ConcurrencyOp::BufferWrite { buffer } => self.write(e, a, buffer),
            ConcurrencyOp::BufferRelease { buffer } => self.release(e, a, buffer),
        }
    }

    fn wait(&mut self, e: &ConcurrencyEvent, a: usize, token: u64, mechanism: SyncMechanism) {
        match self.signals.get(&token) {
            Some(sig) => {
                let sig = *sig;
                join(&mut self.clocks[a], &sig);
            }
            None => {
                if self.dedup.lost_signals.insert(token) {
                    self.emit(
                        rules::LOST_SIGNAL,
                        format!(
                            "event {}: {:?} waits on {} flag {token}, but no actor \
                             signals it before the wait",
                            e.seq,
                            e.actor,
                            mechanism.name(),
                        ),
                        Some(
                            "a wait must observe a flag an earlier event signals; \
                             check rendezvous wiring and retry rescheduling"
                                .into(),
                        ),
                    );
                }
            }
        }
    }

    fn complete(&mut self, e: &ConcurrencyEvent, a: usize, token: u64) {
        if self.pending[a].front() == Some(&token) {
            self.pending[a].pop_front();
            return;
        }
        let pos = self.pending[a].iter().position(|&t| t == token);
        match pos {
            Some(p) => {
                self.pending[a].remove(p);
                self.emit(
                    rules::DATA_RACE,
                    format!(
                        "event {}: submission {token} retired out of FIFO order on \
                         {:?} ({} earlier submissions still pending)",
                        e.seq, e.actor, p
                    ),
                    Some(
                        "per-backend queues retire in order; reordered completion \
                          voids queue-order happens-before edges"
                            .into(),
                    ),
                );
            }
            None => self.emit(
                rules::DATA_RACE,
                format!(
                    "event {}: completion of {token} on {:?} matches no pending \
                     submission",
                    e.seq, e.actor
                ),
                None,
            ),
        }
    }

    fn acquire(&mut self, e: &ConcurrencyEvent, a: usize, buffer: u64) {
        let vc = self.clocks[a];
        let state = self.buffers.entry(buffer).or_default();
        let mut finding = None;
        if state.live {
            finding = Some(format!(
                "event {}: {:?} re-acquires buffer {buffer} while it is still live",
                e.seq, e.actor
            ));
        } else if let Some(rel) = state.last_release {
            if rel.actor != a && !rel.happens_before(&vc) {
                finding = Some(format!(
                    "event {}: {:?} re-acquires recycled slot {buffer} without an \
                     ordering edge from its previous release",
                    e.seq, e.actor
                ));
            }
        }
        *state = BufState {
            live: true,
            last_write: Some(Access {
                actor: a,
                clock: vc[a],
            }),
            reads: Vec::new(),
            last_release: None,
        };
        if let Some(message) = finding {
            self.emit_buffer(
                rules::UNSYNCHRONIZED_REUSE,
                buffer,
                message,
                Some(
                    "recycle a pool slot only after the previous lifetime's release \
                     happens-before the new acquire (signal→wait the releasing flag)"
                        .into(),
                ),
            );
        }
    }

    fn read(&mut self, e: &ConcurrencyEvent, a: usize, buffer: u64) {
        let vc = self.clocks[a];
        let state = self.buffers.entry(buffer).or_default();
        let racy_writer = state
            .last_write
            .filter(|w| w.actor != a && !w.happens_before(&vc))
            .map(|w| w.actor);
        state.reads.push(Access {
            actor: a,
            clock: vc[a],
        });
        if let Some(w) = racy_writer {
            let writer = ["CPU", "GPU", "NPU"][w];
            self.emit_buffer(
                rules::DATA_RACE,
                buffer,
                format!(
                    "event {}: {:?} reads buffer {buffer} concurrently with \
                     {writer}'s write (no signal→wait edge orders them)",
                    e.seq, e.actor
                ),
                Some("wait on the writer's completion flag before consuming".into()),
            );
        }
    }

    fn write(&mut self, e: &ConcurrencyEvent, a: usize, buffer: u64) {
        let vc = self.clocks[a];
        let state = self.buffers.entry(buffer).or_default();
        let unordered = state
            .last_write
            .iter()
            .chain(state.reads.iter())
            .any(|acc| acc.actor != a && !acc.happens_before(&vc));
        state.last_write = Some(Access {
            actor: a,
            clock: vc[a],
        });
        state.reads.clear();
        if unordered {
            self.emit_buffer(
                rules::DATA_RACE,
                buffer,
                format!(
                    "event {}: {:?} writes buffer {buffer} concurrently with an \
                     unordered access from another actor",
                    e.seq, e.actor
                ),
                Some("order the writers/readers with a signal→wait edge".into()),
            );
        }
    }

    fn release(&mut self, e: &ConcurrencyEvent, a: usize, buffer: u64) {
        let vc = self.clocks[a];
        let state = self.buffers.entry(buffer).or_default();
        let unordered = state
            .last_write
            .iter()
            .chain(state.reads.iter())
            .any(|acc| acc.actor != a && !acc.happens_before(&vc));
        state.live = false;
        state.last_release = Some(Access {
            actor: a,
            clock: vc[a],
        });
        if unordered {
            self.emit_buffer(
                rules::UNSYNCHRONIZED_REUSE,
                buffer,
                format!(
                    "event {}: {:?} releases buffer {buffer} back to the pool while \
                     another actor's access is unordered with the release",
                    e.seq, e.actor
                ),
                Some("join every accessor's flag before returning the slot".into()),
            );
        }
    }
}

/// Check a concurrency event log for happens-before violations.
///
/// Events are processed in recording order; the happens-before relation
/// is derived purely from the signal/wait/queue payloads, so the
/// detector flags accesses the *mechanism* fails to order even though
/// the recording happened to serialize them.
pub fn check_log(log: &ConcurrencyLog, location: &str) -> Vec<Diagnostic> {
    let mut d = Detector::new(location);
    for e in &log.events {
        d.step(e);
    }
    d.out
}

/// Lower a [`SyncSchedule`] to the concurrency event log its execution
/// implies.
///
/// Each schedule event `i` gets its own activation buffer (`i + 1`) and
/// completion flag (`i + 1`); `waits_on` edges become waits on the
/// target's flag. The *data* edges are structural — independent of
/// `waits_on` — so the detector has teeth: a submission reads its
/// backend's previous submission, a switch reads the latest submission
/// on any backend, and a rendezvous reads the latest GPU **and** NPU
/// submissions before it. Deleting a `waits_on` edge therefore leaves
/// the read in place but removes the ordering, which is exactly a data
/// race. Out-of-range waits lower to waits on a flag nothing signals
/// (a lost signal).
pub fn log_from_schedule(schedule: &SyncSchedule, mechanism: SyncMechanism) -> ConcurrencyLog {
    let n = schedule.events.len();
    let mut log = ConcurrencyLog::new();
    // Token spaces: flags 1..=n, per-event submit tokens offset by
    // SUBMIT_BASE, dangling-wait tokens offset by DANGLING_BASE.
    const SUBMIT_BASE: u64 = 1 << 20;
    const DANGLING_BASE: u64 = 1 << 21;
    let latest_submit = |upto: usize, pred: &dyn Fn(Backend) -> bool| -> Option<usize> {
        (0..upto).rev().find(|&j| {
            schedule.events[j].kind == EventKind::Submit && pred(schedule.events[j].backend)
        })
    };
    for (i, ev) in schedule.events.iter().enumerate() {
        let at = SimTime::from_micros(i as u64);
        let flag = |j: usize| (j + 1) as u64;
        for (k, &w) in ev.waits_on.iter().enumerate() {
            let token = if w < n {
                flag(w)
            } else {
                DANGLING_BASE + (i as u64) * 16 + k as u64
            };
            log.push(at, ev.backend, ConcurrencyOp::Wait { mechanism, token });
        }
        let reads: Vec<usize> = match ev.kind {
            EventKind::Submit => latest_submit(i, &|b| b == ev.backend).into_iter().collect(),
            // A verify node reads the submission it checks — the same
            // structural edge a switch has to its producer.
            EventKind::Switch | EventKind::Verify => {
                latest_submit(i, &|_| true).into_iter().collect()
            }
            EventKind::Rendezvous => [Backend::Gpu, Backend::Npu]
                .iter()
                .filter_map(|&b| latest_submit(i, &|x| x == b))
                .collect(),
        };
        if ev.kind == EventKind::Submit {
            let buffer = (i + 1) as u64;
            log.push(
                at,
                ev.backend,
                ConcurrencyOp::BufferAcquire { buffer, bytes: 1 },
            );
            let token = SUBMIT_BASE + i as u64;
            log.push(at, ev.backend, ConcurrencyOp::Submit { token });
            for j in reads {
                log.push(
                    at,
                    ev.backend,
                    ConcurrencyOp::BufferRead { buffer: flag(j) },
                );
            }
            log.push(at, ev.backend, ConcurrencyOp::BufferWrite { buffer });
            log.push(at, ev.backend, ConcurrencyOp::Complete { token });
        } else {
            for j in reads {
                log.push(
                    at,
                    ev.backend,
                    ConcurrencyOp::BufferRead { buffer: flag(j) },
                );
            }
        }
        log.push(
            at,
            ev.backend,
            ConcurrencyOp::Signal {
                mechanism,
                token: flag(i),
            },
        );
    }
    log
}

/// Lower a schedule to its implied event log and race-check it.
///
/// The lowering is mechanism-agnostic in its ordering semantics, so a
/// schedule that is clean under [`SyncMechanism::Fast`] is clean under
/// [`SyncMechanism::Driver`] too — the mechanisms differ in cost, not
/// in which edges exist.
pub fn check_schedule_races(
    schedule: &SyncSchedule,
    mechanism: SyncMechanism,
    location: &str,
) -> Vec<Diagnostic> {
    check_log(&log_from_schedule(schedule, mechanism), location)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_graph::partition::PartitionPlan;
    use heterollm::trace::ConcurrencyRecorder;

    fn ids(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule_id.as_str()).collect()
    }

    #[test]
    fn recorder_serial_and_switch_logs_are_clean() {
        let mut r = ConcurrencyRecorder::new();
        let m = SyncMechanism::Fast;
        r.serial_kernel(Backend::Gpu, 4096, m, SimTime::ZERO);
        r.serial_kernel(Backend::Gpu, 4096, m, SimTime::ZERO);
        r.switch(Backend::Npu, m, SimTime::ZERO);
        r.serial_kernel(Backend::Npu, 4096, m, SimTime::ZERO);
        r.switch(Backend::Gpu, m, SimTime::ZERO);
        r.serial_kernel(Backend::Gpu, 4096, m, SimTime::ZERO);
        let diags = check_log(&r.finish(), "test");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn recorder_parallel_sections_are_clean() {
        let mut r = ConcurrencyRecorder::new();
        let m = SyncMechanism::Fast;
        r.serial_kernel(Backend::Gpu, 4096, m, SimTime::ZERO);
        r.parallel_section(4096, 4096, m, SimTime::ZERO);
        r.parallel_section(4096, 4096, m, SimTime::ZERO);
        r.serial_kernel(Backend::Gpu, 4096, m, SimTime::ZERO);
        let diags = check_log(&r.finish(), "test");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn skipped_switch_wait_is_a_data_race() {
        // A GPU kernel's output consumed by the NPU *without* the
        // backend-switch wait: the cross-actor read is unordered.
        let mut r = ConcurrencyRecorder::new();
        let m = SyncMechanism::Fast;
        r.serial_kernel(Backend::Gpu, 4096, m, SimTime::ZERO);
        // No r.switch(Backend::Npu, ..) here.
        r.serial_kernel(Backend::Npu, 4096, m, SimTime::ZERO);
        let diags = check_log(&r.finish(), "test");
        assert!(ids(&diags).contains(&rules::DATA_RACE), "{diags:?}");
    }

    #[test]
    fn wait_on_unsignalled_flag_is_lost() {
        let mut log = ConcurrencyLog::new();
        log.push(
            SimTime::ZERO,
            Backend::Gpu,
            ConcurrencyOp::Wait {
                mechanism: SyncMechanism::Fast,
                token: 99,
            },
        );
        let diags = check_log(&log, "test");
        assert_eq!(ids(&diags), vec![rules::LOST_SIGNAL], "{diags:?}");
    }

    #[test]
    fn unsynchronized_slot_reuse_is_flagged() {
        let mut log = ConcurrencyLog::new();
        let m = SyncMechanism::Fast;
        for op in [
            ConcurrencyOp::BufferAcquire {
                buffer: 1,
                bytes: 64,
            },
            ConcurrencyOp::BufferWrite { buffer: 1 },
            ConcurrencyOp::BufferRelease { buffer: 1 },
            ConcurrencyOp::Signal {
                mechanism: m,
                token: 1,
            },
        ] {
            log.push(SimTime::ZERO, Backend::Gpu, op);
        }
        // The NPU grabs the recycled slot without waiting on flag 1.
        log.push(
            SimTime::ZERO,
            Backend::Npu,
            ConcurrencyOp::BufferAcquire {
                buffer: 1,
                bytes: 64,
            },
        );
        let diags = check_log(&log, "test");
        assert_eq!(ids(&diags), vec![rules::UNSYNCHRONIZED_REUSE], "{diags:?}");
        // With the wait, the same reuse is ordered and clean.
        let mut ok = ConcurrencyLog::new();
        for e in &log.events[..4] {
            ok.push(e.at, e.actor, e.op);
        }
        ok.push(
            SimTime::ZERO,
            Backend::Npu,
            ConcurrencyOp::Wait {
                mechanism: m,
                token: 1,
            },
        );
        ok.push(
            SimTime::ZERO,
            Backend::Npu,
            ConcurrencyOp::BufferAcquire {
                buffer: 1,
                bytes: 64,
            },
        );
        assert!(check_log(&ok, "test").is_empty());
    }

    #[test]
    fn out_of_order_completion_is_flagged() {
        let mut log = ConcurrencyLog::new();
        log.push(
            SimTime::ZERO,
            Backend::Gpu,
            ConcurrencyOp::Submit { token: 1 },
        );
        log.push(
            SimTime::ZERO,
            Backend::Gpu,
            ConcurrencyOp::Submit { token: 2 },
        );
        log.push(
            SimTime::ZERO,
            Backend::Gpu,
            ConcurrencyOp::Complete { token: 2 },
        );
        let diags = check_log(&log, "test");
        assert_eq!(ids(&diags), vec![rules::DATA_RACE], "{diags:?}");
        assert!(diags[0].message.contains("FIFO"), "{diags:?}");
    }

    #[test]
    fn solver_style_schedules_lower_clean_under_both_mechanisms() {
        for plan in [
            PartitionPlan::GpuOnly,
            PartitionPlan::NpuOnly { padded_m: 512 },
            PartitionPlan::NpuPipe {
                chunks: vec![1024, 64],
                padded_rows: 4,
            },
            PartitionPlan::SeqCut {
                npu_chunks: vec![256, 32],
                gpu_rows: 12,
            },
            PartitionPlan::HybridCut {
                padded_m: 512,
                gpu_cols: 1024,
            },
        ] {
            let s = SyncSchedule::for_plan(&plan);
            for mech in [SyncMechanism::Fast, SyncMechanism::Driver] {
                let diags = check_schedule_races(&s, mech, "test");
                assert!(diags.is_empty(), "{plan:?} under {mech:?}: {diags:?}");
                let retried = crate::sched::retry_schedule(&s);
                let diags = check_schedule_races(&retried, mech, "test");
                assert!(diags.is_empty(), "retried {plan:?} {mech:?}: {diags:?}");
            }
        }
    }

    #[test]
    fn deleting_a_rendezvous_edge_is_a_data_race() {
        let plan = PartitionPlan::HybridCut {
            padded_m: 512,
            gpu_cols: 1024,
        };
        let mut s = SyncSchedule::for_plan(&plan);
        let r = s
            .events
            .iter()
            .position(|e| e.kind == EventKind::Rendezvous)
            .unwrap();
        s.events[r].waits_on.pop();
        let diags = check_schedule_races(&s, SyncMechanism::Fast, "test");
        assert!(ids(&diags).contains(&rules::DATA_RACE), "{diags:?}");
    }

    #[test]
    fn dangling_wait_lowers_to_a_lost_signal() {
        let mut s = SyncSchedule::for_plan(&PartitionPlan::HybridCut {
            padded_m: 512,
            gpu_cols: 1024,
        });
        s.events[2].waits_on[1] = 77;
        let diags = check_schedule_races(&s, SyncMechanism::Driver, "test");
        assert!(ids(&diags).contains(&rules::LOST_SIGNAL), "{diags:?}");
    }
}
