//! Typed findings and the aggregated report.

use serde::{Content, ContentError, Deserialize, Serialize};

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the artifact works but leaves modelled performance on
    /// the table or is in a non-canonical form.
    Warn,
    /// Hard error: the artifact violates a structural invariant and
    /// would execute incorrectly (or not at all) on the modelled SoC.
    Deny,
}

// Manual impls so the JSON encoding is the same lowercase string the
// severity displays as ("warn"/"deny"), not the variant name.
impl Serialize for Severity {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for Severity {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        match content.as_str() {
            Some("warn") => Ok(Self::Warn),
            Some("deny") => Ok(Self::Deny),
            _ => Err(ContentError::custom(format!(
                "expected \"warn\" or \"deny\", got {content}"
            ))),
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Warn => "warn",
            Self::Deny => "deny",
        })
    }
}

/// One finding from one rule at one location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule identifier (see [`crate::rules::RULES`]).
    pub rule_id: String,
    /// Severity (the rule's registered level).
    pub severity: Severity,
    /// What was being checked, e.g. `"Llama-8B/ffn_down[m=300]"`.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the rule knows.
    pub suggestion: Option<String>,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule_id, self.location, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (suggestion: {s})")?;
        }
        Ok(())
    }
}

/// Counts accompanying a [`Report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of deny-level findings.
    pub deny: usize,
    /// Number of warn-level findings.
    pub warn: usize,
    /// Number of artifacts (plans, schedules, traces) checked.
    pub checked: usize,
}

/// Aggregated analysis results, serializable as the CLI's JSON output.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Schema version of the JSON encoding.
    pub version: u32,
    /// Every finding, in check order.
    pub findings: Vec<Diagnostic>,
    /// Aggregate counts.
    pub summary: Summary,
}

impl Report {
    /// Current JSON schema version.
    pub const VERSION: u32 = 1;

    /// New, empty report.
    pub fn new() -> Self {
        Self {
            version: Self::VERSION,
            ..Self::default()
        }
    }

    /// Fold in the findings for one checked artifact.
    ///
    /// Debug builds assert every finding's `rule_id` is present in the
    /// [`crate::rules::RULES`] registry — an unregistered id means a
    /// check site bypassed the registry with an ad-hoc string.
    pub fn extend(&mut self, findings: Vec<Diagnostic>) {
        self.summary.checked += 1;
        for d in &findings {
            debug_assert!(
                crate::rules::rule(&d.rule_id).is_some(),
                "diagnostic with unregistered rule id {:?}",
                d.rule_id
            );
            match d.severity {
                Severity::Deny => self.summary.deny += 1,
                Severity::Warn => self.summary.warn += 1,
            }
        }
        self.findings.extend(findings);
    }

    /// Fold another report into this one, summing its counts (used to
    /// combine independently produced sweep reports).
    pub fn merge(&mut self, other: Report) {
        self.summary.checked += other.summary.checked;
        self.summary.deny += other.summary.deny;
        self.summary.warn += other.summary.warn;
        self.findings.extend(other.findings);
    }

    /// Whether no deny-level finding was recorded.
    pub fn is_clean(&self) -> bool {
        self.summary.deny == 0
    }

    /// The report as a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(severity: Severity) -> Diagnostic {
        Diagnostic {
            rule_id: crate::rules::SHAPE_CONSERVATION.into(),
            severity,
            location: "test".into(),
            message: "msg".into(),
            suggestion: None,
        }
    }

    #[test]
    fn report_counts_by_severity() {
        let mut r = Report::new();
        r.extend(vec![diag(Severity::Deny), diag(Severity::Warn)]);
        r.extend(vec![]);
        assert_eq!(r.summary.checked, 2);
        assert_eq!(r.summary.deny, 1);
        assert_eq!(r.summary.warn, 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Report::new();
        r.extend(vec![diag(Severity::Deny)]);
        let json = r.to_json();
        assert!(json.contains("\"deny\""), "lowercase severity: {json}");
        let back: Report = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, r);
    }

    #[test]
    fn display_includes_rule_and_severity() {
        let mut d = diag(Severity::Deny);
        d.suggestion = Some("fix it".into());
        let s = d.to_string();
        assert!(s.contains("deny[shape-conservation]"), "{s}");
        assert!(s.contains("fix it"), "{s}");
    }
}
