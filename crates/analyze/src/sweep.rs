//! Lint sweep over solver output for the paper's model configurations.
//!
//! Shared by the `analyze` binary and the experiment harness's
//! `--analyze` flag: for each model the per-layer weight Matmuls are
//! solved over a set of prefill sequence lengths (NPU-dominant) plus
//! the decode shape (m = 1, GPU-dominant), and every resulting plan is
//! run through the full rule set.

use hetero_profiler::RealExecProvider;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::SocConfig;
use hetero_solver::{Solver, SolverConfig};
use hetero_tensor::shape::MatmulShape;
use heterollm::ModelConfig;

use crate::diag::Report;
use crate::plan_rules::PlanContext;

/// Default prefill sequence lengths: the standard (aligned) sizes plus
/// the paper's misaligned examples (135 from §5.2.2, 300/600 from
/// §4.1.1, 2100 beyond the largest compiled graph).
pub const DEFAULT_SEQS: [usize; 10] = [32, 128, 135, 256, 300, 512, 600, 1024, 2048, 2100];

/// Solve and lint every weight Matmul of `models` over `seqs` (prefill)
/// plus the decode shape, under the given sync mechanism.
pub fn lint_models(models: &[ModelConfig], seqs: &[usize], mechanism: SyncMechanism) -> Report {
    let mut report = Report::new();
    let prefill_cfg = SolverConfig {
        sync: SyncModel::new(mechanism),
        ..SolverConfig::default()
    };
    let decode_cfg = SolverConfig {
        sync: SyncModel::new(mechanism),
        ..SolverConfig::decode(1)
    };
    for model in models {
        let prefill = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            prefill_cfg.clone(),
        );
        let decode = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            decode_cfg.clone(),
        );
        for (op, k, n) in model.matmul_ops() {
            for &m in seqs {
                let choice = prefill.solve(MatmulShape::new(m, k, n), Dominance::NpuDominant);
                let mut ctx = PlanContext::standard(format!("{}/{op}[m={m}]", model.name), m, n);
                ctx.mechanism = mechanism;
                ctx.compiled_sizes = prefill_cfg.standards.clone();
                report.extend(crate::check_plan_full(&choice.plan, &ctx));
            }
            // Decode: m = 1, GPU-dominant, graphs only for length 1.
            let choice = decode.solve(MatmulShape::new(1, k, n), Dominance::GpuDominant);
            let mut ctx = PlanContext::standard(format!("{}/{op}[decode]", model.name), 1, n);
            ctx.mechanism = mechanism;
            ctx.compiled_sizes = decode_cfg.standards.clone();
            report.extend(crate::check_plan_full(&choice.plan, &ctx));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_output_is_clean_for_one_model() {
        let models = [ModelConfig::internlm_1_8b()];
        let report = lint_models(&models, &[32, 300], SyncMechanism::Fast);
        assert!(report.is_clean(), "{}", report.to_json());
        assert_eq!(report.summary.warn, 0, "{}", report.to_json());
        // 4 matmul ops × (2 prefill seqs + 1 decode).
        assert_eq!(report.summary.checked, 12);
    }

    #[test]
    fn driver_sync_sweep_warns_but_does_not_deny() {
        let models = [ModelConfig::internlm_1_8b()];
        let report = lint_models(&models, &[300], SyncMechanism::Driver);
        assert!(report.is_clean(), "{}", report.to_json());
        assert!(
            report
                .findings
                .iter()
                .all(|d| d.rule_id == crate::rules::SYNC_MECHANISM),
            "{}",
            report.to_json()
        );
    }
}
