//! Lint sweep over solver output for the paper's model configurations.
//!
//! Shared by the `analyze` binary and the experiment harness's
//! `--analyze` flag: for each model the per-layer weight Matmuls are
//! solved over a set of prefill sequence lengths (NPU-dominant) plus
//! the decode shape (m = 1, GPU-dominant), and every resulting plan is
//! run through the full rule set.

use hetero_profiler::RealExecProvider;
use hetero_soc::disturb::DisturbanceTrace;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::{SimTime, SocConfig};
use hetero_solver::{Solver, SolverConfig};
use hetero_tensor::shape::MatmulShape;
use heterollm::runtime::{conversation_traffic, ControllerConfig, RuntimeController, SloPolicy};
use heterollm::{EngineKind, ModelConfig};

use crate::diag::Report;
use crate::explore::{explore_schedule, DeterminismCertificate, ExploreConfig};
use crate::plan_rules::PlanContext;
use crate::race;
use crate::sched::{retry_schedule, verified_schedule, SyncSchedule};

/// Default prefill sequence lengths: the standard (aligned) sizes plus
/// the paper's misaligned examples (135 from §5.2.2, 300/600 from
/// §4.1.1, 2100 beyond the largest compiled graph).
pub const DEFAULT_SEQS: [usize; 10] = [32, 128, 135, 256, 300, 512, 600, 1024, 2048, 2100];

/// Solve and lint every weight Matmul of `models` over `seqs` (prefill)
/// plus the decode shape, under the given sync mechanism.
pub fn lint_models(models: &[ModelConfig], seqs: &[usize], mechanism: SyncMechanism) -> Report {
    let mut report = Report::new();
    let prefill_cfg = SolverConfig {
        sync: SyncModel::new(mechanism),
        ..SolverConfig::default()
    };
    let decode_cfg = SolverConfig {
        sync: SyncModel::new(mechanism),
        ..SolverConfig::decode(1)
    };
    for model in models {
        let prefill = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            prefill_cfg.clone(),
        );
        let decode = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            decode_cfg.clone(),
        );
        for (op, k, n) in model.matmul_ops() {
            for &m in seqs {
                let choice = prefill.solve(MatmulShape::new(m, k, n), Dominance::NpuDominant);
                let mut ctx = PlanContext::standard(format!("{}/{op}[m={m}]", model.name), m, n);
                ctx.mechanism = mechanism;
                ctx.compiled_sizes = prefill_cfg.standards.clone();
                report.extend(crate::check_plan_full(&choice.plan, &ctx));
            }
            // Decode: m = 1, GPU-dominant, graphs only for length 1.
            let choice = decode.solve(MatmulShape::new(1, k, n), Dominance::GpuDominant);
            let mut ctx = PlanContext::standard(format!("{}/{op}[decode]", model.name), 1, n);
            ctx.mechanism = mechanism;
            ctx.compiled_sizes = decode_cfg.standards.clone();
            report.extend(crate::check_plan_full(&choice.plan, &ctx));
        }
    }
    report
}

/// Lint the *verified* sync schedules of every solver-chosen plan for
/// `models`: each plan's schedule is rewritten by [`verified_schedule`]
/// (one ABFT verify node per submission, consumers rerouted through
/// it) and must then pass the happens-before sanity check, the
/// `unverified-sink` rule, and the vector-clock race check. The base
/// (unverified) schedules intentionally fail `unverified-sink` — that
/// negative case is covered by unit tests, not this sweep, so CI can
/// gate on a clean report here.
pub fn integrity_lint_models(
    models: &[ModelConfig],
    seqs: &[usize],
    mechanism: SyncMechanism,
) -> Report {
    let mut report = Report::new();
    let prefill_cfg = SolverConfig {
        sync: SyncModel::new(mechanism),
        ..SolverConfig::default()
    };
    let decode_cfg = SolverConfig {
        sync: SyncModel::new(mechanism),
        ..SolverConfig::decode(1)
    };
    let mut lint_one = |schedule: &SyncSchedule, location: String| {
        let verified = verified_schedule(schedule);
        let mut diags = crate::sched::check_schedule(&verified, &location);
        diags.extend(crate::sched::check_unverified_sink(&verified, &location));
        diags.extend(race::check_schedule_races(&verified, mechanism, &location));
        report.extend(diags);
    };
    for model in models {
        let prefill = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            prefill_cfg.clone(),
        );
        let decode = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            decode_cfg.clone(),
        );
        for (op, k, n) in model.matmul_ops() {
            for &m in seqs {
                let choice = prefill.solve(MatmulShape::new(m, k, n), Dominance::NpuDominant);
                lint_one(
                    &SyncSchedule::for_plan(&choice.plan),
                    format!("{}/{op}[m={m},verified]", model.name),
                );
            }
            let choice = decode.solve(MatmulShape::new(1, k, n), Dominance::GpuDominant);
            lint_one(
                &SyncSchedule::for_plan(&choice.plan),
                format!("{}/{op}[decode,verified]", model.name),
            );
        }
    }
    report
}

/// Engine kinds whose recorded event logs the race sweep checks: the
/// two heterogeneous engines (cross-backend sync), an NPU-serial engine
/// with backend switches, and a GPU-only baseline as the trivial case.
const RACE_SWEEP_ENGINES: [EngineKind; 4] = [
    EngineKind::HeteroTensor,
    EngineKind::HeteroLayer,
    EngineKind::NpuPipe,
    EngineKind::PplOpenCl,
];

/// Record and race-check real engine event logs for `models`.
///
/// Two kinds of evidence per model: each engine in
/// [`RACE_SWEEP_ENGINES`] runs a prefill + short decode with recording
/// on, and a [`RuntimeController`] serves a seeded conversation under
/// the standard disturbance trace so replan/fallback/retry quiesce
/// markers appear in the log. Every recorded log must be race-free.
pub fn race_lint_models(models: &[ModelConfig], mechanism: SyncMechanism, seq: usize) -> Report {
    let mut report = Report::new();
    for model in models {
        for kind in RACE_SWEEP_ENGINES {
            let mut engine = kind.build(model, mechanism);
            engine.enable_concurrency_log();
            engine
                .try_prefill(seq)
                .expect("race sweep prefill must not fail");
            engine
                .try_decode(seq, 2)
                .expect("race sweep decode must not fail");
            let log = engine
                .take_concurrency_log()
                .expect("recording was enabled");
            let location = format!("{}/{}[m={seq}]", model.name, engine.name());
            report.extend(race::check_log(&log, &location));
        }
    }
    report
}

/// Race-check the concurrency log of a disturbed multi-request
/// controller session (replans, fallbacks, and sync downgrades
/// included), seeded for reproducibility.
pub fn race_lint_degraded_session(model: &ModelConfig, seed: u64, requests: usize) -> Report {
    let mut report = Report::new();
    let mut ctrl = RuntimeController::new(
        model,
        ControllerConfig::adaptive(SloPolicy::calibrated(model)),
    );
    ctrl.enable_concurrency_log();
    let reqs = conversation_traffic(seed, requests, SimTime::from_millis(200));
    let trace = DisturbanceTrace::standard(seed);
    ctrl.run(&reqs, &trace)
        .expect("degraded race sweep session must complete");
    let log = ctrl.take_concurrency_log().expect("recording was enabled");
    let location = format!("{}/degraded[seed={seed}]", model.name);
    report.extend(race::check_log(&log, &location));
    report
}

/// Explore the interleaving space of every solver-chosen plan's sync
/// schedule (and its rendezvous-retry variant) for `models`.
///
/// Returns the aggregated report plus one
/// [`DeterminismCertificate`] per explored schedule, labelled by
/// location.
pub fn explore_models(
    models: &[ModelConfig],
    seqs: &[usize],
    mechanism: SyncMechanism,
) -> (Report, Vec<(String, DeterminismCertificate)>) {
    let mut report = Report::new();
    let mut certs = Vec::new();
    let cfg = ExploreConfig {
        mechanism,
        ..ExploreConfig::default()
    };
    let solver_cfg = SolverConfig {
        sync: SyncModel::new(mechanism),
        ..SolverConfig::default()
    };
    let decode_cfg = SolverConfig {
        sync: SyncModel::new(mechanism),
        ..SolverConfig::decode(1)
    };
    let mut explore_one = |schedule: &SyncSchedule, location: String| {
        let (cert, diags) = explore_schedule(schedule, &cfg, &location);
        report.extend(diags);
        certs.push((location, cert));
    };
    for model in models {
        let prefill = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            solver_cfg.clone(),
        );
        let decode = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            decode_cfg.clone(),
        );
        for (op, k, n) in model.matmul_ops() {
            for &m in seqs {
                let choice = prefill.solve(MatmulShape::new(m, k, n), Dominance::NpuDominant);
                let s = SyncSchedule::for_plan(&choice.plan);
                explore_one(&s, format!("{}/{op}[m={m}]", model.name));
                explore_one(
                    &retry_schedule(&s),
                    format!("{}/{op}[m={m},retry]", model.name),
                );
            }
            let choice = decode.solve(MatmulShape::new(1, k, n), Dominance::GpuDominant);
            let s = SyncSchedule::for_plan(&choice.plan);
            explore_one(&s, format!("{}/{op}[decode]", model.name));
            explore_one(
                &retry_schedule(&s),
                format!("{}/{op}[decode,retry]", model.name),
            );
        }
    }
    (report, certs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_output_is_clean_for_one_model() {
        let models = [ModelConfig::internlm_1_8b()];
        let report = lint_models(&models, &[32, 300], SyncMechanism::Fast);
        assert!(report.is_clean(), "{}", report.to_json());
        assert_eq!(report.summary.warn, 0, "{}", report.to_json());
        // 4 matmul ops × (2 prefill seqs + 1 decode).
        assert_eq!(report.summary.checked, 12);
    }

    #[test]
    fn verified_solver_schedules_pass_integrity_lint() {
        let models = [ModelConfig::internlm_1_8b()];
        let report = integrity_lint_models(&models, &[32, 300], SyncMechanism::Fast);
        assert!(report.is_clean(), "{}", report.to_json());
        assert_eq!(report.summary.warn, 0, "{}", report.to_json());
        // 4 matmul ops × (2 prefill seqs + 1 decode).
        assert_eq!(report.summary.checked, 12);
    }

    #[test]
    fn engine_logs_are_race_free() {
        let models = [ModelConfig::internlm_1_8b()];
        for mech in [SyncMechanism::Fast, SyncMechanism::Driver] {
            let report = race_lint_models(&models, mech, 64);
            assert!(report.is_clean(), "{mech:?}: {}", report.to_json());
            assert_eq!(report.summary.warn, 0);
            assert_eq!(report.summary.checked, RACE_SWEEP_ENGINES.len());
        }
    }

    #[test]
    fn degraded_session_log_is_race_free() {
        let report = race_lint_degraded_session(&ModelConfig::internlm_1_8b(), 42, 4);
        assert!(report.is_clean(), "{}", report.to_json());
        assert_eq!(report.summary.checked, 1);
    }

    #[test]
    fn solver_schedules_explore_deterministic() {
        let models = [ModelConfig::internlm_1_8b()];
        let (report, certs) = explore_models(&models, &[300], SyncMechanism::Fast);
        assert!(report.is_clean(), "{}", report.to_json());
        // 4 matmul ops × (1 prefill seq + decode) × (base + retry).
        assert_eq!(certs.len(), 16);
        for (loc, cert) in &certs {
            assert!(cert.deterministic, "{loc}: {cert:?}");
            assert!(!cert.truncated, "{loc}");
            assert!(cert.canonical.is_some(), "{loc}");
        }
    }

    #[test]
    fn driver_sync_sweep_warns_but_does_not_deny() {
        let models = [ModelConfig::internlm_1_8b()];
        let report = lint_models(&models, &[300], SyncMechanism::Driver);
        assert!(report.is_clean(), "{}", report.to_json());
        assert!(
            report
                .findings
                .iter()
                .all(|d| d.rule_id == crate::rules::SYNC_MECHANISM),
            "{}",
            report.to_json()
        );
    }
}
