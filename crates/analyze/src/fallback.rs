//! Fallback-plan integrity (`fallback-integrity`).
//!
//! When the runtime controller degrades — re-solving partitions
//! against a disturbance-adjusted profile, or dropping to a
//! single-backend engine — the plans it adopts are produced *under
//! duress*, far from the calibration-time conditions the solver was
//! validated at. This check holds them to the same bar as any solver
//! output, plus one condition unique to degraded operation: the
//! submission happens-before graph must remain acyclic when flaky
//! rendezvous are rescheduled for retry
//! ([`retry_schedule`](crate::sched::retry_schedule)) — the
//! controller's bounded-retry reaction must never deadlock the queues
//! it is trying to rescue.

use hetero_graph::partition::PartitionPlan;

use crate::diag::Diagnostic;
use crate::plan_rules::PlanContext;
use crate::rules;
use crate::sched::{check_schedule, retry_schedule, SyncSchedule};

/// Check a plan adopted during degradation: every plan/sync-schedule
/// invariant ([`crate::check_plan_full`]) plus schedule sanity of the
/// retry-rescheduled submission graph, reported under
/// [`rules::FALLBACK_INTEGRITY`].
pub fn check_fallback(plan: &PartitionPlan, ctx: &PlanContext) -> Vec<Diagnostic> {
    let mut out = crate::check_plan_full(plan, ctx);
    let info = rules::rule(rules::FALLBACK_INTEGRITY).expect("registered");
    let retried = retry_schedule(&SyncSchedule::for_plan(plan));
    for d in check_schedule(&retried, &ctx.location) {
        out.push(Diagnostic {
            rule_id: rules::FALLBACK_INTEGRITY.into(),
            severity: info.severity,
            location: d.location,
            message: format!("under retry rescheduling: {}", d.message),
            suggestion: d.suggestion,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_shaped_fallback_plans_are_clean() {
        for (plan, m) in [
            (PartitionPlan::GpuOnly, 300),
            (PartitionPlan::NpuOnly { padded_m: 512 }, 300),
            (
                PartitionPlan::SeqCut {
                    npu_chunks: vec![256, 32],
                    gpu_rows: 12,
                },
                300,
            ),
            (
                PartitionPlan::HybridCut {
                    padded_m: 512,
                    gpu_cols: 1024,
                },
                300,
            ),
        ] {
            let ctx = PlanContext::standard("fallback", m, 4096);
            let diags = check_fallback(&plan, &ctx);
            assert!(diags.is_empty(), "{plan:?}: {diags:?}");
        }
    }

    #[test]
    fn bad_fallback_plan_keeps_base_rule_findings() {
        // An uncompiled, unaligned NPU graph size: the base rules fire
        // through the fallback check unchanged.
        let plan = PartitionPlan::NpuOnly { padded_m: 96 };
        let ctx = PlanContext::standard("fallback", 100, 4096);
        let diags = check_fallback(&plan, &ctx);
        assert!(diags.iter().any(|d| d.rule_id == rules::GRAPH_MEMBERSHIP));
        assert!(!diags.iter().any(|d| d.rule_id == rules::FALLBACK_INTEGRITY));
    }

    #[test]
    fn retry_findings_are_reported_under_fallback_integrity() {
        // Hand-build the degenerate schedule a buggy controller could
        // emit (a rendezvous with no NPU side) and push it through the
        // same path `check_fallback` uses.
        use crate::sched::{EventKind, SyncEvent};
        use hetero_soc::Backend;
        let s = SyncSchedule {
            events: vec![
                SyncEvent {
                    label: "gpu".into(),
                    backend: Backend::Gpu,
                    kind: EventKind::Submit,
                    waits_on: vec![],
                },
                SyncEvent {
                    label: "join".into(),
                    backend: Backend::Cpu,
                    kind: EventKind::Rendezvous,
                    waits_on: vec![0],
                },
            ],
        };
        let retried = retry_schedule(&s);
        assert!(!check_schedule(&retried, "fallback").is_empty());
    }
}
