//! Abstract interpretation over submission DAGs: sound memory and
//! latency bounds (§4.2, §4.3).
//!
//! This module is the analyzer's *cost* layer. Where the structural
//! rules decide whether a plan can execute at all, the bound rules
//! decide whether it can execute **within resources**: a static peak
//! memory-pool footprint and a static `[lo, hi]` latency interval,
//! both certified sound against the discrete-event simulator.
//!
//! # Framework
//!
//! A generic forward worklist solver ([`solve_forward`]) propagates a
//! join-semilattice [`AbstractDomain`] through the happens-before DAG
//! of a [`SyncSchedule`]: the in-state of an event is the join of its
//! predecessors' out-states, and a per-event transfer function
//! produces the out-state. Two instantiations:
//!
//! - **Completion time** over [`CostInterval`] (join = pointwise max,
//!   transfer = interval addition of the event's cost): the join over
//!   all out-states is a sound `[lo, hi]` bound on the schedule's
//!   makespan, and reproduces the solver's closed-form
//!   `plan_cost_interval` exactly (pinned by a test).
//! - **Peak footprint** over [`PeakBytes`] (join = max, transfer =
//!   running max of the bytes live at the event's schedule step, from
//!   the plan's [`RegionTable`]): the join over all out-states is the
//!   static peak pooled footprint, equal to the region table's
//!   max-plateau.
//!
//! # Model-level bounds and rules
//!
//! [`model_bounds`] lifts the per-plan intervals to a whole serving
//! phase through [`HeteroMirror`] (the engine-faithful static cost
//! mirror in `heterollm::admit`) and adds KV-cache growth at the final
//! context length. The rules:
//!
//! - `mem-overcommit` (deny): static peak footprint exceeds the pool
//!   capacity.
//! - `buffer-leak` (deny): a region stays live past its last
//!   structural reader.
//! - `deadline-infeasible` (deny): the *lower* latency bound already
//!   busts the SLO — the plan is provably doomed, don't simulate it.
//! - `deadline-at-risk` (warn): only the *upper* bound busts the SLO.
//! - `bound-unsound` (deny): a DES observation (simulated TTFT/TPOT,
//!   replayed pool peak) escaped its static bound — the gate that
//!   keeps the whole layer honest, swept over every evaluation model
//!   and a seeded degraded session by [`bound_lint_models`] and
//!   [`bound_lint_degraded_session`].

use hetero_profiler::{CostInterval, RealExecProvider};
use hetero_soc::disturb::DisturbanceTrace;
use hetero_soc::sync::{Dominance, SyncMechanism};
use hetero_soc::{SimTime, SocConfig};
use hetero_solver::{RegionTable, Solver};
use heterollm::admit::{HeteroMirror, PlanSite};
use heterollm::engines::{hetero_soc_config, HeteroTensorEngine};
use heterollm::kv::KvCache;
use heterollm::mempool::MemoryPool;
use heterollm::runtime::SloPolicy;
use heterollm::{Engine, ModelConfig};

use crate::diag::{Diagnostic, Report};
use crate::mem::{self, TensorRegion};
use crate::rules;
use crate::sched::{SyncEvent, SyncSchedule};

/// A join-semilattice abstract domain for forward dataflow over a
/// schedule's happens-before DAG.
pub trait AbstractDomain: Clone + PartialEq {
    /// The least element (state of an event with no predecessors).
    fn bottom() -> Self;
    /// Least upper bound of two states.
    fn join(&self, other: &Self) -> Self;
}

/// Completion-time intervals form a join-semilattice under pointwise
/// max: an event that waits on several predecessors starts no earlier
/// than the latest of them in both the best and worst case.
impl AbstractDomain for CostInterval {
    fn bottom() -> Self {
        CostInterval::ZERO
    }
    fn join(&self, other: &Self) -> Self {
        self.join_max(*other)
    }
}

/// Running peak of pool-rounded live bytes — a max-semilattice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeakBytes(pub u64);

impl AbstractDomain for PeakBytes {
    fn bottom() -> Self {
        PeakBytes(0)
    }
    fn join(&self, other: &Self) -> Self {
        PeakBytes(self.0.max(other.0))
    }
}

/// Forward worklist solver over `schedule`'s happens-before DAG.
///
/// For each event, the in-state is the join of the out-states of every
/// event it waits on (bottom for sources); `transfer(index, event,
/// in_state)` produces the out-state. Events are re-queued until a
/// fixpoint, so the result is well-defined even if the wait graph is
/// not topologically ordered. Out-of-range waits are ignored — dangling
/// edges are the `sync-schedule` rule's business, not the interpreter's.
///
/// Returns the out-state of every event.
pub fn solve_forward<D, F>(schedule: &SyncSchedule, mut transfer: F) -> Vec<D>
where
    D: AbstractDomain,
    F: FnMut(usize, &SyncEvent, &D) -> D,
{
    let n = schedule.events.len();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in schedule.events.iter().enumerate() {
        for &w in &e.waits_on {
            if w < n {
                dependents[w].push(i);
            }
        }
    }
    let mut out: Vec<D> = vec![D::bottom(); n];
    let mut queued = vec![true; n];
    let mut worklist: std::collections::VecDeque<usize> = (0..n).collect();
    while let Some(i) = worklist.pop_front() {
        queued[i] = false;
        let input = schedule.events[i]
            .waits_on
            .iter()
            .filter(|&&w| w < n)
            .fold(D::bottom(), |acc, &w| acc.join(&out[w]));
        let next = transfer(i, &schedule.events[i], &input);
        if next != out[i] {
            out[i] = next;
            for &d in &dependents[i] {
                if !queued[d] {
                    queued[d] = true;
                    worklist.push_back(d);
                }
            }
        }
    }
    out
}

/// Sound `[lo, hi]` completion-time interval of `schedule` given one
/// cost interval per event (in event order, e.g. from
/// `Solver::event_cost_intervals`).
///
/// Instantiates [`solve_forward`] with the completion-time domain and
/// joins the out-states; equals the solver's closed-form
/// `plan_cost_interval` for every plan layout.
pub fn schedule_completion_interval(
    schedule: &SyncSchedule,
    costs: &[CostInterval],
) -> CostInterval {
    assert_eq!(
        costs.len(),
        schedule.events.len(),
        "one cost interval per schedule event"
    );
    solve_forward(schedule, |i, _e, input: &CostInterval| *input + costs[i])
        .into_iter()
        .fold(CostInterval::ZERO, CostInterval::join_max)
}

/// Static peak pooled footprint of a plan's schedule, in bytes, by
/// propagating the running-peak domain through the DAG against the
/// plan's region table. Equals `table.peak_bytes()` (the region
/// table's max-plateau) — pinned by a test.
pub fn schedule_peak_bytes(schedule: &SyncSchedule, table: &RegionTable) -> u64 {
    solve_forward(schedule, |i, _e, input: &PeakBytes| {
        PeakBytes(input.0.max(table.live_bytes_at(i) as u64))
    })
    .into_iter()
    .fold(PeakBytes(0), |a, b| a.join(&b))
    .0
}

/// Default pool capacity the footprint rule checks against when the
/// caller does not supply one: 1 GiB of pooled activations + KV, the
/// order of what a flagship mobile SoC can pin for an inference
/// runtime without starving the OS.
pub const DEFAULT_POOL_BYTES: u64 = 1 << 30;

/// Statically certified bounds for one model serving a prompt of
/// `prompt_len` tokens followed by `decode_tokens` decode steps.
#[derive(Debug, Clone)]
pub struct ModelBounds {
    /// Model name (diagnostic locations).
    pub model: String,
    /// Prompt length the bounds were computed for.
    pub prompt_len: usize,
    /// Decode steps the bounds were computed for.
    pub decode_tokens: usize,
    /// Sound `[lo, hi]` bound on TTFT (prefill elapsed).
    pub ttft: CostInterval,
    /// Sound bound on the total decode elapsed time.
    pub decode_total: CostInterval,
    /// Sound per-token bound (floor/ceil division of `decode_total`).
    pub tpot: CostInterval,
    /// Peak pooled activation footprint over all prefill plan sites.
    pub plan_peak_bytes: u64,
    /// KV-cache bytes at the final context length.
    pub kv_bytes: u64,
    /// Total static peak: activations + KV.
    pub peak_bytes: u64,
    /// The distinct prefill weight-Matmul plan sites (one per operator;
    /// all layers share shapes).
    pub sites: Vec<PlanSite>,
}

/// Sound per-token interval from a total over `n` tokens: floor the
/// lower bound, ceil the upper, so the true mean always lies inside.
fn per_token(total: CostInterval, n: usize) -> CostInterval {
    let n = n.max(1) as u64;
    CostInterval {
        lo: SimTime::from_nanos(total.lo.as_nanos() / n),
        hi: SimTime::from_nanos(total.hi.as_nanos().div_ceil(n)),
    }
}

/// First occurrence of each operator name, in trace order. All decoder
/// layers share shapes, so per-layer repetition adds no information.
fn distinct_sites(sites: &[PlanSite]) -> Vec<PlanSite> {
    let mut seen: Vec<&str> = Vec::new();
    let mut out = Vec::new();
    for site in sites {
        if !seen.contains(&site.0) {
            seen.push(site.0);
            out.push(site.clone());
        }
    }
    out
}

/// Compute [`ModelBounds`] under an explicit SoC configuration (e.g. a
/// disturbance-adjusted one). The mirror is consulted in engine phase
/// order — prefill, then decode — so switch-machine state matches a
/// fresh engine serving the same request.
pub fn model_bounds_under(
    model: &ModelConfig,
    soc_cfg: SocConfig,
    prompt_len: usize,
    decode_tokens: usize,
) -> ModelBounds {
    let mut mirror = HeteroMirror::with_soc_config(model, soc_cfg);
    let ttft = mirror.prefill_bound(prompt_len);
    let decode_total = mirror.decode_bound(prompt_len, decode_tokens);
    let sites = distinct_sites(&mirror.prefill_plans(prompt_len));
    let plan_peak_bytes = sites
        .iter()
        .map(|(_, shape, plan)| {
            let table = RegionTable::for_plan(plan, *shape);
            schedule_peak_bytes(&SyncSchedule::for_plan(plan), &table)
        })
        .max()
        .unwrap_or(0);
    let kv_bytes = KvCache::decode_read_bytes(
        model.layers,
        model.kv_dim(),
        prompt_len + decode_tokens,
        model.kv_dtype,
    );
    ModelBounds {
        model: model.name.clone(),
        prompt_len,
        decode_tokens,
        ttft,
        decode_total,
        tpot: per_token(decode_total, decode_tokens),
        plan_peak_bytes,
        kv_bytes,
        peak_bytes: plan_peak_bytes + kv_bytes,
        sites,
    }
}

/// Compute [`ModelBounds`] for the quiet SoC under fast sync — the
/// configuration `HeteroTensorEngine::new` serves with.
pub fn model_bounds(model: &ModelConfig, prompt_len: usize, decode_tokens: usize) -> ModelBounds {
    model_bounds_under(
        model,
        hetero_soc_config(SyncMechanism::Fast),
        prompt_len,
        decode_tokens,
    )
}

fn diag(rule_id: &str, location: &str, message: String, suggestion: Option<String>) -> Diagnostic {
    let info = rules::rule(rule_id).expect("registered");
    Diagnostic {
        rule_id: rule_id.into(),
        severity: info.severity,
        location: location.into(),
        message,
        suggestion,
    }
}

/// Check the static peak footprint against a pool capacity
/// (`mem-overcommit`).
pub fn check_footprint(bounds: &ModelBounds, pool_bytes: u64, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if bounds.peak_bytes > pool_bytes {
        out.push(diag(
            rules::MEM_OVERCOMMIT,
            location,
            format!(
                "static peak footprint {} bytes (activations {} + KV {}) exceeds \
                 pool capacity {} bytes",
                bounds.peak_bytes, bounds.plan_peak_bytes, bounds.kv_bytes, pool_bytes
            ),
            Some(
                "shrink the context length, quantize the KV cache, or provision a \
                 larger pool"
                    .into(),
            ),
        ));
    }
    out
}

/// Check one plan's region table: no region outlives its last
/// structural reader (`buffer-leak`), and the pool layout is
/// alias-free (`mempool-aliasing`, via [`mem::check_regions`]).
pub fn check_plan_regions(table: &RegionTable, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for r in table.leaked_regions() {
        let last_reader = r.readers.iter().max();
        out.push(diag(
            rules::BUFFER_LEAK,
            location,
            match last_reader {
                Some(&last) => format!(
                    "region '{}' stays live through step {} but its last reader is \
                     step {last}",
                    r.label, r.live_until
                ),
                None => format!("region '{}' is live but never read", r.label),
            },
            Some("end the region's lifetime at its last reader".into()),
        ));
    }
    // The same table, seen as a pool layout: live_until is inclusive in
    // schedule steps, TensorRegion's is exclusive — hence the +1.
    let pool_view: Vec<TensorRegion> = table
        .regions
        .iter()
        .map(|r| TensorRegion {
            label: r.label.clone(),
            offset: r.offset as u64,
            bytes: r.rounded_bytes() as u64,
            live_from: r.live_from as u64,
            live_until: r.live_until as u64 + 1,
        })
        .collect();
    out.extend(mem::check_regions(&pool_view, location));
    out
}

/// Check the latency bounds against an SLO: a lower bound past the
/// budget is `deadline-infeasible` (deny — provably doomed), an upper
/// bound past it while the lower meets it is `deadline-at-risk` (warn).
pub fn check_deadlines(bounds: &ModelBounds, slo: &SloPolicy, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut check = |what: &str, iv: CostInterval, budget: SimTime| {
        if iv.lo > budget {
            out.push(diag(
                rules::DEADLINE_INFEASIBLE,
                location,
                format!(
                    "{what} lower bound {} already exceeds the SLO budget {budget} — \
                     statically infeasible",
                    iv.lo
                ),
                Some("reject this configuration before simulation".into()),
            ));
        } else if iv.hi > budget {
            out.push(diag(
                rules::DEADLINE_AT_RISK,
                location,
                format!(
                    "{what} upper bound {} exceeds the SLO budget {budget} (lower \
                     bound {} still meets it)",
                    iv.hi, iv.lo
                ),
                None,
            ));
        }
    };
    check("TTFT", bounds.ttft, slo.ttft);
    check("TPOT", bounds.tpot, slo.tpot);
    out
}

/// Replay a region table's acquisitions through a real [`MemoryPool`]
/// and return the pool's high-water mark: at each schedule step, first
/// acquire every region whose lifetime starts there, then release
/// every region whose (inclusive) lifetime ends there.
pub fn replay_pool_peak(table: &RegionTable) -> u64 {
    let mut pool = MemoryPool::new();
    let mut live = Vec::new();
    for step in 0..table.steps {
        for r in &table.regions {
            if r.live_from == step {
                live.push((r.live_until, pool.acquire(r.bytes as u64)));
            }
        }
        live.retain(|&(until, handle)| {
            if until == step {
                pool.release(handle);
                false
            } else {
                true
            }
        });
    }
    pool.stats().peak_live_bytes
}

/// Gate a DES-replayed pool peak against the static claim
/// (`bound-unsound` when the observation escapes the bound).
pub fn check_pool_replay(
    table: &RegionTable,
    claimed_peak: u64,
    location: &str,
) -> Vec<Diagnostic> {
    let replayed = replay_pool_peak(table);
    if replayed > claimed_peak {
        vec![diag(
            rules::BOUND_UNSOUND,
            location,
            format!(
                "memory pool replay peaked at {replayed} bytes, above the static \
                 bound of {claimed_peak}"
            ),
            None,
        )]
    } else {
        Vec::new()
    }
}

/// Gate an observed duration against a static interval
/// (`bound-unsound` when it falls outside).
pub fn check_observed_within(
    bound: CostInterval,
    observed: SimTime,
    what: &str,
    location: &str,
) -> Vec<Diagnostic> {
    if bound.contains(observed) {
        Vec::new()
    } else {
        vec![diag(
            rules::BOUND_UNSOUND,
            location,
            format!(
                "observed {what} {observed} outside the static bound [{}, {}]",
                bound.lo, bound.hi
            ),
            None,
        )]
    }
}

/// Shared knobs of one bound-sweep pass.
struct SweepCtx {
    slo: SloPolicy,
    prompt_len: usize,
    decode_tokens: usize,
    pool_bytes: u64,
}

/// The full bound sweep for one model under one SoC configuration:
/// footprint + deadline rules on the static bounds, region lint and
/// pool-replay gate per distinct plan site, and the TTFT/TPOT
/// soundness gate against a freshly simulated engine.
fn bound_lint_one(
    model: &ModelConfig,
    soc_cfg: SocConfig,
    ctx: &SweepCtx,
    location: &str,
    report: &mut Report,
) {
    let bounds = model_bounds_under(model, soc_cfg.clone(), ctx.prompt_len, ctx.decode_tokens);
    let mut diags = check_footprint(&bounds, ctx.pool_bytes, location);
    diags.extend(check_deadlines(&bounds, &ctx.slo, location));

    for (op, shape, plan) in &bounds.sites {
        let table = RegionTable::for_plan(plan, *shape);
        let site_loc = format!("{location}/{op}");
        let mut site = check_plan_regions(&table, &site_loc);
        let static_peak = schedule_peak_bytes(&SyncSchedule::for_plan(plan), &table);
        site.extend(check_pool_replay(&table, static_peak, &site_loc));
        report.extend(site);
    }

    // DES soundness gate: a fresh engine over the same SoC config must
    // land inside the mirror's intervals, phase for phase.
    let mut engine = HeteroTensorEngine::with_soc_config(model, soc_cfg);
    let observed_ttft = engine.prefill(ctx.prompt_len).elapsed;
    diags.extend(check_observed_within(
        bounds.ttft,
        observed_ttft,
        "TTFT",
        location,
    ));
    let observed_decode = engine.decode(ctx.prompt_len, ctx.decode_tokens).elapsed;
    diags.extend(check_observed_within(
        bounds.decode_total,
        observed_decode,
        "decode elapsed",
        location,
    ));
    report.extend(diags);
}

/// Certify every model in `models`: compute static footprint and
/// latency bounds at `prompt_len`/`decode_tokens`, check them against
/// `pool_bytes` and each model's calibrated SLO, and gate the bounds
/// against a fresh DES run (`bound-unsound` on any escape).
pub fn bound_lint_models(
    models: &[ModelConfig],
    prompt_len: usize,
    decode_tokens: usize,
    pool_bytes: u64,
) -> Report {
    let mut report = Report::new();
    for model in models {
        let ctx = SweepCtx {
            slo: SloPolicy::calibrated(model),
            prompt_len,
            decode_tokens,
            pool_bytes,
        };
        let location = format!("{}/bound[m={prompt_len}]", model.name);
        bound_lint_one(
            model,
            hetero_soc_config(SyncMechanism::Fast),
            &ctx,
            &location,
            &mut report,
        );
    }
    report
}

/// Certify the bounds across a seeded degraded session: at every
/// condition change point of the standard disturbance trace, recompute
/// the static bounds under the disturbance-adjusted SoC and gate them
/// against an engine simulated under the same conditions.
///
/// The SLO stays the quiet-calibrated one — that is exactly the
/// situation the runtime controller's `--bound` pre-check faces when
/// vetting fallback plans mid-degradation.
pub fn bound_lint_degraded_session(model: &ModelConfig, seed: u64, prompt_len: usize) -> Report {
    let mut report = Report::new();
    let ctx = SweepCtx {
        slo: SloPolicy::calibrated(model),
        prompt_len,
        decode_tokens: 2,
        pool_bytes: DEFAULT_POOL_BYTES,
    };
    let base = hetero_soc_config(SyncMechanism::Fast);
    let timeline = DisturbanceTrace::standard(seed)
        .timeline()
        .expect("standard traces are causal");
    for (t, cond) in timeline.points() {
        let location = format!(
            "{}/degraded[seed={seed},t={}us]",
            model.name,
            t.as_nanos() / 1_000
        );
        bound_lint_one(model, cond.apply_to(&base), &ctx, &location, &mut report);
    }
    report
}

/// A decode-phase cost interval cross-check used by the tests: the
/// worklist interpreter over a plan's event intervals must reproduce
/// the solver's closed form.
pub fn interval_via_dag(
    solver: &Solver<RealExecProvider>,
    plan: &hetero_solver::PartitionPlan,
    shape: hetero_tensor::shape::MatmulShape,
    dominance: Dominance,
) -> CostInterval {
    let costs = solver.event_cost_intervals(plan, shape, dominance);
    schedule_completion_interval(&SyncSchedule::for_plan(plan), &costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_solver::{PartitionPlan, SolverConfig};
    use hetero_tensor::shape::MatmulShape;

    fn solver() -> Solver<RealExecProvider> {
        Solver::new(
            RealExecProvider::new(hetero_soc::SocConfig::snapdragon_8gen3()),
            SolverConfig::default(),
        )
    }

    fn plans() -> Vec<PartitionPlan> {
        vec![
            PartitionPlan::GpuOnly,
            PartitionPlan::NpuOnly { padded_m: 512 },
            PartitionPlan::NpuPipe {
                chunks: vec![256, 64],
                padded_rows: 20,
            },
            PartitionPlan::RowCut {
                gpu_cols: 1024,
                padded_m: 512,
            },
            PartitionPlan::HybridCut {
                padded_m: 512,
                gpu_cols: 1024,
            },
            PartitionPlan::SeqCut {
                npu_chunks: vec![256, 32],
                gpu_rows: 12,
            },
        ]
    }

    #[test]
    fn dag_interpreter_matches_closed_form_interval() {
        let s = solver();
        let shape = MatmulShape::new(300, 4096, 4096);
        for plan in plans() {
            for dominance in [Dominance::NpuDominant, Dominance::GpuDominant] {
                let dag = interval_via_dag(&s, &plan, shape, dominance);
                let closed = s.plan_cost_interval(&plan, shape, dominance);
                assert_eq!(dag, closed, "{plan:?} {dominance:?}");
            }
        }
    }

    #[test]
    fn dag_peak_matches_region_table_plateau() {
        let shape = MatmulShape::new(300, 4096, 4096);
        for plan in plans() {
            let table = RegionTable::for_plan(&plan, shape);
            let via_dag = schedule_peak_bytes(&SyncSchedule::for_plan(&plan), &table);
            assert_eq!(via_dag, table.peak_bytes() as u64, "{plan:?}");
        }
    }

    #[test]
    fn pool_replay_reaches_exactly_the_static_peak() {
        let shape = MatmulShape::new(300, 4096, 14336);
        for plan in plans() {
            let table = RegionTable::for_plan(&plan, shape);
            assert_eq!(
                replay_pool_peak(&table),
                table.peak_bytes() as u64,
                "{plan:?}"
            );
            assert!(check_pool_replay(&table, table.peak_bytes() as u64, "test").is_empty());
        }
    }

    #[test]
    fn understated_peak_claim_is_unsound() {
        let table = RegionTable::for_plan(
            &PartitionPlan::HybridCut {
                padded_m: 512,
                gpu_cols: 1024,
            },
            MatmulShape::new(300, 4096, 4096),
        );
        let claimed = table.peak_bytes() as u64 - 1;
        let diags = check_pool_replay(&table, claimed, "test");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule_id, rules::BOUND_UNSOUND);
    }

    #[test]
    fn shrunken_pool_fires_mem_overcommit() {
        let model = ModelConfig::internlm_1_8b();
        let bounds = model_bounds(&model, 300, 2);
        assert!(check_footprint(&bounds, DEFAULT_POOL_BYTES, "test").is_empty());
        let diags = check_footprint(&bounds, bounds.peak_bytes - 1, "test");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::MEM_OVERCOMMIT);
    }

    #[test]
    fn crafted_leak_fires_buffer_leak() {
        let mut table = RegionTable::for_plan(
            &PartitionPlan::NpuOnly { padded_m: 512 },
            MatmulShape::new(300, 4096, 4096),
        );
        assert!(check_plan_regions(&table, "test").is_empty());
        table.steps += 1;
        table.regions[1].live_until = 2; // past its last reader at step 1
        let diags = check_plan_regions(&table, "test");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::BUFFER_LEAK);
    }

    #[test]
    fn tiny_slo_fires_deadline_rules() {
        let model = ModelConfig::internlm_1_8b();
        let bounds = model_bounds(&model, 300, 2);
        assert!(
            bounds.ttft.lo < bounds.ttft.hi,
            "prefill has parallel sites"
        );
        // Budget below the lower bound: provably infeasible.
        let doomed = SloPolicy {
            ttft: SimTime::from_nanos(bounds.ttft.lo.as_nanos() - 1),
            tpot: SimTime::from_nanos(bounds.tpot.lo.as_nanos() - 1),
            streak: 3,
            shed_wait: SimTime::from_millis(1),
        };
        let diags = check_deadlines(&bounds, &doomed, "test");
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .all(|d| d.rule_id == rules::DEADLINE_INFEASIBLE));
        // Budget between the bounds: at risk, not doomed.
        let tight = SloPolicy {
            ttft: bounds.ttft.lo,
            tpot: SimTime::from_nanos(u64::MAX),
            streak: 3,
            shed_wait: SimTime::from_millis(1),
        };
        let diags = check_deadlines(&bounds, &tight, "test");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::DEADLINE_AT_RISK);
    }

    #[test]
    fn model_sweep_is_sound_and_deny_free() {
        let models = [ModelConfig::internlm_1_8b()];
        let report = bound_lint_models(&models, 300, 2, DEFAULT_POOL_BYTES);
        assert!(report.is_clean(), "{}", report.to_json());
        assert!(
            !report
                .findings
                .iter()
                .any(|d| d.rule_id == rules::BOUND_UNSOUND),
            "{}",
            report.to_json()
        );
    }

    #[test]
    fn degraded_session_sweep_is_sound() {
        let report = bound_lint_degraded_session(&ModelConfig::internlm_1_8b(), 42, 64);
        assert!(
            !report
                .findings
                .iter()
                .any(|d| d.rule_id == rules::BOUND_UNSOUND),
            "{}",
            report.to_json()
        );
        // Several condition points were checked.
        assert!(report.summary.checked > 3, "{}", report.to_json());
    }

    #[test]
    fn per_token_division_is_sound() {
        let total = CostInterval {
            lo: SimTime::from_nanos(10),
            hi: SimTime::from_nanos(11),
        };
        let tp = per_token(total, 3);
        assert_eq!(tp.lo, SimTime::from_nanos(3)); // floor
        assert_eq!(tp.hi, SimTime::from_nanos(4)); // ceil
    }
}
