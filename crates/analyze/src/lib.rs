#![warn(missing_docs)]

//! Static invariant checker for HeteroLLM partition plans, graph sets,
//! and sync schedules.
//!
//! The simulator can tell you a plan is *slow*; this crate tells you a
//! plan is *wrong* — without running anything. It checks solver output
//! and hand-built artifacts against a registry of named invariants
//! drawn from the paper's hardware constraints:
//!
//! | rule | severity | invariant |
//! |------|----------|-----------|
//! | `shape-conservation` | deny | the split covers the Matmul exactly (§4.1) |
//! | `tile-alignment`     | deny | NPU sizes fit the 32×32 systolic array (§3.2) |
//! | `graph-membership`   | deny | every NPU size has a compiled graph (§4.1.1) |
//! | `plan-normalization` | warn | degenerate splits in canonical form (§4.3) |
//! | `sync-mechanism`     | warn | fast sync used where available (§4.2) |
//! | `sync-schedule`      | deny | submission graph acyclic, rendezvous two-sided (§4.2) |
//! | `mempool-aliasing`   | deny | live pooled tensors never overlap (§4.2) |
//! | `fallback-integrity` | deny | degradation-time plans keep every invariant, acyclic under retry rescheduling (§4.2) |
//! | `data-race`          | deny | conflicting buffer accesses ordered by signal→wait or queue edges (§4.2) |
//! | `unsynchronized-reuse` | deny | pool slots recycle only across ordered lifetime boundaries (§4.2) |
//! | `lost-signal`        | deny | every wait observes a flag some actor signals (§4.2) |
//! | `interleaving-determinism` | deny | all legal interleavings yield one byte-identical report (§4.2) |
//! | `unverified-sink`    | deny | with verification on, no submission reaches a sink unchecked (§4.2) |
//! | `trace-format`       | deny | exported traces are Chrome trace-event JSON with integer pid/tid/ts (§5) |
//! | `span-nesting`       | deny | per track, submit/complete events keep stack discipline (§5) |
//! | `submit-complete`    | deny | every submit has a matching complete on its track (§5) |
//! | `flow-match`         | deny | every flow id pairs one start with one finish, in order (§4.2) |
//! | `mem-overcommit`     | deny | static peak footprint (regions + KV growth) fits the pool (§4.2) |
//! | `buffer-leak`        | deny | no region outlives its last structural reader (§4.2) |
//! | `deadline-infeasible` | deny | static *lower* latency bound already busts the SLO (§4.3) |
//! | `deadline-at-risk`   | warn | static *upper* latency bound busts the SLO, lower meets it (§4.3) |
//! | `bound-unsound`      | deny | DES peak bytes and TTFT/TPOT stay inside the static bounds (§4.2, §4.3) |
//! | `retry-storm`        | deny | fleet retry policies are storm-safe: bounded, backed-off, jittered (§6) |
//! | `shed-starvation`    | warn | load shedding never starves a class while the fleet is idle (§6) |
//! | `breaker-skip-probe` | deny | breakers only re-close via a successful half-open probe (§6) |
//! | `retry-past-deadline` | deny | no dispatch after the request's lost-penalty deadline (§6) |
//! | `shed-inversion`     | deny | no lower-priority admit while a higher class sheds, same census epoch (§6) |
//! | `census-staleness`   | warn | routing decisions see a census within the probe contract (§6) |
//! | `storm-amplification` | deny | in-window retries bounded by K× offered load + slack (§6) |
//! | `brownout-unshed`    | warn | no blind batch admission mid-storm without shed or fresh census (§6) |
//! | `policy-livelock`    | deny | every product-automaton state can reach a resolution (§6) |
//! | `retry-unbounded`    | deny | no failure cycle that never consumes retry budget (§6) |
//! | `breaker-trap`       | deny | every Open breaker state can escape to HalfOpen (§6) |
//! | `promotion-legality` | deny | every Promote verdict follows a cleanly completed stage (§6) |
//! | `rollback-completeness` | deny | every canary revert follows a Rollback, inside the stage window (§6) |
//! | `blast-radius`       | deny | canary exposure inside stage k stays within ⌈devices·pct/100⌉ (§6) |
//! | `rollout-stuck`      | deny | a rollout terminates, consistently with its stage verdicts (§6) |
//! | `rollback-missed`    | deny | no stage with regressing re-derived deltas is promoted (§6) |
//! | `canary-starved`     | warn | decided stages carry at least the minimum canary evidence (§6) |
//!
//! The trace rules ([`timeline`]) re-check exported `--trace-out`
//! files from the outside — `analyze timeline <FILE>` parses the JSON
//! like a trace viewer would, so exporter regressions fail CI.
//!
//! The last four rules are *dynamic-evidence* rules: they run over a
//! typed concurrency event log ([`heterollm::trace::ConcurrencyLog`])
//! either recorded by the engines or lowered from a [`SyncSchedule`]
//! by [`race::log_from_schedule`], using a three-actor vector clock to
//! decide happens-before ([`race`]) and a bounded exhaustive replay of
//! legal orderings to certify output determinism ([`explore`]).
//!
//! The fleet rules ([`fleet`]) gate the `hetero-fleet` serving layer:
//! `retry-storm` statically rejects retry policies that amplify
//! correlated faults, and `shed-starvation` reads a finished fleet
//! arm report as dynamic evidence that admission control starved a
//! priority class while capacity sat idle (`analyze fleet` in CI).
//!
//! The temporal rules ([`monitor`], [`model_check`]) certify the fleet
//! layer's *dynamic behaviour*: a past-time-LTL evaluator sweeps a
//! typed [`hetero_fleet::FleetEventLog`] once against six named specs
//! (sliced per device, per request, or globally) — plus three
//! staged-rollout specs when the log header declares a rollout window
//! — and a bounded exhaustive model checker enumerates the
//! breaker × retry × admission product automaton to prove livelock
//! freedom, bounded retry, and Open-state escapability with exact
//! state counts (`analyze monitor` in CI). The rollout ladder gets the
//! same treatment: [`model_check::check_rollout_product`] proves
//! promotion reachable and rollback reachable from *every* non-terminal
//! rollout state, and the [`rollout`] evidence rules re-derive every
//! stage verdict of a finished [`hetero_fleet::RolloutReport`] from its
//! echoed thresholds.
//!
//! The bound rules ([`bound`]) are the analyzer's cost layer: a
//! generic join-semilattice worklist interpreter over the submission
//! DAG propagates `[lo, hi]` cost intervals and running-peak footprint
//! states, and every static bound is gated against the discrete-event
//! simulator (`analyze bound` in CI).
//!
//! Findings are typed [`Diagnostic`]s aggregated into a [`Report`] with
//! a stable JSON encoding (`Report::to_json`). The `analyze` binary
//! lints solver output across the paper's model configurations and
//! exits non-zero on deny-level findings, so CI can gate on it.
//!
//! The invariant *predicates* live beside the plan types in
//! [`hetero_graph::partition`]; the solver re-checks its own output
//! through them in debug builds (its `validate` feature). This crate
//! adds the rule registry, severities, locations, reporting, and the
//! checks that need more context than a single plan.

pub mod bound;
pub mod diag;
pub mod explore;
pub mod fallback;
pub mod fleet;
pub mod mem;
pub mod model_check;
pub mod monitor;
pub mod plan_rules;
pub mod race;
pub mod rollout;
pub mod rules;
pub mod sched;
pub mod sweep;
pub mod timeline;

pub use bound::{
    bound_lint_degraded_session, bound_lint_models, model_bounds, schedule_completion_interval,
    schedule_peak_bytes, solve_forward, AbstractDomain, ModelBounds, PeakBytes, DEFAULT_POOL_BYTES,
};
pub use diag::{Diagnostic, Report, Severity, Summary};
pub use explore::{explore_schedule, DeterminismCertificate, ExploreConfig};
pub use fallback::check_fallback;
pub use fleet::{check_fleet_arm, check_retry_policy};
pub use mem::{check_regions, TensorRegion};
pub use model_check::{
    check_policy_product, check_rollout_product, ModelOptions, PolicyAutomata, ProductCertificate,
    RolloutAutomata, RolloutCertificate, RolloutOptions,
};
pub use monitor::{
    monitor_fleet_log, Ltl, LtlMonitor, MonitorVerdict, STORM_AMPLIFICATION_FACTOR,
    STORM_AMPLIFICATION_SLACK,
};
pub use plan_rules::{check_plan, PlanContext};
pub use race::{check_log, check_schedule_races, log_from_schedule};
pub use rollout::check_rollout_report;
pub use rules::{rule, RuleInfo, RULES};
pub use sched::{
    check_schedule, check_unverified_sink, retry_schedule, verified_schedule, EventKind, SyncEvent,
    SyncSchedule,
};
pub use sweep::{integrity_lint_models, lint_models};
pub use timeline::check_trace;

use hetero_graph::partition::PartitionPlan;

/// Run every applicable rule against one plan: the plan-level rules, a
/// sanity check of the sync schedule the plan implies, and a
/// vector-clock race check of that schedule's lowered event log.
pub fn check_plan_full(plan: &PartitionPlan, ctx: &PlanContext) -> Vec<Diagnostic> {
    let mut out = plan_rules::check_plan(plan, ctx);
    let schedule = SyncSchedule::for_plan(plan);
    out.extend(sched::check_schedule(&schedule, &ctx.location));
    out.extend(race::check_schedule_races(
        &schedule,
        ctx.mechanism,
        &ctx.location,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_check_is_clean_on_good_plans() {
        for (plan, m, n) in [
            (PartitionPlan::GpuOnly, 300, 4096),
            (PartitionPlan::NpuOnly { padded_m: 512 }, 300, 4096),
            (
                PartitionPlan::SeqCut {
                    npu_chunks: vec![256, 32],
                    gpu_rows: 12,
                },
                300,
                4096,
            ),
            (
                PartitionPlan::HybridCut {
                    padded_m: 512,
                    gpu_cols: 1024,
                },
                300,
                4096,
            ),
        ] {
            let ctx = PlanContext::standard("test", m, n);
            let diags = check_plan_full(&plan, &ctx);
            assert!(diags.is_empty(), "{plan:?}: {diags:?}");
        }
    }

    #[test]
    fn full_check_flags_bad_plan_once_per_rule() {
        // padded_m 96: compiled-graph miss; m 100 covered (96 < 100 →
        // also a conservation violation).
        let plan = PartitionPlan::NpuOnly { padded_m: 96 };
        let ctx = PlanContext::standard("test", 100, 4096);
        let diags = check_plan_full(&plan, &ctx);
        let mut ids: Vec<&str> = diags.iter().map(|d| d.rule_id.as_str()).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec![rules::GRAPH_MEMBERSHIP, rules::SHAPE_CONSERVATION],
            "{diags:?}"
        );
    }
}
