#![warn(missing_docs)]

//! Static invariant checker for HeteroLLM partition plans, graph sets,
//! and sync schedules.
//!
//! The simulator can tell you a plan is *slow*; this crate tells you a
//! plan is *wrong* — without running anything. It checks solver output
//! and hand-built artifacts against a registry of named invariants
//! drawn from the paper's hardware constraints:
//!
//! | rule | severity | invariant |
//! |------|----------|-----------|
//! | `shape-conservation` | deny | the split covers the Matmul exactly (§4.1) |
//! | `tile-alignment`     | deny | NPU sizes fit the 32×32 systolic array (§3.2) |
//! | `graph-membership`   | deny | every NPU size has a compiled graph (§4.1.1) |
//! | `plan-normalization` | warn | degenerate splits in canonical form (§4.3) |
//! | `sync-mechanism`     | warn | fast sync used where available (§4.2) |
//! | `sync-schedule`      | deny | submission graph acyclic, rendezvous two-sided (§4.2) |
//! | `mempool-aliasing`   | deny | live pooled tensors never overlap (§4.2) |
//! | `fallback-integrity` | deny | degradation-time plans keep every invariant, acyclic under retry rescheduling (§4.2) |
//!
//! Findings are typed [`Diagnostic`]s aggregated into a [`Report`] with
//! a stable JSON encoding (`Report::to_json`). The `analyze` binary
//! lints solver output across the paper's model configurations and
//! exits non-zero on deny-level findings, so CI can gate on it.
//!
//! The invariant *predicates* live beside the plan types in
//! [`hetero_graph::partition`]; the solver re-checks its own output
//! through them in debug builds (its `validate` feature). This crate
//! adds the rule registry, severities, locations, reporting, and the
//! checks that need more context than a single plan.

pub mod diag;
pub mod fallback;
pub mod mem;
pub mod plan_rules;
pub mod rules;
pub mod sched;
pub mod sweep;

pub use diag::{Diagnostic, Report, Severity, Summary};
pub use fallback::check_fallback;
pub use mem::{check_regions, TensorRegion};
pub use plan_rules::{check_plan, PlanContext};
pub use rules::{rule, RuleInfo, RULES};
pub use sched::{check_schedule, retry_schedule, EventKind, SyncEvent, SyncSchedule};
pub use sweep::lint_models;

use hetero_graph::partition::PartitionPlan;

/// Run every applicable rule against one plan: the plan-level rules
/// plus a sanity check of the sync schedule the plan implies.
pub fn check_plan_full(plan: &PartitionPlan, ctx: &PlanContext) -> Vec<Diagnostic> {
    let mut out = plan_rules::check_plan(plan, ctx);
    let schedule = SyncSchedule::for_plan(plan);
    out.extend(sched::check_schedule(&schedule, &ctx.location));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_check_is_clean_on_good_plans() {
        for (plan, m, n) in [
            (PartitionPlan::GpuOnly, 300, 4096),
            (PartitionPlan::NpuOnly { padded_m: 512 }, 300, 4096),
            (
                PartitionPlan::SeqCut {
                    npu_chunks: vec![256, 32],
                    gpu_rows: 12,
                },
                300,
                4096,
            ),
            (
                PartitionPlan::HybridCut {
                    padded_m: 512,
                    gpu_cols: 1024,
                },
                300,
                4096,
            ),
        ] {
            let ctx = PlanContext::standard("test", m, n);
            let diags = check_plan_full(&plan, &ctx);
            assert!(diags.is_empty(), "{plan:?}: {diags:?}");
        }
    }

    #[test]
    fn full_check_flags_bad_plan_once_per_rule() {
        // padded_m 96: compiled-graph miss; m 100 covered (96 < 100 →
        // also a conservation violation).
        let plan = PartitionPlan::NpuOnly { padded_m: 96 };
        let ctx = PlanContext::standard("test", 100, 4096);
        let diags = check_plan_full(&plan, &ctx);
        let mut ids: Vec<&str> = diags.iter().map(|d| d.rule_id.as_str()).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec![rules::GRAPH_MEMBERSHIP, rules::SHAPE_CONSERVATION],
            "{diags:?}"
        );
    }
}
