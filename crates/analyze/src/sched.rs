//! Sync-schedule sanity: the happens-before graph over GPU/NPU
//! submissions and rendezvous points (§4.2).
//!
//! A partition plan implies a small dependency graph: kernel
//! submissions on each backend, serial backend switches, and — for
//! parallel plans — a rendezvous where both sides' results become
//! visible. The checker verifies the graph can actually execute: waits
//! are acyclic, reference real events, and every rendezvous joins both
//! backends (a one-sided rendezvous is a wait on nothing and models a
//! lost synchronization).

use hetero_graph::partition::PartitionPlan;
use hetero_soc::Backend;
use serde::{Deserialize, Serialize};

use crate::diag::Diagnostic;
use crate::rules;

/// What one schedule event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Kernel (or graph) submission on a backend.
    Submit,
    /// Serial handoff of a tensor to another backend.
    Switch,
    /// Parallel-section join: both backends' results become visible.
    Rendezvous,
    /// ABFT checksum verification of a submission's output on the CPU
    /// control plane (the data-integrity layer's detection point).
    Verify,
}

/// One node in the happens-before graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncEvent {
    /// Human-readable label, e.g. `"npu chunk 512"`.
    pub label: String,
    /// Backend the event runs on (rendezvous: the waiting side).
    pub backend: Backend,
    /// Event kind.
    pub kind: EventKind,
    /// Indices of events that must complete before this one starts.
    pub waits_on: Vec<usize>,
}

/// A happens-before graph over submissions and rendezvous points.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncSchedule {
    /// Events in submission order.
    pub events: Vec<SyncEvent>,
}

impl SyncSchedule {
    /// The canonical schedule a [`PartitionPlan`] implies.
    ///
    /// Serial NPU plans chain a backend switch into the NPU dispatches;
    /// parallel plans submit both sides independently and join them
    /// with a rendezvous on the CPU control plane.
    pub fn for_plan(plan: &PartitionPlan) -> Self {
        let mut events = Vec::new();
        let mut submit = |label: String, backend: Backend, waits_on: Vec<usize>| {
            events.push(SyncEvent {
                label,
                backend,
                kind: EventKind::Submit,
                waits_on,
            });
            events.len() - 1
        };
        match plan {
            PartitionPlan::GpuOnly => {
                submit("gpu kernel".into(), Backend::Gpu, vec![]);
            }
            PartitionPlan::NpuOnly { padded_m } => {
                let s = submit(format!("npu graph {padded_m}"), Backend::Npu, vec![]);
                events.push(SyncEvent {
                    label: "switch to gpu consumer".into(),
                    backend: Backend::Npu,
                    kind: EventKind::Switch,
                    waits_on: vec![s],
                });
            }
            PartitionPlan::NpuPipe { chunks, .. }
            | PartitionPlan::SeqCut {
                npu_chunks: chunks,
                gpu_rows: 0,
            } => {
                let mut prev: Option<usize> = None;
                for c in chunks {
                    let waits = prev.map(|p| vec![p]).unwrap_or_default();
                    prev = Some(submit(format!("npu chunk {c}"), Backend::Npu, waits));
                }
                events.push(SyncEvent {
                    label: "switch to gpu consumer".into(),
                    backend: Backend::Npu,
                    kind: EventKind::Switch,
                    waits_on: prev.map(|p| vec![p]).unwrap_or_default(),
                });
            }
            PartitionPlan::RowCut { gpu_cols, padded_m }
            | PartitionPlan::HybridCut { padded_m, gpu_cols } => {
                let g = submit(format!("gpu cols {gpu_cols}"), Backend::Gpu, vec![]);
                let n = submit(format!("npu graph {padded_m}"), Backend::Npu, vec![]);
                events.push(SyncEvent {
                    label: "rendezvous".into(),
                    backend: Backend::Cpu,
                    kind: EventKind::Rendezvous,
                    waits_on: vec![g, n],
                });
            }
            PartitionPlan::SeqCut {
                npu_chunks,
                gpu_rows,
            } => {
                let g = submit(format!("gpu rows {gpu_rows}"), Backend::Gpu, vec![]);
                let mut prev: Option<usize> = None;
                for c in npu_chunks {
                    let waits = prev.map(|p| vec![p]).unwrap_or_default();
                    prev = Some(submit(format!("npu chunk {c}"), Backend::Npu, waits));
                }
                let mut waits = vec![g];
                waits.extend(prev);
                events.push(SyncEvent {
                    label: "rendezvous".into(),
                    backend: Backend::Cpu,
                    kind: EventKind::Rendezvous,
                    waits_on: waits,
                });
            }
        }
        Self { events }
    }

    /// Indices reachable (transitively waited on) from `from`.
    fn reachable(&self, from: usize) -> Vec<usize> {
        let mut seen = vec![false; self.events.len()];
        let mut stack = vec![from];
        while let Some(i) = stack.pop() {
            for &w in &self.events[i].waits_on {
                if w < self.events.len() && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        (0..self.events.len()).filter(|&i| seen[i]).collect()
    }
}

/// The schedule after every rendezvous times out once and is retried
/// (the runtime controller's bounded-retry reaction to flaky fast
/// sync).
///
/// For each rendezvous, the latest upstream submission on each backend
/// is re-submitted — happening after both its original submission
/// (queue program order) and the failed rendezvous (the timeout that
/// triggers the retry) — and a fresh rendezvous joins the retries.
/// The derived schedule must pass [`check_schedule`] like any other:
/// retrying must never introduce a cycle, and a retried rendezvous
/// must still join both backends (it cannot if the original was
/// one-sided — the lost side has nothing to re-submit).
pub fn retry_schedule(base: &SyncSchedule) -> SyncSchedule {
    let mut out = base.clone();
    for r in 0..base.events.len() {
        if base.events[r].kind != EventKind::Rendezvous {
            continue;
        }
        let upstream = base.reachable(r);
        let mut retry_waits = Vec::new();
        for backend in [Backend::Gpu, Backend::Npu] {
            let resubmit = upstream.iter().copied().rev().find(|&u| {
                base.events[u].backend == backend && base.events[u].kind == EventKind::Submit
            });
            if let Some(s) = resubmit {
                out.events.push(SyncEvent {
                    label: format!("retry {}", base.events[s].label),
                    backend,
                    kind: EventKind::Submit,
                    waits_on: vec![s, r],
                });
                retry_waits.push(out.events.len() - 1);
            }
        }
        out.events.push(SyncEvent {
            label: format!("retry {}", base.events[r].label),
            backend: base.events[r].backend,
            kind: EventKind::Rendezvous,
            waits_on: retry_waits,
        });
    }
    out
}

/// The schedule with the integrity layer's verification pass woven in.
///
/// Every submission gains a CPU-side [`EventKind::Verify`] node that
/// checks its output's ABFT row checksums, and every consumer that
/// originally waited on the submission is rerouted to wait on the
/// verify node instead: downstream work may only observe *verified*
/// data. The derived schedule must still pass [`check_schedule`]
/// (rendezvous pairing looks through verify nodes transitively) and,
/// unlike the base schedule, passes [`check_unverified_sink`].
pub fn verified_schedule(base: &SyncSchedule) -> SyncSchedule {
    let n = base.events.len();
    // New index of each base event once verify nodes are spliced in
    // directly after their submissions (splicing, not appending, keeps
    // each verify adjacent to its producer in submission order, which
    // the race-detector lowering relies on).
    let mut new_idx = Vec::with_capacity(n);
    let mut next = 0usize;
    for e in &base.events {
        new_idx.push(next);
        next += if e.kind == EventKind::Submit { 2 } else { 1 };
    }
    let reroute = |w: usize| -> usize {
        match base.events.get(w) {
            // Consumers of a submission wait on its verify node.
            Some(e) if e.kind == EventKind::Submit => new_idx[w] + 1,
            Some(_) => new_idx[w],
            // Keep dangling waits dangling past the new length.
            None => next + (w - n),
        }
    };
    let mut events = Vec::with_capacity(next);
    for e in &base.events {
        let mut rerouted = e.clone();
        rerouted.waits_on = e.waits_on.iter().map(|&w| reroute(w)).collect();
        let is_submit = e.kind == EventKind::Submit;
        let idx = events.len();
        events.push(rerouted);
        if is_submit {
            events.push(SyncEvent {
                label: format!("verify {}", e.label),
                backend: Backend::Cpu,
                kind: EventKind::Verify,
                waits_on: vec![idx],
            });
        }
    }
    SyncSchedule { events }
}

/// Check that no submission's output can reach a sink unverified.
///
/// Walks forward from every submission over the dependents edges.
/// A path that reaches a [`EventKind::Verify`] node is absorbed there —
/// that data was checked before anything downstream consumed it. A
/// path that ends at a non-verify sink (or a submission nobody
/// consumes at all) means corrupted output could silently flow into a
/// result, and is flagged under the `unverified-sink` rule.
pub fn check_unverified_sink(schedule: &SyncSchedule, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = schedule.events.len();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in schedule.events.iter().enumerate() {
        for &w in &e.waits_on {
            if w < n {
                dependents[w].push(i);
            }
        }
    }
    let info = rules::rule(rules::UNVERIFIED_SINK).expect("registered");
    for (s, ev) in schedule.events.iter().enumerate() {
        if ev.kind != EventKind::Submit {
            continue;
        }
        // Forward BFS, absorbed at verify nodes.
        let mut seen = vec![false; n];
        let mut stack = vec![s];
        seen[s] = true;
        let mut leak: Option<usize> = None;
        while let Some(i) = stack.pop() {
            if schedule.events[i].kind == EventKind::Verify {
                continue;
            }
            if dependents[i].is_empty() {
                leak = Some(i);
                break;
            }
            for &d in &dependents[i] {
                if !seen[d] {
                    seen[d] = true;
                    stack.push(d);
                }
            }
        }
        if let Some(sink) = leak {
            let what = if sink == s {
                "is consumed by nothing".into()
            } else {
                format!(
                    "flows unverified into sink '{}'",
                    schedule.events[sink].label
                )
            };
            out.push(Diagnostic {
                rule_id: rules::UNVERIFIED_SINK.into(),
                severity: info.severity,
                location: location.into(),
                message: format!("submission '{}' {what}", ev.label),
                suggestion: Some(
                    "insert a Verify event between the submission and its consumers \
                     (see verified_schedule)"
                        .into(),
                ),
            });
        }
    }
    out
}

fn emit(out: &mut Vec<Diagnostic>, location: &str, message: String, suggestion: Option<String>) {
    let info = rules::rule(rules::SYNC_SCHEDULE).expect("registered");
    out.push(Diagnostic {
        rule_id: rules::SYNC_SCHEDULE.into(),
        severity: info.severity,
        location: location.into(),
        message,
        suggestion,
    });
}

/// Check a sync schedule's happens-before graph.
pub fn check_schedule(schedule: &SyncSchedule, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = schedule.events.len();

    // Dangling waits.
    for (i, e) in schedule.events.iter().enumerate() {
        for &w in &e.waits_on {
            if w >= n {
                emit(
                    &mut out,
                    location,
                    format!("event {i} ({}) waits on nonexistent event {w}", e.label),
                    None,
                );
            }
        }
    }

    // Cyclic waits (Kahn's algorithm on the in-range edges): an event
    // becomes ready once everything it waits on has executed.
    let mut remaining_deps: Vec<usize> = schedule
        .events
        .iter()
        .map(|e| e.waits_on.iter().filter(|&&w| w < n).count())
        .collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_deps[i] == 0).collect();
    let mut executed = 0usize;
    // Reverse adjacency: dependency → dependents.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in schedule.events.iter().enumerate() {
        for &w in &e.waits_on {
            if w < n {
                dependents[w].push(i);
            }
        }
    }
    while let Some(i) = ready.pop() {
        executed += 1;
        for &d in &dependents[i] {
            remaining_deps[d] -= 1;
            if remaining_deps[d] == 0 {
                ready.push(d);
            }
        }
    }
    if executed < n {
        let stuck: Vec<String> = (0..n)
            .filter(|&i| remaining_deps[i] > 0)
            .map(|i| schedule.events[i].label.clone())
            .collect();
        emit(
            &mut out,
            location,
            format!("cyclic waits: events {stuck:?} can never execute"),
            Some("break the cycle; a rendezvous must not be waited on by its inputs".into()),
        );
    }

    // Rendezvous pairing: each rendezvous must (transitively) wait on
    // at least one GPU and one NPU submission.
    for (i, e) in schedule.events.iter().enumerate() {
        if e.kind != EventKind::Rendezvous {
            continue;
        }
        let upstream = schedule.reachable(i);
        let sees = |b: Backend| {
            upstream.iter().any(|&u| {
                schedule.events[u].backend == b && schedule.events[u].kind == EventKind::Submit
            })
        };
        if !sees(Backend::Gpu) || !sees(Backend::Npu) {
            emit(
                &mut out,
                location,
                format!(
                    "rendezvous '{}' does not join both backends (waits on {:?})",
                    e.label, e.waits_on
                ),
                Some("a rendezvous must wait on at least one GPU and one NPU submission".into()),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(label: &str, backend: Backend, kind: EventKind, waits_on: Vec<usize>) -> SyncEvent {
        SyncEvent {
            label: label.into(),
            backend,
            kind,
            waits_on,
        }
    }

    #[test]
    fn accepts_parallel_plan_schedule() {
        let plan = PartitionPlan::SeqCut {
            npu_chunks: vec![512, 32],
            gpu_rows: 56,
        };
        let s = SyncSchedule::for_plan(&plan);
        assert!(check_schedule(&s, "test").is_empty());
        // 1 GPU submit + 2 NPU chunks + rendezvous.
        assert_eq!(s.events.len(), 4);
    }

    #[test]
    fn accepts_serial_plan_schedules() {
        for plan in [
            PartitionPlan::GpuOnly,
            PartitionPlan::NpuOnly { padded_m: 256 },
            PartitionPlan::NpuPipe {
                chunks: vec![1024, 64],
                padded_rows: 4,
            },
        ] {
            let s = SyncSchedule::for_plan(&plan);
            assert!(check_schedule(&s, "test").is_empty(), "{plan:?}");
        }
    }

    #[test]
    fn rejects_cyclic_waits() {
        let s = SyncSchedule {
            events: vec![
                ev("a", Backend::Gpu, EventKind::Submit, vec![1]),
                ev("b", Backend::Npu, EventKind::Submit, vec![0]),
            ],
        };
        let diags = check_schedule(&s, "test");
        assert!(
            diags.iter().any(|d| d.message.contains("cyclic")),
            "{diags:?}"
        );
    }

    #[test]
    fn rejects_one_sided_rendezvous() {
        let s = SyncSchedule {
            events: vec![
                ev("gpu", Backend::Gpu, EventKind::Submit, vec![]),
                ev("join", Backend::Cpu, EventKind::Rendezvous, vec![0]),
            ],
        };
        let diags = check_schedule(&s, "test");
        assert!(
            diags.iter().any(|d| d.message.contains("both backends")),
            "{diags:?}"
        );
    }

    #[test]
    fn rejects_dangling_wait() {
        let s = SyncSchedule {
            events: vec![ev("a", Backend::Gpu, EventKind::Submit, vec![7])],
        };
        let diags = check_schedule(&s, "test");
        assert!(
            diags.iter().any(|d| d.message.contains("nonexistent")),
            "{diags:?}"
        );
    }

    #[test]
    fn retry_reschedules_each_rendezvous_acyclically() {
        let plan = PartitionPlan::SeqCut {
            npu_chunks: vec![512, 32],
            gpu_rows: 56,
        };
        let base = SyncSchedule::for_plan(&plan);
        let retried = retry_schedule(&base);
        // One retry submit per backend plus a retried rendezvous.
        assert_eq!(retried.events.len(), base.events.len() + 3);
        assert!(check_schedule(&retried, "test").is_empty());
        // Serial plans have no rendezvous: retry is the identity.
        let serial = SyncSchedule::for_plan(&PartitionPlan::NpuOnly { padded_m: 256 });
        assert_eq!(retry_schedule(&serial), serial);
    }

    #[test]
    fn retry_of_one_sided_rendezvous_stays_one_sided() {
        let s = SyncSchedule {
            events: vec![
                ev("gpu", Backend::Gpu, EventKind::Submit, vec![]),
                ev("join", Backend::Cpu, EventKind::Rendezvous, vec![0]),
            ],
        };
        let diags = check_schedule(&retry_schedule(&s), "test");
        // Both the original and the retried rendezvous are flagged: the
        // lost side has nothing to re-submit.
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.message.contains("both backends"))
                .count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn base_plan_schedules_have_unverified_sinks() {
        // Without the integrity layer, every plan's outputs reach a
        // sink unchecked — the negative case the rule exists for.
        for plan in [
            PartitionPlan::GpuOnly,
            PartitionPlan::NpuOnly { padded_m: 256 },
            PartitionPlan::RowCut {
                gpu_cols: 1024,
                padded_m: 256,
            },
            PartitionPlan::SeqCut {
                npu_chunks: vec![512, 32],
                gpu_rows: 56,
            },
        ] {
            let s = SyncSchedule::for_plan(&plan);
            assert!(!check_unverified_sink(&s, "test").is_empty(), "{plan:?}");
        }
    }

    #[test]
    fn verified_schedules_pass_both_checks() {
        for plan in [
            PartitionPlan::GpuOnly,
            PartitionPlan::NpuOnly { padded_m: 256 },
            PartitionPlan::NpuPipe {
                chunks: vec![1024, 64],
                padded_rows: 4,
            },
            PartitionPlan::RowCut {
                gpu_cols: 1024,
                padded_m: 256,
            },
            PartitionPlan::SeqCut {
                npu_chunks: vec![512, 32],
                gpu_rows: 56,
            },
        ] {
            let v = verified_schedule(&SyncSchedule::for_plan(&plan));
            assert!(check_schedule(&v, "test").is_empty(), "{plan:?}");
            assert!(check_unverified_sink(&v, "test").is_empty(), "{plan:?}");
        }
    }

    #[test]
    fn verified_schedule_adds_one_verify_per_submit() {
        let base = SyncSchedule::for_plan(&PartitionPlan::SeqCut {
            npu_chunks: vec![512, 32],
            gpu_rows: 56,
        });
        let submits = base
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Submit)
            .count();
        let v = verified_schedule(&base);
        assert_eq!(v.events.len(), base.events.len() + submits);
        // The rendezvous now waits only on verify nodes.
        let r = v
            .events
            .iter()
            .find(|e| e.kind == EventKind::Rendezvous)
            .unwrap();
        for &w in &r.waits_on {
            assert_eq!(v.events[w].kind, EventKind::Verify);
        }
    }

    #[test]
    fn unverified_sink_names_the_leak() {
        // submit → switch (sink): the diagnostic should name the sink.
        let s = SyncSchedule::for_plan(&PartitionPlan::NpuOnly { padded_m: 256 });
        let diags = check_unverified_sink(&s, "test");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("switch to gpu consumer"));
        assert_eq!(diags[0].rule_id, rules::UNVERIFIED_SINK);
        // A lone submission is flagged as consumed by nothing.
        let lone = SyncSchedule::for_plan(&PartitionPlan::GpuOnly);
        let diags = check_unverified_sink(&lone, "test");
        assert!(diags[0].message.contains("consumed by nothing"));
    }

    #[test]
    fn rendezvous_sees_transitive_submissions() {
        // GPU → switch → rendezvous also waiting on NPU: the GPU submit
        // is only reachable through the intermediate event.
        let s = SyncSchedule {
            events: vec![
                ev("gpu", Backend::Gpu, EventKind::Submit, vec![]),
                ev("stage", Backend::Gpu, EventKind::Switch, vec![0]),
                ev("npu", Backend::Npu, EventKind::Submit, vec![]),
                ev("join", Backend::Cpu, EventKind::Rendezvous, vec![1, 2]),
            ],
        };
        assert!(check_schedule(&s, "test").is_empty());
    }
}
