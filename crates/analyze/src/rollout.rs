//! Staged-rollout evidence rules: `rollout-stuck`, `rollback-missed`,
//! and `canary-starved`.
//!
//! These read a finished [`RolloutReport`] — the all-integer evidence
//! `rollout_sweep` emits — and re-derive every stage verdict from the
//! echoed thresholds, independently of the controller that produced
//! it:
//!
//! - `rollout-stuck` (deny): the rollout must *terminate* — the
//!   outcome is `promoted` or `rolled-back`, and is consistent with
//!   the per-stage verdicts (promotion requires every stage clean and
//!   a 100% final stage; a rollback outcome requires a non-clean final
//!   stage verdict).
//! - `rollback-missed` (deny): a stage whose re-derived
//!   canary-vs-control deltas regress past the echoed thresholds must
//!   not carry a `promote` verdict — the controller shipped a
//!   regressing candidate further down the ladder.
//! - `canary-starved` (warn): a decided sub-100% stage must have
//!   served the canary cohort at least `min_canary_samples`
//!   completions; below that the verdict carries no statistical
//!   weight (the shipped controller rolls back conservatively and
//!   marks the stage `starved`).

use hetero_fleet::{RolloutReport, StageReport};

use crate::diag::{Diagnostic, Severity};
use crate::rules;

fn diag(rule_id: &str, severity: Severity, location: String, message: String) -> Diagnostic {
    Diagnostic {
        rule_id: rule_id.into(),
        severity,
        location,
        message,
        suggestion: None,
    }
}

/// The controller's regression predicate, re-derived from the echoed
/// thresholds (kept in lockstep with
/// `hetero_fleet::rollout::RolloutConfig`-driven verdicts).
fn regressed(report: &RolloutReport, stage: &StageReport) -> bool {
    if stage.pct < 100 {
        let tail_ok = stage.canary_served >= report.tail_min_samples
            && stage.control_served >= report.tail_min_samples;
        stage.canary_attainment_ppm + report.max_attainment_drop_ppm < stage.control_attainment_ppm
            || (stage.control_service_p50_ppm > 0
                && stage.canary_service_p50_ppm.saturating_mul(100)
                    > stage
                        .control_service_p50_ppm
                        .saturating_mul(100 + report.max_p50_regress_pct))
            || (tail_ok
                && stage.control_service_p99_ppm > 0
                && stage.canary_service_p99_ppm.saturating_mul(100)
                    > stage
                        .control_service_p99_ppm
                        .saturating_mul(100 + report.max_p99_regress_pct))
    } else {
        // The 100% stage has no control group: the fleet-wide window
        // attainment is compared against the baseline window.
        report.final_attainment_ppm + report.max_attainment_drop_ppm
            < report.baseline_attainment_ppm
    }
}

/// Check one finished rollout report against the three rollout
/// evidence rules.
pub fn check_rollout_report(report: &RolloutReport, location: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let loc = |stage: &StageReport| format!("{location}/stage-{}", stage.stage);

    // rollout-stuck: the run terminated, consistently with its stages.
    let terminal = matches!(report.outcome.as_str(), "promoted" | "rolled-back");
    if !terminal {
        out.push(diag(
            rules::ROLLOUT_STUCK,
            Severity::Deny,
            location.into(),
            format!(
                "rollout outcome `{}` is not a terminal verdict (promoted / rolled-back)",
                report.outcome
            ),
        ));
    } else {
        let clean_prefix = report
            .stages
            .iter()
            .take(report.stages.len().saturating_sub(1))
            .all(|s| s.verdict == "promote");
        let last = report.stages.last();
        let consistent = match (report.outcome.as_str(), last) {
            ("promoted", Some(last)) => {
                clean_prefix && last.verdict == "promote" && last.pct == 100
            }
            ("rolled-back", Some(last)) => clean_prefix && last.verdict != "promote",
            _ => false,
        };
        if !consistent {
            out.push(diag(
                rules::ROLLOUT_STUCK,
                Severity::Deny,
                location.into(),
                format!(
                    "outcome `{}` is inconsistent with the stage verdicts [{}]",
                    report.outcome,
                    report
                        .stages
                        .iter()
                        .map(|s| s.verdict.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }

    for stage in &report.stages {
        // rollback-missed: promote verdicts must survive re-derivation.
        if stage.verdict == "promote" && regressed(report, stage) {
            out.push(diag(
                rules::ROLLBACK_MISSED,
                Severity::Deny,
                loc(stage),
                format!(
                    "stage {} ({}%) was promoted but its deltas regress past the echoed \
                     thresholds (attainment {} vs {} ppm, service p50 {} vs {} ppm, \
                     p99 {} vs {} ppm)",
                    stage.stage,
                    stage.pct,
                    stage.canary_attainment_ppm,
                    stage.control_attainment_ppm,
                    stage.canary_service_p50_ppm,
                    stage.control_service_p50_ppm,
                    stage.canary_service_p99_ppm,
                    stage.control_service_p99_ppm,
                ),
            ));
        }
        // canary-starved: decided sub-100% stages carried evidence.
        if stage.pct < 100 && stage.canary_served < report.min_canary_samples {
            out.push(diag(
                rules::CANARY_STARVED,
                Severity::Warn,
                loc(stage),
                format!(
                    "stage {} ({}%) decided on {} canary completions, below the {}-sample \
                     minimum — the verdict carries no statistical weight",
                    stage.stage, stage.pct, stage.canary_served, report.min_canary_samples,
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(no: u32, pct: u32, verdict: &str) -> StageReport {
        StageReport {
            stage: no,
            pct,
            canary_devices: 5,
            canary_served: 100,
            control_served: 900,
            canary_attainment_ppm: 950_000,
            control_attainment_ppm: 940_000,
            canary_ttft_p50_ns: 40_000_000,
            control_ttft_p50_ns: 41_000_000,
            canary_ttft_p99_ns: 200_000_000,
            control_ttft_p99_ns: 210_000_000,
            canary_service_p50_ppm: 1_000_000,
            control_service_p50_ppm: 1_000_000,
            canary_service_p99_ppm: 1_400_000,
            control_service_p99_ppm: 1_350_000,
            lost: 0,
            drift_resolves: 0,
            verdict: verdict.into(),
        }
    }

    fn promoted_report() -> RolloutReport {
        RolloutReport {
            candidate: "good".into(),
            revision: 1,
            seed: 42,
            devices: 256,
            requests: 1500,
            baseline_attainment_ppm: 930_000,
            baseline_ttft_p99_ns: 250_000_000,
            final_attainment_ppm: 940_000,
            outcome: "promoted".into(),
            final_stage: 4,
            exposed_devices: 256,
            exposed_ppm: 1_000_000,
            rollback_latency_ns: 0,
            lost: 0,
            min_canary_samples: 8,
            max_attainment_drop_ppm: 150_000,
            max_p50_regress_pct: 50,
            max_p99_regress_pct: 100,
            tail_min_samples: 128,
            stages: vec![
                stage(1, 1, "promote"),
                stage(2, 10, "promote"),
                stage(3, 50, "promote"),
                stage(4, 100, "promote"),
            ],
        }
    }

    #[test]
    fn consistent_promotion_is_clean() {
        let diags = check_rollout_report(&promoted_report(), "rollout[42]");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn consistent_rollback_is_clean() {
        let mut report = promoted_report();
        report.outcome = "rolled-back".into();
        report.final_stage = 2;
        report.rollback_latency_ns = 5_000_000_000;
        report.stages.truncate(2);
        report.stages[1].verdict = "rollback".into();
        report.stages[1].canary_attainment_ppm = 600_000;
        let diags = check_rollout_report(&report, "rollout[42]");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn non_terminal_outcome_is_rollout_stuck() {
        let mut report = promoted_report();
        report.outcome = "deciding".into();
        let diags = check_rollout_report(&report, "rollout[42]");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::ROLLOUT_STUCK);
    }

    #[test]
    fn outcome_contradicting_verdicts_is_rollout_stuck() {
        // Claimed promoted while a stage verdict says rollback.
        let mut report = promoted_report();
        report.stages[2].verdict = "rollback".into();
        report.stages[2].canary_attainment_ppm = 600_000;
        let diags = check_rollout_report(&report, "rollout[42]");
        assert!(
            diags.iter().any(|d| d.rule_id == rules::ROLLOUT_STUCK),
            "{diags:?}"
        );
        // Claimed promoted without reaching the 100% stage.
        let mut short = promoted_report();
        short.stages.truncate(2);
        let diags = check_rollout_report(&short, "rollout[42]");
        assert!(
            diags.iter().any(|d| d.rule_id == rules::ROLLOUT_STUCK),
            "{diags:?}"
        );
    }

    #[test]
    fn promote_on_regressed_deltas_is_rollback_missed() {
        // Attainment drop past the threshold.
        let mut report = promoted_report();
        report.stages[1].canary_attainment_ppm = 700_000;
        let diags = check_rollout_report(&report, "rollout[42]");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::ROLLBACK_MISSED);
        assert!(diags[0].location.ends_with("/stage-2"));

        // Median normalized-service blowup on a promoted stage.
        let mut report = promoted_report();
        report.stages[0].canary_service_p50_ppm = 2_000_000;
        let diags = check_rollout_report(&report, "rollout[42]");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::ROLLBACK_MISSED);

        // p99 blowup only counts once both groups clear the tail
        // sample floor.
        let mut report = promoted_report();
        report.stages[0].canary_service_p99_ppm = 4_000_000;
        report.stages[0].canary_served = 64; // below tail_min_samples
        assert!(check_rollout_report(&report, "rollout[42]").is_empty());
        report.stages[0].canary_served = 200;
        let diags = check_rollout_report(&report, "rollout[42]");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::ROLLBACK_MISSED);
    }

    #[test]
    fn thin_canary_evidence_warns_starved() {
        let mut report = promoted_report();
        report.stages[0].canary_served = 3;
        let diags = check_rollout_report(&report, "rollout[42]");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule_id, rules::CANARY_STARVED);
        assert_eq!(diags[0].severity, Severity::Warn);
    }
}
