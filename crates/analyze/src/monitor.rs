//! Past-time-LTL certification of fleet event logs.
//!
//! [`monitor_fleet_log`] runs a one-pass incremental sweep over a
//! canonically ordered [`FleetEventLog`] and checks a library of named
//! temporal specs — the policy-monitoring gate ROADMAP item 5 calls
//! for. Each spec is a past-time LTL formula ([`Ltl`]) over event
//! atoms, evaluated by [`LtlMonitor`] in O(|formula|) per event with
//! O(1) state per subformula:
//!
//! | operator | semantics at position `i` |
//! |---|---|
//! | `Yesterday φ` | `φ` held at `i−1` (false at the first position) |
//! | `Once φ` | `φ` held at some `j ≤ i` |
//! | `Historically φ` | `φ` held at every `j ≤ i` |
//! | `φ Since ψ` | some `j ≤ i` had `ψ`, and `φ` held at every position after `j` |
//! | `OnceWithin(φ, d)` | `φ` held at some `j ≤ i` with `t_i − t_j ≤ d` ns |
//! | `CountLe{φ, ρ, k, χ, c}` | `#φ ≤ k·#χ + c`, both counted since the last `ρ` |
//!
//! Specs are *sliced*: per-device, per-request, or global monitor
//! instances are spun up lazily per slice key, so one sweep certifies
//! every device's breaker discipline and every request's deadline at
//! once. Because the log is normalized to a content-based total order
//! first, the verdict is identical under any per-device interleaved
//! merge of the same events (a proptest pins this).
//!
//! The spec library (severities in [`crate::rules`]):
//!
//! - [`rules::BREAKER_SKIP_PROBE`] — deny: per device, a logged
//!   breaker `Closed` entry must be a `ProbeSuccess` immediately
//!   preceded by the `HalfOpen` entry.
//! - [`rules::RETRY_PAST_DEADLINE`] — deny: per request, every
//!   dispatch happens within the 4×-SLO lost-penalty deadline of the
//!   request's arrival.
//! - [`rules::SHED_INVERSION`] — deny: no admission of a
//!   lower-priority request while a higher class was shed with no
//!   census refresh in between (one instance per guarded class).
//! - [`rules::CENSUS_STALENESS`] — warn: every dispatch decision has
//!   a census refresh within the probe contract behind it.
//! - [`rules::STORM_AMPLIFICATION`] — deny: at every fault-window
//!   close, retry dispatches since the window opened stay within
//!   [`STORM_AMPLIFICATION_FACTOR`]× the offered load plus
//!   [`STORM_AMPLIFICATION_SLACK`].
//! - [`rules::BROWNOUT_UNSHED`] — warn: a batch-class admission
//!   inside a fault window requires a contract-fresh census or a shed
//!   since the window opened (no admitting batch blind mid-storm).
//!
//! Rollout logs (`rollout_window_ns > 0` in the header) additionally
//! arm three staged-rollout specs:
//!
//! - [`rules::PROMOTION_LEGALITY`] — deny: every `Promote` verdict
//!   immediately follows a cleanly completed stage — no verdict since
//!   that stage opened.
//! - [`rules::ROLLBACK_COMPLETENESS`] — deny: every baseline-revert
//!   `ProfileUpdate` follows a `Rollback` with no newer stage between
//!   them, and every `Rollback` lands within the stage window of a
//!   `RolloutStage` event.
//! - [`rules::BLAST_RADIUS`] — deny: one instance per stage
//!   percentage; inside stage `k`, canary-apply profile updates stay
//!   within the stage's cohort bound `⌈devices × pct / 100⌉`.

use hetero_fleet::{FleetEvent, FleetEventLog, Priority, ProfileCause, ROLLOUT_STAGES};
use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::rules;

/// K in the storm-amplification bound: retries inside a fault window
/// may not exceed `K × offered + slack`.
pub const STORM_AMPLIFICATION_FACTOR: u64 = 3;
/// Additive slack in the storm-amplification bound (absorbs retries
/// scheduled just before the window that land inside it).
pub const STORM_AMPLIFICATION_SLACK: u64 = 16;

/// A past-time LTL formula over indexed boolean atoms.
#[derive(Debug, Clone)]
pub enum Ltl {
    /// The `i`-th atom of the owning spec at the current event.
    Atom(usize),
    /// Logical negation.
    Not(Box<Ltl>),
    /// Logical conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Logical disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Material implication.
    Implies(Box<Ltl>, Box<Ltl>),
    /// The operand held at the previous position.
    Yesterday(Box<Ltl>),
    /// The operand held at some past-or-present position.
    Once(Box<Ltl>),
    /// The operand held at every past-and-present position.
    Historically(Box<Ltl>),
    /// `lhs Since rhs`: `rhs` held at some past-or-present position
    /// and `lhs` held ever since (exclusive of that position).
    Since(Box<Ltl>, Box<Ltl>),
    /// The operand held at some position at most this many
    /// nanoseconds ago (timestamps, not positions).
    OnceWithin(Box<Ltl>, u64),
    /// Counting comparison: occurrences of `count` since the last
    /// `reset` stay `≤ mul × occurrences of bound + add`.
    CountLe {
        /// Counted formula.
        count: Box<Ltl>,
        /// Both counters reset (then re-accumulate) when this holds.
        reset: Box<Ltl>,
        /// Multiplier on the bounding count.
        mul: u64,
        /// Bounding formula.
        bound: Box<Ltl>,
        /// Additive slack.
        add: u64,
    },
}

impl Ltl {
    /// Atom shorthand.
    pub fn atom(i: usize) -> Self {
        Ltl::Atom(i)
    }
    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Ltl::Not(Box::new(self))
    }
    /// `self ∧ rhs`.
    pub fn and(self, rhs: Self) -> Self {
        Ltl::And(Box::new(self), Box::new(rhs))
    }
    /// `self ∨ rhs`.
    pub fn or(self, rhs: Self) -> Self {
        Ltl::Or(Box::new(self), Box::new(rhs))
    }
    /// `self → rhs`.
    pub fn implies(self, rhs: Self) -> Self {
        Ltl::Implies(Box::new(self), Box::new(rhs))
    }
    /// `Y self`.
    pub fn yesterday(self) -> Self {
        Ltl::Yesterday(Box::new(self))
    }
    /// `◇⁻ self`.
    pub fn once(self) -> Self {
        Ltl::Once(Box::new(self))
    }
    /// `□⁻ self`.
    pub fn historically(self) -> Self {
        Ltl::Historically(Box::new(self))
    }
    /// `self S rhs`.
    pub fn since(self, rhs: Self) -> Self {
        Ltl::Since(Box::new(self), Box::new(rhs))
    }
    /// `◇⁻_{≤ d ns} self`.
    pub fn once_within(self, d_ns: u64) -> Self {
        Ltl::OnceWithin(Box::new(self), d_ns)
    }
}

/// One compiled subformula node (children precede parents).
#[derive(Debug, Clone, Copy)]
enum Op {
    Atom(usize),
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Implies(usize, usize),
    Yesterday(usize),
    Once(usize),
    Historically(usize),
    Since(usize, usize),
    OnceWithin(usize, u64),
    CountLe {
        count: usize,
        reset: usize,
        mul: u64,
        bound: usize,
        add: u64,
    },
}

fn compile(f: &Ltl, ops: &mut Vec<Op>) -> usize {
    let op = match f {
        Ltl::Atom(i) => Op::Atom(*i),
        Ltl::Not(c) => Op::Not(compile(c, ops)),
        Ltl::And(a, b) => Op::And(compile(a, ops), compile(b, ops)),
        Ltl::Or(a, b) => Op::Or(compile(a, ops), compile(b, ops)),
        Ltl::Implies(a, b) => Op::Implies(compile(a, ops), compile(b, ops)),
        Ltl::Yesterday(c) => Op::Yesterday(compile(c, ops)),
        Ltl::Once(c) => Op::Once(compile(c, ops)),
        Ltl::Historically(c) => Op::Historically(compile(c, ops)),
        Ltl::Since(a, b) => Op::Since(compile(a, ops), compile(b, ops)),
        Ltl::OnceWithin(c, d) => Op::OnceWithin(compile(c, ops), *d),
        Ltl::CountLe {
            count,
            reset,
            mul,
            bound,
            add,
        } => Op::CountLe {
            count: compile(count, ops),
            reset: compile(reset, ops),
            mul: *mul,
            bound: compile(bound, ops),
            add: *add,
        },
    };
    ops.push(op);
    ops.len() - 1
}

/// Incremental evaluator for one [`Ltl`] formula: O(|formula|) work
/// and O(1) state per subformula per event.
#[derive(Debug, Clone)]
pub struct LtlMonitor {
    ops: Vec<Op>,
    root: usize,
    prev: Vec<bool>,
    cur: Vec<bool>,
    /// Timestamp of the operand's most recent hold (`OnceWithin`),
    /// `u64::MAX` = never.
    last_true: Vec<u64>,
    /// `CountLe` tallies since the last reset.
    tally: Vec<(u64, u64)>,
    first: bool,
}

impl LtlMonitor {
    /// Compile `formula` into a fresh monitor at the initial state.
    pub fn new(formula: &Ltl) -> Self {
        let mut ops = Vec::new();
        let root = compile(formula, &mut ops);
        let n = ops.len();
        Self {
            ops,
            root,
            prev: vec![false; n],
            cur: vec![false; n],
            last_true: vec![u64::MAX; n],
            tally: vec![(0, 0); n],
            first: true,
        }
    }

    /// Advance one position with the given atom values at timestamp
    /// `t_ns` (non-decreasing across calls); returns whether the
    /// formula holds at this position.
    pub fn step(&mut self, atoms: &[bool], t_ns: u64) -> bool {
        for i in 0..self.ops.len() {
            self.cur[i] = match self.ops[i] {
                Op::Atom(a) => atoms[a],
                Op::Not(c) => !self.cur[c],
                Op::And(a, b) => self.cur[a] && self.cur[b],
                Op::Or(a, b) => self.cur[a] || self.cur[b],
                Op::Implies(a, b) => !self.cur[a] || self.cur[b],
                Op::Yesterday(c) => !self.first && self.prev[c],
                Op::Once(c) => self.cur[c] || (!self.first && self.prev[i]),
                Op::Historically(c) => self.cur[c] && (self.first || self.prev[i]),
                Op::Since(p, q) => self.cur[q] || (self.cur[p] && !self.first && self.prev[i]),
                Op::OnceWithin(c, d) => {
                    if self.cur[c] {
                        self.last_true[i] = t_ns;
                    }
                    self.last_true[i] != u64::MAX && t_ns - self.last_true[i] <= d
                }
                Op::CountLe {
                    count,
                    reset,
                    mul,
                    bound,
                    add,
                } => {
                    if self.cur[reset] {
                        self.tally[i] = (0, 0);
                    }
                    if self.cur[count] {
                        self.tally[i].0 += 1;
                    }
                    if self.cur[bound] {
                        self.tally[i].1 += 1;
                    }
                    self.tally[i].0 <= mul.saturating_mul(self.tally[i].1).saturating_add(add)
                }
            };
        }
        self.prev.copy_from_slice(&self.cur);
        self.first = false;
        self.cur[self.root]
    }
}

/// How a spec's monitor instances are keyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slice {
    /// One instance for the whole log.
    Global,
    /// One instance per device id.
    PerDevice,
    /// One instance per request id.
    PerRequest,
}

type EventPred = Box<dyn Fn(&FleetEvent) -> bool>;

/// One named temporal spec: an event filter, atom extractors, and a
/// must-hold formula over them.
struct Spec {
    rule: &'static str,
    /// Instance qualifier for parameterized specs (empty otherwise).
    instance: &'static str,
    slice: Slice,
    relevant: EventPred,
    atoms: Vec<EventPred>,
    formula: Ltl,
    describe: String,
}

fn is_census(e: &FleetEvent) -> bool {
    matches!(e, FleetEvent::CensusRefresh { .. })
}

fn is_stage(e: &FleetEvent) -> bool {
    matches!(e, FleetEvent::RolloutStage { .. })
}

/// Static instance qualifier for one rollout stage percentage.
fn stage_instance(pct: u32) -> &'static str {
    match pct {
        1 => "stage-1pct",
        10 => "stage-10pct",
        50 => "stage-50pct",
        100 => "stage-100pct",
        _ => "stage",
    }
}

/// The spec library, with timing bounds taken from the log's contract
/// header.
fn build_specs(log: &FleetEventLog) -> Vec<Spec> {
    let deadline = log.deadline_ns;
    let contract = log.census_interval_ns;
    let mut specs = Vec::new();

    // breaker-skip-probe: per device, over breaker transitions only,
    //   enter_closed → probe_success ∧ Y enter_half_open.
    specs.push(Spec {
        rule: rules::BREAKER_SKIP_PROBE,
        instance: "",
        slice: Slice::PerDevice,
        relevant: Box::new(|e| matches!(e, FleetEvent::Breaker { .. })),
        atoms: vec![
            Box::new(|e| {
                matches!(
                    e,
                    FleetEvent::Breaker {
                        to: hetero_fleet::BreakerState::Closed,
                        ..
                    }
                )
            }),
            Box::new(|e| {
                matches!(
                    e,
                    FleetEvent::Breaker {
                        cause: hetero_fleet::BreakerCause::ProbeSuccess,
                        ..
                    }
                )
            }),
            Box::new(|e| {
                matches!(
                    e,
                    FleetEvent::Breaker {
                        to: hetero_fleet::BreakerState::HalfOpen,
                        ..
                    }
                )
            }),
        ],
        formula: Ltl::atom(0).implies(Ltl::atom(1).and(Ltl::atom(2).yesterday())),
        describe: "breaker closed without an immediately preceding successful half-open probe"
            .into(),
    });

    // retry-past-deadline: per request,
    //   dispatch → OnceWithin(offered, deadline).
    specs.push(Spec {
        rule: rules::RETRY_PAST_DEADLINE,
        instance: "",
        slice: Slice::PerRequest,
        relevant: Box::new(|e| {
            matches!(e, FleetEvent::Offered { .. } | FleetEvent::Dispatch { .. })
        }),
        atoms: vec![
            Box::new(|e| matches!(e, FleetEvent::Dispatch { .. })),
            Box::new(|e| matches!(e, FleetEvent::Offered { .. })),
        ],
        formula: Ltl::atom(0).implies(Ltl::atom(1).once_within(deadline)),
        describe: format!(
            "dispatch more than the lost-penalty deadline ({deadline} ns) after the request's \
             arrival"
        ),
    });

    // shed-inversion: one instance per guarded class p,
    //   ¬(admit_lower(p) ∧ ((¬census) S shed(p))).
    for guarded in [Priority::Interactive, Priority::Standard] {
        let lower_than = guarded.index();
        specs.push(Spec {
            rule: rules::SHED_INVERSION,
            instance: guarded.name(),
            slice: Slice::Global,
            relevant: Box::new(move |e| match *e {
                FleetEvent::CensusRefresh { .. } => true,
                FleetEvent::Shed { priority, .. } => priority == guarded,
                FleetEvent::Dispatch {
                    attempt, priority, ..
                } => attempt == 0 && priority.index() > lower_than,
                _ => false,
            }),
            atoms: vec![
                Box::new(move |e| match *e {
                    FleetEvent::Dispatch {
                        attempt, priority, ..
                    } => attempt == 0 && priority.index() > lower_than,
                    _ => false,
                }),
                Box::new(
                    move |e| matches!(*e, FleetEvent::Shed { priority, .. } if priority == guarded),
                ),
                Box::new(is_census),
            ],
            formula: Ltl::atom(0)
                .and(Ltl::atom(2).not().since(Ltl::atom(1)))
                .not(),
            describe: format!(
                "lower-priority request admitted while a {} request was shed in the same census \
                 epoch",
                guarded.name()
            ),
        });
    }

    // census-staleness: global,
    //   dispatch → OnceWithin(census, contract).
    specs.push(Spec {
        rule: rules::CENSUS_STALENESS,
        instance: "",
        slice: Slice::Global,
        relevant: Box::new(|e| {
            matches!(
                e,
                FleetEvent::Dispatch { .. } | FleetEvent::CensusRefresh { .. }
            )
        }),
        atoms: vec![
            Box::new(|e| matches!(e, FleetEvent::Dispatch { .. })),
            Box::new(is_census),
        ],
        formula: Ltl::atom(0).implies(Ltl::atom(1).once_within(contract)),
        describe: format!(
            "routing decision without a census refresh within the {contract} ns probe contract"
        ),
    });

    // storm-amplification: global, evaluated at fault-window close,
    //   close → #retry ≤ K·#offered + C, counted since the open.
    specs.push(Spec {
        rule: rules::STORM_AMPLIFICATION,
        instance: "",
        slice: Slice::Global,
        relevant: Box::new(|e| match *e {
            FleetEvent::FaultOpen { .. }
            | FleetEvent::FaultClose { .. }
            | FleetEvent::Offered { .. } => true,
            FleetEvent::Dispatch { attempt, .. } => attempt > 0,
            _ => false,
        }),
        atoms: vec![
            Box::new(|e| matches!(e, FleetEvent::FaultClose { .. })),
            Box::new(|e| matches!(e, FleetEvent::FaultOpen { .. })),
            Box::new(|e| matches!(e, FleetEvent::Dispatch { attempt, .. } if *attempt > 0)),
            Box::new(|e| matches!(e, FleetEvent::Offered { .. })),
        ],
        formula: Ltl::atom(0).implies(Ltl::CountLe {
            count: Box::new(Ltl::atom(2)),
            reset: Box::new(Ltl::atom(1)),
            mul: STORM_AMPLIFICATION_FACTOR,
            bound: Box::new(Ltl::atom(3)),
            add: STORM_AMPLIFICATION_SLACK,
        }),
        describe: format!(
            "retry dispatches inside a fault window exceeded {STORM_AMPLIFICATION_FACTOR}x \
             offered load + {STORM_AMPLIFICATION_SLACK}"
        ),
    });

    // brownout-unshed: global,
    //   ¬(batch_admit ∧ inside_window ∧ no_shed_since_open ∧ ¬fresh_census)
    // where inside_window = (¬close) S open, no_shed_since_open =
    // (¬shed) S open, fresh_census = OnceWithin(census, contract).
    specs.push(Spec {
        rule: rules::BROWNOUT_UNSHED,
        instance: "",
        slice: Slice::Global,
        relevant: Box::new(|e| match *e {
            FleetEvent::FaultOpen { .. }
            | FleetEvent::FaultClose { .. }
            | FleetEvent::Shed { .. }
            | FleetEvent::CensusRefresh { .. } => true,
            FleetEvent::Dispatch {
                attempt, priority, ..
            } => attempt == 0 && priority == Priority::Batch,
            _ => false,
        }),
        atoms: vec![
            Box::new(|e| {
                matches!(*e, FleetEvent::Dispatch { attempt, priority, .. }
                    if attempt == 0 && priority == Priority::Batch)
            }),
            Box::new(|e| matches!(e, FleetEvent::FaultOpen { .. })),
            Box::new(|e| matches!(e, FleetEvent::FaultClose { .. })),
            Box::new(|e| matches!(e, FleetEvent::Shed { .. })),
            Box::new(is_census),
        ],
        formula: Ltl::atom(0)
            .and(Ltl::atom(2).not().since(Ltl::atom(1)))
            .and(Ltl::atom(3).not().since(Ltl::atom(1)))
            .and(Ltl::atom(4).once_within(contract).not())
            .not(),
        describe: format!(
            "batch request admitted inside a fault window with no shed since the window opened \
             and no census within {contract} ns"
        ),
    });

    // The staged-rollout specs only arm on rollout logs (the master
    // timeline `RolloutController::run` emits); plain `fleet_sweep`
    // arms carry `rollout_window_ns = 0` and skip them.
    if log.rollout_window_ns > 0 {
        let window = log.rollout_window_ns;

        // promotion-legality: global, over stage/verdict events only,
        //   promote → Y((¬promote ∧ ¬rollback) S stage):
        // the stage the verdict covers completed with no verdict since
        // it opened (no double promotion, no promotion after rollback
        // without a fresh stage).
        specs.push(Spec {
            rule: rules::PROMOTION_LEGALITY,
            instance: "",
            slice: Slice::Global,
            relevant: Box::new(|e| {
                matches!(
                    e,
                    FleetEvent::RolloutStage { .. }
                        | FleetEvent::Promote { .. }
                        | FleetEvent::Rollback { .. }
                )
            }),
            atoms: vec![
                Box::new(|e| matches!(e, FleetEvent::Promote { .. })),
                Box::new(|e| matches!(e, FleetEvent::Rollback { .. })),
                Box::new(is_stage),
            ],
            formula: Ltl::atom(0).implies(
                Ltl::atom(0)
                    .not()
                    .and(Ltl::atom(1).not())
                    .since(Ltl::atom(2))
                    .yesterday(),
            ),
            describe: "candidate promoted without a cleanly completed stage immediately behind \
                       the verdict"
                .into(),
        });

        // rollback-completeness: global,
        //   (revert → (¬stage) S rollback) ∧
        //   (rollback → OnceWithin(stage, window)):
        // every baseline revert traces back to a Rollback verdict with
        // no newer stage in between, and the verdict itself lands
        // inside its stage window.
        specs.push(Spec {
            rule: rules::ROLLBACK_COMPLETENESS,
            instance: "",
            slice: Slice::Global,
            relevant: Box::new(|e| match *e {
                FleetEvent::RolloutStage { .. } | FleetEvent::Rollback { .. } => true,
                FleetEvent::ProfileUpdate { cause, .. } => cause == ProfileCause::Rollback,
                _ => false,
            }),
            atoms: vec![
                Box::new(|e| {
                    matches!(*e, FleetEvent::ProfileUpdate { cause, .. }
                        if cause == ProfileCause::Rollback)
                }),
                Box::new(is_stage),
                Box::new(|e| matches!(e, FleetEvent::Rollback { .. })),
            ],
            formula: Ltl::atom(0)
                .implies(Ltl::atom(1).not().since(Ltl::atom(2)))
                .and(Ltl::atom(2).implies(Ltl::atom(1).once_within(window))),
            describe: format!(
                "baseline revert without a governing Rollback verdict, or a Rollback more than \
                 the {window} ns stage window after its stage opened"
            ),
        });

        // blast-radius: one instance per stage percentage,
        //   ((¬stage_other) S stage_k) → #canary_apply ≤ ⌈devices·pct/100⌉,
        // counted since the last stage boundary.
        for pct in ROLLOUT_STAGES {
            let allowed = (log.devices * u64::from(pct)).div_ceil(100);
            specs.push(Spec {
                rule: rules::BLAST_RADIUS,
                instance: stage_instance(pct),
                slice: Slice::Global,
                relevant: Box::new(|e| match *e {
                    FleetEvent::RolloutStage { .. } => true,
                    FleetEvent::ProfileUpdate { cause, .. } => cause == ProfileCause::CanaryApply,
                    _ => false,
                }),
                atoms: vec![
                    Box::new(|e| {
                        matches!(*e, FleetEvent::ProfileUpdate { cause, .. }
                            if cause == ProfileCause::CanaryApply)
                    }),
                    Box::new(is_stage),
                    Box::new(
                        move |e| matches!(*e, FleetEvent::RolloutStage { pct: p, .. } if p == pct),
                    ),
                    Box::new(
                        move |e| matches!(*e, FleetEvent::RolloutStage { pct: p, .. } if p != pct),
                    ),
                ],
                formula: Ltl::atom(3)
                    .not()
                    .since(Ltl::atom(2))
                    .implies(Ltl::CountLe {
                        count: Box::new(Ltl::atom(0)),
                        reset: Box::new(Ltl::atom(1)),
                        mul: 0,
                        bound: Box::new(Ltl::atom(1)),
                        add: allowed,
                    }),
                describe: format!(
                    "more than {allowed} canary devices exposed inside the {pct}% stage"
                ),
            });
        }
    }

    specs
}

/// One spec's aggregated outcome after a sweep.
#[derive(Debug, Clone)]
struct SpecTally {
    violations: u64,
    first: Option<(u64, String)>,
}

/// The outcome of one [`monitor_fleet_log`] sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorVerdict {
    /// One diagnostic per violated spec instance, in spec order.
    pub findings: Vec<Diagnostic>,
    /// Events swept.
    pub events: u64,
    /// Monitor instances instantiated across all specs and slices.
    pub instances: u64,
    /// Total violating positions across all specs.
    pub violations: u64,
}

fn slice_key(e: &FleetEvent, slice: Slice) -> Option<u64> {
    match slice {
        Slice::Global => Some(0),
        Slice::PerDevice => e.device(),
        Slice::PerRequest => e.req(),
    }
}

fn slice_desc(e: &FleetEvent, slice: Slice) -> String {
    match slice {
        Slice::Global => String::new(),
        Slice::PerDevice => format!(" (device {})", e.device().unwrap_or(0)),
        Slice::PerRequest => format!(" (request {})", e.req().unwrap_or(0)),
    }
}

/// Sweep `log` once against the whole spec library and report one
/// diagnostic per violated spec instance. The log is re-normalized
/// into canonical content order first, so verdicts do not depend on
/// how per-device streams were interleaved.
pub fn monitor_fleet_log(log: &FleetEventLog) -> MonitorVerdict {
    let mut events = log.events.clone();
    events.sort_by_key(FleetEvent::sort_key);
    let specs = build_specs(log);
    let mut instances: Vec<BTreeMap<u64, LtlMonitor>> =
        specs.iter().map(|_| BTreeMap::new()).collect();
    let mut tallies: Vec<SpecTally> = specs
        .iter()
        .map(|_| SpecTally {
            violations: 0,
            first: None,
        })
        .collect();
    let mut atom_buf: Vec<bool> = Vec::new();

    for ev in &events {
        for (si, spec) in specs.iter().enumerate() {
            if !(spec.relevant)(ev) {
                continue;
            }
            let Some(key) = slice_key(ev, spec.slice) else {
                continue;
            };
            atom_buf.clear();
            atom_buf.extend(spec.atoms.iter().map(|a| a(ev)));
            let monitor = instances[si]
                .entry(key)
                .or_insert_with(|| LtlMonitor::new(&spec.formula));
            if !monitor.step(&atom_buf, ev.at().as_nanos()) {
                let tally = &mut tallies[si];
                tally.violations += 1;
                if tally.first.is_none() {
                    tally.first = Some((ev.at().as_nanos(), slice_desc(ev, spec.slice)));
                }
            }
        }
    }

    let mut findings = Vec::new();
    let mut total_violations = 0u64;
    for (spec, tally) in specs.iter().zip(&tallies) {
        total_violations += tally.violations;
        if tally.violations == 0 {
            continue;
        }
        let (first_t, first_where) = tally.first.clone().expect("violations imply a first");
        let info = rules::rule(spec.rule).expect("monitor specs are registered");
        let qualifier = if spec.instance.is_empty() {
            String::new()
        } else {
            format!("/{}", spec.instance)
        };
        findings.push(Diagnostic {
            rule_id: spec.rule.to_string(),
            severity: info.severity,
            location: format!("fleet[{}]/{}{}", log.seed, log.policy, qualifier),
            message: format!(
                "{}: {} violating event(s); first at t={} ns{}",
                spec.describe, tally.violations, first_t, first_where
            ),
            suggestion: None,
        });
    }
    MonitorVerdict {
        findings,
        events: events.len() as u64,
        instances: instances.iter().map(|m| m.len() as u64).sum(),
        violations: total_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_fleet::{BreakerCause, BreakerState, EVENT_LOG_VERSION};
    use hetero_soc::SimTime;

    fn eval_seq(f: &Ltl, steps: &[(&[bool], u64)]) -> Vec<bool> {
        let mut m = LtlMonitor::new(f);
        steps.iter().map(|(a, t)| m.step(a, *t)).collect()
    }

    #[test]
    fn yesterday_once_historically_semantics() {
        let y = Ltl::atom(0).yesterday();
        assert_eq!(
            eval_seq(&y, &[(&[true], 0), (&[false], 1), (&[false], 2)]),
            vec![false, true, false]
        );
        let o = Ltl::atom(0).once();
        assert_eq!(
            eval_seq(&o, &[(&[false], 0), (&[true], 1), (&[false], 2)]),
            vec![false, true, true]
        );
        let h = Ltl::atom(0).historically();
        assert_eq!(
            eval_seq(
                &h,
                &[(&[true], 0), (&[true], 1), (&[false], 2), (&[true], 3)]
            ),
            vec![true, true, false, false]
        );
    }

    #[test]
    fn since_resets_on_rhs_and_decays_on_lhs_gap() {
        // a0 S a1 over (a0, a1) pairs.
        let s = Ltl::atom(0).since(Ltl::atom(1));
        let steps: &[(&[bool], u64)] = &[
            (&[true, false], 0),  // no anchor yet
            (&[false, true], 1),  // anchor
            (&[true, false], 2),  // held since
            (&[false, false], 3), // gap: broken
            (&[true, false], 4),  // still broken
            (&[true, true], 5),   // re-anchored
        ];
        assert_eq!(
            eval_seq(&s, steps),
            vec![false, true, true, false, false, true]
        );
    }

    #[test]
    fn once_within_respects_the_time_bound() {
        let f = Ltl::atom(0).once_within(10);
        let steps: &[(&[bool], u64)] = &[
            (&[true], 0),
            (&[false], 5),
            (&[false], 10),
            (&[false], 11),
            (&[true], 20),
            (&[false], 30),
        ];
        assert_eq!(
            eval_seq(&f, steps),
            vec![true, true, true, false, true, true]
        );
    }

    #[test]
    fn count_le_resets_and_compares() {
        // atoms: (count, reset, bound); mul=2, add=1.
        let f = Ltl::CountLe {
            count: Box::new(Ltl::atom(0)),
            reset: Box::new(Ltl::atom(1)),
            mul: 2,
            bound: Box::new(Ltl::atom(2)),
            add: 1,
        };
        let steps: &[(&[bool], u64)] = &[
            (&[true, false, false], 0), // 1 ≤ 0+1
            (&[true, false, false], 1), // 2 > 1 → false
            (&[false, false, true], 2), // 2 ≤ 2+1
            (&[false, true, false], 3), // reset: 0 ≤ 1
            (&[true, false, false], 4), // 1 ≤ 1
        ];
        assert_eq!(eval_seq(&f, steps), vec![true, false, true, true, true]);
    }

    fn tiny_log(events: Vec<FleetEvent>) -> FleetEventLog {
        FleetEventLog {
            version: EVENT_LOG_VERSION,
            seed: 1,
            policy: "robust".into(),
            devices: 2,
            requests: 2,
            slo_ttft_ns: 1_000_000,
            deadline_ns: 4_000_000,
            census_interval_ns: 50_000_000,
            rollout_window_ns: 0,
            events,
        }
    }

    fn rollout_log(events: Vec<FleetEvent>) -> FleetEventLog {
        let mut log = tiny_log(events);
        log.rollout_window_ns = 10_000_000_000;
        log
    }

    #[test]
    fn synthetic_open_to_closed_shortcut_trips_breaker_skip_probe() {
        let t = SimTime::from_millis;
        let log = tiny_log(vec![
            FleetEvent::Breaker {
                at: t(1),
                device: 0,
                from: BreakerState::Closed,
                to: BreakerState::Open,
                cause: BreakerCause::FailureThreshold,
            },
            // Shortcut: Closed without the HalfOpen entry in between.
            FleetEvent::Breaker {
                at: t(2),
                device: 0,
                from: BreakerState::Open,
                to: BreakerState::Closed,
                cause: BreakerCause::ProbeSuccess,
            },
        ]);
        let verdict = monitor_fleet_log(&log);
        assert_eq!(verdict.findings.len(), 1);
        assert_eq!(verdict.findings[0].rule_id, rules::BREAKER_SKIP_PROBE);
        assert_eq!(verdict.violations, 1);
    }

    #[test]
    fn synthetic_legal_probe_recovery_is_clean() {
        let t = SimTime::from_millis;
        let log = tiny_log(vec![
            FleetEvent::Breaker {
                at: t(1),
                device: 0,
                from: BreakerState::Closed,
                to: BreakerState::Open,
                cause: BreakerCause::FailureThreshold,
            },
            FleetEvent::Breaker {
                at: t(2),
                device: 0,
                from: BreakerState::Open,
                to: BreakerState::HalfOpen,
                cause: BreakerCause::CooldownElapsed,
            },
            FleetEvent::Breaker {
                at: t(3),
                device: 0,
                from: BreakerState::HalfOpen,
                to: BreakerState::Closed,
                cause: BreakerCause::ProbeSuccess,
            },
        ]);
        let verdict = monitor_fleet_log(&log);
        assert!(verdict.findings.is_empty(), "{:?}", verdict.findings);
        assert_eq!(verdict.instances, 1);
    }

    #[test]
    fn synthetic_shed_inversion_needs_no_census_between() {
        let t = SimTime::from_millis;
        let shed = FleetEvent::Shed {
            at: t(10),
            req: 1,
            priority: Priority::Standard,
        };
        let admit = |at_ms: u64| FleetEvent::Dispatch {
            at: SimTime::from_millis(at_ms),
            req: 2,
            device: 0,
            attempt: 0,
            priority: Priority::Batch,
        };
        let census = FleetEvent::CensusRefresh {
            at: t(11),
            healthy: 2,
        };
        // Admit right after the shed, same epoch: inversion.
        let bad = monitor_fleet_log(&tiny_log(vec![shed, admit(10)]));
        assert!(bad
            .findings
            .iter()
            .any(|d| d.rule_id == rules::SHED_INVERSION));
        // A census refresh between them clears it.
        let ok = monitor_fleet_log(&tiny_log(vec![shed, census, admit(12)]));
        assert!(ok
            .findings
            .iter()
            .all(|d| d.rule_id != rules::SHED_INVERSION));
    }

    fn stage(at_ms: u64, stage: u32, pct: u32, canary: u64) -> FleetEvent {
        FleetEvent::RolloutStage {
            at: SimTime::from_millis(at_ms),
            stage,
            pct,
            canary,
        }
    }

    fn profile(at_ms: u64, device: u64, cause: ProfileCause) -> FleetEvent {
        FleetEvent::ProfileUpdate {
            at: SimTime::from_millis(at_ms),
            device,
            slowdown_ppm: 1_000_000,
            revision: u64::from(cause == ProfileCause::CanaryApply),
            cause,
        }
    }

    #[test]
    fn rollout_specs_stay_dormant_without_a_window() {
        // An orphan revert in a non-rollout log (window 0) is ignored:
        // the rollout specs never arm.
        let log = tiny_log(vec![profile(5, 0, ProfileCause::Rollback)]);
        let verdict = monitor_fleet_log(&log);
        assert!(verdict.findings.is_empty(), "{:?}", verdict.findings);
    }

    #[test]
    fn synthetic_legal_rollout_is_clean() {
        let promote = |at_ms: u64, s: u32| FleetEvent::Promote {
            at: SimTime::from_millis(at_ms),
            stage: s,
        };
        let log = rollout_log(vec![
            stage(100, 1, 1, 1),
            profile(100, 0, ProfileCause::CanaryApply),
            promote(200, 1),
            stage(300, 2, 10, 1),
            profile(300, 0, ProfileCause::CanaryApply),
            promote(400, 2),
        ]);
        let verdict = monitor_fleet_log(&log);
        assert!(verdict.findings.is_empty(), "{:?}", verdict.findings);
    }

    #[test]
    fn synthetic_double_promote_trips_promotion_legality() {
        let promote = |at_ms: u64| FleetEvent::Promote {
            at: SimTime::from_millis(at_ms),
            stage: 1,
        };
        let log = rollout_log(vec![stage(100, 1, 1, 1), promote(200), promote(300)]);
        let verdict = monitor_fleet_log(&log);
        assert_eq!(verdict.findings.len(), 1, "{:?}", verdict.findings);
        assert_eq!(verdict.findings[0].rule_id, rules::PROMOTION_LEGALITY);
    }

    #[test]
    fn synthetic_orphan_revert_trips_rollback_completeness() {
        // Reverting canaries without a Rollback verdict on record.
        let log = rollout_log(vec![
            stage(100, 1, 1, 1),
            profile(100, 0, ProfileCause::CanaryApply),
            profile(200, 0, ProfileCause::Rollback),
        ]);
        let verdict = monitor_fleet_log(&log);
        assert_eq!(verdict.findings.len(), 1, "{:?}", verdict.findings);
        assert_eq!(verdict.findings[0].rule_id, rules::ROLLBACK_COMPLETENESS);
        // With the verdict in place the same revert is legal.
        let rollback = FleetEvent::Rollback {
            at: SimTime::from_millis(150),
            stage: 1,
        };
        let ok = monitor_fleet_log(&rollout_log(vec![
            stage(100, 1, 1, 1),
            profile(100, 0, ProfileCause::CanaryApply),
            rollback,
            profile(200, 0, ProfileCause::Rollback),
        ]));
        assert!(ok.findings.is_empty(), "{:?}", ok.findings);
    }

    #[test]
    fn synthetic_cohort_overflow_trips_blast_radius() {
        // tiny_log has devices = 2, so the 1% stage allows
        // ⌈2·1/100⌉ = 1 canary apply; a second one overflows.
        let log = rollout_log(vec![
            stage(100, 1, 1, 1),
            profile(100, 0, ProfileCause::CanaryApply),
            profile(100, 1, ProfileCause::CanaryApply),
        ]);
        let verdict = monitor_fleet_log(&log);
        assert_eq!(verdict.findings.len(), 1, "{:?}", verdict.findings);
        assert_eq!(verdict.findings[0].rule_id, rules::BLAST_RADIUS);
        assert!(verdict.findings[0].message.contains("1% stage"));
    }
}
