//! End-to-end tests of the `analyze` binary's exit-code / JSON
//! contract: `--json` emits a machine-readable [`Report`] on stdout
//! *regardless* of the exit status, exit 0 means no deny-level
//! finding, exit 1 means at least one, and exit 2 is reserved for
//! usage errors (which emit no report).

use std::process::{Command, Output};

fn analyze(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_analyze"))
        .args(args)
        .output()
        .expect("run analyze binary")
}

fn report_json(out: &Output) -> serde_json::Value {
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf-8 stdout");
    serde_json::from_str(&stdout).expect("stdout is one parseable Report")
}

#[test]
fn bound_subcommand_is_clean_and_emits_report_json() {
    let out = analyze(&["bound", "--model", "internlm-1.8b", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let report = report_json(&out);
    assert_eq!(report["version"], 1);
    assert_eq!(report["summary"]["deny"], 0);
    assert!(
        report["summary"]["checked"].as_u64().unwrap() > 0,
        "bound sweep checked nothing: {report}"
    );
    assert!(report["findings"].as_array().unwrap().is_empty());
}

#[test]
fn deny_exit_still_emits_report_json() {
    // A structurally broken trace file: the timeline lint denies it,
    // but --json must still print the full report before exiting 1.
    let dir = std::env::temp_dir().join("hetero-analyze-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("broken_trace.json");
    std::fs::write(&path, "{\"traceEvents\": [{\"ph\": \"B\"}]}").expect("write trace");

    let out = analyze(&["timeline", path.to_str().unwrap(), "--json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let report = report_json(&out);
    assert!(report["summary"]["deny"].as_u64().unwrap() > 0);
    assert!(!report["findings"].as_array().unwrap().is_empty());
}

#[test]
fn usage_errors_exit_two() {
    let out = analyze(&["no-such-subcommand"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(out.stdout.is_empty(), "usage errors emit no report");

    let out = analyze(&["bound", "--model", "no-such-model"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
