//! Drift test between the rule registry and the design doc.
//!
//! Both directions:
//!
//! 1. every rule in [`hetero_analyze::RULES`] is documented in
//!    `DESIGN.md` (as a backticked `` `rule-id` `` mention — table row
//!    or prose), and
//! 2. every severity-tagged rule-table row in `DESIGN.md`
//!    (``| `rule-id` | deny|warn | ...``) names a registered rule and
//!    agrees with the registry's severity.
//!
//! So adding a rule without documenting it, documenting a rule that
//! doesn't exist, or letting a documented severity rot all fail CI.

use hetero_analyze::RULES;

fn design_md() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    std::fs::read_to_string(path).expect("DESIGN.md at the repo root")
}

/// `(rule_id, severity)` pairs from every DESIGN.md table row shaped
/// like ``| `rule-id` | deny | ...``.
fn table_rows(doc: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for line in doc.lines() {
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some((id, rest)) = rest.split_once('`') else {
            continue;
        };
        let Some(rest) = rest.strip_prefix(" | ") else {
            continue;
        };
        let Some((severity, _)) = rest.split_once(' ') else {
            continue;
        };
        if severity == "deny" || severity == "warn" {
            rows.push((id.to_string(), severity.to_string()));
        }
    }
    rows
}

#[test]
fn every_registered_rule_is_documented() {
    let doc = design_md();
    let missing: Vec<&str> = RULES
        .iter()
        .map(|r| r.id)
        .filter(|id| !doc.contains(&format!("`{id}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "rules registered but not documented in DESIGN.md: {missing:?}"
    );
}

#[test]
fn every_documented_table_row_matches_the_registry() {
    let doc = design_md();
    let rows = table_rows(&doc);
    assert!(!rows.is_empty(), "no rule-table rows found in DESIGN.md");
    for (id, documented_severity) in rows {
        let info = hetero_analyze::rule(&id)
            .unwrap_or_else(|| panic!("DESIGN.md documents unregistered rule `{id}`"));
        assert_eq!(
            info.severity.to_string(),
            documented_severity,
            "DESIGN.md severity for `{id}` disagrees with the registry"
        );
    }
}

#[test]
fn monitor_rules_have_a_dedicated_table_row() {
    // The temporal-certification section must carry full table rows
    // (not just prose mentions) for each monitor/model-check rule.
    let doc = design_md();
    let rows = table_rows(&doc);
    for id in [
        "breaker-skip-probe",
        "retry-past-deadline",
        "shed-inversion",
        "census-staleness",
        "storm-amplification",
        "brownout-unshed",
        "policy-livelock",
        "retry-unbounded",
        "breaker-trap",
        "promotion-legality",
        "rollback-completeness",
        "blast-radius",
        "rollout-stuck",
        "rollback-missed",
        "canary-starved",
    ] {
        assert!(
            rows.iter().any(|(rid, _)| rid == id),
            "missing DESIGN.md table row for `{id}`"
        );
    }
}
