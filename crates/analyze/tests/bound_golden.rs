//! Golden-file test pinning the JSON encoding of the bound-certification
//! diagnostics (`mem-overcommit`, `buffer-leak`, `deadline-infeasible`,
//! `deadline-at-risk`, `bound-unsound`).
//!
//! The `analyze bound` CLI's JSON output is consumed by the CI gate;
//! the golden file makes any change to field names, severity strings,
//! message wording, or ordering an explicit, reviewed diff. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p hetero-analyze --test bound_golden`.

use hetero_analyze::bound::{
    check_deadlines, check_footprint, check_plan_regions, check_pool_replay, model_bounds,
    replay_pool_peak,
};
use hetero_analyze::{rules, Report};
use hetero_soc::SimTime;
use hetero_solver::{PartitionPlan, RegionTable};
use hetero_tensor::shape::MatmulShape;
use heterollm::runtime::SloPolicy;
use heterollm::ModelConfig;

/// One deterministic finding per bound rule, aggregated in a fixed
/// order. Bounds are computed from the real static mirror (InternLM
/// 1.8B, the paper's smallest evaluation model) so the golden file
/// also pins the byte layout of real numbers, not synthetic ones.
fn diagnostics_report() -> Report {
    let model = ModelConfig::internlm_1_8b();
    let bounds = model_bounds(&model, 300, 4);
    let mut report = Report::new();

    // mem-overcommit: a pool one byte smaller than the certified peak.
    report.extend(check_footprint(
        &bounds,
        bounds.peak_bytes - 1,
        "golden/internlm[shrunken-pool]",
    ));

    // buffer-leak: an NPU-only region table whose input region is kept
    // alive one step past its last structural reader.
    let mut leaky = RegionTable::for_plan(
        &PartitionPlan::NpuOnly { padded_m: 512 },
        MatmulShape::new(300, 2048, 2048),
    );
    leaky.steps += 1;
    leaky.regions[0].live_until += 1;
    report.extend(check_plan_regions(&leaky, "golden/npu-only[held-input]"));

    // deadline-infeasible (ttft + tpot): an SLO no plan can meet.
    let doomed = SloPolicy {
        ttft: SimTime::from_nanos(1),
        tpot: SimTime::from_nanos(1),
        streak: 3,
        shed_wait: SimTime::from_millis(50),
    };
    report.extend(check_deadlines(
        &bounds,
        &doomed,
        "golden/internlm[doomed-slo]",
    ));

    // deadline-at-risk: TTFT budget exactly at the lower bound — the
    // lower bound meets it, the upper bound busts it.
    let risky = SloPolicy {
        ttft: bounds.ttft.lo,
        tpot: SimTime::from_millis(500),
        streak: 3,
        shed_wait: SimTime::from_millis(50),
    };
    report.extend(check_deadlines(
        &bounds,
        &risky,
        "golden/internlm[tight-slo]",
    ));

    // bound-unsound: a claimed peak below what the pool replay reaches.
    let table = RegionTable::for_plan(&PartitionPlan::GpuOnly, MatmulShape::new(300, 2048, 2048));
    let understated = replay_pool_peak(&table) - 1;
    report.extend(check_pool_replay(
        &table,
        understated,
        "golden/gpu-only[understated-peak]",
    ));

    report
}

#[test]
fn bound_diagnostics_json_is_golden() {
    let json = diagnostics_report().to_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/bound_diagnostics.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file checked in");
    assert_eq!(
        json, golden,
        "diagnostic JSON encoding changed; review and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_report_covers_every_bound_rule() {
    let report = diagnostics_report();
    let ids: Vec<&str> = report.findings.iter().map(|d| d.rule_id.as_str()).collect();
    for rule in [
        rules::MEM_OVERCOMMIT,
        rules::BUFFER_LEAK,
        rules::DEADLINE_INFEASIBLE,
        rules::DEADLINE_AT_RISK,
        rules::BOUND_UNSOUND,
    ] {
        assert!(ids.contains(&rule), "missing {rule}: {ids:?}");
    }
    assert!(!report.is_clean());
}
