//! Integration tests for the past-time-LTL fleet monitor: merge-order
//! invariance and seeded log mutations.
//!
//! The mutation tests are the monitor's "does it actually detect
//! things" evidence: each takes the *clean* robust-arm log of a seeded
//! fleet run, applies one surgical corruption, and asserts that
//! exactly the expected named spec — and no other — trips.

use hetero_analyze::{monitor_fleet_log, rules};
use hetero_fleet::{
    BreakerCause, BreakerState, FleetConfig, FleetEvent, FleetEventLog, FleetSim, PolicyRevision,
    Priority, ProfileCause, RolloutConfig, RolloutController, RouterPolicy,
};
use hetero_soc::SimTime;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn robust_log() -> FleetEventLog {
    let sim = FleetSim::new(FleetConfig::standard(42, 48, 400));
    sim.run_events(RouterPolicy::Robust).1
}

/// One seeded rollout master log per candidate kind, cached: the
/// regressing NPU-inversion candidate (rolls back at 1%) and the
/// genuinely better one (promotes to 100%).
fn rollout_log(mult_ppm: u64) -> FleetEventLog {
    static BAD: OnceLock<FleetEventLog> = OnceLock::new();
    static GOOD: OnceLock<FleetEventLog> = OnceLock::new();
    let build = || {
        let sim = FleetSim::new(FleetConfig::standard(42, 48, 1000));
        let ctl = RolloutController::new(&sim, RolloutConfig::standard());
        let candidate = PolicyRevision::uniform(7, "candidate", sim.profiles().len(), mult_ppm);
        ctl.run(&candidate).1
    };
    if mult_ppm > 1_000_000 {
        BAD.get_or_init(build).clone()
    } else {
        GOOD.get_or_init(build).clone()
    }
}

fn violated_rules(log: &FleetEventLog) -> BTreeSet<String> {
    monitor_fleet_log(log)
        .findings
        .into_iter()
        .map(|d| d.rule_id)
        .collect()
}

#[test]
fn robust_arm_sweeps_clean() {
    let log = robust_log();
    let verdict = monitor_fleet_log(&log);
    assert!(verdict.findings.is_empty(), "{:?}", verdict.findings);
    assert_eq!(verdict.violations, 0);
    assert!(verdict.events > 0 && verdict.instances > 0);
}

#[test]
fn naive_arm_reproduces_known_violations() {
    let sim = FleetSim::new(FleetConfig::standard(42, 48, 400));
    let log = sim.run_events(RouterPolicy::RoundRobin).1;
    let violated = violated_rules(&log);
    assert!(violated.contains(rules::CENSUS_STALENESS), "{violated:?}");
    assert!(violated.contains(rules::BROWNOUT_UNSHED), "{violated:?}");
}

// Mutation 1: drop a device's cooldown→half-open breaker entry whose
// immediate successor (same device) is the probe-success re-close.
// The re-close then has no half-open predecessor: breaker-skip-probe.
#[test]
fn dropping_the_half_open_probe_trips_breaker_skip_probe() {
    let mut log = robust_log();
    let drop_idx = log
        .events
        .iter()
        .enumerate()
        .find_map(|(i, e)| {
            let FleetEvent::Breaker {
                device,
                cause: BreakerCause::CooldownElapsed,
                ..
            } = *e
            else {
                return None;
            };
            // Next breaker event of the same device must be the
            // probe-success re-close.
            let next = log.events[i + 1..].iter().find_map(|n| match *n {
                FleetEvent::Breaker {
                    device: d,
                    to,
                    cause,
                    ..
                } if d == device => Some((to, cause)),
                _ => None,
            });
            (next == Some((BreakerState::Closed, BreakerCause::ProbeSuccess))).then_some(i)
        })
        .expect("seed 42 has a cooldown→probe-success recovery");
    log.events.remove(drop_idx);
    assert_eq!(
        violated_rules(&log),
        BTreeSet::from([rules::BREAKER_SKIP_PROBE.to_string()])
    );
}

// Mutation 2: move an early interactive first dispatch past the
// request's lost-penalty deadline: retry-past-deadline (and nothing
// else — interactive admits are outside every other spec's atoms).
#[test]
fn moving_a_dispatch_past_the_deadline_trips_retry_past_deadline() {
    let mut log = robust_log();
    let deadline = log.deadline_ns;
    let (idx, req) = log
        .events
        .iter()
        .enumerate()
        .find_map(|(i, e)| match *e {
            FleetEvent::Dispatch {
                req,
                attempt: 0,
                priority: Priority::Interactive,
                ..
            } => Some((i, req)),
            _ => None,
        })
        .expect("an interactive request is admitted");
    let offered_at = log
        .events
        .iter()
        .find_map(|e| match *e {
            FleetEvent::Offered { at, req: r, .. } if r == req => Some(at),
            _ => None,
        })
        .expect("admitted request was offered");
    let FleetEvent::Dispatch { at, .. } = &mut log.events[idx] else {
        unreachable!()
    };
    *at = offered_at + SimTime::from_nanos(deadline) + SimTime::from_millis(1);
    assert_eq!(
        violated_rules(&log),
        BTreeSet::from([rules::RETRY_PAST_DEADLINE.to_string()])
    );
}

// Mutation 3: find a shed that is followed — with no census refresh
// in between — by a first-attempt admit of a non-interactive class,
// and flip the shed's class to interactive. A lower class now passes
// admission in the same census epoch an interactive request was shed
// in: shed-inversion. The shed event itself still satisfies
// brownout-unshed's "shed since window open", and the census ≤ one
// probe tick behind the admit keeps every freshness spec clean.
#[test]
fn flipping_a_shed_above_an_admit_trips_shed_inversion() {
    let mut log = robust_log();
    let flip_idx = log
        .events
        .iter()
        .enumerate()
        .find_map(|(i, e)| {
            if !matches!(e, FleetEvent::Shed { .. }) {
                return None;
            }
            for n in &log.events[i + 1..] {
                match n {
                    FleetEvent::CensusRefresh { .. } => return None,
                    FleetEvent::Dispatch {
                        attempt: 0,
                        priority,
                        ..
                    } if *priority != Priority::Interactive => return Some(i),
                    _ => {}
                }
            }
            None
        })
        .expect("seed 42 sheds in a census epoch that still admits a lower class");
    let FleetEvent::Shed { priority, .. } = &mut log.events[flip_idx] else {
        unreachable!()
    };
    *priority = Priority::Interactive;
    assert_eq!(
        violated_rules(&log),
        BTreeSet::from([rules::SHED_INVERSION.to_string()])
    );
}

#[test]
fn rollout_arms_sweep_clean() {
    // Both controller outputs — the stage-1 rollback and the full
    // promotion ladder — pass every spec untouched, so the mutations
    // below isolate exactly one corruption each.
    for log in [rollout_log(2_500_000), rollout_log(930_000)] {
        assert!(log.rollout_window_ns > 0);
        let verdict = monitor_fleet_log(&log);
        assert!(verdict.findings.is_empty(), "{:?}", verdict.findings);
    }
}

// Rollout mutation 1: drop the Rollback verdict from the regressing
// candidate's log. Its canary reverts are now orphaned — no Rollback
// ever precedes them: rollback-completeness.
#[test]
fn dropping_the_rollback_verdict_trips_rollback_completeness() {
    let mut log = rollout_log(2_500_000);
    let idx = log
        .events
        .iter()
        .position(|e| matches!(e, FleetEvent::Rollback { .. }))
        .expect("the regressing candidate rolls back");
    log.events.remove(idx);
    assert_eq!(
        violated_rules(&log),
        BTreeSet::from([rules::ROLLBACK_COMPLETENESS.to_string()])
    );
}

// Rollout mutation 2: move the good candidate's stage-2 Promote to
// 1 ns *before* the 10% stage opens. The verdict now lands inside the
// still-deciding 1% stage — whose own Promote already closed it — so
// the stage it claims to close was never cleanly completed:
// promotion-legality.
#[test]
fn reordering_promote_before_its_stage_trips_promotion_legality() {
    let mut log = rollout_log(930_000);
    let stage2_open = log
        .events
        .iter()
        .find_map(|e| match *e {
            FleetEvent::RolloutStage { at, stage: 2, .. } => Some(at),
            _ => None,
        })
        .expect("the good candidate reaches the 10% stage");
    let promote2 = log
        .events
        .iter_mut()
        .find_map(|e| match e {
            FleetEvent::Promote { at, stage: 2 } => Some(at),
            _ => None,
        })
        .expect("the 10% stage is promoted");
    *promote2 = stage2_open - SimTime::from_nanos(1);
    assert_eq!(
        violated_rules(&log),
        BTreeSet::from([rules::PROMOTION_LEGALITY.to_string()])
    );
}

// Rollout mutation 3: inject one extra canary apply inside the 1%
// stage. 48 devices at 1% allow ⌈48/100⌉ = 1 canary device; a second
// CanaryApply inside the stage overflows the cohort: blast-radius.
#[test]
fn injecting_an_extra_canary_apply_trips_blast_radius() {
    let mut log = rollout_log(2_500_000);
    let (stage1_open, revision) = log
        .events
        .iter()
        .find_map(|e| match *e {
            FleetEvent::RolloutStage { at, stage: 1, .. } => Some(at),
            _ => None,
        })
        .zip(log.events.iter().find_map(|e| match *e {
            FleetEvent::ProfileUpdate {
                cause: ProfileCause::CanaryApply,
                revision,
                ..
            } => Some(revision),
            _ => None,
        }))
        .expect("the 1% stage opens and applies its canary");
    log.events.push(FleetEvent::ProfileUpdate {
        at: stage1_open + SimTime::from_nanos(1),
        device: 47,
        slowdown_ppm: 1_000_000,
        revision,
        cause: ProfileCause::CanaryApply,
    });
    assert_eq!(
        violated_rules(&log),
        BTreeSet::from([rules::BLAST_RADIUS.to_string()])
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The monitor re-normalizes into canonical content order, so the
    // verdict must be identical under ANY interleaved merge of the
    // same events — per-device shards, reversed, shuffled.
    #[test]
    fn verdict_is_invariant_under_event_merge_order(shuffle_seed in 1u64..u64::MAX) {
        let canonical = FleetSim::new(FleetConfig::standard(42, 32, 240))
            .run_events(RouterPolicy::Robust).1;
        let mut shuffled = canonical.clone();
        // Fisher–Yates over the canonical order, driven by a cheap
        // xorshift off the drawn seed.
        let mut state = shuffle_seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..shuffled.events.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            shuffled.events.swap(i, j);
        }
        prop_assert_eq!(
            monitor_fleet_log(&shuffled),
            monitor_fleet_log(&canonical)
        );
    }
}
