//! Golden-file test pinning the JSON encoding of the concurrency and
//! integrity diagnostics (`data-race`, `unsynchronized-reuse`,
//! `lost-signal`, `interleaving-determinism`, `unverified-sink`).
//!
//! The `analyze` CLI's JSON output is consumed by the CI gate; the
//! golden file makes any change to field names, severity strings,
//! message wording, or ordering an explicit, reviewed diff. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p hetero-analyze --test golden`.

use hetero_analyze::explore::{explore_schedule, ExploreConfig};
use hetero_analyze::race::{check_log, check_schedule_races};
use hetero_analyze::sched::check_unverified_sink;
use hetero_analyze::{rules, EventKind, Report, SyncEvent, SyncSchedule};
use hetero_graph::partition::PartitionPlan;
use hetero_soc::sync::SyncMechanism;
use hetero_soc::{Backend, SimTime};
use heterollm::trace::{ConcurrencyLog, ConcurrencyOp};

fn ev(label: &str, backend: Backend, kind: EventKind, waits_on: Vec<usize>) -> SyncEvent {
    SyncEvent {
        label: label.into(),
        backend,
        kind,
        waits_on,
    }
}

/// One deterministic finding per new rule, aggregated in a fixed order.
fn diagnostics_report() -> Report {
    let mut report = Report::new();
    let mech = SyncMechanism::Fast;

    // data-race: a hybrid plan's rendezvous with the NPU edge deleted.
    let mut racy = SyncSchedule::for_plan(&PartitionPlan::HybridCut {
        padded_m: 512,
        gpu_cols: 1024,
    });
    racy.events[2].waits_on.pop();
    report.extend(check_schedule_races(
        &racy,
        mech,
        "golden/hybrid[deleted-npu-edge]",
    ));

    // lost-signal: an extra wait on a flag nothing signals.
    let mut lost = SyncSchedule::for_plan(&PartitionPlan::HybridCut {
        padded_m: 512,
        gpu_cols: 1024,
    });
    lost.events[2].waits_on.push(77);
    report.extend(check_schedule_races(
        &lost,
        mech,
        "golden/hybrid[dangling-wait]",
    ));

    // unsynchronized-reuse: a recycled slot re-acquired with no edge.
    let mut log = ConcurrencyLog::new();
    for op in [
        ConcurrencyOp::BufferAcquire {
            buffer: 1,
            bytes: 4096,
        },
        ConcurrencyOp::BufferWrite { buffer: 1 },
        ConcurrencyOp::BufferRelease { buffer: 1 },
        ConcurrencyOp::Signal {
            mechanism: mech,
            token: 1,
        },
    ] {
        log.push(SimTime::ZERO, Backend::Gpu, op);
    }
    log.push(
        SimTime::ZERO,
        Backend::Npu,
        ConcurrencyOp::BufferAcquire {
            buffer: 1,
            bytes: 4096,
        },
    );
    report.extend(check_log(&log, "golden/recycled-slot"));

    // interleaving-determinism: two unordered same-backend submissions.
    let nondet = SyncSchedule {
        events: vec![
            ev("gpu a", Backend::Gpu, EventKind::Submit, vec![]),
            ev("gpu b", Backend::Gpu, EventKind::Submit, vec![]),
            ev("npu c", Backend::Npu, EventKind::Submit, vec![]),
            ev("join", Backend::Cpu, EventKind::Rendezvous, vec![0, 2]),
        ],
    };
    let (_, diags) = explore_schedule(&nondet, &ExploreConfig::default(), "golden/unordered-gpu");
    report.extend(diags);

    // unverified-sink: a base plan schedule with no verify nodes lets
    // the NPU output flow into its consumer unchecked.
    let unverified = SyncSchedule::for_plan(&PartitionPlan::NpuOnly { padded_m: 512 });
    report.extend(check_unverified_sink(
        &unverified,
        "golden/npu-only[no-verify]",
    ));

    report
}

#[test]
fn concurrency_diagnostics_json_is_golden() {
    let json = diagnostics_report().to_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/race_diagnostics.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file checked in");
    assert_eq!(
        json, golden,
        "diagnostic JSON encoding changed; review and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_report_covers_every_new_rule() {
    let report = diagnostics_report();
    let ids: Vec<&str> = report.findings.iter().map(|d| d.rule_id.as_str()).collect();
    for rule in [
        rules::DATA_RACE,
        rules::LOST_SIGNAL,
        rules::UNSYNCHRONIZED_REUSE,
        rules::INTERLEAVING_DETERMINISM,
        rules::UNVERIFIED_SINK,
    ] {
        assert!(ids.contains(&rule), "missing {rule}: {ids:?}");
    }
    assert_eq!(report.summary.checked, 5);
    assert!(!report.is_clean());
}
