//! Property-based tests of the analyzer: solver output never trips a
//! deny-level rule, mutated plans are rejected with the *expected*
//! rule, `normalize` is idempotent, and the static cost layer is sound
//! (simulated times and replayed pool peaks never escape the bounds).

use hetero_analyze::bound::{check_footprint, replay_pool_peak};
use hetero_analyze::{
    check_plan_full, check_schedule_races, model_bounds, retry_schedule, rules,
    schedule_peak_bytes, EventKind, PlanContext, Severity, SyncSchedule,
};
use hetero_graph::partition::PartitionPlan;
use hetero_profiler::RealExecProvider;
use hetero_soc::calib::NPU_TILE;
use hetero_soc::sync::{Dominance, SyncMechanism};
use hetero_soc::SocConfig;
use hetero_solver::{RegionTable, Solver, SolverConfig};
use hetero_tensor::shape::MatmulShape;
use heterollm::engines::{hetero_soc_config, HeteroTensorEngine};
use heterollm::{Engine, ModelConfig};
use proptest::prelude::*;

/// Rule ids of the deny-severity findings for a plan under `ctx`.
fn deny_ids(plan: &PartitionPlan, ctx: &PlanContext) -> Vec<String> {
    check_plan_full(plan, ctx)
        .into_iter()
        .filter(|d| d.severity == Severity::Deny)
        .map(|d| d.rule_id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The solver's chosen plan for a random shape passes every rule
    /// at deny severity, under either dominance regime.
    #[test]
    fn solver_plans_never_deny(
        m in 1usize..2200,
        k in prop_oneof![Just(2048usize), Just(4096), Just(8192)],
        n in prop_oneof![Just(2048usize), Just(4096), Just(14336)],
        npu_dominant in proptest::bool::ANY,
    ) {
        let cfg = SolverConfig::default();
        let solver = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            cfg.clone(),
        );
        let dominance = if npu_dominant {
            Dominance::NpuDominant
        } else {
            Dominance::GpuDominant
        };
        let choice = solver.solve(MatmulShape::new(m, k, n), dominance);
        let mut ctx = PlanContext::standard(format!("prop[m={m},k={k},n={n}]"), m, n);
        ctx.compiled_sizes = cfg.standards;
        let denies = deny_ids(&choice.plan, &ctx);
        prop_assert!(denies.is_empty(), "plan {:?}: {denies:?}", choice.plan);
    }

    /// An NPU-only plan whose padded size undercovers the sequence is a
    /// shape-conservation violation.
    #[test]
    fn undercovering_plan_denied_as_conservation(m in 2usize..2048) {
        let plan = PartitionPlan::NpuOnly { padded_m: m - 1 };
        let ctx = PlanContext::standard("prop", m, 4096);
        let denies = deny_ids(&plan, &ctx);
        prop_assert!(
            denies.iter().any(|id| id == rules::SHAPE_CONSERVATION),
            "{denies:?}"
        );
    }

    /// An NPU size above one tile that is not tile-aligned is a
    /// tile-alignment violation (isolated by compiling that exact size
    /// so graph-membership cannot fire instead).
    #[test]
    fn misaligned_size_denied_as_tile_alignment(
        mult in 1usize..32,
        off in 1usize..32,
    ) {
        let size = mult * NPU_TILE + off;
        prop_assume!(!size.is_multiple_of(NPU_TILE));
        let plan = PartitionPlan::NpuOnly { padded_m: size };
        let mut ctx = PlanContext::standard("prop", size, 4096);
        ctx.compiled_sizes.push(size);
        let denies = deny_ids(&plan, &ctx);
        prop_assert!(
            denies.iter().any(|id| id == rules::TILE_ALIGNMENT),
            "size {size}: {denies:?}"
        );
    }

    /// A tile-aligned NPU size with no pre-compiled graph is a
    /// graph-membership violation.
    #[test]
    fn uncompiled_size_denied_as_membership(j in 1usize..64) {
        let size = j * NPU_TILE;
        let ctx = PlanContext::standard("prop", size, 4096);
        prop_assume!(!ctx.compiled_sizes.contains(&size));
        let plan = PartitionPlan::NpuOnly { padded_m: size };
        let denies = deny_ids(&plan, &ctx);
        prop_assert_eq!(denies, vec![rules::GRAPH_MEMBERSHIP.to_string()]);
    }

    /// Dropping one NPU chunk from a valid sequence-cut plan breaks row
    /// coverage and is denied as shape-conservation.
    #[test]
    fn dropped_chunk_denied_as_conservation(
        keep in 1usize..4,
        gpu_rows in 1usize..64,
    ) {
        let chunks: Vec<usize> = std::iter::repeat_n(256usize, keep + 1).collect();
        let m = chunks.iter().sum::<usize>() + gpu_rows;
        let valid = PartitionPlan::SeqCut {
            npu_chunks: chunks.clone(),
            gpu_rows,
        };
        let ctx = PlanContext::standard("prop", m, 4096);
        prop_assert!(deny_ids(&valid, &ctx).is_empty());

        let mutated = PartitionPlan::SeqCut {
            npu_chunks: chunks[..keep].to_vec(),
            gpu_rows,
        };
        let denies = deny_ids(&mutated, &ctx);
        prop_assert_eq!(denies, vec![rules::SHAPE_CONSERVATION.to_string()]);
    }

    /// A degenerate sequence cut (empty GPU share) is flagged at warn
    /// severity as plan-normalization, and normalizing it clears every
    /// finding.
    #[test]
    fn degenerate_seq_cut_warns_until_normalized(j in 1usize..6) {
        let size = 32 << (j - 1); // one of the standard graph sizes
        let plan = PartitionPlan::SeqCut {
            npu_chunks: vec![size],
            gpu_rows: 0,
        };
        let ctx = PlanContext::standard("prop", size, 4096);
        let diags = check_plan_full(&plan, &ctx);
        prop_assert!(
            diags.iter().any(|d| d.rule_id == rules::PLAN_NORMALIZATION
                && d.severity == Severity::Warn),
            "{diags:?}"
        );
        prop_assert!(check_plan_full(&plan.normalize(), &ctx).is_empty());
    }

    /// Mutation self-test of the race detector: the sync schedule of
    /// any two-backend plan (base or after rendezvous-retry
    /// rescheduling, under either mechanism) lowers to a race-free
    /// event log, and deleting *any single* wait edge of *any*
    /// rendezvous is caught as a data race or lost signal.
    #[test]
    fn deleted_rendezvous_edge_is_always_caught(
        kind in 0usize..3,
        chunks in 1usize..4,
        retried in proptest::bool::ANY,
        driver in proptest::bool::ANY,
    ) {
        let plan = match kind {
            0 => PartitionPlan::RowCut {
                gpu_cols: 1024,
                padded_m: 512,
            },
            1 => PartitionPlan::HybridCut {
                padded_m: 512,
                gpu_cols: 1024,
            },
            _ => PartitionPlan::SeqCut {
                npu_chunks: vec![256; chunks],
                gpu_rows: 32,
            },
        };
        let mut schedule = SyncSchedule::for_plan(&plan);
        if retried {
            schedule = retry_schedule(&schedule);
        }
        let mech = if driver {
            SyncMechanism::Driver
        } else {
            SyncMechanism::Fast
        };
        let base = check_schedule_races(&schedule, mech, "prop");
        prop_assert!(base.is_empty(), "intact schedule must be race-free: {base:?}");
        for r in 0..schedule.events.len() {
            if schedule.events[r].kind != EventKind::Rendezvous {
                continue;
            }
            for e in 0..schedule.events[r].waits_on.len() {
                let mut mutated = schedule.clone();
                mutated.events[r].waits_on.remove(e);
                let denies: Vec<String> = check_schedule_races(&mutated, mech, "prop")
                    .into_iter()
                    .filter(|d| d.severity == Severity::Deny)
                    .map(|d| d.rule_id)
                    .collect();
                prop_assert!(
                    denies
                        .iter()
                        .any(|id| id == rules::DATA_RACE || id == rules::LOST_SIGNAL),
                    "rendezvous {r} edge {e} of {plan:?} (retried={retried}): {denies:?}"
                );
            }
        }
    }

    /// `normalize` is idempotent and its output self-reports as
    /// normalized, for every plan variant.
    #[test]
    fn normalize_is_idempotent(
        kind in 0usize..6,
        a in 1usize..2048,
        b in 0usize..2048,
    ) {
        let plan = match kind {
            0 => PartitionPlan::GpuOnly,
            1 => PartitionPlan::NpuOnly { padded_m: a },
            2 => PartitionPlan::NpuPipe {
                chunks: vec![a, a],
                padded_rows: 0,
            },
            3 => PartitionPlan::RowCut {
                gpu_cols: b,
                padded_m: a,
            },
            4 => PartitionPlan::SeqCut {
                npu_chunks: vec![a],
                gpu_rows: b,
            },
            _ => PartitionPlan::HybridCut {
                padded_m: a,
                gpu_cols: b,
            },
        };
        let once = plan.normalize();
        prop_assert!(once.is_normalized(), "{once:?}");
        prop_assert_eq!(once.clone(), once.normalize());
    }

    /// Pool-replay soundness: for any solver-chosen plan over a random
    /// shape, dynamically replaying the region table through the real
    /// [`MemoryPool`] never exceeds the abstract interpreter's static
    /// peak.
    #[test]
    fn replayed_pool_peak_never_escapes_static_peak(
        m in 1usize..2200,
        k in prop_oneof![Just(2048usize), Just(4096)],
        n in prop_oneof![Just(2048usize), Just(4096), Just(14336)],
        npu_dominant in proptest::bool::ANY,
    ) {
        let solver = Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            SolverConfig::default(),
        );
        let dominance = if npu_dominant {
            Dominance::NpuDominant
        } else {
            Dominance::GpuDominant
        };
        let choice = solver.solve(MatmulShape::new(m, k, n), dominance);
        let table = RegionTable::for_plan(&choice.plan, MatmulShape::new(m, k, n));
        let static_peak = schedule_peak_bytes(&SyncSchedule::for_plan(&choice.plan), &table);
        let replayed = replay_pool_peak(&table);
        prop_assert!(
            replayed <= static_peak,
            "plan {:?}: replayed {replayed} > static {static_peak}",
            choice.plan
        );
    }

    /// Any pool smaller than the certified peak is always denied as
    /// mem-overcommit — the footprint check has no blind spot.
    #[test]
    fn shrunken_pool_always_fires_mem_overcommit(
        m in 1usize..600,
        deficit in 1u64..(1 << 20),
    ) {
        let model = ModelConfig::internlm_1_8b();
        let bounds = model_bounds(&model, m, 2);
        prop_assume!(bounds.peak_bytes >= deficit);
        let denies: Vec<String> = check_footprint(&bounds, bounds.peak_bytes - deficit, "prop")
            .into_iter()
            .filter(|d| d.severity == Severity::Deny)
            .map(|d| d.rule_id)
            .collect();
        prop_assert_eq!(denies, vec![rules::MEM_OVERCOMMIT.to_string()]);
        prop_assert!(check_footprint(&bounds, bounds.peak_bytes, "prop").is_empty());
    }
}

proptest! {
    // Each case simulates a full engine phase pair; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DES soundness of the cost layer: for random prompt lengths and
    /// decode budgets, a freshly simulated tensor-hybrid engine's
    /// prefill and decode times land inside the static mirror's
    /// `[lo, hi]` intervals.
    #[test]
    fn static_bounds_bracket_simulated_engine(
        m in 1usize..600,
        tokens in 1usize..4,
    ) {
        let model = ModelConfig::internlm_1_8b();
        let bounds = model_bounds(&model, m, tokens);
        prop_assert!(bounds.ttft.lo <= bounds.ttft.hi);
        let mut engine =
            HeteroTensorEngine::with_soc_config(&model, hetero_soc_config(SyncMechanism::Fast));
        let ttft = engine.prefill(m).elapsed;
        prop_assert!(
            bounds.ttft.contains(ttft),
            "ttft {ttft:?} escapes [{:?}, {:?}]",
            bounds.ttft.lo,
            bounds.ttft.hi
        );
        let decode = engine.decode(m, tokens).elapsed;
        prop_assert!(
            bounds.decode_total.contains(decode),
            "decode {decode:?} escapes [{:?}, {:?}]",
            bounds.decode_total.lo,
            bounds.decode_total.hi
        );
    }
}
