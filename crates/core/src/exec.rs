//! Deterministic work-stealing executor for independent seeded tasks.
//!
//! Fleet-scale sweeps run thousands of *independent* per-device
//! sessions (calibration micro-benchmarks, per-SoC projections, sweep
//! points). Each task is a pure function of its index — it derives
//! its own RNG stream from `(seed, index)` and touches no shared
//! mutable state — so the only thing parallelism may change is
//! *wall-clock time*, never results. [`Executor`] enforces that shape:
//!
//! - tasks are identified by index `0..n`;
//! - workers are `std::thread::scope` threads claiming indices from a
//!   shared range registry (contiguous chunks, stolen in halves when
//!   a worker runs dry — classic work stealing, `Mutex` + channels,
//!   no external dependencies);
//! - results are sent back tagged with their index over an
//!   [`std::sync::mpsc`] channel and collected into a `Vec` in index
//!   order.
//!
//! Because the output vector is assembled *by index*, the merged
//! result is byte-for-byte independent of scheduling: `jobs = 1` and
//! `jobs = N` produce identical `Vec<T>` for any worker count, which
//! is the determinism contract `fleet_sweep --jobs N` is gated on
//! (see `PERFORMANCE.md`). With `jobs = 1` (the default everywhere)
//! no threads are spawned at all — tasks run inline on the caller, so
//! serial paths are bit-for-bit the pre-executor code path.
//!
//! # Examples
//!
//! ```
//! use heterollm::exec::Executor;
//!
//! // Each task derives everything from its index; the merged vector
//! // is identical whatever the worker count.
//! let serial: Vec<u64> = Executor::new(1).run(100, |i| (i as u64) * 3 + 1);
//! let parallel: Vec<u64> = Executor::new(4).run(100, |i| (i as u64) * 3 + 1);
//! assert_eq!(serial, parallel);
//! ```

use std::sync::mpsc;
use std::sync::Mutex;

/// Claimable index ranges, one slot per worker. A worker that drains
/// its own slot steals the upper half of the largest remaining slot.
struct RangeRegistry {
    /// `(next, end)` half-open ranges, indexed by worker.
    slots: Mutex<Vec<(usize, usize)>>,
}

impl RangeRegistry {
    /// Split `0..n` into `jobs` contiguous, near-equal chunks.
    fn new(n: usize, jobs: usize) -> Self {
        let base = n / jobs;
        let extra = n % jobs;
        let mut slots = Vec::with_capacity(jobs);
        let mut start = 0;
        for w in 0..jobs {
            let len = base + usize::from(w < extra);
            slots.push((start, start + len));
            start += len;
        }
        Self {
            slots: Mutex::new(slots),
        }
    }

    /// Claim the next index for worker `w`: from its own slot if any
    /// remain, otherwise by stealing the upper half of the fullest
    /// other slot. `None` once every index everywhere is claimed.
    fn claim(&self, w: usize) -> Option<usize> {
        let mut slots = self.slots.lock().expect("range registry poisoned");
        let (next, end) = slots[w];
        if next < end {
            slots[w].0 += 1;
            return Some(next);
        }
        // Steal: find the victim with the most remaining work.
        let victim = (0..slots.len())
            .filter(|&v| v != w)
            .max_by_key(|&v| slots[v].1 - slots[v].0)?;
        let (vnext, vend) = slots[victim];
        let remaining = vend - vnext;
        if remaining == 0 {
            return None;
        }
        // Take the upper half (at least one index), leave the lower
        // half with the victim so its cache-warm prefix stays local.
        let mid = vend - remaining.div_ceil(2);
        slots[victim].1 = mid;
        slots[w] = (mid + 1, vend);
        Some(mid)
    }
}

/// A fixed-width pool of workers executing indexed independent tasks.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// New executor running `jobs` tasks concurrently (clamped up to
    /// at least 1). `Executor::new(1)` runs everything inline on the
    /// calling thread.
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f(0), f(1), …, f(tasks - 1)` and return the results in
    /// index order.
    ///
    /// `f` must be a pure function of its index (derive any RNG
    /// stream from the index, share nothing mutable): the returned
    /// vector is then identical for every `jobs` value.
    ///
    /// # Panics
    ///
    /// Panics if `f` panics on any index (the panic is propagated to
    /// the caller when the worker scope joins).
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(tasks);
        if workers <= 1 {
            // Inline serial path: no threads, no channels — exactly
            // the loop a pre-executor caller would have written.
            return (0..tasks).map(f).collect();
        }
        let registry = RangeRegistry::new(tasks, workers);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let tx = tx.clone();
                    let registry = &registry;
                    let f = &f;
                    scope.spawn(move || {
                        while let Some(i) = registry.claim(w) {
                            let v = f(i);
                            if tx.send((i, v)).is_err() {
                                return; // Receiver gone: caller is unwinding.
                            }
                        }
                    })
                })
                .collect();
            // Join explicitly so a worker's panic payload reaches the
            // caller verbatim instead of scope's generic message.
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        drop(tx);
        let mut out: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        for (i, v) in rx {
            debug_assert!(out[i].is_none(), "task {i} claimed twice");
            out[i] = Some(v);
        }
        out.into_iter()
            .enumerate()
            .map(|(i, v)| v.unwrap_or_else(|| panic!("task {i} produced no result")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_index_order_regardless_of_jobs() {
        let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = Executor::new(jobs).run(257, |i| i * i);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        Executor::new(7).run(100, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn zero_tasks_and_oversubscription_are_fine() {
        assert_eq!(Executor::new(4).run(0, |i| i), Vec::<usize>::new());
        assert_eq!(Executor::new(64).run(3, |i| i), vec![0, 1, 2]);
        assert_eq!(Executor::new(0).jobs(), 1, "jobs clamp to at least 1");
    }

    #[test]
    fn uneven_splits_cover_every_index() {
        // 10 tasks over 3 workers: chunks 4/3/3.
        let got = Executor::new(3).run(10, |i| i);
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stealing_balances_skewed_workloads() {
        // Worker 0's chunk is pathologically slow; the others must
        // steal from it for the run to finish promptly. Correctness
        // (not timing) is asserted — the result stays index-ordered.
        let got = Executor::new(4).run(64, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i * 2
        });
        assert_eq!(got, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "task 13 panicked")]
    fn worker_panics_propagate() {
        Executor::new(4).run(20, |i| {
            assert!(i != 13, "task 13 panicked");
            i
        });
    }

    #[test]
    fn registry_steals_half_of_the_largest_slot() {
        let reg = RangeRegistry::new(16, 2); // slots: (0,8) (8,16)
        assert_eq!(reg.claim(0), Some(0));
        // Drain worker 1's slot.
        for i in 8..16 {
            assert_eq!(reg.claim(1), Some(i));
        }
        // Worker 1 steals the upper half of worker 0's remainder
        // (1..8 → victim keeps 1..4, thief takes 4..8).
        assert_eq!(reg.claim(1), Some(4));
        assert_eq!(reg.claim(1), Some(5));
        assert_eq!(reg.claim(0), Some(1));
    }
}
