#![warn(missing_docs)]

//! HeteroLLM: an LLM inference engine for mobile SoCs with
//! heterogeneous AI accelerators.
//!
//! This crate is the paper's primary contribution: an engine that uses
//! the NPU as the primary computing unit, the GPU as a secondary unit
//! that raises the NPU's lower-bound performance, and the CPU purely as
//! a control plane. Two levels of heterogeneous execution are provided:
//!
//! - **Layer-level** ([`engines::HeteroLayerEngine`]): each operator
//!   runs on its best backend — Matmuls on the NPU (operand-permuted to
//!   the weight-stall-friendly order), RMSNorm/SwiGLU/attention on the
//!   GPU.
//! - **Tensor-level** ([`engines::HeteroTensorEngine`]): individual
//!   Matmuls are *partitioned* across GPU and NPU using the solver's
//!   row/sequence/hybrid cuts, with the fast-synchronization runtime
//!   keeping rendezvous costs at microsecond scale.
//!
//! Baseline engines (llama.cpp-, MLC-, MNN-, PPL-OpenCL-style) run the
//! same workloads under their published execution strategies for the
//! evaluation comparisons.
//!
//! The engine operates in two modes: **timing mode** simulates
//! full-size models (shapes only) on the `hetero-soc` simulator, and
//! **functional mode** ([`functional`]) executes real W4A16 math on
//! scaled-down configs so correctness — including the numerical
//! equivalence of every partition strategy — is testable.

pub mod admit;
pub mod api;
pub mod coldstart;
pub mod engines;
pub mod error;
pub mod exec;
pub mod functional;
pub mod functional_engine;
pub mod integrity;
pub mod kv;
pub mod mempool;
pub mod model;
pub mod obs;
pub mod report;
pub mod runtime;
pub mod spec_decode;
pub mod trace;

pub use api::InferenceSession;
pub use engines::{Engine, EngineKind};
pub use error::EngineError;
pub use model::ModelConfig;
pub use report::PhaseReport;
pub use runtime::RuntimeController;
