//! KV cache.
//!
//! Contiguous per-layer key/value storage with GQA-aware head counts.
//! During decode each step appends one row; attention reads the full
//! prefix — the memory-intensive pattern that makes decoding
//! bandwidth-bound (§2.1).

use hetero_tensor::{Result, Tensor, TensorError};

/// Per-layer key/value cache for one sequence.
#[derive(Debug, Clone)]
pub struct KvCache {
    kv_dim: usize,
    max_seq: usize,
    /// `layers × [max_seq, kv_dim]`, keys.
    k: Vec<Tensor>,
    /// `layers × [max_seq, kv_dim]`, values.
    v: Vec<Tensor>,
    len: usize,
}

impl KvCache {
    /// Allocate a cache for `layers` layers.
    pub fn new(layers: usize, max_seq: usize, kv_dim: usize) -> Self {
        Self {
            kv_dim,
            max_seq,
            k: (0..layers)
                .map(|_| Tensor::zeros(&[max_seq, kv_dim]))
                .collect(),
            v: (0..layers)
                .map(|_| Tensor::zeros(&[max_seq, kv_dim]))
                .collect(),
            len: 0,
        }
    }

    /// Current sequence length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum sequence length.
    pub fn capacity(&self) -> usize {
        self.max_seq
    }

    /// Append `rows` of keys/values to `layer` starting at the current
    /// position (the position advances only via [`KvCache::advance`],
    /// after all layers have appended).
    pub fn append(&mut self, layer: usize, keys: &Tensor, values: &Tensor) -> Result<()> {
        let (rows, width) = keys.matrix_dims()?;
        let (vrows, vwidth) = values.matrix_dims()?;
        if width != self.kv_dim || vwidth != self.kv_dim || rows != vrows {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "kv append [{rows},{width}]/[{vrows},{vwidth}] to kv_dim {}",
                    self.kv_dim
                ),
            });
        }
        if self.len + rows > self.max_seq {
            return Err(TensorError::OutOfBounds {
                context: format!(
                    "kv cache overflow: {} + {rows} > {}",
                    self.len, self.max_seq
                ),
            });
        }
        self.check_layer(layer)?;
        let k = &mut self.k[layer];
        let v = &mut self.v[layer];
        for r in 0..rows {
            let dst = (self.len + r) * self.kv_dim;
            k.data_mut()[dst..dst + self.kv_dim].copy_from_slice(keys.row(r)?);
            v.data_mut()[dst..dst + self.kv_dim].copy_from_slice(values.row(r)?);
        }
        Ok(())
    }

    /// Advance the shared position after all layers appended `rows`.
    pub fn advance(&mut self, rows: usize) {
        self.len = (self.len + rows).min(self.max_seq);
    }

    /// Keys of `layer` up to `ctx` rows (a copy; `[ctx, kv_dim]`).
    pub fn keys(&self, layer: usize, ctx: usize) -> Result<Tensor> {
        self.check_layer(layer)?;
        self.k[layer].slice_rows(0, ctx)
    }

    /// Values of `layer` up to `ctx` rows.
    pub fn values(&self, layer: usize, ctx: usize) -> Result<Tensor> {
        self.check_layer(layer)?;
        self.v[layer].slice_rows(0, ctx)
    }

    fn check_layer(&self, layer: usize) -> Result<()> {
        if layer >= self.k.len() {
            return Err(TensorError::OutOfBounds {
                context: format!("kv layer {layer} out of range ({} layers)", self.k.len()),
            });
        }
        Ok(())
    }

    /// Bytes one decode step must read from the cache across all layers
    /// (both K and V, FP16 storage) at context length `ctx`.
    pub fn decode_read_bytes(layers: usize, kv_dim: usize, ctx: usize) -> u64 {
        2 * layers as u64 * ctx as u64 * kv_dim as u64 * 2
    }

    /// Reset to empty (retains allocation).
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, width: usize, base: f32) -> Tensor {
        Tensor::from_vec(
            (0..rows * width).map(|i| base + i as f32).collect(),
            &[rows, width],
        )
        .unwrap()
    }

    #[test]
    fn append_and_read_back() {
        let mut kv = KvCache::new(2, 16, 4);
        let k = filled(3, 4, 0.0);
        let v = filled(3, 4, 100.0);
        kv.append(0, &k, &v).unwrap();
        kv.append(1, &k, &v).unwrap();
        kv.advance(3);
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.keys(0, 3).unwrap(), k);
        assert_eq!(kv.values(1, 3).unwrap(), v);
    }

    #[test]
    fn incremental_decode_appends() {
        let mut kv = KvCache::new(1, 8, 2);
        for step in 0..4 {
            let k = filled(1, 2, step as f32 * 10.0);
            kv.append(0, &k, &k).unwrap();
            kv.advance(1);
        }
        assert_eq!(kv.len(), 4);
        let keys = kv.keys(0, 4).unwrap();
        assert_eq!(keys.at(&[2, 0]).unwrap(), 20.0);
        assert_eq!(keys.at(&[3, 1]).unwrap(), 31.0);
    }

    #[test]
    fn overflow_rejected() {
        let mut kv = KvCache::new(1, 2, 2);
        let k = filled(2, 2, 0.0);
        kv.append(0, &k, &k).unwrap();
        kv.advance(2);
        assert!(kv
            .append(0, &filled(1, 2, 0.0), &filled(1, 2, 0.0))
            .is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut kv = KvCache::new(1, 8, 4);
        let bad = filled(1, 3, 0.0);
        let good = filled(1, 4, 0.0);
        assert!(kv.append(0, &bad, &good).is_err());
        assert!(kv.append(0, &good, &bad).is_err());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut kv = KvCache::new(1, 8, 2);
        kv.append(0, &filled(1, 2, 0.0), &filled(1, 2, 0.0))
            .unwrap();
        kv.advance(1);
        kv.clear();
        assert!(kv.is_empty());
        assert_eq!(kv.capacity(), 8);
    }

    #[test]
    fn out_of_range_layer_is_a_typed_error() {
        let mut kv = KvCache::new(2, 8, 2);
        let t = filled(1, 2, 0.0);
        assert!(kv.append(2, &t, &t).is_err());
        assert!(kv.keys(2, 0).is_err());
        assert!(kv.values(5, 0).is_err());
        // In-range layers still work.
        assert!(kv.append(1, &t, &t).is_ok());
    }

    #[test]
    fn decode_read_bytes_formula() {
        // 32 layers, kv_dim 1024, ctx 256: 2 * 32 * 256 * 1024 * 2B = 32 MB.
        assert_eq!(KvCache::decode_read_bytes(32, 1024, 256), 33_554_432);
    }
}
