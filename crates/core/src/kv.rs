//! KV cache.
//!
//! Contiguous per-layer key/value storage with GQA-aware head counts.
//! During decode each step appends one row; attention reads the full
//! prefix — the memory-intensive pattern that makes decoding
//! bandwidth-bound (§2.1).
//!
//! # Integrity sealing
//!
//! Every call to [`KvCache::advance`] seals the freshly appended rows
//! with an exact bit-pattern hash ([`hetero_tensor::abft::seal_bits`]
//! over the row's keys then values). [`KvCache::verify`] re-hashes the
//! sealed prefix and reports the first corrupted `(layer, row)`; the
//! recovery path then calls [`KvCache::rollback`] to the last good
//! prefix and replays the dropped tokens, which rewrites the corrupted
//! rows bit-for-bit (decoder rows are position-independent: row `i` of
//! every projection depends only on row `i` of its input).

use hetero_tensor::abft::{flip_bit, seal_bits};
use hetero_tensor::{DType, Result, Tensor, TensorError};

/// Per-layer key/value cache for one sequence.
#[derive(Debug, Clone)]
pub struct KvCache {
    kv_dim: usize,
    max_seq: usize,
    /// `layers × [max_seq, kv_dim]`, keys.
    k: Vec<Tensor>,
    /// `layers × [max_seq, kv_dim]`, values.
    v: Vec<Tensor>,
    /// `layers × len`, one bit-exact seal per stored row (keys ‖ values).
    seals: Vec<Vec<u64>>,
    len: usize,
}

impl KvCache {
    /// Allocate a cache for `layers` layers.
    pub fn new(layers: usize, max_seq: usize, kv_dim: usize) -> Self {
        Self {
            kv_dim,
            max_seq,
            k: (0..layers)
                .map(|_| Tensor::zeros(&[max_seq, kv_dim]))
                .collect(),
            v: (0..layers)
                .map(|_| Tensor::zeros(&[max_seq, kv_dim]))
                .collect(),
            seals: vec![Vec::new(); layers],
            len: 0,
        }
    }

    /// Current sequence length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum sequence length.
    pub fn capacity(&self) -> usize {
        self.max_seq
    }

    /// Append `rows` of keys/values to `layer` starting at the current
    /// position (the position advances only via [`KvCache::advance`],
    /// after all layers have appended).
    pub fn append(&mut self, layer: usize, keys: &Tensor, values: &Tensor) -> Result<()> {
        let (rows, width) = keys.matrix_dims()?;
        let (vrows, vwidth) = values.matrix_dims()?;
        if width != self.kv_dim || vwidth != self.kv_dim || rows != vrows {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "kv append [{rows},{width}]/[{vrows},{vwidth}] to kv_dim {}",
                    self.kv_dim
                ),
            });
        }
        if self.len + rows > self.max_seq {
            return Err(TensorError::OutOfBounds {
                context: format!(
                    "kv cache overflow: {} + {rows} > {}",
                    self.len, self.max_seq
                ),
            });
        }
        self.check_layer(layer)?;
        let k = &mut self.k[layer];
        let v = &mut self.v[layer];
        for r in 0..rows {
            let dst = (self.len + r) * self.kv_dim;
            k.data_mut()[dst..dst + self.kv_dim].copy_from_slice(keys.row(r)?);
            v.data_mut()[dst..dst + self.kv_dim].copy_from_slice(values.row(r)?);
        }
        Ok(())
    }

    /// Advance the shared position after all layers appended `rows`,
    /// sealing the new rows in every layer.
    ///
    /// # Errors
    ///
    /// [`TensorError::OutOfBounds`] if the advance would push the
    /// position past `max_seq` — lost rows must never be masked by
    /// clamping (the truncation would be exactly the kind of silent
    /// corruption the integrity layer exists to catch).
    pub fn advance(&mut self, rows: usize) -> Result<()> {
        if self.len + rows > self.max_seq {
            return Err(TensorError::OutOfBounds {
                context: format!(
                    "kv advance overflow: {} + {rows} > {}",
                    self.len, self.max_seq
                ),
            });
        }
        for layer in 0..self.k.len() {
            for r in self.len..self.len + rows {
                let seal = self.seal_row(layer, r);
                self.seals[layer].push(seal);
            }
        }
        self.len += rows;
        Ok(())
    }

    /// Keys of `layer` up to `ctx` rows (a copy; `[ctx, kv_dim]`).
    pub fn keys(&self, layer: usize, ctx: usize) -> Result<Tensor> {
        self.check_layer(layer)?;
        self.k[layer].slice_rows(0, ctx)
    }

    /// Values of `layer` up to `ctx` rows.
    pub fn values(&self, layer: usize, ctx: usize) -> Result<Tensor> {
        self.check_layer(layer)?;
        self.v[layer].slice_rows(0, ctx)
    }

    fn check_layer(&self, layer: usize) -> Result<()> {
        if layer >= self.k.len() {
            return Err(TensorError::OutOfBounds {
                context: format!("kv layer {layer} out of range ({} layers)", self.k.len()),
            });
        }
        Ok(())
    }

    /// Bit-exact seal of one stored row: keys then values.
    fn seal_row(&self, layer: usize, row: usize) -> u64 {
        let lo = row * self.kv_dim;
        let hi = lo + self.kv_dim;
        let mut joined = Vec::with_capacity(2 * self.kv_dim);
        joined.extend_from_slice(&self.k[layer].data()[lo..hi]);
        joined.extend_from_slice(&self.v[layer].data()[lo..hi]);
        seal_bits(&joined)
    }

    /// Re-hash the sealed prefix and return the first corrupted
    /// `(layer, row)`, or `None` when every sealed row is intact.
    pub fn verify(&self) -> Option<(usize, usize)> {
        for row in 0..self.len {
            for layer in 0..self.k.len() {
                if self.seals[layer][row] != self.seal_row(layer, row) {
                    return Some((layer, row));
                }
            }
        }
        None
    }

    /// Number of `(layer, row)` seals covering the current prefix.
    pub fn sealed_rows(&self) -> usize {
        self.len * self.k.len()
    }

    /// Roll the cache back to a previously sealed prefix of `len` rows.
    /// Stored data past the prefix is left in place — replaying the
    /// dropped tokens overwrites it bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`TensorError::OutOfBounds`] if `len` exceeds the current length.
    pub fn rollback(&mut self, len: usize) -> Result<()> {
        if len > self.len {
            return Err(TensorError::OutOfBounds {
                context: format!("kv rollback to {len} > current {}", self.len),
            });
        }
        for seals in &mut self.seals {
            seals.truncate(len);
        }
        self.len = len;
        Ok(())
    }

    /// Fault-injection hook: flip `bit` of the stored *key* element at
    /// `(layer, row, col)` without updating the row's seal — the sticky
    /// storage corruption the read-time verifier must catch.
    ///
    /// # Errors
    ///
    /// [`TensorError::OutOfBounds`] on an out-of-range coordinate.
    pub fn corrupt_key(&mut self, layer: usize, row: usize, col: usize, bit: u32) -> Result<()> {
        self.check_layer(layer)?;
        if row >= self.len || col >= self.kv_dim {
            return Err(TensorError::OutOfBounds {
                context: format!(
                    "kv corrupt ({row},{col}) outside [{},{}]",
                    self.len, self.kv_dim
                ),
            });
        }
        let idx = row * self.kv_dim + col;
        let data = self.k[layer].data_mut();
        data[idx] = flip_bit(data[idx], bit);
        Ok(())
    }

    /// Bytes one decode step must read from the cache across all layers
    /// (both K and V) at context length `ctx`, for elements stored as
    /// `dtype`.
    pub fn decode_read_bytes(layers: usize, kv_dim: usize, ctx: usize, dtype: DType) -> u64 {
        let elems = 2 * layers as u64 * ctx as u64 * kv_dim as u64;
        (elems * dtype.bits() as u64).div_ceil(8)
    }

    /// Reset to empty (retains allocation).
    pub fn clear(&mut self) {
        self.len = 0;
        for seals in &mut self.seals {
            seals.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, width: usize, base: f32) -> Tensor {
        Tensor::from_vec(
            (0..rows * width).map(|i| base + i as f32).collect(),
            &[rows, width],
        )
        .unwrap()
    }

    #[test]
    fn append_and_read_back() {
        let mut kv = KvCache::new(2, 16, 4);
        let k = filled(3, 4, 0.0);
        let v = filled(3, 4, 100.0);
        kv.append(0, &k, &v).unwrap();
        kv.append(1, &k, &v).unwrap();
        kv.advance(3).unwrap();
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.keys(0, 3).unwrap(), k);
        assert_eq!(kv.values(1, 3).unwrap(), v);
    }

    #[test]
    fn incremental_decode_appends() {
        let mut kv = KvCache::new(1, 8, 2);
        for step in 0..4 {
            let k = filled(1, 2, step as f32 * 10.0);
            kv.append(0, &k, &k).unwrap();
            kv.advance(1).unwrap();
        }
        assert_eq!(kv.len(), 4);
        let keys = kv.keys(0, 4).unwrap();
        assert_eq!(keys.at(&[2, 0]).unwrap(), 20.0);
        assert_eq!(keys.at(&[3, 1]).unwrap(), 31.0);
    }

    #[test]
    fn overflow_rejected() {
        let mut kv = KvCache::new(1, 2, 2);
        let k = filled(2, 2, 0.0);
        kv.append(0, &k, &k).unwrap();
        kv.advance(2).unwrap();
        assert!(kv
            .append(0, &filled(1, 2, 0.0), &filled(1, 2, 0.0))
            .is_err());
    }

    #[test]
    fn advance_overflow_is_a_typed_error() {
        let mut kv = KvCache::new(1, 2, 2);
        let k = filled(2, 2, 0.0);
        kv.append(0, &k, &k).unwrap();
        kv.advance(2).unwrap();
        let err = kv.advance(1).unwrap_err();
        assert!(matches!(err, TensorError::OutOfBounds { .. }), "{err}");
        // The position must not have moved.
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut kv = KvCache::new(1, 8, 4);
        let bad = filled(1, 3, 0.0);
        let good = filled(1, 4, 0.0);
        assert!(kv.append(0, &bad, &good).is_err());
        assert!(kv.append(0, &good, &bad).is_err());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut kv = KvCache::new(1, 8, 2);
        kv.append(0, &filled(1, 2, 0.0), &filled(1, 2, 0.0))
            .unwrap();
        kv.advance(1).unwrap();
        kv.clear();
        assert!(kv.is_empty());
        assert_eq!(kv.capacity(), 8);
        assert_eq!(kv.sealed_rows(), 0);
    }

    #[test]
    fn out_of_range_layer_is_a_typed_error() {
        let mut kv = KvCache::new(2, 8, 2);
        let t = filled(1, 2, 0.0);
        assert!(kv.append(2, &t, &t).is_err());
        assert!(kv.keys(2, 0).is_err());
        assert!(kv.values(5, 0).is_err());
        // In-range layers still work.
        assert!(kv.append(1, &t, &t).is_ok());
    }

    #[test]
    fn decode_read_bytes_formula() {
        // 32 layers, kv_dim 1024, ctx 256: 2 * 32 * 256 * 1024 * 2B = 32 MB.
        assert_eq!(
            KvCache::decode_read_bytes(32, 1024, 256, DType::F16),
            33_554_432
        );
        // INT8 storage halves the traffic; INT4 halves it again.
        assert_eq!(
            KvCache::decode_read_bytes(32, 1024, 256, DType::Int8),
            16_777_216
        );
        assert_eq!(
            KvCache::decode_read_bytes(32, 1024, 256, DType::Int4),
            8_388_608
        );
    }

    #[test]
    fn seal_and_verify_detect_corruption() {
        let mut kv = KvCache::new(2, 8, 4);
        let k = filled(3, 4, 0.0);
        let v = filled(3, 4, 50.0);
        kv.append(0, &k, &v).unwrap();
        kv.append(1, &k, &v).unwrap();
        kv.advance(3).unwrap();
        assert_eq!(kv.verify(), None);
        kv.corrupt_key(1, 2, 1, 0).unwrap();
        assert_eq!(kv.verify(), Some((1, 2)));
    }

    #[test]
    fn rollback_drops_corruption_and_replay_restores() {
        let mut kv = KvCache::new(1, 8, 2);
        let rows: Vec<Tensor> = (0..4).map(|s| filled(1, 2, s as f32 * 10.0)).collect();
        for r in &rows {
            kv.append(0, r, r).unwrap();
            kv.advance(1).unwrap();
        }
        let pristine = kv.keys(0, 4).unwrap();
        kv.corrupt_key(0, 2, 0, 7).unwrap();
        let (_, bad_row) = kv.verify().unwrap();
        kv.rollback(bad_row).unwrap();
        assert_eq!(kv.verify(), None, "rolled-back prefix must be clean");
        // Replay the dropped tokens.
        for r in &rows[bad_row..] {
            kv.append(0, r, r).unwrap();
            kv.advance(1).unwrap();
        }
        assert_eq!(kv.verify(), None);
        let restored = kv.keys(0, 4).unwrap();
        assert_eq!(
            restored.data(),
            pristine.data(),
            "bit-identical after replay"
        );
    }
}
