//! Tensor-level heterogeneous execution — the full HeteroLLM engine.
//!
//! Every weight Matmul consults the partition solver: depending on the
//! shape and phase it runs NPU-only, GPU-only, or split across both via
//! row-cutting, sequence-length cutting or hybrid-cutting, with the
//! fast-synchronization runtime bounding rendezvous costs (§4).

use hetero_graph::{CompileModel, GraphCache};
use hetero_profiler::measure::{partition_shape_grid, profile_matmuls};
use hetero_profiler::{CostProvider, PredictedProvider, RealExecProvider};
use hetero_soc::calib::STANDARD_GRAPH_SIZES;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::{Backend, KernelDesc, Soc};
use hetero_solver::{PartitionPlan, PlanTable, Solver, SolverConfig};
use hetero_tensor::shape::MatmulShape;

use crate::engines::{gpu_kernel, hetero_soc_config, npu_kernel, Engine};
use crate::error::EngineError;
use crate::model::ModelConfig;
use crate::obs::{Timeline, TimelineRecorder};
use crate::report::PhaseReport;
use crate::trace::{decode_trace, prefill_trace, ConcurrencyLog, ConcurrencyRecorder, OpRole};

/// HeteroLLM with tensor-level heterogeneous execution.
///
/// Generic over the solver's cost provider: [`RealExecProvider`] (the
/// default — exact offline profiling) or [`PredictedProvider`] (the
/// decision-tree prediction mode of §4.3).
pub struct HeteroTensorEngine<P: CostProvider = RealExecProvider> {
    cfg: ModelConfig,
    soc: Soc,
    #[allow(dead_code)] // Graphs are preloaded; retained for inspection.
    cache: GraphCache,
    prefill_solver: Solver<P>,
    decode_solver: Solver<P>,
    prefill_table: PlanTable,
    decode_table: PlanTable,
    current: Option<Backend>,
    recorder: Option<ConcurrencyRecorder>,
    timeline: Option<TimelineRecorder>,
}

impl HeteroTensorEngine<RealExecProvider> {
    /// New engine for `model` with the given sync mechanism.
    pub fn new(model: &ModelConfig, sync: SyncMechanism) -> Self {
        Self::with_gpu_derate(model, sync, 1.0)
    }

    /// Engine whose solver sees a GPU derated to `derate` of its
    /// throughput and bandwidth.
    ///
    /// This models the §4.3 runtime decider under GPU co-workloads
    /// (Fig. 18): when a game occupies part of the GPU, the profiler
    /// observes lower effective GPU throughput and the solver shifts
    /// partition shares toward the NPU, so the LLM sheds only a small
    /// slowdown instead of stalling behind render work.
    pub fn with_gpu_derate(model: &ModelConfig, sync: SyncMechanism, derate: f64) -> Self {
        assert!((0.0..=1.0).contains(&derate), "derate must be in (0, 1]");
        let mut soc_cfg = hetero_soc_config(sync);
        soc_cfg.gpu.achieved_tflops *= derate;
        soc_cfg.gpu.mem_efficiency *= derate;
        let provider = RealExecProvider::new(soc_cfg.clone());
        Self::from_provider(model, soc_cfg, provider)
    }

    /// Engine over an explicit SoC configuration — e.g. a Table-1
    /// cross-SoC projection from [`hetero_soc::specs::project_config`].
    pub fn with_soc_config(model: &ModelConfig, soc_cfg: hetero_soc::SocConfig) -> Self {
        let provider = RealExecProvider::new(soc_cfg.clone());
        Self::from_provider(model, soc_cfg, provider)
    }

    /// Engine with a custom minimum-parallel-gain threshold (§4.3's
    /// "opts not to partition" bar), for the ablation study.
    pub fn with_min_parallel_gain(
        model: &ModelConfig,
        sync: SyncMechanism,
        min_parallel_gain: f64,
    ) -> Self {
        let soc_cfg = hetero_soc_config(sync);
        let provider = RealExecProvider::new(soc_cfg.clone());
        let mut engine = Self::from_provider(model, soc_cfg, provider.clone());
        let plan_sync = SyncModel::new(SyncMechanism::Fast);
        engine.prefill_solver = Solver::new(
            provider.clone(),
            SolverConfig {
                sync: plan_sync.clone(),
                min_parallel_gain,
                ..SolverConfig::default()
            },
        );
        engine.decode_solver = Solver::new(
            provider,
            SolverConfig {
                sync: plan_sync,
                min_parallel_gain,
                ..SolverConfig::decode(1)
            },
        );
        engine
    }
}

impl HeteroTensorEngine<PredictedProvider> {
    /// Engine whose solver runs in prediction mode (§4.3): the NPU cost
    /// model is a decision-tree regressor trained on an offline
    /// real-execution profile of the model's operator grid; GPU costs
    /// are estimated analytically from a fixed TFLOPS rate.
    pub fn with_predicted_profiler(model: &ModelConfig, sync: SyncMechanism) -> Self {
        let soc_cfg = hetero_soc_config(sync);
        let soc = Soc::new(soc_cfg.clone());
        // Offline profiling pass over the permuted execution shapes the
        // solver will query.
        let mut seqs: Vec<usize> = STANDARD_GRAPH_SIZES.to_vec();
        seqs.push(1);
        let mut shapes = Vec::new();
        for (_, k, n) in model.matmul_ops() {
            shapes.extend(
                partition_shape_grid(&seqs, k, n)
                    .into_iter()
                    .map(|s| s.reversed()),
            );
        }
        shapes.push(MatmulShape::new(model.vocab, model.hidden, 1).reversed());
        shapes.sort_unstable_by_key(|s| (s.m, s.k, s.n));
        shapes.dedup();
        let db = profile_matmuls(
            &soc,
            &shapes,
            &[Backend::Npu],
            hetero_tensor::DType::Int4,
            hetero_tensor::DType::F16,
        );
        let provider =
            PredictedProvider::train(&db, soc_cfg.clone()).expect("profile grid is non-empty");
        Self::from_provider(model, soc_cfg, provider)
    }
}

impl<P: CostProvider + Clone> HeteroTensorEngine<P> {
    /// Shared construction: graph preloading, plan-design solvers and
    /// the assist-tier SoC.
    fn from_provider(model: &ModelConfig, soc_cfg: hetero_soc::SocConfig, provider: P) -> Self {
        let mut cache = GraphCache::new(model.graph_set(), CompileModel::default());
        cache.preload(&STANDARD_GRAPH_SIZES);
        cache.preload(&[1]);

        // Partition plans are part of the *design* and always assume
        // fast synchronization; the runtime's sync mechanism only
        // changes what each rendezvous costs (the Figs. 15/17 ablation
        // varies the mechanism, not the plans).
        let plan_sync = SyncModel::new(SyncMechanism::Fast);
        let prefill_solver = Solver::new(
            provider.clone(),
            SolverConfig {
                sync: plan_sync.clone(),
                ..SolverConfig::default()
            },
        );
        let decode_solver = Solver::new(
            provider,
            SolverConfig {
                sync: plan_sync,
                ..SolverConfig::decode(1)
            },
        );

        let mut soc = Soc::new(soc_cfg);
        // Assist-tier GPU power (shallow queues between sync points).
        soc.set_gpu_assist();
        Self {
            cfg: model.clone(),
            soc,
            cache,
            prefill_solver,
            decode_solver,
            prefill_table: PlanTable::new(),
            decode_table: PlanTable::new(),
            current: None,
            recorder: None,
            timeline: None,
        }
    }
}

impl<P: CostProvider> HeteroTensorEngine<P> {
    fn run_on(&mut self, backend: Backend, kernel: &KernelDesc) {
        if self.current != Some(backend) {
            if let Some(from) = self.current {
                let switch_start = self.soc.clock();
                self.soc.backend_switch();
                let mech = self.soc.config().sync.mechanism;
                if let Some(rec) = &mut self.recorder {
                    rec.switch(backend, mech, self.soc.clock());
                }
                if let Some(tl) = &mut self.timeline {
                    tl.switch(from, backend, mech, switch_start, self.soc.clock());
                }
            }
            self.current = Some(backend);
        }
        if let Some(rec) = &mut self.recorder {
            let mech = self.soc.config().sync.mechanism;
            rec.serial_kernel(backend, kernel.bytes(), mech, self.soc.clock());
        }
        let kernel_start = self.soc.clock();
        self.soc.run_serial(backend, std::slice::from_ref(kernel));
        if let Some(tl) = &mut self.timeline {
            tl.kernel(backend, kernel, kernel_start, self.soc.clock());
        }
    }

    fn run_parallel(&mut self, gpu: &[KernelDesc], npu: &[KernelDesc], dominance: Dominance) {
        if let Some(rec) = &mut self.recorder {
            let mech = self.soc.config().sync.mechanism;
            let gpu_bytes: u64 = gpu.iter().map(KernelDesc::bytes).sum();
            let npu_bytes: u64 = npu.iter().map(KernelDesc::bytes).sum();
            rec.parallel_section(gpu_bytes, npu_bytes, mech, self.soc.clock());
        }
        let start = self.soc.clock();
        let outcome = self.soc.run_parallel(gpu, npu, dominance);
        if let Some(tl) = &mut self.timeline {
            let mech = self.soc.config().sync.mechanism;
            let side_name = |ks: &[KernelDesc]| match ks {
                [k] => crate::obs::timeline::kernel_span_name(k),
                ks => format!("batch×{}", ks.len()),
            };
            tl.parallel_section(
                &side_name(gpu),
                &side_name(npu),
                mech,
                start,
                start + outcome.a_finish,
                start + outcome.b_finish,
                self.soc.clock(),
            );
        }
        // Both backends just ran; the GPU ends the section primed.
        self.current = Some(Backend::Gpu);
    }

    fn execute_plan(&mut self, plan: &PartitionPlan, shape: MatmulShape, dominance: Dominance) {
        match plan {
            PartitionPlan::GpuOnly => self.run_on(Backend::Gpu, &gpu_kernel(shape)),
            PartitionPlan::NpuOnly { padded_m } => {
                let k = npu_kernel(MatmulShape {
                    m: *padded_m,
                    ..shape
                });
                self.run_on(Backend::Npu, &k);
            }
            PartitionPlan::NpuPipe { chunks, .. } => {
                for &c in chunks {
                    let k = npu_kernel(MatmulShape { m: c, ..shape });
                    self.run_on(Backend::Npu, &k);
                }
            }
            PartitionPlan::RowCut { gpu_cols, padded_m }
            | PartitionPlan::HybridCut { gpu_cols, padded_m } => {
                let gpu = gpu_kernel(MatmulShape::new(shape.m, shape.k, *gpu_cols));
                let npu = npu_kernel(MatmulShape::new(*padded_m, shape.k, shape.n - gpu_cols));
                self.run_parallel(&[gpu], &[npu], dominance);
            }
            PartitionPlan::SeqCut {
                npu_chunks,
                gpu_rows,
            } => {
                let npu: Vec<KernelDesc> = npu_chunks
                    .iter()
                    .map(|&c| npu_kernel(MatmulShape { m: c, ..shape }))
                    .collect();
                if *gpu_rows == 0 {
                    for k in &npu {
                        self.run_on(Backend::Npu, k);
                    }
                } else {
                    let gpu = gpu_kernel(MatmulShape {
                        m: *gpu_rows,
                        ..shape
                    });
                    self.run_parallel(&[gpu], &npu, dominance);
                }
            }
        }
    }

    /// Execute a partition plan for one logical Matmul (public for the
    /// speculative-decoding driver and the experiment harness).
    pub fn execute_plan_pub(
        &mut self,
        plan: &PartitionPlan,
        shape: MatmulShape,
        dominance: Dominance,
    ) {
        self.execute_plan(plan, shape, dominance);
    }

    /// Run one kernel serially on a backend (public for the
    /// speculative-decoding driver).
    pub fn run_on_pub(&mut self, backend: Backend, kernel: &KernelDesc) {
        self.run_on(backend, kernel);
    }

    /// The solved plan for an operator at a sequence length (exposed
    /// for the experiment harness).
    pub fn plan_for(&mut self, op: &'static str, shape: MatmulShape) -> PartitionPlan {
        self.prefill_table
            .get_or_solve(&self.prefill_solver, op, shape, Dominance::NpuDominant)
            .plan
    }
}

impl<P: CostProvider> Engine for HeteroTensorEngine<P> {
    fn name(&self) -> String {
        "Hetero-tensor".into()
    }

    fn model(&self) -> &ModelConfig {
        &self.cfg
    }

    fn try_prefill(&mut self, prompt_len: usize) -> Result<PhaseReport, EngineError> {
        let start = self.soc.clock();
        let trace = prefill_trace(&self.cfg, prompt_len);
        let ops: Vec<_> = trace.iter_all().cloned().collect();
        for op in &ops {
            match op.role {
                OpRole::WeightMatmul => {
                    let shape = op.shape.ok_or(EngineError::MissingShape { op: op.op })?;
                    let choice = self.prefill_table.get_or_solve(
                        &self.prefill_solver,
                        op.op,
                        shape,
                        Dominance::NpuDominant,
                    );
                    self.execute_plan(&choice.plan, shape, Dominance::NpuDominant);
                }
                _ => {
                    let k = op.kernel.clone();
                    self.run_on(Backend::Gpu, &k);
                }
            }
        }
        Ok(PhaseReport {
            tokens: prompt_len,
            elapsed: self.soc.clock() - start,
        })
    }

    fn try_decode(
        &mut self,
        prompt_len: usize,
        n_tokens: usize,
    ) -> Result<PhaseReport, EngineError> {
        let start = self.soc.clock();
        for t in 0..n_tokens {
            let trace = decode_trace(&self.cfg, prompt_len + t + 1, 1);
            let ops: Vec<_> = trace.iter_all().cloned().collect();
            for op in &ops {
                match op.role {
                    OpRole::WeightMatmul => {
                        let shape = op.shape.ok_or(EngineError::MissingShape { op: op.op })?;
                        let choice = self.decode_table.get_or_solve(
                            &self.decode_solver,
                            op.op,
                            shape,
                            Dominance::GpuDominant,
                        );
                        self.execute_plan(&choice.plan, shape, Dominance::GpuDominant);
                    }
                    _ => {
                        let k = op.kernel.clone();
                        self.run_on(Backend::Gpu, &k);
                    }
                }
            }
        }
        Ok(PhaseReport {
            tokens: n_tokens,
            elapsed: self.soc.clock() - start,
        })
    }

    fn enable_concurrency_log(&mut self) {
        self.recorder = Some(ConcurrencyRecorder::new());
    }

    fn take_concurrency_log(&mut self) -> Option<ConcurrencyLog> {
        self.recorder.take().map(ConcurrencyRecorder::finish)
    }

    fn enable_timeline(&mut self) {
        self.timeline = Some(TimelineRecorder::new());
    }

    fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take().map(TimelineRecorder::finish)
    }

    fn soc(&self) -> &Soc {
        &self.soc
    }

    fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::hetero_layer::HeteroLayerEngine;
    use crate::engines::single::{GpuTier, SingleBackendEngine};

    #[test]
    fn tensor_level_beats_layer_level_in_prefill() {
        // §5.2.1: Hetero-tensor outperforms Hetero-layer by ~30% on
        // average (up to ~41%).
        let model = ModelConfig::llama_8b();
        let mut tensor = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let mut layer = HeteroLayerEngine::new(&model, SyncMechanism::Fast);
        let t = tensor.prefill(1024).tokens_per_sec();
        let l = layer.prefill(1024).tokens_per_sec();
        let gain = t / l - 1.0;
        assert!((0.10..0.70).contains(&gain), "gain {gain} (t={t} l={l})");
    }

    #[test]
    fn decode_beats_gpu_only_via_bandwidth_aggregation() {
        // §5.3: Hetero-tensor decodes ~23% faster than PPL-OpenCL on
        // Llama-8B by using both backends' bandwidth.
        let model = ModelConfig::llama_8b();
        let mut tensor = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let mut ppl = SingleBackendEngine::gpu(&model, GpuTier::PplOpenCl);
        let t = tensor.decode(256, 8).tokens_per_sec();
        let p = ppl.decode(256, 8).tokens_per_sec();
        let gain = t / p - 1.0;
        assert!((0.08..0.45).contains(&gain), "gain {gain} (t={t} p={p})");
    }

    #[test]
    fn llama8b_decode_rate_matches_paper_scale() {
        // Fig. 16: ≈14 tokens/s on Llama-8B.
        let model = ModelConfig::llama_8b();
        let mut e = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let rate = e.decode(256, 8).tokens_per_sec();
        assert!((11.0..18.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn internlm_prefill_approaches_1000_tokens_per_sec() {
        // §1/§5.2.1: >1000 tokens/s prefill on InternLM-1.8B.
        let model = ModelConfig::internlm_1_8b();
        let mut e = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let rate = e.prefill(256).tokens_per_sec();
        assert!(rate > 700.0, "rate {rate}");
    }

    #[test]
    fn fast_sync_matters_more_for_decode() {
        // Fig. 15 vs Fig. 17: decode gains much more from fast sync
        // because kernels are hundreds of microseconds.
        let model = ModelConfig::llama_8b();
        let gain = |prefill: bool| {
            let mut fast = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
            let mut slow = HeteroTensorEngine::new(&model, SyncMechanism::Driver);
            if prefill {
                fast.prefill(256).tokens_per_sec() / slow.prefill(256).tokens_per_sec()
            } else {
                fast.decode(256, 4).tokens_per_sec() / slow.decode(256, 4).tokens_per_sec()
            }
        };
        let prefill_gain = gain(true);
        let decode_gain = gain(false);
        assert!(
            decode_gain > prefill_gain,
            "decode {decode_gain} vs prefill {prefill_gain}"
        );
        assert!(decode_gain > 1.5, "decode gain {decode_gain}");
    }

    #[test]
    fn misaligned_beats_padding_baseline() {
        // Fig. 14: Hetero-tensor vs Padding at misaligned lengths.
        use crate::engines::npu_only::{MisalignStrategy, NpuOnlyEngine};
        let model = ModelConfig::llama_8b();
        for len in [300usize, 525] {
            let mut tensor = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
            let mut pad =
                NpuOnlyEngine::new(&model, MisalignStrategy::Padding, SyncMechanism::Fast);
            let t = tensor.prefill(len).elapsed.as_millis_f64();
            let p = pad.prefill(len).elapsed.as_millis_f64();
            assert!(t < p, "len {len}: tensor {t} !< padding {p}");
        }
    }

    #[test]
    fn prediction_mode_engine_tracks_real_mode() {
        // §4.3: "minor inaccuracies in performance results across
        // different backends are tolerable for our solver" — the
        // prediction-mode engine must land within ~20% of the
        // real-execution-profiled engine end to end.
        let model = ModelConfig::llama_3b();
        let mut real = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let mut pred = HeteroTensorEngine::with_predicted_profiler(&model, SyncMechanism::Fast);
        let r = real.prefill(256).tokens_per_sec();
        let p = pred.prefill(256).tokens_per_sec();
        assert!((p / r - 1.0).abs() < 0.20, "pred {p} vs real {r}");
        let rd = real.decode(256, 4).tokens_per_sec();
        let pd = pred.decode(256, 4).tokens_per_sec();
        assert!(
            (pd / rd - 1.0).abs() < 0.25,
            "pred decode {pd} vs real {rd}"
        );
    }

    #[test]
    fn ffn_down_plan_is_parallel() {
        let model = ModelConfig::llama_8b();
        let mut e = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let plan = e.plan_for("ffn_down", MatmulShape::new(256, model.ffn, model.hidden));
        assert!(plan.is_parallel(), "{plan:?}");
    }
}
