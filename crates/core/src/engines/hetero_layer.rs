//! Layer-level heterogeneous execution (and its NPU-only-matmul
//! variants).
//!
//! Operators are routed to their best backend — weight Matmuls to the
//! NPU in permuted order, everything else to the GPU — and executed
//! serially with a synchronization cost at every backend transition.
//! In the decode phase the NPU is slower than the GPU at sequence
//! length 1, so layer-level execution routes Matmuls to the GPU and
//! performs like PPL-OpenCL (§5.3).

use hetero_graph::plan::{padding_plan, pipe_plan};
use hetero_graph::{CompileModel, GraphCache};
use hetero_soc::calib::STANDARD_GRAPH_SIZES;
use hetero_soc::sync::SyncMechanism;
use hetero_soc::{Backend, SimTime, Soc};
use hetero_tensor::shape::MatmulShape;

use crate::engines::{gpu_kernel, hetero_soc_config, npu_kernel, Engine};
use crate::error::EngineError;
use crate::model::ModelConfig;
use crate::obs::{Timeline, TimelineRecorder};
use crate::report::PhaseReport;
use crate::trace::{
    decode_trace, prefill_trace, ConcurrencyLog, ConcurrencyRecorder, OpRole, PhaseTrace,
};

/// How the NPU handles sequence lengths without a compiled graph
/// (§5.2.2's baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisalignStrategy {
    /// Pad to the next standard graph size.
    Padding,
    /// Generate exact-size graphs at request time.
    OnlinePrepare,
    /// Decompose into standard-size chunks run sequentially.
    Pipe,
    /// MLLM-NPU-style chunked prefill: one fixed chunk size, every
    /// request padded to a multiple of it (§5.2.2: "the chunk size
    /// must be chosen carefully ... performance is degraded to half
    /// when the sequence length is shortened to 256").
    Chunked {
        /// The fixed chunk size.
        chunk: usize,
    },
}

/// Shared core: serial execution with per-op backend routing.
pub(crate) struct RoutedCore {
    pub cfg: ModelConfig,
    pub soc: Soc,
    pub cache: GraphCache,
    pub strategy: MisalignStrategy,
    /// Backend of the decode-phase weight Matmuls.
    pub decode_matmul_backend: Backend,
    /// Backend of the non-Matmul (attention/norm/activation) kernels.
    pub aux_backend: Backend,
    /// Whether NPU Matmuls use INT8 storage for both operands (the
    /// INT-only frameworks of Table 2) instead of the permuted W4A16
    /// convention.
    pub int8_matmuls: bool,
    current: Option<Backend>,
    recorder: Option<ConcurrencyRecorder>,
    timeline: Option<TimelineRecorder>,
}

impl RoutedCore {
    pub fn new(
        model: &ModelConfig,
        strategy: MisalignStrategy,
        sync: SyncMechanism,
        decode_matmul_backend: Backend,
    ) -> Self {
        let mut cache = GraphCache::new(model.graph_set(), CompileModel::default());
        // Offline preparation: standard prefill graphs (except for
        // Online-prepare, whose whole point is runtime generation) and
        // the decode graph.
        if strategy != MisalignStrategy::OnlinePrepare {
            cache.preload(&STANDARD_GRAPH_SIZES);
        }
        if let MisalignStrategy::Chunked { chunk } = strategy {
            cache.preload(&[chunk]);
        }
        cache.preload(&[1]);
        let mut soc = Soc::new(hetero_soc_config(sync));
        // HeteroLLM's GPU runs partitioned assist work, not a deep
        // full-throttle queue (power tier; Fig. 19).
        soc.set_gpu_assist();
        Self {
            cfg: model.clone(),
            soc,
            cache,
            strategy,
            decode_matmul_backend,
            aux_backend: Backend::Gpu,
            int8_matmuls: false,
            current: None,
            recorder: None,
            timeline: None,
        }
    }

    /// Start (or reset) concurrency-event recording.
    pub(crate) fn enable_concurrency_log(&mut self) {
        self.recorder = Some(ConcurrencyRecorder::new());
    }

    /// Take the recorded log, ending recording.
    pub(crate) fn take_concurrency_log(&mut self) -> Option<ConcurrencyLog> {
        self.recorder.take().map(ConcurrencyRecorder::finish)
    }

    /// Start (or reset) span-timeline recording.
    pub(crate) fn enable_timeline(&mut self) {
        self.timeline = Some(TimelineRecorder::new());
    }

    /// Take the recorded timeline, ending recording.
    pub(crate) fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take().map(TimelineRecorder::finish)
    }

    fn npu_matmul_kernel(&self, shape: MatmulShape) -> hetero_soc::KernelDesc {
        if self.int8_matmuls {
            // INT-only frameworks: INT8 activations and weights, no
            // operand permutation (they execute the stock order).
            hetero_soc::KernelDesc::matmul(
                shape,
                hetero_tensor::DType::Int8,
                hetero_tensor::DType::Int8,
                hetero_tensor::DType::Int8,
            )
        } else {
            npu_kernel(shape)
        }
    }

    fn run_on(&mut self, backend: Backend, name: &'static str, kernel: &hetero_soc::KernelDesc) {
        if self.current != Some(backend) {
            if let Some(from) = self.current {
                let switch_start = self.soc.clock();
                self.soc.backend_switch();
                let mech = self.soc.config().sync.mechanism;
                if let Some(rec) = &mut self.recorder {
                    rec.switch(backend, mech, self.soc.clock());
                }
                if let Some(tl) = &mut self.timeline {
                    tl.switch(from, backend, mech, switch_start, self.soc.clock());
                }
            }
            self.current = Some(backend);
        }
        if let Some(rec) = &mut self.recorder {
            let mech = self.soc.config().sync.mechanism;
            rec.serial_kernel(backend, kernel.bytes(), mech, self.soc.clock());
        }
        let kernel_start = self.soc.clock();
        self.soc.run_serial(backend, std::slice::from_ref(kernel));
        if let Some(tl) = &mut self.timeline {
            tl.kernel_named(backend, name, kernel_start, self.soc.clock());
        }
    }

    /// The NPU chunk sizes covering `m` rows under this strategy, plus
    /// any graph-preparation time to charge to the request.
    fn npu_chunks(&mut self, m: usize) -> (Vec<usize>, SimTime) {
        match self.strategy {
            MisalignStrategy::Padding => (
                padding_plan(m, &STANDARD_GRAPH_SIZES).npu_chunks,
                SimTime::ZERO,
            ),
            MisalignStrategy::OnlinePrepare => {
                let hit = self.cache.has(m);
                let prep = self.cache.ensure(m);
                if let Some(tl) = &mut self.timeline {
                    tl.graph_lookup(hit || m == 0);
                }
                (vec![m], prep)
            }
            MisalignStrategy::Pipe => (
                pipe_plan(m, &STANDARD_GRAPH_SIZES).npu_chunks,
                SimTime::ZERO,
            ),
            MisalignStrategy::Chunked { chunk } => (vec![chunk; m.div_ceil(chunk)], SimTime::ZERO),
        }
    }

    pub fn run_prefill(&mut self, prompt_len: usize) -> Result<PhaseReport, EngineError> {
        let start = self.soc.clock();
        let (chunks, prep) = self.npu_chunks(prompt_len);
        // Graph generation (Online-prepare) delays the whole request.
        self.soc.advance(prep);
        if prep > SimTime::ZERO {
            if let Some(tl) = &mut self.timeline {
                tl.graph_compile(prompt_len, start, self.soc.clock());
            }
        }

        let trace = prefill_trace(&self.cfg, prompt_len);
        self.run_routed(&trace, &chunks)?;
        Ok(PhaseReport {
            tokens: prompt_len,
            elapsed: self.soc.clock() - start,
        })
    }

    fn run_routed(&mut self, trace: &PhaseTrace, npu_chunks: &[usize]) -> Result<(), EngineError> {
        // Clone the per-layer op list to avoid borrowing `trace` across
        // `&mut self` calls.
        let ops: Vec<_> = trace.iter_all().cloned().collect();
        for op in &ops {
            match op.role {
                OpRole::WeightMatmul => {
                    let shape = op.shape.ok_or(EngineError::MissingShape { op: op.op })?;
                    if shape.m == 1 {
                        // LM head (single row): a standard graph exists.
                        let k = self.npu_matmul_kernel(shape);
                        self.run_on(Backend::Npu, op.op, &k);
                    } else {
                        for &c in npu_chunks {
                            let k = self.npu_matmul_kernel(MatmulShape { m: c, ..shape });
                            self.run_on(Backend::Npu, op.op, &k);
                        }
                    }
                }
                OpRole::Attention | OpRole::Aux => {
                    let k = op.kernel.clone();
                    let backend = self.aux_backend;
                    self.run_on(backend, op.op, &k);
                }
            }
        }
        Ok(())
    }

    pub fn run_decode(
        &mut self,
        prompt_len: usize,
        n_tokens: usize,
    ) -> Result<PhaseReport, EngineError> {
        let start = self.soc.clock();
        for t in 0..n_tokens {
            let trace = decode_trace(&self.cfg, prompt_len + t + 1, 1);
            let ops: Vec<_> = trace.iter_all().cloned().collect();
            for op in &ops {
                match op.role {
                    OpRole::WeightMatmul => {
                        let shape = op.shape.ok_or(EngineError::MissingShape { op: op.op })?;
                        match self.decode_matmul_backend {
                            Backend::Npu => {
                                let k = self.npu_matmul_kernel(shape);
                                self.run_on(Backend::Npu, op.op, &k);
                            }
                            other => {
                                let k = gpu_kernel(shape);
                                self.run_on(other, op.op, &k);
                            }
                        }
                    }
                    _ => {
                        let k = op.kernel.clone();
                        let backend = self.aux_backend;
                        self.run_on(backend, op.op, &k);
                    }
                }
            }
        }
        Ok(PhaseReport {
            tokens: n_tokens,
            elapsed: self.soc.clock() - start,
        })
    }
}

/// HeteroLLM with layer-level heterogeneous execution.
pub struct HeteroLayerEngine {
    core: RoutedCore,
}

impl HeteroLayerEngine {
    /// New engine for `model` with the given sync mechanism.
    pub fn new(model: &ModelConfig, sync: SyncMechanism) -> Self {
        // Layer-level prefill pads misaligned lengths; decode Matmuls
        // go to the GPU (§5.3).
        Self {
            core: RoutedCore::new(model, MisalignStrategy::Padding, sync, Backend::Gpu),
        }
    }
}

impl Engine for HeteroLayerEngine {
    fn name(&self) -> String {
        "Hetero-layer".into()
    }

    fn model(&self) -> &ModelConfig {
        &self.core.cfg
    }

    fn try_prefill(&mut self, prompt_len: usize) -> Result<PhaseReport, EngineError> {
        self.core.run_prefill(prompt_len)
    }

    fn try_decode(
        &mut self,
        prompt_len: usize,
        n_tokens: usize,
    ) -> Result<PhaseReport, EngineError> {
        self.core.run_decode(prompt_len, n_tokens)
    }

    fn enable_concurrency_log(&mut self) {
        self.core.enable_concurrency_log();
    }

    fn take_concurrency_log(&mut self) -> Option<ConcurrencyLog> {
        self.core.take_concurrency_log()
    }

    fn enable_timeline(&mut self) {
        self.core.enable_timeline();
    }

    fn take_timeline(&mut self) -> Option<Timeline> {
        self.core.take_timeline()
    }

    fn soc(&self) -> &Soc {
        &self.core.soc
    }

    fn soc_mut(&mut self) -> &mut Soc {
        &mut self.core.soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::single::{GpuTier, SingleBackendEngine};

    #[test]
    fn hetero_layer_beats_gpu_only_in_prefill() {
        // Fig. 13: Hetero-layer ≈ 3× PPL-OpenCL at seq 256 (Llama-8B).
        let model = ModelConfig::llama_8b();
        let mut hetero = HeteroLayerEngine::new(&model, SyncMechanism::Fast);
        let mut ppl = SingleBackendEngine::gpu(&model, GpuTier::PplOpenCl);
        let h = hetero.prefill(256).tokens_per_sec();
        let p = ppl.prefill(256).tokens_per_sec();
        let speedup = h / p;
        assert!(
            (2.0..4.5).contains(&speedup),
            "speedup {speedup} (h={h}, p={p})"
        );
    }

    #[test]
    fn hetero_layer_decode_close_to_ppl() {
        // §5.3: Hetero-layer decode "performs similarly to PPL-OpenCL".
        let model = ModelConfig::llama_8b();
        let mut hetero = HeteroLayerEngine::new(&model, SyncMechanism::Fast);
        let mut ppl = SingleBackendEngine::gpu(&model, GpuTier::PplOpenCl);
        let h = hetero.decode(256, 8).tokens_per_sec();
        let p = ppl.decode(256, 8).tokens_per_sec();
        let ratio = h / p;
        assert!((0.8..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fast_sync_improves_prefill() {
        // Fig. 15: Hetero-layer gains ~15% from fast synchronization.
        let model = ModelConfig::llama_8b();
        let mut fast = HeteroLayerEngine::new(&model, SyncMechanism::Fast);
        let mut slow = HeteroLayerEngine::new(&model, SyncMechanism::Driver);
        let f = fast.prefill(256).tokens_per_sec();
        let s = slow.prefill(256).tokens_per_sec();
        let gain = f / s - 1.0;
        assert!((0.05..0.60).contains(&gain), "gain {gain}");
    }

    #[test]
    fn prefill_speed_is_hundreds_of_tokens_per_sec() {
        let model = ModelConfig::llama_8b();
        let mut e = HeteroLayerEngine::new(&model, SyncMechanism::Fast);
        let rate = e.prefill(256).tokens_per_sec();
        assert!((120.0..350.0).contains(&rate), "rate {rate}");
    }
}
