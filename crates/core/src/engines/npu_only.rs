//! NPU-matmul engines with the three misaligned-sequence strategies
//! (the Fig. 14 baselines: Padding, Online-prepare, Pipe).
//!
//! These are HeteroLLM variants that keep every weight Matmul on the
//! NPU — no GPU offloading of Matmul work — differing only in how a
//! sequence length without a compiled static graph is handled.

use hetero_soc::sync::SyncMechanism;
use hetero_soc::{Backend, Soc};

pub use crate::engines::hetero_layer::MisalignStrategy;
use crate::engines::hetero_layer::RoutedCore;
use crate::engines::Engine;
use crate::error::EngineError;
use crate::model::ModelConfig;
use crate::report::PhaseReport;

/// An engine whose weight Matmuls all run on the NPU under one
/// misalignment strategy.
pub struct NpuOnlyEngine {
    core: RoutedCore,
}

impl NpuOnlyEngine {
    /// New engine for `model`.
    pub fn new(model: &ModelConfig, strategy: MisalignStrategy, sync: SyncMechanism) -> Self {
        Self {
            core: RoutedCore::new(model, strategy, sync, Backend::Npu),
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> MisalignStrategy {
        self.core.strategy
    }
}

impl Engine for NpuOnlyEngine {
    fn name(&self) -> String {
        match self.core.strategy {
            MisalignStrategy::Padding => "Padding".into(),
            MisalignStrategy::OnlinePrepare => "Online-prepare".into(),
            MisalignStrategy::Pipe => "Pipe".into(),
            MisalignStrategy::Chunked { .. } => "Chunked-Prefill".into(),
        }
    }

    fn model(&self) -> &ModelConfig {
        &self.core.cfg
    }

    fn try_prefill(&mut self, prompt_len: usize) -> Result<PhaseReport, EngineError> {
        self.core.run_prefill(prompt_len)
    }

    fn try_decode(
        &mut self,
        prompt_len: usize,
        n_tokens: usize,
    ) -> Result<PhaseReport, EngineError> {
        self.core.run_decode(prompt_len, n_tokens)
    }

    fn enable_concurrency_log(&mut self) {
        self.core.enable_concurrency_log();
    }

    fn take_concurrency_log(&mut self) -> Option<crate::trace::ConcurrencyLog> {
        self.core.take_concurrency_log()
    }

    fn enable_timeline(&mut self) {
        self.core.enable_timeline();
    }

    fn take_timeline(&mut self) -> Option<crate::obs::Timeline> {
        self.core.take_timeline()
    }

    fn soc(&self) -> &Soc {
        &self.core.soc
    }

    fn soc_mut(&mut self) -> &mut Soc {
        &mut self.core.soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefill_latency(strategy: MisalignStrategy, len: usize) -> f64 {
        let model = ModelConfig::llama_8b();
        let mut e = NpuOnlyEngine::new(&model, strategy, SyncMechanism::Fast);
        e.prefill(len).elapsed.as_millis_f64()
    }

    #[test]
    fn online_prepare_pays_graph_generation() {
        // §5.2.2: at misaligned lengths, Online-prepare's latency is
        // dominated by graph generation (408 ms at length 135).
        let online = prefill_latency(MisalignStrategy::OnlinePrepare, 135);
        let pipe = prefill_latency(MisalignStrategy::Pipe, 135);
        assert!(online > pipe + 300.0, "online {online} vs pipe {pipe}");
    }

    #[test]
    fn padding_latency_is_stepwise() {
        // Latency just above a standard size jumps to the next step
        // and stays ~flat until the following one.
        let at_513 = prefill_latency(MisalignStrategy::Padding, 513);
        let at_768 = prefill_latency(MisalignStrategy::Padding, 768);
        let at_1024 = prefill_latency(MisalignStrategy::Padding, 1024);
        let step_spread = (at_1024 - at_513).abs() / at_1024;
        assert!(
            step_spread < 0.25,
            "513→1024 should be one step: {at_513} {at_768} {at_1024}"
        );
    }

    #[test]
    fn pipe_beats_padding_on_misaligned_lengths() {
        // §5.2.2: "Pipe compensates for the overhead of Padding".
        for len in [300usize, 525, 700] {
            let pad = prefill_latency(MisalignStrategy::Padding, len);
            let pipe = prefill_latency(MisalignStrategy::Pipe, len);
            assert!(pipe < pad, "len {len}: pipe {pipe} >= pad {pad}");
        }
    }

    #[test]
    fn aligned_lengths_equalize_padding_and_pipe() {
        let pad = prefill_latency(MisalignStrategy::Padding, 512);
        let pipe = prefill_latency(MisalignStrategy::Pipe, 512);
        assert!((pad - pipe).abs() / pad < 0.02, "pad {pad} pipe {pipe}");
    }

    #[test]
    fn online_prepare_amortizes_on_repeat_lengths() {
        // A second request with the same length hits the graph cache.
        let model = ModelConfig::llama_8b();
        let mut e =
            NpuOnlyEngine::new(&model, MisalignStrategy::OnlinePrepare, SyncMechanism::Fast);
        let first = e.prefill(135).elapsed.as_millis_f64();
        let second = e.prefill(135).elapsed.as_millis_f64();
        assert!(second < first - 300.0, "first {first} second {second}");
    }
}
