//! MLLM-NPU-style comparator engine.
//!
//! Models the INT-only NPU frameworks of Table 2 (MLLM-NPU in
//! particular): weight Matmuls run on the NPU with INT8 activations
//! *and* weights, prompts are processed as fixed-size chunks
//! ("Chunked Prefill", §5.2.2), non-Matmul kernels run on the CPU, and
//! the GPU is unused. The effective NPU throughput is calibrated from
//! the single datum the paper publishes: 564 prefill tokens/s on a
//! 1.8B model at sequence 256 (§5.2.1), which folds in that
//! framework's quantization/outlier-handling overheads.
//!
//! Its *accuracy* cost — the reason HeteroLLM insists on FLOAT NPU
//! GEMMs — is quantified functionally in
//! [`crate::functional::quant_divergence`].

use hetero_soc::sync::SyncMechanism;
use hetero_soc::{Backend, Soc};

use crate::engines::hetero_layer::{MisalignStrategy, RoutedCore};
use crate::engines::{hetero_soc_config, Engine};
use crate::error::EngineError;
use crate::model::ModelConfig;
use crate::report::PhaseReport;

/// Effective INT8 NPU throughput of the MLLM-NPU software stack,
/// TFLOPS-equivalent. Derived from the published 564 tokens/s prefill
/// on a 1.8B model at sequence 256 (2·1.8e9·256 FLOPs ≈ 0.92 TFLOP in
/// 0.454 s ⇒ ≈2 effective TFLOPS), comfortably below the Hexagon's raw
/// INT8 peak because of per-chunk layout transforms and CPU outlier
/// handling.
pub const MLLM_EFFECTIVE_INT8_TFLOPS: f64 = 2.2;

/// The fixed prefill chunk size MLLM-NPU uses.
pub const MLLM_CHUNK: usize = 256;

/// MLLM-NPU-style engine: chunked INT8 NPU prefill, CPU aux kernels.
pub struct MllmNpuEngine {
    core: RoutedCore,
}

impl MllmNpuEngine {
    /// New engine for `model`.
    pub fn new(model: &ModelConfig, sync: SyncMechanism) -> Self {
        let mut core = RoutedCore::new(
            model,
            MisalignStrategy::Chunked { chunk: MLLM_CHUNK },
            sync,
            Backend::Npu,
        );
        core.aux_backend = Backend::Cpu;
        core.int8_matmuls = true;
        let mut soc_cfg = hetero_soc_config(sync);
        // The calibrated effective throughput already folds in the
        // framework's own layout transformations and outlier handling,
        // so the generic shape penalty is disabled (floor = peak) to
        // avoid double-counting.
        soc_cfg.npu.peak_tflops = MLLM_EFFECTIVE_INT8_TFLOPS;
        soc_cfg.npu.min_effective_tflops = MLLM_EFFECTIVE_INT8_TFLOPS;
        core.soc = Soc::new(soc_cfg);
        core.cache.preload(&[MLLM_CHUNK, 1]);
        Self { core }
    }
}

impl Engine for MllmNpuEngine {
    fn name(&self) -> String {
        "MLLM-NPU".into()
    }

    fn model(&self) -> &ModelConfig {
        &self.core.cfg
    }

    fn try_prefill(&mut self, prompt_len: usize) -> Result<PhaseReport, EngineError> {
        self.core.run_prefill(prompt_len)
    }

    fn try_decode(
        &mut self,
        prompt_len: usize,
        n_tokens: usize,
    ) -> Result<PhaseReport, EngineError> {
        self.core.run_decode(prompt_len, n_tokens)
    }

    fn enable_concurrency_log(&mut self) {
        self.core.enable_concurrency_log();
    }

    fn take_concurrency_log(&mut self) -> Option<crate::trace::ConcurrencyLog> {
        self.core.take_concurrency_log()
    }

    fn enable_timeline(&mut self) {
        self.core.enable_timeline();
    }

    fn take_timeline(&mut self) -> Option<crate::obs::Timeline> {
        self.core.take_timeline()
    }

    fn soc(&self) -> &Soc {
        &self.core.soc
    }

    fn soc_mut(&mut self) -> &mut Soc {
        &mut self.core.soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_internlm_rate() {
        // §5.2.1: "MLLM-npu attains only 564 tokens/s" at 1.8B / 256.
        let mut e = MllmNpuEngine::new(&ModelConfig::internlm_1_8b(), SyncMechanism::Fast);
        let rate = e.prefill(256).tokens_per_sec();
        assert!((400.0..750.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn hetero_tensor_beats_mllm_npu_without_int_quantization() {
        // The paper's point: FLOAT NPU GEMMs + GPU assistance beat the
        // INT-only stack (1092 vs 564 ⇒ ≈1.9×) while preserving
        // accuracy.
        use crate::engines::HeteroTensorEngine;
        let model = ModelConfig::internlm_1_8b();
        let mut mllm = MllmNpuEngine::new(&model, SyncMechanism::Fast);
        let mut hetero = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let m = mllm.prefill(256).tokens_per_sec();
        let h = hetero.prefill(256).tokens_per_sec();
        let ratio = h / m;
        assert!((1.3..3.2).contains(&ratio), "ratio {ratio} (h={h}, m={m})");
    }

    #[test]
    fn chunked_prefill_wastes_short_prompts() {
        let model = ModelConfig::internlm_1_8b();
        let rate = |seq: usize| {
            let mut e = MllmNpuEngine::new(&model, SyncMechanism::Fast);
            e.prefill(seq).tokens_per_sec()
        };
        // A 64-token prompt still pays for a full 256-chunk.
        assert!(rate(64) < rate(256) * 0.5);
    }
}
