//! Single-backend baseline engines: llama.cpp (CPU) and the GPU-only
//! frameworks (MLC, MNN-OpenCL, PPL-OpenCL).
//!
//! These engines run every kernel of the trace serially on one backend.
//! They need no cross-backend synchronization, but also leave the other
//! accelerators — and most of the SoC's memory bandwidth — idle
//! (Memory-①).

use hetero_soc::gpu::GpuModel;
use hetero_soc::{calib, Backend, Soc, SocConfig};

use crate::engines::{llama_cpp_soc_config, Engine};
use crate::error::EngineError;
use crate::model::ModelConfig;
use crate::obs::{Timeline, TimelineRecorder};
use crate::report::PhaseReport;
use crate::trace::{decode_trace, prefill_trace, ConcurrencyLog, ConcurrencyRecorder, PhaseTrace};

/// GPU kernel-quality tiers of the baseline frameworks (derived from
/// the paper's relative results; see [`calib::engine_eff`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuTier {
    /// PPL-OpenCL: hand-tuned kernels, ≈1 TFLOPS achieved, full
    /// streaming bandwidth.
    PplOpenCl,
    /// MLC (TVM-compiled kernels).
    Mlc,
    /// MNN-OpenCL.
    Mnn,
}

impl GpuTier {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Self::PplOpenCl => "PPL-OpenCL",
            Self::Mlc => "MLC",
            Self::Mnn => "MNN-OpenCL",
        }
    }

    /// The GPU model of this tier.
    pub fn gpu_model(self) -> GpuModel {
        // Sequence slopes reproduce Fig. 13's divergence at long
        // prompts: MNN's tiling improves with rows (≈4.36× gap to
        // Hetero-tensor at 1024 vs 5.85× at 256) while MLC's TVM
        // kernels degrade (9.99× gap at 1024).
        let (eff, decode_bw, seq_slope) = match self {
            Self::PplOpenCl => (
                calib::engine_eff::PPL_OPENCL,
                calib::engine_decode_bw::PPL_OPENCL,
                0.0,
            ),
            Self::Mlc => (calib::engine_eff::MLC, calib::engine_decode_bw::MLC, -0.12),
            Self::Mnn => (calib::engine_eff::MNN, calib::engine_decode_bw::MNN, 0.375),
        };
        let mut gpu = GpuModel::with_efficiency(eff);
        gpu.mem_efficiency = decode_bw / calib::GPU_MAX_BW_GBPS;
        gpu.seq_slope = seq_slope;
        gpu
    }
}

/// An engine that schedules the whole trace on one backend.
pub struct SingleBackendEngine {
    name: String,
    cfg: ModelConfig,
    backend: Backend,
    soc: Soc,
    recorder: Option<ConcurrencyRecorder>,
    timeline: Option<TimelineRecorder>,
}

impl SingleBackendEngine {
    /// A GPU-only engine of the given framework tier.
    pub fn gpu(model: &ModelConfig, tier: GpuTier) -> Self {
        let mut soc_cfg = SocConfig::snapdragon_8gen3();
        soc_cfg.gpu = tier.gpu_model();
        Self {
            name: tier.name().to_string(),
            cfg: model.clone(),
            backend: Backend::Gpu,
            soc: Soc::new(soc_cfg),
            recorder: None,
            timeline: None,
        }
    }

    /// The llama.cpp-style CPU engine.
    pub fn llama_cpp(model: &ModelConfig) -> Self {
        let mut soc = Soc::new(llama_cpp_soc_config());
        soc.set_cpu_compute();
        Self {
            name: "llama.cpp".to_string(),
            cfg: model.clone(),
            backend: Backend::Cpu,
            soc,
            recorder: None,
            timeline: None,
        }
    }

    fn run_trace(&mut self, trace: &PhaseTrace) {
        let mech = self.soc.config().sync.mechanism;
        for op in trace.iter_all() {
            if let Some(rec) = &mut self.recorder {
                rec.serial_kernel(self.backend, op.kernel.bytes(), mech, self.soc.clock());
            }
            let start = self.soc.clock();
            self.soc
                .run_serial(self.backend, std::slice::from_ref(&op.kernel));
            if let Some(tl) = &mut self.timeline {
                tl.kernel_named(self.backend, op.op, start, self.soc.clock());
            }
        }
    }
}

impl Engine for SingleBackendEngine {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn model(&self) -> &ModelConfig {
        &self.cfg
    }

    fn try_prefill(&mut self, prompt_len: usize) -> Result<PhaseReport, EngineError> {
        let start = self.soc.clock();
        let trace = prefill_trace(&self.cfg, prompt_len);
        self.run_trace(&trace);
        Ok(PhaseReport {
            tokens: prompt_len,
            elapsed: self.soc.clock() - start,
        })
    }

    fn try_decode(
        &mut self,
        prompt_len: usize,
        n_tokens: usize,
    ) -> Result<PhaseReport, EngineError> {
        let start = self.soc.clock();
        for t in 0..n_tokens {
            let trace = decode_trace(&self.cfg, prompt_len + t + 1, 1);
            self.run_trace(&trace);
        }
        Ok(PhaseReport {
            tokens: n_tokens,
            elapsed: self.soc.clock() - start,
        })
    }

    fn enable_concurrency_log(&mut self) {
        self.recorder = Some(ConcurrencyRecorder::new());
    }

    fn take_concurrency_log(&mut self) -> Option<ConcurrencyLog> {
        self.recorder.take().map(ConcurrencyRecorder::finish)
    }

    fn enable_timeline(&mut self) {
        self.timeline = Some(TimelineRecorder::new());
    }

    fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take().map(TimelineRecorder::finish)
    }

    fn soc(&self) -> &Soc {
        &self.soc
    }

    fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppl_decode_hits_calibrated_rate() {
        // Llama-8B decode on PPL-OpenCL: weights ≈ 3.8 GB at 43.3 GB/s
        // ≈ 11 tokens/s (the paper's Fig. 16 PPL point).
        let mut e = SingleBackendEngine::gpu(&ModelConfig::llama_8b(), GpuTier::PplOpenCl);
        let d = e.decode(256, 8);
        let rate = d.tokens_per_sec();
        assert!((9.0..13.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn gpu_tier_ordering_holds_in_prefill() {
        // Fig. 13: PPL > MLC ≈ MNN for prefill throughput.
        let model = ModelConfig::llama_8b();
        let rate = |tier| {
            let mut e = SingleBackendEngine::gpu(&model, tier);
            e.prefill(256).tokens_per_sec()
        };
        let ppl = rate(GpuTier::PplOpenCl);
        let mlc = rate(GpuTier::Mlc);
        let mnn = rate(GpuTier::Mnn);
        assert!(ppl > mlc * 1.5, "ppl {ppl} mlc {mlc}");
        assert!(
            (mlc / mnn) > 0.8 && (mlc / mnn) < 1.3,
            "mlc {mlc} mnn {mnn}"
        );
        // Absolute scale: PPL ≈ 60–90 tok/s at seq 256 on Llama-8B.
        assert!((50.0..100.0).contains(&ppl), "ppl {ppl}");
    }

    #[test]
    fn llama_cpp_is_slowest() {
        let model = ModelConfig::llama_8b();
        let mut cpu = SingleBackendEngine::llama_cpp(&model);
        let mut gpu = SingleBackendEngine::gpu(&model, GpuTier::Mlc);
        let c = cpu.prefill(64).tokens_per_sec();
        let g = gpu.prefill(64).tokens_per_sec();
        assert!(g > c * 2.0, "gpu {g} cpu {c}");
        // Decode: ≈ 23 GB/s over ≈3.8 GB of weights ≈ 5–7 tok/s.
        let d = cpu.decode(64, 4).tokens_per_sec();
        assert!((4.0..8.0).contains(&d), "cpu decode {d}");
    }

    #[test]
    fn prefill_scales_roughly_linearly() {
        let mut e = SingleBackendEngine::gpu(&ModelConfig::llama_3b(), GpuTier::PplOpenCl);
        let t64 = e.prefill(64).elapsed.as_secs_f64();
        let t256 = e.prefill(256).elapsed.as_secs_f64();
        let ratio = t256 / t64;
        assert!((3.0..6.0).contains(&ratio), "ratio {ratio}");
    }
}
