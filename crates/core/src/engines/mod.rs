//! Inference engines: HeteroLLM (layer- and tensor-level) plus the
//! baseline engines the paper compares against.
//!
//! All engines execute the same [`crate::trace`] through the
//! `hetero-soc` simulator; they differ only in *scheduling policy* —
//! which backend each kernel runs on, whether Matmuls are partitioned,
//! and which synchronization mechanism crosses backends. That is
//! exactly the degrees of freedom the paper explores.

pub mod hetero_layer;
pub mod hetero_tensor;
pub mod mllm_npu;
pub mod npu_only;
pub mod single;

pub use hetero_layer::HeteroLayerEngine;
pub use hetero_tensor::HeteroTensorEngine;
pub use mllm_npu::MllmNpuEngine;
pub use npu_only::{MisalignStrategy, NpuOnlyEngine};
pub use single::{GpuTier, SingleBackendEngine};

use ::hetero_tensor::shape::MatmulShape;
use ::hetero_tensor::DType;
use hetero_soc::power::PowerReport;
use hetero_soc::sync::SyncMechanism;
use hetero_soc::{calib, KernelDesc, Soc, SocConfig};

use crate::error::EngineError;
use crate::model::ModelConfig;
use crate::report::PhaseReport;
use crate::trace::ConcurrencyLog;

/// A schedulable inference engine (timing mode).
pub trait Engine {
    /// Engine display name (matches the paper's figure legends).
    fn name(&self) -> String;

    /// The model this engine instance serves.
    fn model(&self) -> &ModelConfig;

    /// Run the prefill phase for a prompt of `prompt_len` tokens,
    /// surfacing malformed traces as typed errors.
    fn try_prefill(&mut self, prompt_len: usize) -> Result<PhaseReport, EngineError>;

    /// Run `n_tokens` decode steps following a prompt of `prompt_len`,
    /// surfacing malformed traces as typed errors.
    fn try_decode(
        &mut self,
        prompt_len: usize,
        n_tokens: usize,
    ) -> Result<PhaseReport, EngineError>;

    /// Infallible prefill for experiment harnesses running well-formed
    /// built-in traces.
    ///
    /// # Panics
    ///
    /// Panics if [`Engine::try_prefill`] fails; runtime callers that
    /// must survive faults use the fallible form.
    fn prefill(&mut self, prompt_len: usize) -> PhaseReport {
        match self.try_prefill(prompt_len) {
            Ok(r) => r,
            Err(e) => panic!("prefill failed: {e}"),
        }
    }

    /// Infallible decode for experiment harnesses running well-formed
    /// built-in traces.
    ///
    /// # Panics
    ///
    /// Panics if [`Engine::try_decode`] fails; runtime callers that
    /// must survive faults use the fallible form.
    fn decode(&mut self, prompt_len: usize, n_tokens: usize) -> PhaseReport {
        match self.try_decode(prompt_len, n_tokens) {
            Ok(r) => r,
            Err(e) => panic!("decode failed: {e}"),
        }
    }

    /// Start recording a concurrency event log (buffer accesses, queue
    /// submissions, rendezvous signal/wait) for race analysis. Engines
    /// without cross-backend concurrency may record nothing; calling
    /// again resets any partial log.
    fn enable_concurrency_log(&mut self) {}

    /// Take the concurrency log recorded since
    /// [`Engine::enable_concurrency_log`], ending recording. Returns
    /// `None` if recording was never enabled (or is unsupported).
    fn take_concurrency_log(&mut self) -> Option<ConcurrencyLog> {
        None
    }

    /// Start recording a span timeline (kernel submit/complete, sync
    /// waits, graph compiles) against the SoC's simulated clock, for
    /// the observability layer ([`crate::obs`]). Calling again resets
    /// any partial timeline.
    fn enable_timeline(&mut self) {}

    /// Take the timeline recorded since [`Engine::enable_timeline`],
    /// ending recording. Returns `None` if recording was never enabled
    /// (or is unsupported).
    fn take_timeline(&mut self) -> Option<crate::obs::Timeline> {
        None
    }

    /// Access the simulated SoC (clock, meter, trace).
    fn soc(&self) -> &Soc;

    /// Mutable SoC access.
    fn soc_mut(&mut self) -> &mut Soc;

    /// Finalize energy accounting and report power for the whole run.
    fn finish(&mut self) -> PowerReport {
        self.soc_mut().finish().report()
    }
}

/// The engines evaluated in the paper, constructible by name.
///
/// # Examples
///
/// ```
/// use hetero_soc::sync::SyncMechanism;
/// use heterollm::{EngineKind, ModelConfig};
///
/// let model = ModelConfig::internlm_1_8b();
/// let mut engine = EngineKind::HeteroTensor.build(&model, SyncMechanism::Fast);
/// let report = engine.prefill(256);
/// assert!(report.tokens_per_sec() > 1000.0); // the paper's headline claim
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// llama.cpp: CPU-only, W4A16.
    LlamaCpp,
    /// MLC: GPU-only (TVM-compiled kernels).
    Mlc,
    /// MNN-OpenCL: GPU-only.
    MnnOpenCl,
    /// PPL-OpenCL: GPU-only (the baseline HeteroLLM builds on).
    PplOpenCl,
    /// NPU matmuls with padding to standard graph sizes.
    NpuPadding,
    /// NPU matmuls with runtime graph generation per request.
    NpuOnlinePrepare,
    /// NPU matmuls with pipe (multi-sequence-length) decomposition.
    NpuPipe,
    /// MLLM-NPU-style chunked prefill (fixed 512-token chunks).
    ChunkedPrefill,
    /// MLLM-NPU comparator: chunked INT8 NPU prefill, CPU aux kernels.
    MllmNpu,
    /// HeteroLLM, layer-level heterogeneous execution.
    HeteroLayer,
    /// HeteroLLM, tensor-level heterogeneous execution.
    HeteroTensor,
}

impl EngineKind {
    /// All engine kinds.
    pub const ALL: [EngineKind; 11] = [
        EngineKind::LlamaCpp,
        EngineKind::Mlc,
        EngineKind::MnnOpenCl,
        EngineKind::PplOpenCl,
        EngineKind::NpuPadding,
        EngineKind::NpuOnlinePrepare,
        EngineKind::NpuPipe,
        EngineKind::ChunkedPrefill,
        EngineKind::MllmNpu,
        EngineKind::HeteroLayer,
        EngineKind::HeteroTensor,
    ];

    /// Display name matching the paper's legends.
    pub const fn name(self) -> &'static str {
        match self {
            Self::LlamaCpp => "llama.cpp",
            Self::Mlc => "MLC",
            Self::MnnOpenCl => "MNN-OpenCL",
            Self::PplOpenCl => "PPL-OpenCL",
            Self::NpuPadding => "Padding",
            Self::NpuOnlinePrepare => "Online-prepare",
            Self::NpuPipe => "Pipe",
            Self::ChunkedPrefill => "Chunked-Prefill",
            Self::MllmNpu => "MLLM-NPU",
            Self::HeteroLayer => "Hetero-layer",
            Self::HeteroTensor => "Hetero-tensor",
        }
    }

    /// Build an engine for `model` with the given sync mechanism
    /// (baselines ignore `sync` — they use their stock driver paths,
    /// which for single-backend engines involve no cross-backend
    /// synchronization at all).
    pub fn build(self, model: &ModelConfig, sync: SyncMechanism) -> Box<dyn Engine> {
        match self {
            Self::LlamaCpp => Box::new(SingleBackendEngine::llama_cpp(model)),
            Self::Mlc => Box::new(SingleBackendEngine::gpu(model, GpuTier::Mlc)),
            Self::MnnOpenCl => Box::new(SingleBackendEngine::gpu(model, GpuTier::Mnn)),
            Self::PplOpenCl => Box::new(SingleBackendEngine::gpu(model, GpuTier::PplOpenCl)),
            Self::NpuPadding => {
                Box::new(NpuOnlyEngine::new(model, MisalignStrategy::Padding, sync))
            }
            Self::NpuOnlinePrepare => Box::new(NpuOnlyEngine::new(
                model,
                MisalignStrategy::OnlinePrepare,
                sync,
            )),
            Self::NpuPipe => Box::new(NpuOnlyEngine::new(model, MisalignStrategy::Pipe, sync)),
            Self::ChunkedPrefill => Box::new(NpuOnlyEngine::new(
                model,
                MisalignStrategy::Chunked { chunk: 512 },
                sync,
            )),
            Self::MllmNpu => Box::new(MllmNpuEngine::new(model, sync)),
            Self::HeteroLayer => Box::new(HeteroLayerEngine::new(model, sync)),
            Self::HeteroTensor => Box::new(HeteroTensorEngine::new(model, sync)),
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    /// Parse a CLI-style engine name (`"hetero-tensor"`, `"mlc"`, ...).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "hetero-tensor" => Self::HeteroTensor,
            "hetero-layer" => Self::HeteroLayer,
            "ppl-opencl" | "ppl" => Self::PplOpenCl,
            "mlc" => Self::Mlc,
            "mnn-opencl" | "mnn" => Self::MnnOpenCl,
            "llama-cpp" | "llama.cpp" => Self::LlamaCpp,
            "padding" => Self::NpuPadding,
            "online-prepare" => Self::NpuOnlinePrepare,
            "pipe" => Self::NpuPipe,
            "chunked-prefill" => Self::ChunkedPrefill,
            "mllm-npu" => Self::MllmNpu,
            other => return Err(format!("unknown engine '{other}'")),
        })
    }
}

/// The SoC configuration HeteroLLM-family engines run on: PPL-quality
/// GPU kernels (HeteroLLM extends PPL, §5.1) plus the chosen sync
/// mechanism.
pub fn hetero_soc_config(sync: SyncMechanism) -> SocConfig {
    let mut cfg = SocConfig::snapdragon_8gen3().with_sync(sync);
    cfg.gpu = GpuTier::PplOpenCl.gpu_model();
    cfg
}

/// The NPU-side kernel for a logical Matmul `[m,k] x [k,n]`: operands
/// permuted to `[n,k] x [k,m]` (§4) so the INT4 weight streams and the
/// FP16 activation is stationary.
pub fn npu_kernel(shape: MatmulShape) -> KernelDesc {
    KernelDesc::matmul(shape.reversed(), DType::Int4, DType::F16, DType::F16)
}

/// The GPU-side kernel for a logical Matmul (W4A16: FP16 activations,
/// INT4 weights dequantized in-kernel).
pub fn gpu_kernel(shape: MatmulShape) -> KernelDesc {
    KernelDesc::matmul_w4a16(shape)
}

/// Decode bandwidth tier helper: clamp the CPU's achievable bandwidth
/// for the llama.cpp engine.
pub(crate) fn llama_cpp_soc_config() -> SocConfig {
    let mut cfg = SocConfig::snapdragon_8gen3();
    cfg.mem.cpu_cap_gbps = calib::engine_decode_bw::LLAMA_CPP;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(EngineKind::Mlc.name(), "MLC");
        assert_eq!(EngineKind::HeteroTensor.name(), "Hetero-tensor");
        assert_eq!(EngineKind::ALL.len(), 11);
    }

    #[test]
    fn all_engines_construct_and_run_tiny() {
        let model = ModelConfig::tiny();
        for kind in EngineKind::ALL {
            let mut e = kind.build(&model, SyncMechanism::Fast);
            let p = e.prefill(33); // deliberately misaligned
            assert!(p.elapsed > hetero_soc::SimTime::ZERO, "{}", e.name());
            let d = e.decode(33, 3);
            assert_eq!(d.tokens, 3, "{}", e.name());
            let power = e.finish();
            assert!(power.avg_power_w > 0.0, "{}", e.name());
        }
    }

    #[test]
    fn engine_names_parse() {
        for kind in EngineKind::ALL {
            // Round-trip through a CLI-style slug.
            let slug = kind.name().to_ascii_lowercase();
            let parsed: EngineKind = slug
                .parse()
                .unwrap_or_else(|_| panic!("{} failed to parse", kind.name()));
            assert_eq!(parsed, kind);
        }
        assert!("warp-drive".parse::<EngineKind>().is_err());
    }

    #[test]
    fn npu_kernel_is_permuted() {
        let k = npu_kernel(MatmulShape::new(256, 4096, 14336));
        match &k.op {
            hetero_soc::OpKind::Matmul {
                shape, act, weight, ..
            } => {
                assert_eq!((shape.m, shape.k, shape.n), (14336, 4096, 256));
                assert_eq!(*act, DType::Int4);
                assert_eq!(*weight, DType::F16);
            }
            _ => panic!("not a matmul"),
        }
    }
}
