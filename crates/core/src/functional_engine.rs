//! Functional heterogeneous engine: real math through solver plans.
//!
//! [`FunctionalHeteroEngine`] executes an actual W4A16 transformer
//! (like [`crate::functional::FunctionalModel`]) but routes every
//! weight Matmul through the partition plan the solver chooses for its
//! shape — slicing operands, computing the parts as the GPU/NPU sides
//! would, and merging. Simultaneously it charges the same simulated
//! time the timing engine would.
//!
//! This is the strongest correctness statement in the reproduction:
//! *the full engine pipeline (profiler → solver → partitioned
//! execution) produces bit-identical logits and tokens to monolithic
//! inference*, on every prompt, while the timing side stays consistent
//! with the pure timing engine.

use hetero_profiler::RealExecProvider;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::{Backend, Soc};
use hetero_solver::{PlanTable, Solver, SolverConfig};
use hetero_tensor::ops;
use hetero_tensor::quant::W4Matrix;
use hetero_tensor::shape::MatmulShape;
use hetero_tensor::{Result, Tensor, TensorError};

use crate::engines::{gpu_kernel, hetero_soc_config, npu_kernel};
use crate::functional::matmul_partitioned;
use crate::kv::KvCache;
use crate::model::{ModelConfig, ModelWeights};
use crate::report::PhaseReport;

/// Real-math engine executing solver-partitioned kernels.
pub struct FunctionalHeteroEngine {
    cfg: ModelConfig,
    weights: ModelWeights,
    kv: KvCache,
    soc: Soc,
    solver: Solver<RealExecProvider>,
    table: PlanTable,
}

impl FunctionalHeteroEngine {
    /// Build with seeded synthetic weights.
    pub fn new(cfg: ModelConfig, seed: u64) -> Result<Self> {
        let soc_cfg = hetero_soc_config(SyncMechanism::Fast);
        let provider = RealExecProvider::new(soc_cfg.clone());
        // Graph standards for tiny functional configs: multiples of 32
        // up to max_seq so any test prompt has candidates.
        let standards: Vec<usize> = (1..=8).map(|i| i * 32).collect();
        let solver = Solver::new(
            provider,
            SolverConfig {
                standards,
                sync: SyncModel::new(SyncMechanism::Fast),
                ..SolverConfig::default()
            },
        );
        Ok(Self {
            weights: ModelWeights::generate(&cfg, seed)?,
            kv: KvCache::new(cfg.layers, cfg.max_seq, cfg.kv_dim()),
            soc: Soc::new(soc_cfg),
            solver,
            table: PlanTable::new(),
            cfg,
        })
    }

    /// Simulated time consumed so far.
    pub fn sim_time(&self) -> hetero_soc::SimTime {
        self.soc.clock()
    }

    /// A partitioned, time-charged weight projection.
    fn proj(&mut self, op: &'static str, x: &Tensor, w: &W4Matrix) -> Result<Tensor> {
        let (m, _) = x.matrix_dims()?;
        let (k, n) = w.dims();
        let shape = MatmulShape::new(m, k, n);
        let choice = self
            .table
            .get_or_solve(&self.solver, op, shape, Dominance::NpuDominant);

        // Charge simulated time exactly as the timing engine would.
        use hetero_solver::PartitionPlan::*;
        match &choice.plan {
            GpuOnly => {
                self.soc.run_serial(Backend::Gpu, &[gpu_kernel(shape)]);
            }
            NpuOnly { padded_m } => {
                self.soc.run_serial(
                    Backend::Npu,
                    &[npu_kernel(MatmulShape {
                        m: *padded_m,
                        ..shape
                    })],
                );
            }
            NpuPipe { chunks, .. } => {
                let kernels: Vec<_> = chunks
                    .iter()
                    .map(|&c| npu_kernel(MatmulShape { m: c, ..shape }))
                    .collect();
                self.soc.run_serial(Backend::Npu, &kernels);
            }
            RowCut { gpu_cols, padded_m } | HybridCut { gpu_cols, padded_m } => {
                let gpu = gpu_kernel(MatmulShape::new(m, k, *gpu_cols));
                let npu = npu_kernel(MatmulShape::new(*padded_m, k, n - gpu_cols));
                self.soc
                    .run_parallel(&[gpu], &[npu], Dominance::NpuDominant);
            }
            SeqCut {
                npu_chunks,
                gpu_rows,
            } => {
                let npu: Vec<_> = npu_chunks
                    .iter()
                    .map(|&c| npu_kernel(MatmulShape { m: c, ..shape }))
                    .collect();
                if *gpu_rows == 0 {
                    self.soc.run_serial(Backend::Npu, &npu);
                } else {
                    let gpu = gpu_kernel(MatmulShape {
                        m: *gpu_rows,
                        ..shape
                    });
                    self.soc.run_parallel(&[gpu], &npu, Dominance::NpuDominant);
                }
            }
        }

        // Execute the real math through the same plan.
        matmul_partitioned(x, w, &choice.plan)
    }

    /// Prefill over `tokens`, returning final-position logits and the
    /// phase timing report.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<(Tensor, PhaseReport)> {
        if tokens.is_empty() {
            return Err(TensorError::OutOfBounds {
                context: "empty prompt".into(),
            });
        }
        let start = self.soc.clock();
        let x = ops::embed(&self.weights.embedding, tokens)?;
        let h = self.forward(x)?;
        let last = h.slice_rows(tokens.len() - 1, tokens.len())?;
        let logits = self.logits(&last)?;
        let report = PhaseReport {
            tokens: tokens.len(),
            elapsed: self.soc.clock() - start,
        };
        Ok((logits, report))
    }

    /// One decode step.
    pub fn decode_step(&mut self, token: u32) -> Result<Tensor> {
        let x = ops::embed(&self.weights.embedding, &[token])?;
        let h = self.forward(x)?;
        self.logits(&h)
    }

    /// Greedy generation (identical semantics to
    /// [`crate::functional::FunctionalModel::generate`]).
    pub fn generate(&mut self, prompt: &[u32], n: usize) -> Result<Vec<u32>> {
        let (mut logits, _) = self.prefill(prompt)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = ops::argmax(logits.row(0)?).expect("non-empty logits");
            out.push(next);
            if out.len() == n {
                break;
            }
            logits = self.decode_step(next)?;
        }
        Ok(out)
    }

    fn logits(&mut self, h: &Tensor) -> Result<Tensor> {
        let normed = ops::rmsnorm(h, &self.weights.final_norm, self.cfg.norm_eps)?;
        let lm_head = self.weights.lm_head.clone();
        self.proj("lm_head", &normed, &lm_head)
    }

    fn forward(&mut self, mut x: Tensor) -> Result<Tensor> {
        let (m, _) = x.matrix_dims()?;
        let pos = self.kv.len();
        for layer in 0..self.cfg.layers {
            x = self.layer_forward(layer, &x, pos)?;
        }
        self.kv.advance(m);
        Ok(x)
    }

    fn layer_forward(&mut self, layer: usize, x: &Tensor, pos: usize) -> Result<Tensor> {
        let cfg = self.cfg.clone();
        let (hidden, kv_dim) = (cfg.hidden, cfg.kv_dim());
        // Clone the layer weights up front: `proj` needs `&mut self`.
        let lw = self.weights.layers[layer].clone();

        let normed = ops::rmsnorm(x, &lw.attn_norm, cfg.norm_eps)?;
        let qkv = self.proj("qkv", &normed, &lw.qkv)?;
        let mut q = qkv.slice_cols(0, hidden)?;
        let mut k = qkv.slice_cols(hidden, hidden + kv_dim)?;
        let v = qkv.slice_cols(hidden + kv_dim, hidden + 2 * kv_dim)?;
        ops::apply_rope(&mut q, cfg.heads, cfg.head_dim(), pos, cfg.rope_theta)?;
        ops::apply_rope(&mut k, cfg.kv_heads, cfg.head_dim(), pos, cfg.rope_theta)?;
        self.kv.append(layer, &k, &v)?;

        let (m, _) = x.matrix_dims()?;
        let ctx = pos + m;
        let keys = self.kv.keys(layer, ctx)?;
        let values = self.kv.values(layer, ctx)?;
        let attn = crate::functional::attention_gqa(&cfg, &q, &keys, &values, pos)?;
        let attn_out = self.proj("attn_out", &attn, &lw.attn_out)?;
        let x = ops::add(x, &attn_out)?;

        let normed = ops::rmsnorm(&x, &lw.ffn_norm, cfg.norm_eps)?;
        let gate_up = self.proj("gate_up", &normed, &lw.gate_up)?;
        let gate = gate_up.slice_cols(0, cfg.ffn)?;
        let up = gate_up.slice_cols(cfg.ffn, 2 * cfg.ffn)?;
        let act = ops::swiglu(&gate, &up)?;
        let down = self.proj("ffn_down", &act, &lw.ffn_down)?;
        ops::add(&x, &down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::FunctionalModel;

    #[test]
    fn partitioned_engine_matches_monolithic_exactly() {
        // The headline correctness property: solver-partitioned
        // execution generates the *same tokens* as monolithic W4A16
        // inference, bit for bit.
        let cfg = ModelConfig::tiny();
        let prompt = [3u32, 17, 99, 4, 42, 7, 250, 1];
        let mut mono = FunctionalModel::new(cfg.clone(), 77).unwrap();
        let expected = mono.generate(&prompt, 12).unwrap();

        let mut hetero = FunctionalHeteroEngine::new(cfg, 77).unwrap();
        let got = hetero.generate(&prompt, 12).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn logits_match_exactly_at_prefill() {
        let cfg = ModelConfig::tiny();
        let prompt = [5u32, 1, 200, 30, 64];
        let mut mono = FunctionalModel::new(cfg.clone(), 3).unwrap();
        let expected = mono.prefill(&prompt).unwrap();
        let mut hetero = FunctionalHeteroEngine::new(cfg, 3).unwrap();
        let (got, report) = hetero.prefill(&prompt).unwrap();
        assert_eq!(got.max_abs_diff(&expected).unwrap(), 0.0);
        assert_eq!(report.tokens, 5);
        assert!(report.elapsed > hetero_soc::SimTime::ZERO);
    }

    #[test]
    fn sim_time_accumulates_across_calls() {
        let cfg = ModelConfig::tiny();
        let mut e = FunctionalHeteroEngine::new(cfg, 1).unwrap();
        e.prefill(&[1, 2, 3]).unwrap();
        let after_prefill = e.sim_time();
        e.decode_step(4).unwrap();
        assert!(e.sim_time() > after_prefill);
    }

    #[test]
    fn larger_prompts_charge_more_time() {
        let cfg = ModelConfig::tiny();
        let mut small = FunctionalHeteroEngine::new(cfg.clone(), 1).unwrap();
        let mut large = FunctionalHeteroEngine::new(cfg, 1).unwrap();
        let (_, rs) = small.prefill(&[1; 8]).unwrap();
        let (_, rl) = large.prefill(&[1; 64]).unwrap();
        assert!(rl.elapsed > rs.elapsed);
    }
}
