//! Functional heterogeneous engine: real math through solver plans.
//!
//! [`FunctionalHeteroEngine`] executes an actual W4A16 transformer
//! (like [`crate::functional::FunctionalModel`]) but routes every
//! weight Matmul through the partition plan the solver chooses for its
//! shape — slicing operands, computing the parts as the GPU/NPU sides
//! would, and merging. Simultaneously it charges the same simulated
//! time the timing engine would.
//!
//! This is the strongest correctness statement in the reproduction:
//! *the full engine pipeline (profiler → solver → partitioned
//! execution) produces bit-identical logits and tokens to monolithic
//! inference*, on every prompt, while the timing side stays consistent
//! with the pure timing engine.
//!
//! # Integrity mode
//!
//! With [`IntegrityMode::Verify`] or [`IntegrityMode::Recover`] the
//! engine becomes the functional arm of the data-integrity layer:
//! every projection's output is checked per partition tile against its
//! ABFT row checksum ([`hetero_tensor::abft`]), the KV cache's sealed
//! prefix is re-verified at the start of every forward, and seeded
//! [`SdcTrace`] faults are applied deterministically. In `Recover`
//! mode a mismatched tile is recomputed (charged to the *opposite*
//! backend — cross-backend diversity as the arbiter) and a corrupted
//! KV row triggers rollback to the last sealed batch boundary plus
//! bit-identical replay of the dropped tokens. Detection and recovery
//! both charge simulated time, so the integrity tax is visible in the
//! timing reports.

use hetero_profiler::RealExecProvider;
use hetero_soc::disturb::{SdcFault, SdcTrace};
use hetero_soc::kernel::KernelLabel;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::{Backend, KernelDesc, Soc};
use hetero_solver::{PartitionPlan, PlanTable, Solver, SolverConfig};
use hetero_tensor::quant::W4Matrix;
use hetero_tensor::shape::MatmulShape;
use hetero_tensor::{abft, ops};
use hetero_tensor::{Result, Tensor, TensorError};

use crate::engines::{gpu_kernel, hetero_soc_config, npu_kernel};
use crate::functional::matmul_partitioned;
use crate::integrity::{IntegrityCounters, IntegrityMode};
use crate::kv::KvCache;
use crate::model::{ModelConfig, ModelWeights};
use crate::report::{IntegritySummary, PhaseReport};

/// One verifiable region of a projection's output, as the partition
/// plan produced it.
struct Tile {
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
    backend: Backend,
}

/// The output tiles a partition plan produces for an `[m, n]` result.
fn plan_tiles(plan: &PartitionPlan, m: usize, n: usize) -> Vec<Tile> {
    let mut tiles = Vec::new();
    let mut push = |rows: core::ops::Range<usize>, cols: core::ops::Range<usize>, b: Backend| {
        if !rows.is_empty() && !cols.is_empty() {
            tiles.push(Tile {
                rows,
                cols,
                backend: b,
            });
        }
    };
    match plan {
        PartitionPlan::GpuOnly => push(0..m, 0..n, Backend::Gpu),
        PartitionPlan::NpuOnly { .. } => push(0..m, 0..n, Backend::Npu),
        PartitionPlan::NpuPipe { chunks, .. } => {
            let mut row = 0;
            for &c in chunks {
                let end = (row + c).min(m);
                push(row..end, 0..n, Backend::Npu);
                row = end;
            }
        }
        PartitionPlan::RowCut { gpu_cols, .. } | PartitionPlan::HybridCut { gpu_cols, .. } => {
            push(0..m, 0..n - gpu_cols, Backend::Npu);
            push(0..m, n - gpu_cols..n, Backend::Gpu);
        }
        PartitionPlan::SeqCut {
            npu_chunks,
            gpu_rows,
        } => {
            let mut row = 0;
            for &c in npu_chunks {
                push(row..row + c, 0..n, Backend::Npu);
                row += c;
            }
            push(row..row + gpu_rows, 0..n, Backend::Gpu);
        }
    }
    tiles
}

/// Real-math engine executing solver-partitioned kernels.
pub struct FunctionalHeteroEngine {
    cfg: ModelConfig,
    weights: ModelWeights,
    kv: KvCache,
    soc: Soc,
    solver: Solver<RealExecProvider>,
    table: PlanTable,
    integrity: IntegrityMode,
    counters: IntegrityCounters,
    /// Injected faults not yet applied.
    pending: Vec<SdcFault>,
    /// Weight projections launched (nominal sequence; replay excluded).
    proj_count: usize,
    /// Completed forwards (nominal sequence; replay excluded).
    forward_count: usize,
    /// Token batches fed so far, in order — the replay source. Batch
    /// boundaries are the rollback points.
    history: Vec<Vec<u32>>,
    /// Inside a recovery replay: skip injection, verification and
    /// history recording; keep charging time.
    replaying: bool,
}

impl FunctionalHeteroEngine {
    /// Build with seeded synthetic weights.
    pub fn new(cfg: ModelConfig, seed: u64) -> Result<Self> {
        let soc_cfg = hetero_soc_config(SyncMechanism::Fast);
        let provider = RealExecProvider::new(soc_cfg.clone());
        // Graph standards for tiny functional configs: multiples of 32
        // up to max_seq so any test prompt has candidates.
        let standards: Vec<usize> = (1..=8).map(|i| i * 32).collect();
        let solver = Solver::new(
            provider,
            SolverConfig {
                standards,
                sync: SyncModel::new(SyncMechanism::Fast),
                ..SolverConfig::default()
            },
        );
        Ok(Self {
            weights: ModelWeights::generate(&cfg, seed)?,
            kv: KvCache::new(cfg.layers, cfg.max_seq, cfg.kv_dim()),
            soc: Soc::new(soc_cfg),
            solver,
            table: PlanTable::new(),
            cfg,
            integrity: IntegrityMode::Off,
            counters: IntegrityCounters::default(),
            pending: Vec::new(),
            proj_count: 0,
            forward_count: 0,
            history: Vec::new(),
            replaying: false,
        })
    }

    /// Enable the integrity layer in the given mode.
    #[must_use]
    pub fn with_integrity(mut self, mode: IntegrityMode) -> Self {
        self.integrity = mode;
        self
    }

    /// Stage the faults of `trace` for deterministic application
    /// (tile flips by projection launch index, KV corruptions by
    /// forward count). [`SdcFault::GraphPoison`] events are skipped:
    /// the functional path executes reference kernels directly and
    /// holds no compiled-graph cache — graph poisoning is exercised at
    /// the controller level.
    pub fn inject(&mut self, trace: &SdcTrace) {
        for e in &trace.events {
            if !matches!(e.fault, SdcFault::GraphPoison { .. }) {
                self.pending.push(e.fault.clone());
            }
        }
    }

    /// The integrity summary so far (`None` when integrity is off).
    /// Overhead is measured against the engine's full simulated time.
    pub fn integrity_summary(&self) -> Option<IntegritySummary> {
        self.integrity
            .verifies()
            .then(|| self.counters.summary(self.soc.clock()))
    }

    /// Simulated time consumed so far.
    pub fn sim_time(&self) -> hetero_soc::SimTime {
        self.soc.clock()
    }

    /// A partitioned, time-charged weight projection.
    fn proj(&mut self, op: &'static str, x: &Tensor, w: &W4Matrix) -> Result<Tensor> {
        let (m, _) = x.matrix_dims()?;
        let (k, n) = w.dims();
        let shape = MatmulShape::new(m, k, n);
        let choice = self
            .table
            .get_or_solve(&self.solver, op, shape, Dominance::NpuDominant);

        // Charge simulated time exactly as the timing engine would.
        use hetero_solver::PartitionPlan::*;
        match &choice.plan {
            GpuOnly => {
                self.soc.run_serial(Backend::Gpu, &[gpu_kernel(shape)]);
            }
            NpuOnly { padded_m } => {
                self.soc.run_serial(
                    Backend::Npu,
                    &[npu_kernel(MatmulShape {
                        m: *padded_m,
                        ..shape
                    })],
                );
            }
            NpuPipe { chunks, .. } => {
                let kernels: Vec<_> = chunks
                    .iter()
                    .map(|&c| npu_kernel(MatmulShape { m: c, ..shape }))
                    .collect();
                self.soc.run_serial(Backend::Npu, &kernels);
            }
            RowCut { gpu_cols, padded_m } | HybridCut { gpu_cols, padded_m } => {
                let gpu = gpu_kernel(MatmulShape::new(m, k, *gpu_cols));
                let npu = npu_kernel(MatmulShape::new(*padded_m, k, n - gpu_cols));
                self.soc
                    .run_parallel(&[gpu], &[npu], Dominance::NpuDominant);
            }
            SeqCut {
                npu_chunks,
                gpu_rows,
            } => {
                let npu: Vec<_> = npu_chunks
                    .iter()
                    .map(|&c| npu_kernel(MatmulShape { m: c, ..shape }))
                    .collect();
                if *gpu_rows == 0 {
                    self.soc.run_serial(Backend::Npu, &npu);
                } else {
                    let gpu = gpu_kernel(MatmulShape {
                        m: *gpu_rows,
                        ..shape
                    });
                    self.soc.run_parallel(&[gpu], &npu, Dominance::NpuDominant);
                }
            }
        }

        // Execute the real math through the same plan.
        let mut out = matmul_partitioned(x, w, &choice.plan)?;
        if self.integrity.verifies() && !self.replaying {
            let idx = self.proj_count;
            self.proj_count += 1;
            self.apply_tile_faults(idx, &mut out);
            self.verify_tiles(x, w, &choice.plan, &mut out)?;
        }
        Ok(out)
    }

    /// Apply pending transient flips targeting projection `idx`.
    fn apply_tile_faults(&mut self, idx: usize, out: &mut Tensor) {
        let mut kept = Vec::with_capacity(self.pending.len());
        for fault in std::mem::take(&mut self.pending) {
            match fault {
                SdcFault::TileFlip {
                    proj_index,
                    elem_draw,
                    bit,
                } if proj_index == idx => {
                    let at = (elem_draw % out.numel() as u64) as usize;
                    let data = out.data_mut();
                    data[at] = abft::flip_bit(data[at], bit);
                    self.counters.injected += 1;
                }
                other => kept.push(other),
            }
        }
        self.pending = kept;
    }

    /// Verify every tile of `out` against its ABFT checksum, charging
    /// the detection tax; in `Recover` mode, repair mismatched tiles by
    /// recomputing on the opposite backend.
    fn verify_tiles(
        &mut self,
        x: &Tensor,
        w: &W4Matrix,
        plan: &PartitionPlan,
        out: &mut Tensor,
    ) -> Result<()> {
        let (m, k) = x.matrix_dims()?;
        let (_, n) = w.dims();
        let tiles = plan_tiles(plan, m, n);
        let mut bad: Vec<Tile> = Vec::new();
        for tile in tiles {
            self.counters.tiles_verified += 1;
            let xt = x.slice_rows(tile.rows.start, tile.rows.end)?;
            let bt = w.dequantize_cols(tile.cols.start, tile.cols.end)?;
            let checksum = abft::input_checksum(&xt, &bt)?;
            let out_t = out
                .slice_rows(tile.rows.start, tile.rows.end)?
                .slice_cols(tile.cols.start, tile.cols.end)?;
            let got = abft::output_checksum(&out_t)?;

            // Detection tax: the checksum reductions (O(m·(k+n)) per
            // tile) plus one fast-sync rendezvous with the verifier.
            let (mt, nt) = (tile.rows.len() as u64, tile.cols.len() as u64);
            let reduce = KernelDesc::mem_bound(
                KernelLabel::Other,
                4 * mt * (k as u64 + nt),
                8 * mt,
                2 * mt * (k as u64 + nt),
            );
            let mut tax = self.soc.run_serial(Backend::Cpu, &[reduce]);
            let rdv = self.soc.config().sync.rendezvous(Dominance::NpuDominant);
            self.soc.advance(rdv);
            tax += rdv;
            self.counters.verify_time += tax;

            if abft::verify_tile(&checksum, &got).is_some() {
                self.counters.tile_mismatches += 1;
                self.counters.detected += 1;
                bad.push(tile);
            }
        }
        if bad.is_empty() {
            return Ok(());
        }
        if !self.integrity.recovers() {
            self.counters.uncorrectable += bad.len();
            return Ok(());
        }
        // Quarantine-and-recompute: charge each bad tile's GEMM to the
        // backend that did NOT produce it, then rebuild the region from
        // a pristine re-execution of the plan (the inputs are intact —
        // the flip only struck the output copy — so the recompute is
        // bit-identical by construction).
        let t0 = self.soc.clock();
        for tile in &bad {
            let shape = MatmulShape::new(tile.rows.len(), k, tile.cols.len());
            match tile.backend {
                Backend::Npu | Backend::Cpu => {
                    self.soc.run_serial(Backend::Gpu, &[gpu_kernel(shape)]);
                }
                Backend::Gpu => {
                    self.soc.run_serial(Backend::Npu, &[npu_kernel(shape)]);
                }
            }
            self.soc.backend_switch();
        }
        let pristine = matmul_partitioned(x, w, plan)?;
        for tile in &bad {
            for r in tile.rows.clone() {
                let lo = r * n + tile.cols.start;
                let hi = r * n + tile.cols.end;
                out.data_mut()[lo..hi].copy_from_slice(&pristine.data()[lo..hi]);
            }
        }
        self.counters.tile_recomputes += bad.len();
        self.counters.corrected += bad.len();
        self.counters
            .recompute_latencies
            .push(self.soc.clock() - t0);
        Ok(())
    }

    /// Apply pending sticky KV corruptions that are due.
    fn apply_kv_faults(&mut self) -> Result<()> {
        if self.kv.is_empty() {
            return Ok(());
        }
        let (layers, kv_dim, len) = (self.cfg.layers, self.cfg.kv_dim(), self.kv.len());
        let due = self.forward_count;
        let mut kept = Vec::with_capacity(self.pending.len());
        for fault in std::mem::take(&mut self.pending) {
            match fault {
                SdcFault::KvCorrupt {
                    after_forwards,
                    layer_draw,
                    row_draw,
                    col_draw,
                    bit,
                } if after_forwards <= due => {
                    self.kv.corrupt_key(
                        (layer_draw % layers as u64) as usize,
                        (row_draw % len as u64) as usize,
                        (col_draw % kv_dim as u64) as usize,
                        bit,
                    )?;
                    self.counters.injected += 1;
                }
                other => kept.push(other),
            }
        }
        self.pending = kept;
        Ok(())
    }

    /// Read-time KV verification: re-hash the sealed prefix, charge the
    /// detection tax, and (in `Recover` mode) roll back to the last
    /// clean batch boundary and replay the dropped tokens.
    fn verify_kv(&mut self) -> Result<()> {
        let sealed = self.kv.sealed_rows();
        self.counters.kv_rows_verified += sealed;
        let bytes = (sealed * 2 * self.cfg.kv_dim() * 4) as u64;
        let rehash = KernelDesc::mem_bound(KernelLabel::KvAppend, bytes, 8, bytes / 4);
        let mut tax = self.soc.run_serial(Backend::Cpu, &[rehash]);
        let rdv = self.soc.config().sync.rendezvous(Dominance::NpuDominant);
        self.soc.advance(rdv);
        tax += rdv;
        self.counters.verify_time += tax;

        let Some((_, row)) = self.kv.verify() else {
            return Ok(());
        };
        self.counters.kv_mismatches += 1;
        self.counters.detected += 1;
        if !self.integrity.recovers() {
            self.counters.uncorrectable += 1;
            return Ok(());
        }
        // Roll back to the last batch boundary at or before the first
        // corrupted row, then replay the recorded batches: every
        // replayed forward recomputes its rows on the identical prefix,
        // so the restored cache is bit-identical.
        let t0 = self.soc.clock();
        let mut boundary = 0;
        let mut first_batch = 0;
        for (i, batch) in self.history.iter().enumerate() {
            if boundary + batch.len() > row {
                first_batch = i;
                break;
            }
            boundary += batch.len();
        }
        self.kv.rollback(boundary)?;
        self.counters.kv_rollbacks += 1;
        self.replaying = true;
        for i in first_batch..self.history.len() {
            let batch = self.history[i].clone();
            let x = ops::embed(&self.weights.embedding, &batch)?;
            self.forward_layers(x)?;
            self.counters.replayed_tokens += batch.len();
        }
        self.replaying = false;
        self.counters.corrected += 1;
        self.counters
            .recompute_latencies
            .push(self.soc.clock() - t0);
        Ok(())
    }

    /// Prefill over `tokens`, returning final-position logits and the
    /// phase timing report.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<(Tensor, PhaseReport)> {
        if tokens.is_empty() {
            return Err(TensorError::OutOfBounds {
                context: "empty prompt".into(),
            });
        }
        let start = self.soc.clock();
        let x = ops::embed(&self.weights.embedding, tokens)?;
        let h = self.forward(x, tokens)?;
        let last = h.slice_rows(tokens.len() - 1, tokens.len())?;
        let logits = self.logits(&last)?;
        let report = PhaseReport {
            tokens: tokens.len(),
            elapsed: self.soc.clock() - start,
        };
        Ok((logits, report))
    }

    /// One decode step.
    pub fn decode_step(&mut self, token: u32) -> Result<Tensor> {
        let x = ops::embed(&self.weights.embedding, &[token])?;
        let h = self.forward(x, &[token])?;
        self.logits(&h)
    }

    /// Greedy generation (identical semantics to
    /// [`crate::functional::FunctionalModel::generate`]).
    pub fn generate(&mut self, prompt: &[u32], n: usize) -> Result<Vec<u32>> {
        let (mut logits, _) = self.prefill(prompt)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = ops::argmax(logits.row(0)?).expect("non-empty logits");
            out.push(next);
            if out.len() == n {
                break;
            }
            logits = self.decode_step(next)?;
        }
        Ok(out)
    }

    fn logits(&mut self, h: &Tensor) -> Result<Tensor> {
        let normed = ops::rmsnorm(h, &self.weights.final_norm, self.cfg.norm_eps)?;
        let lm_head = self.weights.lm_head.clone();
        self.proj("lm_head", &normed, &lm_head)
    }

    fn forward(&mut self, x: Tensor, tokens: &[u32]) -> Result<Tensor> {
        if self.integrity.verifies() && !self.replaying {
            self.apply_kv_faults()?;
            self.verify_kv()?;
        }
        let h = self.forward_layers(x)?;
        if self.integrity.verifies() && !self.replaying {
            self.history.push(tokens.to_vec());
            self.forward_count += 1;
        }
        Ok(h)
    }

    fn forward_layers(&mut self, mut x: Tensor) -> Result<Tensor> {
        let (m, _) = x.matrix_dims()?;
        let pos = self.kv.len();
        for layer in 0..self.cfg.layers {
            x = self.layer_forward(layer, &x, pos)?;
        }
        self.kv.advance(m)?;
        Ok(x)
    }

    fn layer_forward(&mut self, layer: usize, x: &Tensor, pos: usize) -> Result<Tensor> {
        let cfg = self.cfg.clone();
        let (hidden, kv_dim) = (cfg.hidden, cfg.kv_dim());
        // Clone the layer weights up front: `proj` needs `&mut self`.
        let lw = self.weights.layers[layer].clone();

        let normed = ops::rmsnorm(x, &lw.attn_norm, cfg.norm_eps)?;
        let qkv = self.proj("qkv", &normed, &lw.qkv)?;
        let mut q = qkv.slice_cols(0, hidden)?;
        let mut k = qkv.slice_cols(hidden, hidden + kv_dim)?;
        let v = qkv.slice_cols(hidden + kv_dim, hidden + 2 * kv_dim)?;
        ops::apply_rope(&mut q, cfg.heads, cfg.head_dim(), pos, cfg.rope_theta)?;
        ops::apply_rope(&mut k, cfg.kv_heads, cfg.head_dim(), pos, cfg.rope_theta)?;
        self.kv.append(layer, &k, &v)?;

        let (m, _) = x.matrix_dims()?;
        let ctx = pos + m;
        let keys = self.kv.keys(layer, ctx)?;
        let values = self.kv.values(layer, ctx)?;
        let attn = crate::functional::attention_gqa(&cfg, &q, &keys, &values, pos)?;
        let attn_out = self.proj("attn_out", &attn, &lw.attn_out)?;
        let x = ops::add(x, &attn_out)?;

        let normed = ops::rmsnorm(&x, &lw.ffn_norm, cfg.norm_eps)?;
        let gate_up = self.proj("gate_up", &normed, &lw.gate_up)?;
        let gate = gate_up.slice_cols(0, cfg.ffn)?;
        let up = gate_up.slice_cols(cfg.ffn, 2 * cfg.ffn)?;
        let act = ops::swiglu(&gate, &up)?;
        let down = self.proj("ffn_down", &act, &lw.ffn_down)?;
        ops::add(&x, &down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::FunctionalModel;
    use hetero_soc::SimTime;

    #[test]
    fn partitioned_engine_matches_monolithic_exactly() {
        // The headline correctness property: solver-partitioned
        // execution generates the *same tokens* as monolithic W4A16
        // inference, bit for bit.
        let cfg = ModelConfig::tiny();
        let prompt = [3u32, 17, 99, 4, 42, 7, 250, 1];
        let mut mono = FunctionalModel::new(cfg.clone(), 77).unwrap();
        let expected = mono.generate(&prompt, 12).unwrap();

        let mut hetero = FunctionalHeteroEngine::new(cfg, 77).unwrap();
        let got = hetero.generate(&prompt, 12).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn logits_match_exactly_at_prefill() {
        let cfg = ModelConfig::tiny();
        let prompt = [5u32, 1, 200, 30, 64];
        let mut mono = FunctionalModel::new(cfg.clone(), 3).unwrap();
        let expected = mono.prefill(&prompt).unwrap();
        let mut hetero = FunctionalHeteroEngine::new(cfg, 3).unwrap();
        let (got, report) = hetero.prefill(&prompt).unwrap();
        assert_eq!(got.max_abs_diff(&expected).unwrap(), 0.0);
        assert_eq!(report.tokens, 5);
        assert!(report.elapsed > hetero_soc::SimTime::ZERO);
    }

    #[test]
    fn sim_time_accumulates_across_calls() {
        let cfg = ModelConfig::tiny();
        let mut e = FunctionalHeteroEngine::new(cfg, 1).unwrap();
        e.prefill(&[1, 2, 3]).unwrap();
        let after_prefill = e.sim_time();
        e.decode_step(4).unwrap();
        assert!(e.sim_time() > after_prefill);
    }

    #[test]
    fn larger_prompts_charge_more_time() {
        let cfg = ModelConfig::tiny();
        let mut small = FunctionalHeteroEngine::new(cfg.clone(), 1).unwrap();
        let mut large = FunctionalHeteroEngine::new(cfg, 1).unwrap();
        let (_, rs) = small.prefill(&[1; 8]).unwrap();
        let (_, rl) = large.prefill(&[1; 64]).unwrap();
        assert!(rl.elapsed > rs.elapsed);
    }

    const PROMPT: [u32; 8] = [3, 17, 99, 4, 42, 7, 250, 1];

    fn clean_tokens(seed: u64) -> Vec<u32> {
        let mut e = FunctionalHeteroEngine::new(ModelConfig::tiny(), seed).unwrap();
        e.generate(&PROMPT, 12).unwrap()
    }

    #[test]
    fn verify_on_clean_run_has_zero_false_positives() {
        let mut e = FunctionalHeteroEngine::new(ModelConfig::tiny(), 77)
            .unwrap()
            .with_integrity(IntegrityMode::Verify);
        let got = e.generate(&PROMPT, 12).unwrap();
        assert_eq!(got, clean_tokens(77), "verification must not alter math");
        let s = e.integrity_summary().unwrap();
        assert!(s.tiles_verified > 0);
        assert!(s.kv_rows_verified > 0);
        assert_eq!(s.detected, 0, "{s:?}");
        assert_eq!(s.tile_mismatches, 0);
        assert_eq!(s.kv_mismatches, 0);
        assert!(s.verify_overhead_pct < 100);
    }

    #[test]
    fn injected_faults_are_all_detected_and_recovered_bit_for_bit() {
        let expected = clean_tokens(77);
        let sdc = SdcTrace::standard(42);
        let mut e = FunctionalHeteroEngine::new(ModelConfig::tiny(), 77)
            .unwrap()
            .with_integrity(IntegrityMode::Recover);
        e.inject(&sdc);
        let got = e.generate(&PROMPT, 12).unwrap();
        let s = e.integrity_summary().unwrap();
        assert!(s.injected > 0, "standard trace must land faults: {s:?}");
        assert_eq!(s.detected, s.injected, "every fault detected: {s:?}");
        assert_eq!(s.corrected, s.detected, "every detection repaired: {s:?}");
        assert_eq!(s.uncorrectable, 0);
        assert_eq!(
            got, expected,
            "recovered run must reproduce the un-faulted tokens bit-for-bit"
        );
        assert!(s.recompute_p99 >= s.recompute_p50);
        assert!(s.recompute_p99 > SimTime::ZERO);
    }

    #[test]
    fn verify_only_detects_but_leaves_corruption() {
        let sdc = SdcTrace::standard(42);
        let mut e = FunctionalHeteroEngine::new(ModelConfig::tiny(), 77)
            .unwrap()
            .with_integrity(IntegrityMode::Verify);
        e.inject(&sdc);
        let got = e.generate(&PROMPT, 12).unwrap();
        let s = e.integrity_summary().unwrap();
        // Sticky KV corruption is never repaired in verify-only mode,
        // so the same corrupted row re-flags on every later forward:
        // detections exceed injections.
        assert!(s.detected >= s.injected, "{s:?}");
        assert!(s.kv_mismatches > s.injected - s.tile_mismatches, "{s:?}");
        assert_eq!(s.corrected, 0);
        assert_eq!(s.uncorrectable, s.detected);
        // An exponent-bit flip left in place derails the generation.
        assert_ne!(got, clean_tokens(77), "corruption must visibly propagate");
    }

    #[test]
    fn faulted_verify_off_run_corrupts_silently() {
        let sdc = SdcTrace::standard(42);
        let mut e = FunctionalHeteroEngine::new(ModelConfig::tiny(), 77).unwrap();
        // Off mode: faults are staged but never applied (no injection
        // points execute), so the run matches the clean one — the
        // "silent" baseline is produced by the Verify arm instead.
        e.inject(&sdc);
        assert!(e.integrity_summary().is_none());
    }
}
