//! Functional mode: real W4A16 transformer execution.
//!
//! Runs actual math — embedding gather, RMSNorm, W4A16 GEMMs, RoPE,
//! GQA attention, SwiGLU, sampling — on scaled-down configs. This is
//! the correctness anchor for the whole system: the partitioned
//! execution paths (row-cut / seq-cut / hybrid) are checked here to be
//! numerically identical to the monolithic computation, which is what
//! makes the timing engines' scheduling policies *legal*.

use hetero_solver::PartitionPlan;
use hetero_tensor::ops;
use hetero_tensor::quant::{Int8Matrix, W4Matrix};
use hetero_tensor::{Result, Tensor, TensorError};

use crate::kv::KvCache;
use crate::model::{ModelConfig, ModelWeights};

/// Arithmetic mode of the weight projections.
///
/// [`QuantMode::W4A16`] dequantizes INT4 weights to floating point —
/// the paper's accuracy-preserving choice. [`QuantMode::Int8`] models
/// the INT-only NPU path of comparator frameworks (Table 2): both the
/// activation and the weight are quantized to per-row INT8 before each
/// projection, which changes results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// INT4 weight storage, floating-point arithmetic.
    W4A16,
    /// INT8 weights *and* activations (integer GEMM).
    Int8,
}

/// A functional (real-math) model instance with its KV cache.
#[derive(Debug)]
pub struct FunctionalModel {
    cfg: ModelConfig,
    weights: ModelWeights,
    kv: KvCache,
    mode: QuantMode,
    /// Shapes of every weight Matmul executed, in order — used to
    /// validate that functional execution launches exactly the kernels
    /// the timing trace prices.
    matmul_log: Vec<hetero_tensor::shape::MatmulShape>,
}

impl FunctionalModel {
    /// Build a model with seeded synthetic weights (W4A16 arithmetic).
    pub fn new(cfg: ModelConfig, seed: u64) -> Result<Self> {
        Self::with_mode(cfg, seed, QuantMode::W4A16)
    }

    /// Build a model with an explicit arithmetic mode.
    pub fn with_mode(cfg: ModelConfig, seed: u64, mode: QuantMode) -> Result<Self> {
        let weights = ModelWeights::generate(&cfg, seed)?;
        let kv = KvCache::new(cfg.layers, cfg.max_seq, cfg.kv_dim());
        Ok(Self {
            cfg,
            weights,
            kv,
            mode,
            matmul_log: Vec::new(),
        })
    }

    /// Shapes of every weight Matmul executed so far, in launch order.
    pub fn executed_matmuls(&self) -> &[hetero_tensor::shape::MatmulShape] {
        &self.matmul_log
    }

    /// The arithmetic mode in use.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// A weight projection under the configured arithmetic mode.
    fn proj(&mut self, x: &Tensor, w: &W4Matrix) -> Result<Tensor> {
        let (m, _) = x.matrix_dims()?;
        let (k, n) = w.dims();
        self.matmul_log
            .push(hetero_tensor::shape::MatmulShape::new(m, k, n));
        match self.mode {
            QuantMode::W4A16 => ops::matmul_w4(x, w),
            QuantMode::Int8 => {
                // INT-only NPU path: re-quantize the dequantized weight
                // and the activation to per-row INT8, integer GEMM.
                let qx = Int8Matrix::quantize(x)?;
                let qw = Int8Matrix::quantize(&w.dequantize()?)?;
                qx.matmul_int8(&qw)
            }
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Current KV length.
    pub fn context_len(&self) -> usize {
        self.kv.len()
    }

    /// Reset the KV cache.
    pub fn reset(&mut self) {
        self.kv.clear();
    }

    /// Run the prefill phase over `tokens`, returning the logits of the
    /// final position `[1, vocab]`.
    pub fn prefill(&mut self, tokens: &[u32]) -> Result<Tensor> {
        if tokens.is_empty() {
            return Err(TensorError::OutOfBounds {
                context: "empty prompt".into(),
            });
        }
        let x = ops::embed(&self.weights.embedding, tokens)?;
        let h = self.forward(x)?;
        let last = h.slice_rows(tokens.len() - 1, tokens.len())?;
        self.logits(&last)
    }

    /// Run one decode step for `token`, returning `[1, vocab]` logits.
    pub fn decode_step(&mut self, token: u32) -> Result<Tensor> {
        let x = ops::embed(&self.weights.embedding, &[token])?;
        let h = self.forward(x)?;
        self.logits(&h)
    }

    /// Greedy generation: prefill `prompt`, then emit `n` tokens.
    pub fn generate(&mut self, prompt: &[u32], n: usize) -> Result<Vec<u32>> {
        let mut logits = self.prefill(prompt)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = ops::argmax(logits.row(0)?).expect("non-empty logits");
            out.push(next);
            if out.len() == n {
                break;
            }
            logits = self.decode_step(next)?;
        }
        Ok(out)
    }

    fn logits(&mut self, h: &Tensor) -> Result<Tensor> {
        let normed = ops::rmsnorm(h, &self.weights.final_norm, self.cfg.norm_eps)?;
        let lm_head = self.weights.lm_head.clone();
        self.proj(&normed, &lm_head)
    }

    /// Forward `x` (`[m, hidden]`, the new rows) through all layers,
    /// appending to the KV cache.
    fn forward(&mut self, mut x: Tensor) -> Result<Tensor> {
        let (m, _) = x.matrix_dims()?;
        let pos = self.kv.len();
        for layer in 0..self.cfg.layers {
            x = self.layer_forward(layer, &x, pos)?;
        }
        self.kv.advance(m)?;
        Ok(x)
    }

    fn layer_forward(&mut self, layer: usize, x: &Tensor, pos: usize) -> Result<Tensor> {
        let cfg = self.cfg.clone();
        let (hidden, kv_dim) = (cfg.hidden, cfg.kv_dim());
        let lw = self.weights.layers[layer].clone();

        // Attention block.
        let normed = ops::rmsnorm(x, &lw.attn_norm, cfg.norm_eps)?;
        let qkv = self.proj(&normed, &lw.qkv)?;
        let mut q = qkv.slice_cols(0, hidden)?;
        let mut k = qkv.slice_cols(hidden, hidden + kv_dim)?;
        let v = qkv.slice_cols(hidden + kv_dim, hidden + 2 * kv_dim)?;
        ops::apply_rope(&mut q, cfg.heads, cfg.head_dim(), pos, cfg.rope_theta)?;
        ops::apply_rope(&mut k, cfg.kv_heads, cfg.head_dim(), pos, cfg.rope_theta)?;
        self.kv.append(layer, &k, &v)?;

        let (m, _) = x.matrix_dims()?;
        let ctx = pos + m;
        let keys = self.kv.keys(layer, ctx)?;
        let values = self.kv.values(layer, ctx)?;
        let attn = attention_gqa(&self.cfg, &q, &keys, &values, pos)?;
        let attn_out = self.proj(&attn, &lw.attn_out)?;
        let x = ops::add(x, &attn_out)?;

        // FFN block.
        let normed = ops::rmsnorm(&x, &lw.ffn_norm, cfg.norm_eps)?;
        let gate_up = self.proj(&normed, &lw.gate_up)?;
        let gate = gate_up.slice_cols(0, cfg.ffn)?;
        let up = gate_up.slice_cols(cfg.ffn, 2 * cfg.ffn)?;
        let act = ops::swiglu(&gate, &up)?;
        let down = self.proj(&act, &lw.ffn_down)?;
        ops::add(&x, &down)
    }
}

/// Causal GQA attention: queries `[m, hidden]` (rows at absolute
/// positions `pos..pos+m`) over `keys`/`values` `[ctx, kv_dim]`.
pub(crate) fn attention_gqa(
    cfg: &ModelConfig,
    q: &Tensor,
    keys: &Tensor,
    values: &Tensor,
    pos: usize,
) -> Result<Tensor> {
    ops::causal_attention(
        ops::AttentionConfig {
            heads: cfg.heads,
            kv_heads: cfg.kv_heads,
            head_dim: cfg.head_dim(),
        },
        q,
        keys,
        values,
        pos,
    )
}

/// Execute a Matmul `x [m,k] × w [k,n]` under a partition plan,
/// slicing/merging exactly as the engine's backends would.
///
/// Padding plans compute extra rows and discard them, mirroring NPU
/// padding semantics.
pub fn matmul_partitioned(x: &Tensor, w: &W4Matrix, plan: &PartitionPlan) -> Result<Tensor> {
    let (m, _) = x.matrix_dims()?;
    let (_, n) = w.dims();
    match plan {
        PartitionPlan::GpuOnly => ops::matmul_w4(x, w),
        PartitionPlan::NpuOnly { padded_m } => {
            // Pad rows with zeros, compute, then drop the padding.
            let padded = pad_rows(x, *padded_m)?;
            let full = ops::matmul_w4(&padded, w)?;
            full.slice_rows(0, m)
        }
        PartitionPlan::NpuPipe { chunks, .. } => {
            let mut parts = Vec::new();
            let mut row = 0;
            for &c in chunks {
                let end = (row + c).min(m);
                if end > row {
                    let slice = x.slice_rows(row, end)?;
                    let padded = pad_rows(&slice, c)?;
                    parts.push(ops::matmul_w4(&padded, w)?.slice_rows(0, end - row)?);
                }
                row = end;
            }
            let refs: Vec<&Tensor> = parts.iter().collect();
            Tensor::concat_rows(&refs)
        }
        PartitionPlan::RowCut { gpu_cols, padded_m }
        | PartitionPlan::HybridCut { gpu_cols, padded_m } => {
            // NPU computes the left columns on (possibly padded) rows;
            // GPU computes the right `gpu_cols` columns exactly.
            let npu_w = w.dequantize_cols(0, n - gpu_cols)?;
            let gpu_w = w.dequantize_cols(n - gpu_cols, n)?;
            let padded = pad_rows(x, (*padded_m).max(m))?;
            let npu_part = ops::matmul(&padded, &npu_w)?.slice_rows(0, m)?;
            let gpu_part = ops::matmul(x, &gpu_w)?;
            Tensor::concat_cols(&[&npu_part, &gpu_part])
        }
        PartitionPlan::SeqCut {
            npu_chunks,
            gpu_rows,
        } => {
            let mut parts = Vec::new();
            let mut row = 0;
            for &c in npu_chunks {
                parts.push(ops::matmul_w4(&x.slice_rows(row, row + c)?, w)?);
                row += c;
            }
            if *gpu_rows > 0 {
                parts.push(ops::matmul_w4(&x.slice_rows(row, row + gpu_rows)?, w)?);
            }
            let refs: Vec<&Tensor> = parts.iter().collect();
            Tensor::concat_rows(&refs)
        }
    }
}

/// Divergence statistics between two arithmetic modes on the same
/// model and prompt (the data behind Table 2's accuracy column).
#[derive(Debug, Clone, Copy)]
pub struct QuantDivergence {
    /// Fraction of greedily-decoded tokens that agree.
    pub token_agreement: f64,
    /// Mean squared error between the prefill logits.
    pub logit_mse: f64,
    /// Whether the argmax of the first generated token agrees.
    pub first_token_agrees: bool,
}

/// Compare greedy generations of two arithmetic modes on one prompt.
pub fn quant_divergence(
    cfg: &ModelConfig,
    seed: u64,
    prompt: &[u32],
    gen_tokens: usize,
    a: QuantMode,
    b: QuantMode,
) -> Result<QuantDivergence> {
    let mut ma = FunctionalModel::with_mode(cfg.clone(), seed, a)?;
    let mut mb = FunctionalModel::with_mode(cfg.clone(), seed, b)?;

    let la = ma.prefill(prompt)?;
    let lb = mb.prefill(prompt)?;
    let mse = la
        .data()
        .iter()
        .zip(lb.data())
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f32>() as f64
        / la.numel() as f64;

    let ta = {
        let mut m = FunctionalModel::with_mode(cfg.clone(), seed, a)?;
        m.generate(prompt, gen_tokens)?
    };
    let tb = {
        let mut m = FunctionalModel::with_mode(cfg.clone(), seed, b)?;
        m.generate(prompt, gen_tokens)?
    };
    let agree = ta.iter().zip(&tb).filter(|(x, y)| x == y).count();
    Ok(QuantDivergence {
        token_agreement: agree as f64 / gen_tokens.max(1) as f64,
        logit_mse: mse,
        first_token_agrees: ta.first() == tb.first(),
    })
}

fn pad_rows(x: &Tensor, rows: usize) -> Result<Tensor> {
    let (m, k) = x.matrix_dims()?;
    if rows <= m {
        return Ok(x.clone());
    }
    let pad = Tensor::zeros(&[rows - m, k]);
    Tensor::concat_rows(&[x, &pad])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_tensor::rng::WeightRng;

    fn model() -> FunctionalModel {
        FunctionalModel::new(ModelConfig::tiny(), 42).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let prompt = [1u32, 5, 9, 2];
        let mut a = model();
        let mut b = model();
        let ta = a.generate(&prompt, 8).unwrap();
        let tb = b.generate(&prompt, 8).unwrap();
        assert_eq!(ta, tb);
        assert_eq!(ta.len(), 8);
        assert!(ta.iter().all(|&t| (t as usize) < a.config().vocab));
    }

    #[test]
    fn prefill_then_decode_equals_token_by_token_prefill() {
        // Feeding the prompt at once must match feeding it token by
        // token (KV-cache correctness).
        let prompt = [3u32, 7, 11];
        let mut batch = model();
        let batch_logits = batch.prefill(&prompt).unwrap();

        let mut seq = model();
        let mut logits = seq.prefill(&prompt[..1]).unwrap();
        for &t in &prompt[1..] {
            logits = seq.decode_step(t).unwrap();
        }
        batch_logits.assert_close(&logits, 2e-2);
    }

    #[test]
    fn context_len_tracks_tokens() {
        let mut m = model();
        m.prefill(&[1, 2, 3]).unwrap();
        assert_eq!(m.context_len(), 3);
        m.decode_step(4).unwrap();
        assert_eq!(m.context_len(), 4);
        m.reset();
        assert_eq!(m.context_len(), 0);
    }

    #[test]
    fn causality_first_token_ignores_suffix() {
        // The first position's output must not depend on later tokens:
        // compare the *first* decode continuation after 1-token prefill
        // against prefix independence.
        let mut a = model();
        let la = a.prefill(&[5]).unwrap();
        let mut b = model();
        let lb = b.prefill(&[5]).unwrap();
        la.assert_close(&lb, 0.0);
        // And a longer prompt's final logits differ (sanity).
        let mut c = model();
        let lc = c.prefill(&[5, 6]).unwrap();
        assert!(la.max_abs_diff(&lc).unwrap() > 1e-4);
    }

    #[test]
    fn empty_prompt_rejected() {
        let mut m = model();
        assert!(m.prefill(&[]).is_err());
    }

    fn partition_fixture() -> (Tensor, W4Matrix) {
        let rng = WeightRng::new(9);
        let x = rng.uniform("x", &[48, 64], 1.0).unwrap();
        let w = rng.uniform("w", &[64, 96], 0.3).unwrap();
        (x, W4Matrix::quantize(&w, 32).unwrap())
    }

    #[test]
    fn all_partition_plans_match_monolithic() {
        let (x, w) = partition_fixture();
        let whole = ops::matmul_w4(&x, &w).unwrap();
        let plans = [
            PartitionPlan::GpuOnly,
            PartitionPlan::NpuOnly { padded_m: 64 },
            PartitionPlan::NpuPipe {
                chunks: vec![32, 16],
                padded_rows: 0,
            },
            PartitionPlan::NpuPipe {
                chunks: vec![32, 32],
                padded_rows: 16,
            },
            PartitionPlan::RowCut {
                gpu_cols: 32,
                padded_m: 48,
            },
            PartitionPlan::HybridCut {
                gpu_cols: 64,
                padded_m: 64,
            },
            PartitionPlan::SeqCut {
                npu_chunks: vec![32],
                gpu_rows: 16,
            },
            PartitionPlan::SeqCut {
                npu_chunks: vec![16, 16],
                gpu_rows: 16,
            },
        ];
        for plan in &plans {
            let got = matmul_partitioned(&x, &w, plan).unwrap();
            assert_eq!(
                got.max_abs_diff(&whole).unwrap(),
                0.0,
                "plan {plan:?} is not numerically identical"
            );
        }
    }

    #[test]
    fn w4a16_mode_is_self_consistent() {
        // Comparing W4A16 against itself must be exact.
        let cfg = ModelConfig::tiny();
        let d = quant_divergence(
            &cfg,
            3,
            &[1, 2, 3, 4],
            8,
            QuantMode::W4A16,
            QuantMode::W4A16,
        )
        .unwrap();
        assert_eq!(d.token_agreement, 1.0);
        assert_eq!(d.logit_mse, 0.0);
        assert!(d.first_token_agrees);
    }

    #[test]
    fn int8_mode_diverges_from_w4a16() {
        // Table 2: INT-only NPU computation changes results; W4A16
        // preserves them. The INT8 path always perturbs logits, and on
        // some prompts the greedy generations diverge (on others the
        // noise stays below the argmax margin — exactly the
        // "depends on activation" character the paper describes).
        let cfg = ModelConfig::tiny();
        let mut any_token_divergence = false;
        for seed in 0..4u64 {
            let prompt: Vec<u32> = (0..12).map(|i| (i * 37 + seed as u32 * 11) % 256).collect();
            let d = quant_divergence(&cfg, seed, &prompt, 24, QuantMode::W4A16, QuantMode::Int8)
                .unwrap();
            assert!(d.logit_mse > 0.0, "seed {seed}: int8 must perturb logits");
            if d.token_agreement < 1.0 {
                any_token_divergence = true;
            }
        }
        assert!(
            any_token_divergence,
            "int8 generations should diverge on some prompts"
        );
    }

    #[test]
    fn int8_generation_is_deterministic_too() {
        let cfg = ModelConfig::tiny();
        let gen = || {
            let mut m = FunctionalModel::with_mode(cfg.clone(), 7, QuantMode::Int8).unwrap();
            m.generate(&[3, 1, 4], 8).unwrap()
        };
        assert_eq!(gen(), gen());
    }

    #[test]
    fn padding_rows_are_discarded_not_leaked() {
        let (x, w) = partition_fixture();
        let out = matmul_partitioned(&x, &w, &PartitionPlan::NpuOnly { padded_m: 128 }).unwrap();
        assert_eq!(out.shape().dims(), &[48, 96]);
    }
}
