//! Synthetic model weights for functional mode.
//!
//! Deterministically generated (seeded per weight name) and stored in
//! the system's W4A16 format: INT4 group-quantized weight matrices with
//! FP32 norm gains and embeddings. The same `(seed, config)` pair
//! always yields bit-identical weights, which the engine-equivalence
//! tests rely on.

use hetero_tensor::quant::W4Matrix;
use hetero_tensor::rng::WeightRng;
use hetero_tensor::{Result, Tensor};

use crate::model::ModelConfig;

/// One decoder layer's weights.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Fused QKV projection `[hidden, hidden + 2·kv_dim]`.
    pub qkv: W4Matrix,
    /// Output projection `[hidden, hidden]`.
    pub attn_out: W4Matrix,
    /// Fused gate/up projection `[hidden, 2·ffn]`.
    pub gate_up: W4Matrix,
    /// Down projection `[ffn, hidden]`.
    pub ffn_down: W4Matrix,
    /// Attention-input RMSNorm gain.
    pub attn_norm: Vec<f32>,
    /// FFN-input RMSNorm gain.
    pub ffn_norm: Vec<f32>,
}

/// Full model weights (functional mode).
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Token embedding table `[vocab, hidden]` (FP32 storage; gathers
    /// are cheap).
    pub embedding: Tensor,
    /// Decoder layers.
    pub layers: Vec<LayerWeights>,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// LM head `[hidden, vocab]`.
    pub lm_head: W4Matrix,
}

/// Quantization group size used for all weight matrices.
pub const WEIGHT_GROUP: usize = 64;

impl ModelWeights {
    /// Generate weights for `cfg` from `seed`.
    ///
    /// Intended for scaled-down configs; generating a full 8B model
    /// would take minutes and gigabytes.
    pub fn generate(cfg: &ModelConfig, seed: u64) -> Result<Self> {
        let rng = WeightRng::new(seed);
        let group = WEIGHT_GROUP.min(cfg.hidden).min(cfg.ffn);
        let quant = |t: &Tensor| W4Matrix::quantize(t, group);

        let mut layers = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let p = |s: &str| format!("layer{l}.{s}");
            layers.push(LayerWeights {
                qkv: quant(&rng.kaiming(&p("qkv"), cfg.hidden, cfg.hidden + 2 * cfg.kv_dim())?)?,
                attn_out: quant(&rng.kaiming(&p("attn_out"), cfg.hidden, cfg.hidden)?)?,
                gate_up: quant(&rng.kaiming(&p("gate_up"), cfg.hidden, 2 * cfg.ffn)?)?,
                ffn_down: quant(&rng.kaiming(&p("ffn_down"), cfg.ffn, cfg.hidden)?)?,
                attn_norm: ones_with_jitter(&rng, &p("attn_norm"), cfg.hidden)?,
                ffn_norm: ones_with_jitter(&rng, &p("ffn_norm"), cfg.hidden)?,
            });
        }

        Ok(Self {
            embedding: rng.uniform("embedding", &[cfg.vocab, cfg.hidden], 0.05)?,
            layers,
            final_norm: ones_with_jitter(&rng, "final_norm", cfg.hidden)?,
            lm_head: quant(&rng.kaiming("lm_head", cfg.hidden, cfg.vocab)?)?,
        })
    }

    /// Total storage bytes of the quantized matrices.
    pub fn quantized_bytes(&self) -> usize {
        let per_layer: usize = self
            .layers
            .iter()
            .map(|l| {
                l.qkv.storage_bytes()
                    + l.attn_out.storage_bytes()
                    + l.gate_up.storage_bytes()
                    + l.ffn_down.storage_bytes()
            })
            .sum();
        per_layer + self.lm_head.storage_bytes()
    }
}

/// Norm gains near 1.0 (slight jitter so they are not no-ops in tests).
fn ones_with_jitter(rng: &WeightRng, name: &str, n: usize) -> Result<Vec<f32>> {
    let jitter = rng.uniform(name, &[n], 0.05)?;
    Ok(jitter.data().iter().map(|j| 1.0 + j).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ModelConfig::tiny();
        let a = ModelWeights::generate(&cfg, 7).unwrap();
        let b = ModelWeights::generate(&cfg, 7).unwrap();
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(
            a.layers[0].qkv.dequantize().unwrap(),
            b.layers[0].qkv.dequantize().unwrap()
        );
        let c = ModelWeights::generate(&cfg, 8).unwrap();
        assert_ne!(a.embedding, c.embedding);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::generate(&cfg, 1).unwrap();
        assert_eq!(w.layers.len(), cfg.layers);
        assert_eq!(
            w.layers[0].qkv.dims(),
            (cfg.hidden, cfg.hidden + 2 * cfg.kv_dim())
        );
        assert_eq!(w.layers[0].ffn_down.dims(), (cfg.ffn, cfg.hidden));
        assert_eq!(w.lm_head.dims(), (cfg.hidden, cfg.vocab));
        assert_eq!(w.embedding.shape().dims(), &[cfg.vocab, cfg.hidden]);
        assert_eq!(w.final_norm.len(), cfg.hidden);
    }

    #[test]
    fn norm_gains_near_one() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::generate(&cfg, 1).unwrap();
        for g in &w.layers[0].attn_norm {
            assert!((0.9..=1.1).contains(g));
        }
    }

    #[test]
    fn quantized_bytes_accounted() {
        let cfg = ModelConfig::tiny();
        let w = ModelWeights::generate(&cfg, 1).unwrap();
        assert!(w.quantized_bytes() > 0);
        // Roughly half a byte per parameter for the matrices.
        let matrix_params: usize = cfg.layers
            * (cfg.hidden * (cfg.hidden + 2 * cfg.kv_dim())
                + cfg.hidden * cfg.hidden
                + cfg.hidden * 2 * cfg.ffn
                + cfg.ffn * cfg.hidden)
            + cfg.hidden * cfg.vocab;
        assert!(w.quantized_bytes() < matrix_params);
    }
}
