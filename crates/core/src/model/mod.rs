//! Model definitions: decoder configurations and synthetic weights.

pub mod config;
pub mod weights;

pub use config::ModelConfig;
pub use weights::ModelWeights;
