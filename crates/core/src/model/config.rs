//! Decoder model configurations.
//!
//! Shapes follow the published architectures of the models the paper
//! evaluates (Llama-8B/7B/3B, InternLM-1.8B). Weights are synthetic —
//! the performance results depend only on shapes — but the shapes are
//! architecture-exact so every kernel in the simulated trace matches
//! what the real model would launch.

use hetero_graph::{GraphSet, OpTemplate};
use hetero_tensor::DType;
use serde::{Deserialize, Serialize};

/// Configuration of a Llama-style decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Display name.
    pub name: String,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Number of decoder layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// KV heads (GQA when < heads).
    pub kv_heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum context length supported by the KV cache.
    pub max_seq: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub norm_eps: f32,
    /// KV-cache storage type (FP16 by default; INT8 halves decode
    /// attention traffic at a small accuracy cost).
    pub kv_dtype: DType,
}

impl ModelConfig {
    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// KV projection width (`kv_heads × head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// Llama-3.1-8B: 32 layers, 4096 hidden, 14336 FFN, GQA 32/8.
    pub fn llama_8b() -> Self {
        Self {
            name: "Llama-8B".into(),
            hidden: 4096,
            ffn: 14336,
            layers: 32,
            heads: 32,
            kv_heads: 8,
            vocab: 128_256,
            max_seq: 4096,
            rope_theta: 500_000.0,
            norm_eps: 1e-5,
            kv_dtype: DType::F16,
        }
    }

    /// Llama-2-7B: 32 layers, 4096 hidden, 11008 FFN, MHA.
    pub fn llama_7b() -> Self {
        Self {
            name: "Llama-7B".into(),
            hidden: 4096,
            ffn: 11008,
            layers: 32,
            heads: 32,
            kv_heads: 32,
            vocab: 32_000,
            max_seq: 4096,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            kv_dtype: DType::F16,
        }
    }

    /// Llama-3.2-3B: 28 layers, 3072 hidden, 8192 FFN, GQA 24/8.
    pub fn llama_3b() -> Self {
        Self {
            name: "Llama-3B".into(),
            hidden: 3072,
            ffn: 8192,
            layers: 28,
            heads: 24,
            kv_heads: 8,
            vocab: 128_256,
            max_seq: 4096,
            rope_theta: 500_000.0,
            norm_eps: 1e-5,
            kv_dtype: DType::F16,
        }
    }

    /// InternLM2-1.8B: 24 layers, 2048 hidden, 8192 FFN, GQA 16/8.
    pub fn internlm_1_8b() -> Self {
        Self {
            name: "InternLM-1.8B".into(),
            hidden: 2048,
            ffn: 8192,
            layers: 24,
            heads: 16,
            kv_heads: 8,
            vocab: 92_544,
            max_seq: 4096,
            rope_theta: 1_000_000.0,
            norm_eps: 1e-5,
            kv_dtype: DType::F16,
        }
    }

    /// A scaled-down config for functional-mode tests: real math runs
    /// in milliseconds while exercising every code path (GQA included).
    pub fn tiny() -> Self {
        Self {
            name: "Tiny-Test".into(),
            hidden: 64,
            ffn: 128,
            layers: 2,
            heads: 4,
            kv_heads: 2,
            vocab: 256,
            max_seq: 128,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            kv_dtype: DType::F16,
        }
    }

    /// Mistral-7B-v0.1: 32 layers, 4096 hidden, 14336 FFN, GQA 32/8.
    /// (Not in the paper's evaluation; provided as a library preset.)
    pub fn mistral_7b() -> Self {
        Self {
            name: "Mistral-7B".into(),
            hidden: 4096,
            ffn: 14336,
            layers: 32,
            heads: 32,
            kv_heads: 8,
            vocab: 32_000,
            max_seq: 4096,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            kv_dtype: DType::F16,
        }
    }

    /// Qwen2-1.5B: 28 layers, 1536 hidden, 8960 FFN, GQA 12/2.
    /// (Not in the paper's evaluation; provided as a library preset.)
    pub fn qwen2_1_5b() -> Self {
        Self {
            name: "Qwen2-1.5B".into(),
            hidden: 1536,
            ffn: 8960,
            layers: 28,
            heads: 12,
            kv_heads: 2,
            vocab: 151_936,
            max_seq: 4096,
            rope_theta: 1_000_000.0,
            norm_eps: 1e-6,
            kv_dtype: DType::F16,
        }
    }

    /// This configuration with an INT8-quantized KV cache.
    pub fn with_int8_kv(mut self) -> Self {
        self.kv_dtype = DType::Int8;
        self.name = format!("{}+kv8", self.name);
        self
    }

    /// Look up a preset by CLI-style name (`"llama-8b"`, ...).
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "llama-8b" => Self::llama_8b(),
            "llama-7b" => Self::llama_7b(),
            "llama-3b" => Self::llama_3b(),
            "internlm-1.8b" => Self::internlm_1_8b(),
            "mistral-7b" => Self::mistral_7b(),
            "qwen2-1.5b" => Self::qwen2_1_5b(),
            "tiny" => Self::tiny(),
            _ => return None,
        })
    }

    /// The four evaluation models of the paper, largest first.
    pub fn evaluation_models() -> Vec<Self> {
        vec![
            Self::llama_8b(),
            Self::llama_7b(),
            Self::llama_3b(),
            Self::internlm_1_8b(),
        ]
    }

    /// Total parameter count (embeddings + decoder + LM head; the
    /// embedding and LM head are untied).
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let per_layer = h * (self.hidden as u64)            // q
            + 2 * h * self.kv_dim() as u64                  // k, v
            + h * h                                          // o
            + 3 * h * self.ffn as u64                        // gate, up, down
            + 2 * h; // norms
        let embed = self.vocab as u64 * h;
        embed + self.layers as u64 * per_layer + h + embed
    }

    /// Weight storage footprint under W4A16 (group-64 scales), bytes.
    pub fn weight_bytes_w4(&self) -> u64 {
        let p = self.param_count();
        p / 2 + p / 64 * 4
    }

    /// The weight-Matmul operator set of one decoder layer plus the LM
    /// head — the NPU graph set (§5.2.2's "typically 4 graphs" plus the
    /// head).
    pub fn graph_set(&self) -> GraphSet {
        GraphSet::new(vec![
            OpTemplate::new("qkv", self.hidden, self.hidden + 2 * self.kv_dim()),
            OpTemplate::new("attn_out", self.hidden, self.hidden),
            OpTemplate::new("gate_up", self.hidden, 2 * self.ffn),
            OpTemplate::new("ffn_down", self.ffn, self.hidden),
        ])
    }

    /// `(name, k, n)` triples of the per-layer weight Matmuls (solver
    /// prebuild input).
    pub fn matmul_ops(&self) -> Vec<(&'static str, usize, usize)> {
        vec![
            ("qkv", self.hidden, self.hidden + 2 * self.kv_dim()),
            ("attn_out", self.hidden, self.hidden),
            ("gate_up", self.hidden, 2 * self.ffn),
            ("ffn_down", self.ffn, self.hidden),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama8b_architecture() {
        let c = ModelConfig::llama_8b();
        assert_eq!(c.head_dim(), 128);
        assert_eq!(c.kv_dim(), 1024);
        // ≈ 8.0B parameters.
        let b = c.param_count() as f64 / 1e9;
        assert!((7.5..8.6).contains(&b), "params {b}B");
        // W4 storage ≈ 4.3 GB.
        let gb = c.weight_bytes_w4() as f64 / 1e9;
        assert!((3.9..4.8).contains(&gb), "w4 {gb}GB");
    }

    #[test]
    fn internlm_is_billion_scale() {
        let c = ModelConfig::internlm_1_8b();
        let b = c.param_count() as f64 / 1e9;
        assert!((1.5..2.1).contains(&b), "params {b}B");
    }

    #[test]
    fn all_models_have_consistent_dims() {
        for c in ModelConfig::evaluation_models() {
            assert_eq!(c.hidden % c.heads, 0, "{}", c.name);
            assert_eq!(c.heads % c.kv_heads, 0, "{}", c.name);
            assert!(
                c.head_dim() % 2 == 0,
                "{}: RoPE needs even head_dim",
                c.name
            );
        }
    }

    #[test]
    fn graph_set_has_four_ops() {
        let g = ModelConfig::llama_8b().graph_set();
        assert_eq!(g.len(), 4);
        let shapes = g.shapes_at(256);
        assert_eq!(shapes[0].n, 4096 + 2048);
        assert_eq!(shapes[3].k, 14336);
    }

    #[test]
    fn extra_presets_are_consistent() {
        for c in [ModelConfig::mistral_7b(), ModelConfig::qwen2_1_5b()] {
            assert_eq!(c.hidden % c.heads, 0, "{}", c.name);
            assert_eq!(c.heads % c.kv_heads, 0, "{}", c.name);
        }
        let q = ModelConfig::qwen2_1_5b();
        assert!((1.2..2.0).contains(&(q.param_count() as f64 / 1e9)));
    }

    #[test]
    fn by_name_covers_presets() {
        assert_eq!(ModelConfig::by_name("llama-8b").unwrap().name, "Llama-8B");
        assert_eq!(
            ModelConfig::by_name("QWEN2-1.5B").unwrap().name,
            "Qwen2-1.5B"
        );
        assert!(ModelConfig::by_name("gpt-5").is_none());
    }

    #[test]
    fn int8_kv_halves_cache_width() {
        let c = ModelConfig::llama_8b().with_int8_kv();
        assert_eq!(c.kv_dtype, DType::Int8);
        assert!(c.name.ends_with("+kv8"));
    }

    #[test]
    fn tiny_is_fast_but_complete() {
        let c = ModelConfig::tiny();
        assert!(c.param_count() < 1_000_000);
        assert!(c.kv_heads < c.heads, "tiny config must exercise GQA");
    }
}
