//! Run reports: the metrics every experiment consumes.
//!
//! A [`SessionReport`] serializes deterministically: all optional
//! sections ([`SessionReport::degradation`],
//! [`SessionReport::integrity`], [`SessionReport::metrics`]) are
//! skipped when absent, so a report produced by a plain
//! [`crate::InferenceSession::run`] is byte-identical to one from
//! before those sections existed.
//!
//! ```
//! use heterollm::{EngineKind, InferenceSession, ModelConfig};
//!
//! let mut s = InferenceSession::new(EngineKind::HeteroTensor, &ModelConfig::internlm_1_8b());
//! let report = s.run(64, 4);
//! let json = serde_json::to_string(&report).unwrap();
//! // Opt-in sections absent -> keys absent, not null.
//! assert!(!json.contains("\"metrics\""));
//! assert!(!json.contains("\"integrity\""));
//! ```

use hetero_soc::power::PowerReport;
use hetero_soc::SimTime;
use serde::{Deserialize, Serialize};

use crate::obs::MetricsSnapshot;

/// Outcome of one inference phase (prefill or a decode run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Tokens processed (prompt length for prefill, generated count for
    /// decode).
    pub tokens: usize,
    /// Simulated wall-clock duration of the phase.
    pub elapsed: SimTime,
}

impl PhaseReport {
    /// Tokens per second.
    pub fn tokens_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        self.tokens as f64 / s
    }

    /// Mean latency per token.
    pub fn per_token(&self) -> SimTime {
        if self.tokens == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_nanos(self.elapsed.as_nanos() / self.tokens as u64)
    }
}

/// Degradation metrics of a disturbed multi-request run.
///
/// All fields are integers or [`SimTime`] (integer nanoseconds) so the
/// serialized report is byte-identical across runs with the same seed;
/// derived rates are computed on demand.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationSummary {
    /// Requests offered to the engine.
    pub total_requests: usize,
    /// Requests served to completion.
    pub completed: usize,
    /// Requests shed by the admission controller under backlog.
    pub shed: usize,
    /// Completed requests that missed the TTFT or TPOT SLO.
    pub slo_violations: usize,
    /// Median time-to-first-token over completed requests
    /// (queueing + recovery overheads included).
    pub p50_ttft: SimTime,
    /// 99th-percentile time-to-first-token.
    pub p99_ttft: SimTime,
    /// Median time-per-output-token.
    pub p50_tpot: SimTime,
    /// 99th-percentile time-per-output-token.
    pub p99_tpot: SimTime,
    /// Partition-plan re-solves against a disturbance-adjusted profile.
    pub replans: usize,
    /// Backend fallbacks (tensor-hybrid → GPU-only or NPU-only).
    pub fallbacks: usize,
    /// Rendezvous retry attempts paid across the run.
    pub sync_retries: usize,
    /// Sync-mechanism downgrades (fast → driver) after retry budget
    /// exhaustion.
    pub sync_downgrades: usize,
    /// Mean time from a disturbance window closing to the first
    /// SLO-meeting completion, over recovered windows.
    pub mean_recovery: SimTime,
    /// Disturbance windows with no SLO-meeting completion afterwards.
    pub unrecovered: usize,
}

impl DegradationSummary {
    /// Fraction of offered requests that violated their SLO or were
    /// shed outright.
    pub fn slo_violation_rate(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        (self.slo_violations + self.shed) as f64 / self.total_requests as f64
    }
}

/// Data-integrity metrics of a run with verification enabled.
///
/// Like [`DegradationSummary`], every field is an integer or a
/// [`SimTime`] (integer nanoseconds) so same-seed reports serialize
/// byte-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegritySummary {
    /// SDC faults actually applied to this run (a scheduled fault whose
    /// target never executes is not counted).
    pub injected: usize,
    /// Corruptions flagged by a verifier (tile checksum, KV seal, or
    /// graph fingerprint).
    pub detected: usize,
    /// Detected corruptions repaired by recompute/rollback/rebuild.
    pub corrected: usize,
    /// Detected corruptions left in place (verify-only mode).
    pub uncorrectable: usize,
    /// GEMM output tiles checked against their ABFT row checksums.
    pub tiles_verified: usize,
    /// Tiles whose checksum residual exceeded tolerance.
    pub tile_mismatches: usize,
    /// Tiles recomputed on the opposite backend.
    pub tile_recomputes: usize,
    /// `(layer, row)` KV seals re-verified at read time.
    pub kv_rows_verified: usize,
    /// Sealed KV rows whose stored bits no longer match their seal.
    pub kv_mismatches: usize,
    /// KV rollbacks to the last sealed prefix.
    pub kv_rollbacks: usize,
    /// Tokens re-forwarded to rebuild rolled-back KV rows.
    pub replayed_tokens: usize,
    /// Compiled-graph fingerprints checked before dispatch.
    pub graphs_verified: usize,
    /// Cached graphs whose fingerprint no longer matched.
    pub graph_mismatches: usize,
    /// Poisoned graphs invalidated and recompiled.
    pub graph_rebuilds: usize,
    /// Escalations to single-backend fallback after a corruption
    /// streak.
    pub fallback_escalations: usize,
    /// Verification overhead as an integer percentage of the run's
    /// simulated time (detection tax: checksum reductions plus one
    /// rendezvous per verified tile).
    pub verify_overhead_pct: u64,
    /// Median latency of a recovery action (tile recompute, KV
    /// rollback+replay, or graph rebuild).
    pub recompute_p50: SimTime,
    /// 99th-percentile recovery-action latency.
    pub recompute_p99: SimTime,
}

/// A full prefill + decode session summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// Engine name.
    pub engine: String,
    /// Model name.
    pub model: String,
    /// Prefill phase metrics (TTFT ≈ `prefill.elapsed`).
    pub prefill: PhaseReport,
    /// Decode phase metrics (TPOT ≈ `decode.per_token()`).
    pub decode: PhaseReport,
    /// Power/energy over the whole session.
    pub power: PowerReport,
    /// Degradation metrics when the session ran under a disturbance
    /// trace (`None` for quiet single-request sessions).
    pub degradation: Option<DegradationSummary>,
    /// Integrity metrics when the session ran with verification
    /// enabled (`None` when integrity mode is off). Omitted from the
    /// serialized form when absent so integrity-off reports are
    /// byte-identical to pre-integrity ones.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub integrity: Option<IntegritySummary>,
    /// All-integer observability metrics (counters + fixed-bucket
    /// histograms derived from the span timeline) when the session ran
    /// through the opt-in observed path
    /// ([`crate::InferenceSession::run_observed`] or a runtime
    /// controller with the timeline armed). `None` — and omitted from
    /// the serialized form — otherwise, keeping pre-observability
    /// golden reports byte-identical.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub metrics: Option<MetricsSnapshot>,
}

impl SessionReport {
    /// Time to first token.
    pub fn ttft(&self) -> SimTime {
        self.prefill.elapsed
    }

    /// Time per output token.
    pub fn tpot(&self) -> SimTime {
        self.decode.per_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_latencies() {
        let p = PhaseReport {
            tokens: 256,
            elapsed: SimTime::from_millis(1000),
        };
        assert!((p.tokens_per_sec() - 256.0).abs() < 1e-9);
        assert_eq!(p.per_token(), SimTime::from_nanos(1_000_000_000 / 256));
    }

    #[test]
    fn zero_cases() {
        let p = PhaseReport {
            tokens: 0,
            elapsed: SimTime::ZERO,
        };
        assert_eq!(p.tokens_per_sec(), 0.0);
        assert_eq!(p.per_token(), SimTime::ZERO);
    }
}
