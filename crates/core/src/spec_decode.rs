//! Speculative decoding support (§4.1.2).
//!
//! "During the decoding phase, the sequence length of the input token
//! is fixed — typically one for standard decoding and *n* for
//! speculative decoding. We can pre-generate the NPU graph using the
//! designated decoding tensor shape and employ a row-cutting strategy
//! for tensor partition."
//!
//! A verification step runs the decode trace with `m = draft_len + 1`
//! rows: weight traffic is unchanged (the whole point — weights are
//! read once per step regardless of how many tokens are verified), so
//! committed-token throughput rises with the acceptance rate.

use hetero_profiler::RealExecProvider;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::Backend;
use hetero_solver::{PlanTable, Solver, SolverConfig};

use crate::engines::hetero_tensor::HeteroTensorEngine;
use crate::engines::{gpu_kernel, hetero_soc_config, Engine};
use crate::error::EngineError;
use crate::trace::{decode_trace, OpRole};

/// Outcome of a speculative decoding run.
#[derive(Debug, Clone, Copy)]
pub struct SpecDecodeReport {
    /// Verification steps executed.
    pub steps: usize,
    /// Tokens committed across all steps.
    pub committed_tokens: usize,
    /// Total simulated time.
    pub elapsed: hetero_soc::SimTime,
}

impl SpecDecodeReport {
    /// Committed tokens per second.
    pub fn tokens_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        self.committed_tokens as f64 / s
    }
}

/// Run speculative decoding on the tensor-level heterogeneous engine.
///
/// `step_commits[i]` is the number of tokens committed by step `i`
/// (from a draft/acceptance simulation such as
/// `hetero_workloads::spec::simulate_steps`); each step verifies
/// `verify_rows` rows (`draft_len + 1`).
pub fn run_speculative_hetero(
    engine: &mut HeteroTensorEngine,
    prompt_len: usize,
    verify_rows: usize,
    step_commits: &[usize],
) -> Result<SpecDecodeReport, EngineError> {
    assert!(verify_rows >= 1, "verify at least one row");
    let model = engine.model().clone();
    // Plans for the speculative decode shape: graphs exist for the
    // designated verification length.
    let solver = Solver::new(
        RealExecProvider::new(hetero_soc_config(SyncMechanism::Fast)),
        SolverConfig {
            sync: SyncModel::new(SyncMechanism::Fast),
            ..SolverConfig::decode(verify_rows)
        },
    );
    let mut table = PlanTable::new();

    let start = engine.soc().clock();
    let mut ctx = prompt_len;
    let mut committed = 0usize;
    for &commit in step_commits {
        let trace = decode_trace(&model, ctx + verify_rows, verify_rows);
        let ops: Vec<_> = trace.iter_all().cloned().collect();
        for op in &ops {
            match op.role {
                OpRole::WeightMatmul => {
                    let shape = op.shape.ok_or(EngineError::MissingShape { op: op.op })?;
                    let choice = table.get_or_solve(&solver, op.op, shape, Dominance::GpuDominant);
                    engine.execute_plan_pub(&choice.plan, shape, Dominance::GpuDominant);
                }
                _ => engine.run_on_pub(Backend::Gpu, &op.kernel),
            }
        }
        ctx += commit;
        committed += commit;
    }
    Ok(SpecDecodeReport {
        steps: step_commits.len(),
        committed_tokens: committed,
        elapsed: engine.soc().clock() - start,
    })
}

/// Speculative decoding on a GPU-only baseline engine, for comparison.
pub fn run_speculative_gpu(
    engine: &mut crate::engines::single::SingleBackendEngine,
    prompt_len: usize,
    verify_rows: usize,
    step_commits: &[usize],
) -> Result<SpecDecodeReport, EngineError> {
    let model = engine.model().clone();
    let start = engine.soc().clock();
    let mut ctx = prompt_len;
    let mut committed = 0usize;
    for &commit in step_commits {
        let trace = decode_trace(&model, ctx + verify_rows, verify_rows);
        let ops: Vec<_> = trace.iter_all().cloned().collect();
        for op in &ops {
            let kernel = match op.role {
                OpRole::WeightMatmul => {
                    gpu_kernel(op.shape.ok_or(EngineError::MissingShape { op: op.op })?)
                }
                _ => op.kernel.clone(),
            };
            engine
                .soc_mut()
                .run_serial(Backend::Gpu, std::slice::from_ref(&kernel));
        }
        ctx += commit;
        committed += commit;
    }
    Ok(SpecDecodeReport {
        steps: step_commits.len(),
        committed_tokens: committed,
        elapsed: engine.soc().clock() - start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::single::GpuTier;
    use crate::engines::SingleBackendEngine;
    use crate::model::ModelConfig;
    use hetero_workloads_testshim::simulate_steps_shim;

    // `hetero-workloads` depends on this crate, so tests generate the
    // commit stream locally with the same i.i.d.-acceptance model.
    mod hetero_workloads_testshim {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        pub fn simulate_steps_shim(
            draft_len: usize,
            acceptance: f64,
            target: usize,
            seed: u64,
        ) -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            let mut total = 0;
            while total < target {
                let mut committed = 1;
                for _ in 0..draft_len {
                    if rng.gen_bool(acceptance) {
                        committed += 1;
                    } else {
                        break;
                    }
                }
                total += committed;
                out.push(committed);
            }
            out
        }
    }

    #[test]
    fn speculation_beats_standard_decoding() {
        let model = ModelConfig::llama_8b();
        let commits = simulate_steps_shim(4, 0.8, 48, 7);

        let mut spec_engine = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let spec = run_speculative_hetero(&mut spec_engine, 256, 5, &commits).unwrap();

        let mut std_engine = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let std_report = std_engine.decode(256, 48);

        let spec_rate = spec.tokens_per_sec();
        let std_rate = std_report.tokens_per_sec();
        assert!(
            spec_rate > std_rate * 1.5,
            "speculative {spec_rate} should beat standard {std_rate}"
        );
    }

    #[test]
    fn speculation_gain_bounded_by_mean_commit() {
        // Weights dominate decode traffic, so the speedup cannot exceed
        // the mean committed tokens per step.
        let model = ModelConfig::llama_3b();
        let commits = simulate_steps_shim(4, 0.7, 64, 3);
        let mean_commit = commits.iter().sum::<usize>() as f64 / commits.len() as f64;

        let mut spec_engine = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let spec = run_speculative_hetero(&mut spec_engine, 128, 5, &commits).unwrap();
        let mut std_engine = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let std_report = std_engine.decode(128, spec.committed_tokens);

        let gain = spec.tokens_per_sec() / std_report.tokens_per_sec();
        assert!(
            gain <= mean_commit * 1.05,
            "gain {gain} vs mean commit {mean_commit}"
        );
        assert!(gain > 1.0);
    }

    #[test]
    fn gpu_baseline_also_benefits_but_stays_behind() {
        let model = ModelConfig::llama_3b();
        let commits = simulate_steps_shim(4, 0.8, 32, 11);

        let mut gpu = SingleBackendEngine::gpu(&model, GpuTier::PplOpenCl);
        let gpu_spec = run_speculative_gpu(&mut gpu, 128, 5, &commits).unwrap();

        let mut hetero = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let hetero_spec = run_speculative_hetero(&mut hetero, 128, 5, &commits).unwrap();

        assert!(
            hetero_spec.tokens_per_sec() > gpu_spec.tokens_per_sec() * 1.05,
            "hetero {} vs gpu {}",
            hetero_spec.tokens_per_sec(),
            gpu_spec.tokens_per_sec()
        );
    }

    #[test]
    fn empty_steps_are_a_noop() {
        let model = ModelConfig::llama_3b();
        let mut e = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        let r = run_speculative_hetero(&mut e, 128, 4, &[]).unwrap();
        assert_eq!(r.committed_tokens, 0);
        assert_eq!(r.elapsed, hetero_soc::SimTime::ZERO);
    }
}
