//! Host–device shared buffer pool (§4.2).
//!
//! Mobile SoCs allow mapping one buffer into host and device address
//! spaces. HeteroLLM reserves a pool of such buffers for operator
//! inputs/outputs; because all decoder layers share shapes, a handful
//! of slots cycle through the whole model, and the mappings are never
//! reclaimed mid-inference — eliminating the per-transfer mapping cost
//! the driver path pays.

use std::collections::BTreeMap;

/// A handle to a pooled buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferHandle {
    id: u64,
    /// Usable size in bytes.
    pub bytes: u64,
}

impl BufferHandle {
    /// Stable pool-unique identifier (used by the concurrency event
    /// log to name buffers across acquire/release cycles).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers served by reusing an existing mapping.
    pub reuses: u64,
    /// Fresh allocations (each would cost a device mapping).
    pub allocations: u64,
    /// Total bytes currently allocated.
    pub allocated_bytes: u64,
    /// High-water mark of live (acquired) bytes.
    pub peak_live_bytes: u64,
}

impl PoolStats {
    /// Fraction of acquisitions served without a new mapping.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.reuses + self.allocations;
        if total == 0 {
            return 0.0;
        }
        self.reuses as f64 / total as f64
    }
}

/// Size-class buffer pool with persistent device mappings.
///
/// # Examples
///
/// ```
/// use heterollm::mempool::MemoryPool;
///
/// let mut pool = MemoryPool::new();
/// let a = pool.acquire(1 << 20);
/// pool.release(a);
/// let b = pool.acquire(1 << 20); // reuses the mapped slot
/// assert_eq!(a, b);
/// assert_eq!(pool.stats().allocations, 1);
/// ```
#[derive(Debug, Default)]
pub struct MemoryPool {
    /// Free slots per size class (exact size → handles).
    free: BTreeMap<u64, Vec<BufferHandle>>,
    next_id: u64,
    live_bytes: u64,
    stats: PoolStats,
}

impl MemoryPool {
    /// New, empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire a buffer of at least `bytes`.
    ///
    /// Sizes are rounded up to the next power of two (minimum 4 KiB) so
    /// the handful of distinct activation shapes in a decoder collapse
    /// into few size classes.
    pub fn acquire(&mut self, bytes: u64) -> BufferHandle {
        let size = bytes.max(4096).next_power_of_two();
        let handle = if let Some(h) = self.free.get_mut(&size).and_then(Vec::pop) {
            self.stats.reuses += 1;
            h
        } else {
            self.stats.allocations += 1;
            self.stats.allocated_bytes += size;
            self.next_id += 1;
            BufferHandle {
                id: self.next_id,
                bytes: size,
            }
        };
        self.live_bytes += size;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.live_bytes);
        debug_assert!(
            self.live_bytes <= self.stats.allocated_bytes,
            "live bytes {} exceed allocated bytes {}",
            self.live_bytes,
            self.stats.allocated_bytes
        );
        handle
    }

    /// Return a buffer to the pool (the device mapping persists).
    pub fn release(&mut self, handle: BufferHandle) {
        debug_assert!(
            self.live_bytes >= handle.bytes,
            "release of {} bytes with only {} live (double release?)",
            handle.bytes,
            self.live_bytes
        );
        self.live_bytes = self.live_bytes.saturating_sub(handle.bytes);
        self.free.entry(handle.bytes).or_default().push(handle);
    }

    /// Bytes currently acquired (live) from the pool.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        debug_assert!(
            self.stats.peak_live_bytes >= self.live_bytes,
            "peak {} below live {}",
            self.stats.peak_live_bytes,
            self.live_bytes
        );
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuse() {
        let mut pool = MemoryPool::new();
        let a = pool.acquire(10_000);
        assert_eq!(a.bytes, 16_384);
        pool.release(a);
        let b = pool.acquire(12_000); // same power-of-two class.
        assert_eq!(b, a, "slot should be reused");
        let s = pool.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.reuse_rate(), 0.5);
    }

    #[test]
    fn layer_loop_needs_few_slots() {
        // Simulate 32 layers × (input, output) pairs of two shapes: the
        // pool should allocate only ~4 buffers total (§4.2: "this
        // memory pool requires only a few buffer slots").
        let mut pool = MemoryPool::new();
        for _layer in 0..32 {
            let x = pool.acquire(2_000_000); // hidden activation
            let y = pool.acquire(7_000_000); // ffn activation
            pool.release(x);
            pool.release(y);
        }
        let s = pool.stats();
        assert!(s.allocations <= 2, "allocations {}", s.allocations);
        assert!(s.reuse_rate() > 0.95);
    }

    #[test]
    fn distinct_sizes_use_distinct_classes() {
        let mut pool = MemoryPool::new();
        let small = pool.acquire(1);
        let big = pool.acquire(1 << 20);
        assert_ne!(small.bytes, big.bytes);
        pool.release(small);
        // Releasing the small one does not satisfy a big request.
        let big2 = pool.acquire(1 << 20);
        assert_ne!(big2, small);
        assert_eq!(pool.stats().allocations, 3);
        let _ = big;
    }

    #[test]
    fn peak_tracking() {
        let mut pool = MemoryPool::new();
        let a = pool.acquire(4096);
        let b = pool.acquire(4096);
        pool.release(a);
        pool.release(b);
        let _c = pool.acquire(4096);
        assert_eq!(pool.stats().peak_live_bytes, 8192);
    }
}
