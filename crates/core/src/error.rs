//! Typed errors for the engine API.
//!
//! Library code must not panic on malformed external inputs: traces
//! are generated, disturbance schedules are user-supplied, and the
//! runtime controller reacts to failures instead of crashing. This
//! module is the single error type those paths propagate.

use hetero_soc::des::CausalityError;
use hetero_tensor::TensorError;

/// An engine-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A trace operator that must carry a Matmul shape did not.
    MissingShape {
        /// The operator's stable name (`"qkv"`, `"ffn_down"`, ...).
        op: &'static str,
    },
    /// A tensor-layer failure (shape mismatch, out-of-bounds access).
    Tensor(TensorError),
    /// A causality violation while scheduling external events (e.g. a
    /// malformed disturbance trace).
    Causality(CausalityError),
    /// A rendezvous kept failing past the controller's retry budget
    /// with no downgrade path left.
    SyncExhausted {
        /// Retry attempts made before giving up.
        attempts: u32,
    },
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::MissingShape { op } => {
                write!(
                    f,
                    "trace operator '{op}' is a weight matmul but carries no shape"
                )
            }
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::Causality(e) => write!(f, "{e}"),
            Self::SyncExhausted { attempts } => {
                write!(f, "rendezvous failed after {attempts} retries")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TensorError> for EngineError {
    fn from(e: TensorError) -> Self {
        Self::Tensor(e)
    }
}

impl From<CausalityError> for EngineError {
    fn from(e: CausalityError) -> Self {
        Self::Causality(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_soc::SimTime;

    #[test]
    fn displays_are_informative() {
        let e = EngineError::MissingShape { op: "qkv" };
        assert!(e.to_string().contains("qkv"));
        let c: EngineError = CausalityError {
            now: SimTime::from_micros(10),
            at: SimTime::from_micros(5),
        }
        .into();
        assert!(c.to_string().contains("past"));
        let s = EngineError::SyncExhausted { attempts: 3 };
        assert!(s.to_string().contains('3'));
    }
}
