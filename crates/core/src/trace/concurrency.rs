//! Typed concurrency event log for cross-backend executions.
//!
//! The fast-synchronization runtime (§4.2) replaces driver events with
//! shared-memory flag polling over pooled buffers. That is exactly the
//! kind of hand-rolled rendezvous where a missing edge silently
//! corrupts activations instead of failing, so every engine records a
//! happens-before-relevant event stream: pooled-buffer
//! acquire/read/write/release, per-backend FIFO submit/complete, and
//! rendezvous signal/wait under either [`SyncMechanism`].
//!
//! The log is *evidence*, not policy: `hetero-analyze`'s vector-clock
//! race detector consumes it to prove (or refute) that all conflicting
//! buffer accesses are ordered by a signal→wait or queue edge.
//!
//! ```
//! use hetero_soc::sync::SyncMechanism;
//! use hetero_soc::{Backend, SimTime};
//! use heterollm::trace::{ConcurrencyOp, ConcurrencyRecorder};
//!
//! let mut rec = ConcurrencyRecorder::new();
//! // A GPU kernel writes a pooled buffer and signals its flag; the
//! // switch makes the NPU wait that flag before touching the buffer.
//! rec.serial_kernel(Backend::Gpu, 4096, SyncMechanism::Fast, SimTime::ZERO);
//! rec.switch(Backend::Npu, SyncMechanism::Fast, SimTime::from_micros(5));
//! let log = rec.finish();
//! assert!(log
//!     .events
//!     .iter()
//!     .any(|e| matches!(e.op, ConcurrencyOp::Signal { .. })));
//! assert!(log
//!     .events
//!     .iter()
//!     .any(|e| matches!(e.op, ConcurrencyOp::Wait { .. })));
//! ```

use hetero_soc::sync::SyncMechanism;
use hetero_soc::{Backend, SimTime};

use crate::mempool::{BufferHandle, MemoryPool};

/// What one concurrency event does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcurrencyOp {
    /// A pooled buffer was acquired (mapped into both address spaces).
    BufferAcquire {
        /// Pool handle id.
        buffer: u64,
        /// Rounded (size-class) byte size of the slot.
        bytes: u64,
    },
    /// The actor read a pooled buffer (kernel input).
    BufferRead {
        /// Pool handle id.
        buffer: u64,
    },
    /// The actor wrote a pooled buffer (kernel output).
    BufferWrite {
        /// Pool handle id.
        buffer: u64,
    },
    /// The buffer returned to the pool (the device mapping persists).
    BufferRelease {
        /// Pool handle id.
        buffer: u64,
    },
    /// A kernel (or prebuilt graph) entered the actor's FIFO queue.
    Submit {
        /// Submission token, unique within one log.
        token: u64,
    },
    /// The submission identified by `token` retired from the queue.
    Complete {
        /// Token of the matching [`ConcurrencyOp::Submit`].
        token: u64,
    },
    /// A completion flag was set: a shared-memory store under
    /// [`SyncMechanism::Fast`], a driver event under
    /// [`SyncMechanism::Driver`].
    Signal {
        /// Synchronization mechanism carrying the flag.
        mechanism: SyncMechanism,
        /// Flag token, unique within one log.
        token: u64,
    },
    /// The actor blocked until the flag identified by `token` was set
    /// (spin-poll under Fast, event wait under Driver).
    Wait {
        /// Synchronization mechanism carrying the flag.
        mechanism: SyncMechanism,
        /// Flag token this wait observes.
        token: u64,
    },
}

/// One entry in a concurrency event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrencyEvent {
    /// Position in the log (total order of *recording*, not of
    /// execution — the happens-before relation is derived from the
    /// `op` payloads, not from `seq`).
    pub seq: u64,
    /// Simulated time the event was recorded at.
    pub at: SimTime,
    /// The backend (actor) performing the event. CPU-side control
    /// events (rendezvous joins, replans) use [`Backend::Cpu`].
    pub actor: Backend,
    /// The event payload.
    pub op: ConcurrencyOp,
}

/// An append-only concurrency event log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConcurrencyLog {
    /// Events in recording order.
    pub events: Vec<ConcurrencyEvent>,
}

impl ConcurrencyLog {
    /// New, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event, assigning the next sequence number.
    pub fn push(&mut self, at: SimTime, actor: Backend, op: ConcurrencyOp) {
        let seq = self.events.len() as u64;
        self.events.push(ConcurrencyEvent { seq, at, actor, op });
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Largest token used by any submit/complete/signal/wait event.
    fn max_token(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.op {
                ConcurrencyOp::Submit { token }
                | ConcurrencyOp::Complete { token }
                | ConcurrencyOp::Signal { token, .. }
                | ConcurrencyOp::Wait { token, .. } => Some(token),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Largest buffer id referenced by any buffer event.
    fn max_buffer(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.op {
                ConcurrencyOp::BufferAcquire { buffer, .. }
                | ConcurrencyOp::BufferRead { buffer }
                | ConcurrencyOp::BufferWrite { buffer }
                | ConcurrencyOp::BufferRelease { buffer } => Some(buffer),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Record a control-plane marker pair: a CPU-side signal
    /// immediately joined by a CPU-side wait, with a token fresh in
    /// this log. The runtime controller emits these around replans,
    /// fallbacks, rendezvous retries and sync downgrades so
    /// degradation-time quiesce points are visible in the log.
    pub fn push_marker(&mut self, mechanism: SyncMechanism, at: SimTime) {
        let token = self.max_token() + 1;
        self.push(at, Backend::Cpu, ConcurrencyOp::Signal { mechanism, token });
        self.push(at, Backend::Cpu, ConcurrencyOp::Wait { mechanism, token });
    }

    /// Append `other`'s events with token and buffer-id spaces shifted
    /// past this log's, then resequence.
    ///
    /// Segments recorded by *different* engine instances (e.g. across a
    /// [`crate::runtime::RuntimeController`] rebuild) use independent
    /// pools and token counters; shifting keeps a buffer or flag in one
    /// segment from aliasing an unrelated one in another — a fresh
    /// engine's buffers genuinely are new allocations.
    pub fn append_shifted(&mut self, other: &ConcurrencyLog) {
        let tok_base = self.max_token() + 1;
        let buf_base = self.max_buffer() + 1;
        for e in &other.events {
            let op = match e.op {
                ConcurrencyOp::BufferAcquire { buffer, bytes } => ConcurrencyOp::BufferAcquire {
                    buffer: buffer + buf_base,
                    bytes,
                },
                ConcurrencyOp::BufferRead { buffer } => ConcurrencyOp::BufferRead {
                    buffer: buffer + buf_base,
                },
                ConcurrencyOp::BufferWrite { buffer } => ConcurrencyOp::BufferWrite {
                    buffer: buffer + buf_base,
                },
                ConcurrencyOp::BufferRelease { buffer } => ConcurrencyOp::BufferRelease {
                    buffer: buffer + buf_base,
                },
                ConcurrencyOp::Submit { token } => ConcurrencyOp::Submit {
                    token: token + tok_base,
                },
                ConcurrencyOp::Complete { token } => ConcurrencyOp::Complete {
                    token: token + tok_base,
                },
                ConcurrencyOp::Signal { mechanism, token } => ConcurrencyOp::Signal {
                    mechanism,
                    token: token + tok_base,
                },
                ConcurrencyOp::Wait { mechanism, token } => ConcurrencyOp::Wait {
                    mechanism,
                    token: token + tok_base,
                },
            };
            self.push(e.at, e.actor, op);
        }
    }
}

/// A live activation buffer: who wrote it last and which completion
/// flag covers that write.
#[derive(Debug, Clone, Copy)]
struct LiveBuffer {
    handle: BufferHandle,
    writer: Backend,
    flag: u64,
}

/// Records the concurrency event stream of one engine instance.
///
/// The recorder owns a real [`MemoryPool`] so handles genuinely recycle
/// through size classes the way the runtime's pool does — recycled-slot
/// hazards in the log are the pool's actual recycling behaviour, not a
/// simulation of it. It mirrors the engine's *actual* synchronization
/// calls: a completion flag is signalled after every kernel retires,
/// but a wait is only recorded where the engine really switches
/// backends or joins a rendezvous. If an engine skipped a sync, the
/// log would carry a genuine race for the detector to find.
#[derive(Debug, Default)]
pub struct ConcurrencyRecorder {
    log: ConcurrencyLog,
    pool: MemoryPool,
    next_token: u64,
    /// Live activation outputs of the most recent step.
    current: Vec<LiveBuffer>,
    /// Rendezvous-continuation flag the next submission must wait on.
    handoff: Option<u64>,
}

impl ConcurrencyRecorder {
    /// New recorder with an empty log and a fresh pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Record a serial kernel on `backend`: wait any pending rendezvous
    /// continuation, acquire the output slot, submit, read the live
    /// inputs, write the output, retire, release the inputs, and signal
    /// the completion flag.
    pub fn serial_kernel(
        &mut self,
        backend: Backend,
        out_bytes: u64,
        mechanism: SyncMechanism,
        at: SimTime,
    ) {
        if let Some(tok) = self.handoff.take() {
            self.log.push(
                at,
                backend,
                ConcurrencyOp::Wait {
                    mechanism,
                    token: tok,
                },
            );
        }
        let out = self.pool.acquire(out_bytes.max(1));
        self.log.push(
            at,
            backend,
            ConcurrencyOp::BufferAcquire {
                buffer: out.id(),
                bytes: out.bytes,
            },
        );
        let tok = self.token();
        self.log
            .push(at, backend, ConcurrencyOp::Submit { token: tok });
        for b in &self.current {
            self.log.push(
                at,
                backend,
                ConcurrencyOp::BufferRead {
                    buffer: b.handle.id(),
                },
            );
        }
        self.log
            .push(at, backend, ConcurrencyOp::BufferWrite { buffer: out.id() });
        self.log
            .push(at, backend, ConcurrencyOp::Complete { token: tok });
        for b in std::mem::take(&mut self.current) {
            self.log.push(
                at,
                backend,
                ConcurrencyOp::BufferRelease {
                    buffer: b.handle.id(),
                },
            );
            self.pool.release(b.handle);
        }
        let flag = self.token();
        self.log.push(
            at,
            backend,
            ConcurrencyOp::Signal {
                mechanism,
                token: flag,
            },
        );
        self.current = vec![LiveBuffer {
            handle: out,
            writer: backend,
            flag,
        }];
    }

    /// Record a backend switch: the destination backend waits on the
    /// completion flags of every live buffer another backend wrote.
    pub fn switch(&mut self, to: Backend, mechanism: SyncMechanism, at: SimTime) {
        for b in &self.current {
            if b.writer != to {
                self.log.push(
                    at,
                    to,
                    ConcurrencyOp::Wait {
                        mechanism,
                        token: b.flag,
                    },
                );
            }
        }
    }

    /// Record a parallel GPU+NPU section ending in a rendezvous: each
    /// side waits the flags of cross-backend inputs (and any pending
    /// continuation), runs its partial kernel, and signals; the CPU
    /// control plane joins both flags, releases the inputs, and signals
    /// the continuation flag the next step waits on.
    pub fn parallel_section(
        &mut self,
        gpu_bytes: u64,
        npu_bytes: u64,
        mechanism: SyncMechanism,
        at: SimTime,
    ) {
        let handoff = self.handoff.take();
        let inputs = std::mem::take(&mut self.current);
        let mut outputs = Vec::with_capacity(2);
        for (backend, bytes) in [(Backend::Gpu, gpu_bytes), (Backend::Npu, npu_bytes)] {
            if let Some(tok) = handoff {
                self.log.push(
                    at,
                    backend,
                    ConcurrencyOp::Wait {
                        mechanism,
                        token: tok,
                    },
                );
            }
            for b in &inputs {
                if b.writer != backend {
                    self.log.push(
                        at,
                        backend,
                        ConcurrencyOp::Wait {
                            mechanism,
                            token: b.flag,
                        },
                    );
                }
            }
            let out = self.pool.acquire(bytes.max(1));
            self.log.push(
                at,
                backend,
                ConcurrencyOp::BufferAcquire {
                    buffer: out.id(),
                    bytes: out.bytes,
                },
            );
            let tok = self.token();
            self.log
                .push(at, backend, ConcurrencyOp::Submit { token: tok });
            for b in &inputs {
                self.log.push(
                    at,
                    backend,
                    ConcurrencyOp::BufferRead {
                        buffer: b.handle.id(),
                    },
                );
            }
            self.log
                .push(at, backend, ConcurrencyOp::BufferWrite { buffer: out.id() });
            self.log
                .push(at, backend, ConcurrencyOp::Complete { token: tok });
            let flag = self.token();
            self.log.push(
                at,
                backend,
                ConcurrencyOp::Signal {
                    mechanism,
                    token: flag,
                },
            );
            outputs.push(LiveBuffer {
                handle: out,
                writer: backend,
                flag,
            });
        }
        // Rendezvous: the CPU control plane joins both partials.
        for o in &outputs {
            self.log.push(
                at,
                Backend::Cpu,
                ConcurrencyOp::Wait {
                    mechanism,
                    token: o.flag,
                },
            );
        }
        for b in inputs {
            self.log.push(
                at,
                Backend::Cpu,
                ConcurrencyOp::BufferRelease {
                    buffer: b.handle.id(),
                },
            );
            self.pool.release(b.handle);
        }
        let cont = self.token();
        self.log.push(
            at,
            Backend::Cpu,
            ConcurrencyOp::Signal {
                mechanism,
                token: cont,
            },
        );
        self.current = outputs;
        self.handoff = Some(cont);
    }

    /// Finish recording: release any still-live buffers (each by its
    /// writing actor) and return the log.
    pub fn finish(mut self) -> ConcurrencyLog {
        for b in std::mem::take(&mut self.current) {
            self.log.push(
                SimTime::ZERO,
                b.writer,
                ConcurrencyOp::BufferRelease {
                    buffer: b.handle.id(),
                },
            );
            self.pool.release(b.handle);
        }
        self.log
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_records_expected_shape() {
        let mut r = ConcurrencyRecorder::new();
        r.serial_kernel(Backend::Gpu, 4096, SyncMechanism::Fast, SimTime::ZERO);
        r.serial_kernel(Backend::Gpu, 4096, SyncMechanism::Fast, SimTime::ZERO);
        let log = r.finish();
        // Acquire/submit/write/complete/signal + read/release on the 2nd.
        let acquires = log
            .events
            .iter()
            .filter(|e| matches!(e.op, ConcurrencyOp::BufferAcquire { .. }))
            .count();
        let releases = log
            .events
            .iter()
            .filter(|e| matches!(e.op, ConcurrencyOp::BufferRelease { .. }))
            .count();
        assert_eq!(acquires, 2);
        assert_eq!(releases, 2);
    }

    #[test]
    fn parallel_section_ends_with_cpu_rendezvous() {
        let mut r = ConcurrencyRecorder::new();
        r.serial_kernel(Backend::Gpu, 4096, SyncMechanism::Fast, SimTime::ZERO);
        r.parallel_section(4096, 4096, SyncMechanism::Fast, SimTime::ZERO);
        let log = r.finish();
        let cpu_waits = log
            .events
            .iter()
            .filter(|e| e.actor == Backend::Cpu && matches!(e.op, ConcurrencyOp::Wait { .. }))
            .count();
        assert_eq!(cpu_waits, 2, "rendezvous joins both partial flags");
    }

    #[test]
    fn append_shifted_keeps_token_spaces_disjoint() {
        let mut a = ConcurrencyRecorder::new();
        a.serial_kernel(Backend::Gpu, 4096, SyncMechanism::Fast, SimTime::ZERO);
        let mut log = a.finish();
        let mut b = ConcurrencyRecorder::new();
        b.serial_kernel(Backend::Npu, 4096, SyncMechanism::Driver, SimTime::ZERO);
        let second = b.finish();
        let before = log.len();
        log.append_shifted(&second);
        assert_eq!(log.len(), before + second.len());
        // Buffer ids must not collide across segments.
        let first_bufs: Vec<u64> = log.events[..before]
            .iter()
            .filter_map(|e| match e.op {
                ConcurrencyOp::BufferAcquire { buffer, .. } => Some(buffer),
                _ => None,
            })
            .collect();
        let second_bufs: Vec<u64> = log.events[before..]
            .iter()
            .filter_map(|e| match e.op {
                ConcurrencyOp::BufferAcquire { buffer, .. } => Some(buffer),
                _ => None,
            })
            .collect();
        for b in &second_bufs {
            assert!(!first_bufs.contains(b), "buffer {b} aliased");
        }
        // Sequence numbers stay dense.
        for (i, e) in log.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }
}
