//! Operator traces: the exact kernel sequence of a prefill or decode
//! step for a model configuration.
//!
//! Traces drive timing mode — engines schedule each [`TraceOp`] onto
//! backends under their policy — and mirror the execution flow of the
//! paper's Fig. 7: weight Matmuls are the partitionable "blue" blocks;
//! RMSNorm/SwiGLU/RoPE/softmax/attention are the GPU-side "orange"
//! blocks (attention operates on dynamic KV lengths, which static NPU
//! graphs cannot express).
//!
//! ```
//! use heterollm::trace::{prefill_trace, OpRole};
//! use heterollm::ModelConfig;
//!
//! let trace = prefill_trace(&ModelConfig::internlm_1_8b(), 256);
//! // Four partitionable weight Matmuls per decoder layer: qkv,
//! // attn_out, gate_up, ffn_down.
//! let per_layer = trace
//!     .layer
//!     .iter()
//!     .filter(|op| op.role == OpRole::WeightMatmul)
//!     .count();
//! assert_eq!(per_layer, 4);
//! // The full step repeats the layer once per decoder layer.
//! assert_eq!(
//!     trace.iter_all().count(),
//!     trace.prologue.len() + trace.layer.len() * trace.layers + trace.epilogue.len()
//! );
//! assert!(trace.total_flops() > 0 && trace.total_bytes() > 0);
//! ```

pub mod concurrency;

pub use concurrency::{ConcurrencyEvent, ConcurrencyLog, ConcurrencyOp, ConcurrencyRecorder};

use crate::model::ModelConfig;
use hetero_soc::kernel::KernelLabel;
use hetero_soc::KernelDesc;
use hetero_tensor::shape::MatmulShape;

/// How an engine may route one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpRole {
    /// A static-shape weight Matmul — partitionable across backends.
    WeightMatmul,
    /// Attention over the KV cache (dynamic shape; GPU/CPU only).
    Attention,
    /// Auxiliary memory-bound kernel (norms, activations, RoPE, ...).
    Aux,
}

/// One operator instance in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOp {
    /// Stable operator name (`"qkv"`, `"ffn_down"`, `"attention"`, ...).
    pub op: &'static str,
    /// Routing class.
    pub role: OpRole,
    /// Logical Matmul shape for weight Matmuls (`None` otherwise).
    pub shape: Option<MatmulShape>,
    /// The kernel in its *logical* (unpermuted, GPU-oriented) form.
    pub kernel: KernelDesc,
}

/// The kernel sequence of one phase step.
///
/// All decoder layers share the same shapes, so the trace stores one
/// layer's ops plus the repeat count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTrace {
    /// Pre-layer ops (embedding gather).
    pub prologue: Vec<TraceOp>,
    /// One decoder layer's ops, in execution order.
    pub layer: Vec<TraceOp>,
    /// Number of layer repetitions.
    pub layers: usize,
    /// Post-layer ops (final norm, LM head).
    pub epilogue: Vec<TraceOp>,
}

impl PhaseTrace {
    /// Iterate every op of the full trace in execution order.
    pub fn iter_all(&self) -> impl Iterator<Item = &TraceOp> {
        self.prologue
            .iter()
            .chain(
                std::iter::repeat_with(|| self.layer.iter())
                    .take(self.layers)
                    .flatten(),
            )
            .chain(self.epilogue.iter())
    }

    /// Total FLOPs of the step.
    pub fn total_flops(&self) -> u64 {
        self.iter_all().map(|op| op.kernel.flops()).sum()
    }

    /// Total DRAM traffic of the step, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.iter_all().map(|op| op.kernel.bytes()).sum()
    }
}

fn weight_matmul(op: &'static str, m: usize, k: usize, n: usize) -> TraceOp {
    let shape = MatmulShape::new(m, k, n);
    TraceOp {
        op,
        role: OpRole::WeightMatmul,
        shape: Some(shape),
        kernel: KernelDesc::matmul_w4a16(shape),
    }
}

fn aux(op: &'static str, label: KernelLabel, read: u64, write: u64, flops: u64) -> TraceOp {
    TraceOp {
        op,
        role: OpRole::Aux,
        shape: None,
        kernel: KernelDesc::mem_bound(label, read, write, flops),
    }
}

/// Attention (scores + softmax·V) for `m` query rows over `ctx` cached
/// positions: flops of both batched matmuls, traffic of K+V plus the
/// query/output activations.
fn attention(cfg: &ModelConfig, m: usize, ctx: usize) -> TraceOp {
    let (h, hd, heads) = (cfg.hidden as u64, cfg.head_dim() as u64, cfg.heads as u64);
    let flops = 2 * 2 * m as u64 * heads * hd * ctx as u64;
    // One layer's K+V traffic, from the same formula the KV ablation
    // uses so the two can never drift apart.
    let kv_bytes = crate::kv::KvCache::decode_read_bytes(1, cfg.kv_dim(), ctx, cfg.kv_dtype);
    let act_bytes = m as u64 * h * 2;
    TraceOp {
        op: "attention",
        role: OpRole::Attention,
        shape: None,
        kernel: KernelDesc::mem_bound(
            KernelLabel::Attention,
            kv_bytes + act_bytes,
            act_bytes,
            flops,
        ),
    }
}

/// Build the one-layer op sequence for `m` new rows attending over
/// `ctx` total positions.
fn layer_ops(cfg: &ModelConfig, m: usize, ctx: usize) -> Vec<TraceOp> {
    let (h, kv, ffn) = (cfg.hidden, cfg.kv_dim(), cfg.ffn);
    let (mu, hu, kvu, ffnu) = (m as u64, h as u64, kv as u64, ffn as u64);
    let row = mu * hu * 2; // one activation pass, f16
    vec![
        aux(
            "attn_norm",
            KernelLabel::RmsNorm,
            row + hu * 2,
            row,
            4 * mu * hu,
        ),
        weight_matmul("qkv", m, h, h + 2 * kv),
        aux(
            "rope",
            KernelLabel::Rope,
            mu * (hu + kvu) * 2,
            mu * (hu + kvu) * 2,
            6 * mu * (hu + kvu),
        ),
        aux(
            "kv_append",
            KernelLabel::KvAppend,
            mu * 2 * kvu * 2,
            mu * 2 * kvu * 2,
            0,
        ),
        attention(cfg, m, ctx),
        aux(
            "softmax",
            KernelLabel::Softmax,
            mu * cfg.heads as u64 * ctx as u64 * 2,
            mu * cfg.heads as u64 * ctx as u64 * 2,
            5 * mu * cfg.heads as u64 * ctx as u64,
        ),
        weight_matmul("attn_out", m, h, h),
        aux("residual1", KernelLabel::ResidualAdd, 2 * row, row, mu * hu),
        aux(
            "ffn_norm",
            KernelLabel::RmsNorm,
            row + hu * 2,
            row,
            4 * mu * hu,
        ),
        weight_matmul("gate_up", m, h, 2 * ffn),
        aux(
            "swiglu",
            KernelLabel::Swiglu,
            2 * mu * ffnu * 2,
            mu * ffnu * 2,
            8 * mu * ffnu,
        ),
        weight_matmul("ffn_down", m, ffn, h),
        aux("residual2", KernelLabel::ResidualAdd, 2 * row, row, mu * hu),
    ]
}

/// The prefill trace for a prompt of `m` tokens.
///
/// The LM head runs only for the final position (standard prefill
/// optimization; the paper's prefill throughput counts prompt tokens).
pub fn prefill_trace(cfg: &ModelConfig, m: usize) -> PhaseTrace {
    let hu = cfg.hidden as u64;
    PhaseTrace {
        prologue: vec![aux(
            "embed",
            KernelLabel::Embed,
            m as u64 * hu * 4,
            m as u64 * hu * 2,
            0,
        )],
        layer: layer_ops(cfg, m, m),
        layers: cfg.layers,
        epilogue: vec![
            aux("final_norm", KernelLabel::RmsNorm, hu * 4, hu * 2, 4 * hu),
            weight_matmul("lm_head", 1, cfg.hidden, cfg.vocab),
        ],
    }
}

/// The trace of one decode step producing the token at position
/// `ctx - 1` (attending over `ctx` positions; `m = tokens_per_step` is
/// 1 for standard decoding, `n` for speculative decoding §4.1.2).
pub fn decode_trace(cfg: &ModelConfig, ctx: usize, tokens_per_step: usize) -> PhaseTrace {
    let m = tokens_per_step;
    let hu = cfg.hidden as u64;
    PhaseTrace {
        prologue: vec![aux(
            "embed",
            KernelLabel::Embed,
            m as u64 * hu * 4,
            m as u64 * hu * 2,
            0,
        )],
        layer: layer_ops(cfg, m, ctx),
        layers: cfg.layers,
        epilogue: vec![
            aux(
                "final_norm",
                KernelLabel::RmsNorm,
                m as u64 * hu * 2,
                m as u64 * hu * 2,
                4 * hu,
            ),
            weight_matmul("lm_head", m, cfg.hidden, cfg.vocab),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_flops_track_model_size() {
        // Prefill FLOPs ≈ 2 · params · tokens (within ~20%: attention
        // and norms add, LM-head-once subtracts).
        let cfg = ModelConfig::llama_8b();
        let m = 256;
        let t = prefill_trace(&cfg, m);
        let expected = 2.0 * cfg.param_count() as f64 * m as f64;
        let actual = t.total_flops() as f64;
        let ratio = actual / expected;
        assert!((0.75..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn decode_traffic_dominated_by_weights() {
        // One decode step must stream ≈ the whole W4 model.
        let cfg = ModelConfig::llama_8b();
        let t = decode_trace(&cfg, 256, 1);
        let bytes = t.total_bytes() as f64;
        let weights = cfg.weight_bytes_w4() as f64;
        // Weight traffic ≈ int4 matrices (trace charges int4 + f16 act).
        assert!(
            (0.8..1.3).contains(&(bytes / weights)),
            "{}",
            bytes / weights
        );
    }

    #[test]
    fn weight_matmuls_have_shapes() {
        let cfg = ModelConfig::llama_8b();
        let t = prefill_trace(&cfg, 64);
        for op in t.iter_all() {
            match op.role {
                OpRole::WeightMatmul => assert!(op.shape.is_some(), "{}", op.op),
                _ => assert!(op.shape.is_none(), "{}", op.op),
            }
        }
        // The four per-layer weight matmuls of §5.2.2 plus the LM head.
        let names: Vec<_> = t
            .layer
            .iter()
            .filter(|o| o.role == OpRole::WeightMatmul)
            .map(|o| o.op)
            .collect();
        assert_eq!(names, vec!["qkv", "attn_out", "gate_up", "ffn_down"]);
    }

    #[test]
    fn decode_attention_grows_with_context() {
        let cfg = ModelConfig::llama_8b();
        let short = decode_trace(&cfg, 64, 1);
        let long = decode_trace(&cfg, 1024, 1);
        let attn = |t: &PhaseTrace| {
            t.layer
                .iter()
                .find(|o| o.op == "attention")
                .map(|o| o.kernel.bytes())
                .unwrap()
        };
        assert!(attn(&long) > attn(&short) * 8);
    }

    #[test]
    fn speculative_decode_scales_rows() {
        let cfg = ModelConfig::llama_3b();
        let one = decode_trace(&cfg, 256, 1);
        let spec = decode_trace(&cfg, 256, 4);
        let mm = |t: &PhaseTrace| {
            t.layer
                .iter()
                .filter(|o| o.role == OpRole::WeightMatmul)
                .count()
        };
        assert_eq!(mm(&one), mm(&spec));
        assert!(spec.total_flops() > one.total_flops() * 3);
        // Weight traffic stays ~constant: the point of speculation.
        let ratio = spec.total_bytes() as f64 / one.total_bytes() as f64;
        assert!(ratio < 1.3, "weight reuse broken: {ratio}");
    }

    #[test]
    fn iter_all_repeats_layers() {
        let cfg = ModelConfig::tiny();
        let t = prefill_trace(&cfg, 8);
        let count = t.iter_all().count();
        assert_eq!(
            count,
            t.prologue.len() + cfg.layers * t.layer.len() + t.epilogue.len()
        );
    }
}
