//! High-level session API.

use hetero_soc::sync::SyncMechanism;

use crate::engines::{Engine, EngineKind};
use crate::error::EngineError;
use crate::model::ModelConfig;
use crate::obs::{MetricsRegistry, SpanKind, Timeline, Track};
use crate::report::SessionReport;

/// A full inference session: engine + model, driven through prefill
/// and decode, producing a [`SessionReport`].
///
/// # Examples
///
/// ```
/// use heterollm::{EngineKind, InferenceSession, ModelConfig};
///
/// let mut session = InferenceSession::new(
///     EngineKind::HeteroTensor,
///     &ModelConfig::internlm_1_8b(),
/// );
/// let report = session.run(256, 32);
/// assert!(report.prefill.tokens_per_sec() > 100.0);
/// ```
pub struct InferenceSession {
    engine: Box<dyn Engine>,
}

impl InferenceSession {
    /// New session with fast synchronization (HeteroLLM default).
    pub fn new(kind: EngineKind, model: &ModelConfig) -> Self {
        Self::with_sync(kind, model, SyncMechanism::Fast)
    }

    /// New session with an explicit sync mechanism.
    pub fn with_sync(kind: EngineKind, model: &ModelConfig, sync: SyncMechanism) -> Self {
        Self {
            engine: kind.build(model, sync),
        }
    }

    /// Wrap an already-built engine (e.g. one constructed with a
    /// projected [`hetero_soc::SocConfig`] for another Table-1 SoC).
    ///
    /// This is the router-facing entry point: fleet devices build
    /// their engines per device profile and drive them through the
    /// fallible session API so engine faults surface as values.
    pub fn from_engine(engine: Box<dyn Engine>) -> Self {
        Self { engine }
    }

    /// Access the underlying engine.
    pub fn engine(&self) -> &dyn Engine {
        self.engine.as_ref()
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut dyn Engine {
        self.engine.as_mut()
    }

    /// Run prefill over `prompt_len` tokens, then `decode_tokens`
    /// decode steps; finalize power accounting. Engine faults
    /// (malformed traces, causality violations, exhausted sync
    /// retries) come back as typed [`EngineError`]s so callers like
    /// the fleet router can count them as device faults instead of
    /// aborting a sweep.
    pub fn try_run(
        &mut self,
        prompt_len: usize,
        decode_tokens: usize,
    ) -> Result<SessionReport, EngineError> {
        let prefill = self.engine.try_prefill(prompt_len)?;
        let decode = self.engine.try_decode(prompt_len, decode_tokens)?;
        let power = self.engine.finish();
        Ok(SessionReport {
            engine: self.engine.name(),
            model: self.engine.model().name.clone(),
            prefill,
            decode,
            power,
            degradation: None,
            integrity: None,
            metrics: None,
        })
    }

    /// Infallible [`InferenceSession::try_run`] for experiment
    /// harnesses running well-formed built-in traces.
    ///
    /// # Panics
    ///
    /// Panics if the engine fails; callers that must survive faults
    /// use [`InferenceSession::try_run`].
    pub fn run(&mut self, prompt_len: usize, decode_tokens: usize) -> SessionReport {
        match self.try_run(prompt_len, decode_tokens) {
            Ok(r) => r,
            Err(e) => panic!("session run failed: {e}"),
        }
    }

    /// Run the session with the observability layer armed: records a
    /// span [`Timeline`] against the SoC's simulated clock (kernel
    /// submit/complete, sync waits, graph compiles, prefill/decode
    /// phase spans) and attaches an all-integer
    /// [`crate::obs::MetricsSnapshot`] to the report.
    ///
    /// Plain [`InferenceSession::run`] leaves `report.metrics` as
    /// `None`, so existing golden reports are unaffected by this
    /// opt-in path.
    pub fn run_observed(
        &mut self,
        prompt_len: usize,
        decode_tokens: usize,
    ) -> (SessionReport, Timeline) {
        match self.try_run_observed(prompt_len, decode_tokens) {
            Ok(r) => r,
            Err(e) => panic!("observed session run failed: {e}"),
        }
    }

    /// Fallible [`InferenceSession::run_observed`]: engine faults are
    /// returned instead of panicking, with the partial timeline
    /// dropped.
    pub fn try_run_observed(
        &mut self,
        prompt_len: usize,
        decode_tokens: usize,
    ) -> Result<(SessionReport, Timeline), EngineError> {
        self.engine.enable_timeline();
        let phase_start = self.engine.soc().clock();
        let prefill = self.engine.try_prefill(prompt_len)?;
        let prefill_end = self.engine.soc().clock();
        let decode = self.engine.try_decode(prompt_len, decode_tokens)?;
        let decode_end = self.engine.soc().clock();
        let power = self.engine.finish();

        let mut tl = self.engine.take_timeline().unwrap_or_default();
        tl.push_span(
            Track::Cpu,
            SpanKind::Phase,
            "prefill",
            phase_start,
            prefill_end,
        );
        tl.push_span(
            Track::Cpu,
            SpanKind::Phase,
            "decode",
            prefill_end,
            decode_end,
        );
        let metrics = MetricsRegistry::from_timeline(&tl).snapshot();

        let report = SessionReport {
            engine: self.engine.name(),
            model: self.engine.model().name.clone(),
            prefill,
            decode,
            power,
            degradation: None,
            integrity: None,
            metrics: Some(metrics),
        };
        Ok((report, tl))
    }
}

/// One turn of a chat conversation.
#[derive(Debug, Clone, Copy)]
pub struct ChatTurn {
    /// New prompt tokens appended this turn (user message + template).
    pub prompt_tokens: usize,
    /// Tokens generated in response.
    pub response_tokens: usize,
}

/// Per-turn latency metrics of a conversation.
#[derive(Debug, Clone)]
pub struct ConversationReport {
    /// TTFT and TPOT per turn, with the context length at turn start.
    pub turns: Vec<TurnReport>,
    /// End-to-end simulated duration.
    pub total: hetero_soc::SimTime,
    /// Average power over the whole conversation.
    pub power: hetero_soc::power::PowerReport,
}

/// Metrics of one conversation turn.
#[derive(Debug, Clone, Copy)]
pub struct TurnReport {
    /// Context length when the turn started.
    pub context_at_start: usize,
    /// Time to first token of this turn.
    pub ttft: hetero_soc::SimTime,
    /// Mean time per generated token.
    pub tpot: hetero_soc::SimTime,
}

impl InferenceSession {
    /// Run a multi-turn conversation: each turn prefills the new prompt
    /// tokens (the KV prefix persists) and decodes a response.
    ///
    /// Attention cost during a turn's prefill is approximated with the
    /// turn's own length; decode attends over the full accumulated
    /// context.
    pub fn run_conversation(&mut self, turns: &[ChatTurn]) -> ConversationReport {
        match self.try_run_conversation(turns) {
            Ok(r) => r,
            Err(e) => panic!("conversation run failed: {e}"),
        }
    }

    /// Fallible [`InferenceSession::run_conversation`]: the first
    /// engine fault aborts the conversation and is returned as a
    /// value.
    pub fn try_run_conversation(
        &mut self,
        turns: &[ChatTurn],
    ) -> Result<ConversationReport, EngineError> {
        let mut ctx = 0usize;
        let mut reports = Vec::with_capacity(turns.len());
        for turn in turns {
            let prefill = self.engine.try_prefill(turn.prompt_tokens)?;
            ctx += turn.prompt_tokens;
            let decode = self.engine.try_decode(ctx, turn.response_tokens)?;
            reports.push(TurnReport {
                context_at_start: ctx - turn.prompt_tokens,
                ttft: prefill.elapsed,
                tpot: decode.per_token(),
            });
            ctx += turn.response_tokens;
        }
        let total = self.engine.soc().clock();
        let power = self.engine.finish();
        Ok(ConversationReport {
            turns: reports,
            total,
            power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_produces_full_report() {
        let mut s = InferenceSession::new(EngineKind::HeteroTensor, &ModelConfig::llama_3b());
        let r = s.run(64, 8);
        assert_eq!(r.engine, "Hetero-tensor");
        assert_eq!(r.model, "Llama-3B");
        assert_eq!(r.prefill.tokens, 64);
        assert_eq!(r.decode.tokens, 8);
        assert!(r.ttft() > hetero_soc::SimTime::ZERO);
        assert!(r.tpot() > hetero_soc::SimTime::ZERO);
        assert!(r.power.energy_j > 0.0);
    }

    #[test]
    fn conversation_accumulates_context() {
        let mut s = InferenceSession::new(EngineKind::HeteroTensor, &ModelConfig::llama_3b());
        let turns = [
            ChatTurn {
                prompt_tokens: 64,
                response_tokens: 8,
            },
            ChatTurn {
                prompt_tokens: 32,
                response_tokens: 8,
            },
            ChatTurn {
                prompt_tokens: 32,
                response_tokens: 8,
            },
        ];
        let r = s.run_conversation(&turns);
        assert_eq!(r.turns.len(), 3);
        assert_eq!(r.turns[0].context_at_start, 0);
        assert_eq!(r.turns[1].context_at_start, 72);
        assert_eq!(r.turns[2].context_at_start, 112);
        // Later turns decode over longer context: TPOT non-decreasing.
        assert!(r.turns[2].tpot >= r.turns[0].tpot);
        assert!(r.total > hetero_soc::SimTime::ZERO);
        assert!(r.power.avg_power_w > 0.0);
    }

    #[test]
    fn try_run_matches_run_on_well_formed_traces() {
        let model = ModelConfig::llama_3b();
        let mut a = InferenceSession::new(EngineKind::HeteroTensor, &model);
        let mut b = InferenceSession::new(EngineKind::HeteroTensor, &model);
        let ra = a.run(64, 8);
        let rb = b.try_run(64, 8).expect("well-formed trace");
        assert_eq!(ra.prefill.elapsed, rb.prefill.elapsed);
        assert_eq!(ra.decode.elapsed, rb.decode.elapsed);
    }

    #[test]
    fn from_engine_runs_a_prebuilt_engine() {
        let model = ModelConfig::llama_3b();
        let cfg = crate::engines::hetero_soc_config(SyncMechanism::Fast);
        let engine = crate::engines::HeteroTensorEngine::with_soc_config(&model, cfg);
        let mut s = InferenceSession::from_engine(Box::new(engine));
        let r = s.try_run(64, 8).expect("well-formed trace");
        assert_eq!(r.prefill.tokens, 64);
        assert_eq!(r.engine, "Hetero-tensor");
    }

    #[test]
    fn ttft_scales_with_prompt() {
        let mut short = InferenceSession::new(EngineKind::PplOpenCl, &ModelConfig::llama_3b());
        let mut long = InferenceSession::new(EngineKind::PplOpenCl, &ModelConfig::llama_3b());
        let a = short.run(64, 1);
        let b = long.run(512, 1);
        assert!(b.ttft() > a.ttft());
    }
}
