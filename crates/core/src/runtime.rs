//! Adaptive runtime degradation controller.
//!
//! The paper characterizes the SoC under *dynamic* conditions — FIFO
//! GPU queue contention from rendering (Fig. 18), thermal throttling
//! under sustained load (§4) — but the engines themselves plan once,
//! at calibration time. This module closes the loop: a
//! [`RuntimeController`] serves a stream of inference requests while a
//! seeded [`DisturbanceTrace`](hetero_soc::disturb::DisturbanceTrace)
//! perturbs the SoC, watches per-phase SLO deadlines, and reacts:
//!
//! - **Replan**: re-solve the tensor partition against the
//!   disturbance-adjusted profile
//!   ([`SocCondition::apply_to`](hetero_soc::disturb::SocCondition)),
//!   so row/hybrid cut ratios track the SoC as it is now.
//! - **Backend fallback**: under severe one-sided degradation (NPU
//!   claimed by another subsystem, GPU saturated by rendering), drop
//!   from tensor-hybrid execution to the healthy backend alone.
//! - **Sync downgrade**: when fast-sync rendezvous turn flaky, retry
//!   with bounded exponential backoff; past the retry budget, route
//!   the affected rendezvous through the reliable (slower) driver
//!   path; restore fast sync once the window passes.
//! - **Load shedding**: refuse requests whose queueing delay already
//!   exceeds the TTFT budget, so a backlog cannot push every
//!   subsequent request over its SLO.
//!
//! A *static* controller (`adaptive = false`) runs the same engine
//! under the same disturbances with none of the reactions — the
//! baseline every `fault_sweep` comparison is made against.

use hetero_graph::{CompileModel, GraphCache};
use hetero_soc::calib::STANDARD_GRAPH_SIZES;
use hetero_soc::disturb::{DisturbanceTrace, SdcFault, SdcTrace, SocCondition, Timeline};
use hetero_soc::kernel::KernelLabel;
use hetero_soc::power::PowerReport;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::{Backend, KernelDesc, SimTime, Soc, SocConfig};
use hetero_solver::PartitionPlan;
use hetero_tensor::rng::splitmix64;
use hetero_tensor::shape::MatmulShape;
use serde::{Deserialize, Serialize};

use crate::engines::hetero_tensor::HeteroTensorEngine;
use crate::engines::{hetero_soc_config, Engine, EngineKind};
use crate::error::EngineError;
use crate::integrity::{IntegrityCounters, IntegrityMode};
use crate::model::ModelConfig;
use crate::obs::{MetricsRegistry, SpanKind, Timeline as SpanTimeline, Track};
use crate::report::{DegradationSummary, SessionReport};
use crate::trace::ConcurrencyLog;

/// Longest prompt the traffic generator emits; SLO calibration probes
/// at this length so every quiet request has headroom.
pub const MAX_PROMPT: usize = 512;

/// One inference request in an arrival stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// When the request arrives at the engine.
    pub arrival: SimTime,
    /// Prompt tokens to prefill.
    pub prompt_tokens: usize,
    /// Tokens to decode.
    pub response_tokens: usize,
}

/// A seeded stream of conversation-style requests: arrival gaps are
/// 25–175% of `mean_gap`, prompts 64..[`MAX_PROMPT`] tokens, responses
/// 8..64 tokens. Same seed, same stream.
pub fn conversation_traffic(seed: u64, count: usize, mean_gap: SimTime) -> Vec<InferenceRequest> {
    let mut arrival = SimTime::ZERO;
    (0..count as u64)
        .map(|i| {
            let pct = 25 + draw(seed, 3 * i) % 150;
            arrival += SimTime::from_nanos(mean_gap.as_nanos() * pct / 100);
            InferenceRequest {
                arrival,
                prompt_tokens: 64 + (draw(seed, 3 * i + 1) % (MAX_PROMPT as u64 - 64)) as usize,
                response_tokens: 8 + (draw(seed, 3 * i + 2) % 56) as usize,
            }
        })
        .collect()
}

/// The `i`-th draw of a splitmix64 stream over `seed` (the same
/// decorrelation scheme `hetero_soc::disturb` uses).
fn draw(seed: u64, i: u64) -> u64 {
    splitmix64(seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Service-level objectives the watchdog enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Time-to-first-token budget (queueing included).
    pub ttft: SimTime,
    /// Time-per-output-token budget.
    pub tpot: SimTime,
    /// Consecutive SLO violations before the watchdog forces a backend
    /// fallback even without a severe condition reading.
    pub streak: usize,
    /// Queueing delay beyond which a request is shed: once the wait
    /// alone exceeds this, the TTFT SLO is unmeetable.
    pub shed_wait: SimTime,
}

impl SloPolicy {
    /// Calibrate SLOs from a quiet run of the tensor-hybrid engine at
    /// the worst-case prompt length: TTFT budget is 3x the quiet TTFT
    /// (headroom for queueing and mild disturbances), TPOT budget 2x
    /// the quiet TPOT.
    pub fn calibrated(model: &ModelConfig) -> Self {
        let mut probe = HeteroTensorEngine::new(model, SyncMechanism::Fast);
        let prefill = probe.prefill(MAX_PROMPT);
        let decode = probe.decode(MAX_PROMPT, 16);
        let ttft = SimTime::from_nanos(prefill.elapsed.as_nanos() * 3);
        Self {
            ttft,
            tpot: SimTime::from_nanos(decode.per_token().as_nanos() * 2),
            streak: 3,
            shed_wait: ttft,
        }
    }
}

/// Controller configuration: the SLO policy plus reaction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Deadlines the watchdog checks every request against.
    pub slo: SloPolicy,
    /// Whether the controller reacts at all; `false` is the static
    /// baseline that keeps its calibration-time plans throughout.
    pub adaptive: bool,
    /// Flaky-rendezvous retries tolerated per rendezvous before the
    /// sync mechanism is downgraded to the driver path.
    pub max_sync_retries: u32,
    /// Backoff before the first rendezvous retry; doubles per attempt.
    pub retry_backoff: SimTime,
    /// Charged once per replan, fallback, or sync-mechanism switch
    /// (solver re-solve + graph swap on the real runtime).
    pub replan_overhead: SimTime,
    /// Data-integrity layer mode; `Off` preserves the pre-integrity
    /// controller behavior exactly.
    pub integrity: IntegrityMode,
    /// Whether backend-fallback choices are vetted against the static
    /// pre-admission bound ([`crate::admit`]): a fallback whose
    /// *lower-bound* prefill latency at [`MAX_PROMPT`] already busts
    /// the TTFT budget is rejected in favor of a statically feasible
    /// alternative, without building or simulating either engine.
    pub bound_precheck: bool,
}

impl ControllerConfig {
    /// An adaptive controller with default reaction knobs.
    pub fn adaptive(slo: SloPolicy) -> Self {
        Self {
            slo,
            adaptive: true,
            max_sync_retries: 1,
            retry_backoff: SimTime::from_micros(500),
            replan_overhead: SimTime::from_millis(5),
            integrity: IntegrityMode::Off,
            bound_precheck: false,
        }
    }

    /// The static baseline: same SLO accounting, no reactions.
    pub fn static_baseline(slo: SloPolicy) -> Self {
        Self {
            adaptive: false,
            ..Self::adaptive(slo)
        }
    }

    /// Same configuration with the integrity layer in `mode`.
    #[must_use]
    pub fn with_integrity(self, mode: IntegrityMode) -> Self {
        Self {
            integrity: mode,
            ..self
        }
    }

    /// Same configuration with the static fallback pre-check enabled.
    #[must_use]
    pub fn with_bound_precheck(self) -> Self {
        Self {
            bound_precheck: true,
            ..self
        }
    }
}

/// A partition plan the controller adopted while reacting, kept for
/// offline invariant checking (`hetero-analyze`'s fallback-integrity
/// rule).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanRecord {
    /// Logical matmul the plan covers.
    pub op: String,
    /// Rows (sequence length) the plan was solved at.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// The adopted plan.
    pub plan: PartitionPlan,
}

/// Everything a disturbed multi-request run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Whether the adaptive reactions were enabled.
    pub adaptive: bool,
    /// Seed of the disturbance trace the run was driven by.
    pub seed: u64,
    /// Degradation metrics (duplicated into `session.degradation`).
    pub summary: DegradationSummary,
    /// Aggregate session totals; `degradation` is always `Some`.
    pub session: SessionReport,
    /// Plans adopted by replans and fallbacks, in adoption order.
    pub fallback_plans: Vec<PlanRecord>,
}

/// Which engine currently serves requests.
enum ActiveEngine {
    /// The tensor-hybrid primary (replannable, concrete type so the
    /// controller can extract its partition plans).
    Primary(Box<HeteroTensorEngine>),
    /// A single-backend fallback engine.
    Fallback(Box<dyn Engine>),
}

impl ActiveEngine {
    fn as_engine(&mut self) -> &mut dyn Engine {
        match self {
            ActiveEngine::Primary(e) => e.as_mut(),
            ActiveEngine::Fallback(b) => b.as_mut(),
        }
    }
}

/// Serves a request stream under a disturbance trace, reacting (or
/// not) per its [`ControllerConfig`]; see the module docs for the
/// reaction policy.
///
/// A controller instance runs one stream: build a fresh one per
/// experiment arm.
pub struct RuntimeController {
    model: ModelConfig,
    cfg: ControllerConfig,
    sync: SyncMechanism,
    engine: ActiveEngine,
    /// Quiet-SoC config of the *current* engine; execution-time
    /// conditions are always applied to this pristine base so derates
    /// never compound across requests.
    pristine: SocConfig,
    /// Condition the current engine's plans were solved under.
    planned: SocCondition,
    now: SimTime,
    energy_j: f64,
    slow_streak: usize,
    /// Whether flagged rendezvous currently route through the driver
    /// path (adaptive reaction to a flaky window).
    sync_downgraded: bool,
    ttfts: Vec<SimTime>,
    tpots: Vec<SimTime>,
    /// `(completion time, met SLO)` per completed request, in order.
    completions: Vec<(SimTime, bool)>,
    fallback_plans: Vec<PlanRecord>,
    shed: usize,
    slo_violations: usize,
    replans: usize,
    fallbacks: usize,
    sync_retries: usize,
    sync_downgrades: usize,
    prefill_tokens: usize,
    prefill_time: SimTime,
    decode_tokens: usize,
    decode_time: SimTime,
    /// Session-wide concurrency log spanning engine rebuilds
    /// (`None` = recording off).
    clog: Option<ConcurrencyLog>,
    /// Session-wide span timeline spanning engine rebuilds (`None` =
    /// recording off). Engine segments record against each engine's own
    /// clock (which restarts at zero on rebuild) and are spliced in at
    /// the request's execution start on the controller clock.
    tl: Option<SpanTimeline>,
    /// The NPU graph store requests dispatch through; the target of
    /// persistent [`SdcFault::GraphPoison`] faults.
    graphs: GraphCache,
    /// SDC events not yet due, ascending by time.
    sdc_pending: Vec<hetero_soc::disturb::SdcEvent>,
    icounters: IntegrityCounters,
    /// Consecutive served requests that observed a detection; at
    /// [`SloPolicy::streak`] the controller escalates to a
    /// single-backend fallback (a stuck corruption source is treated
    /// like a failing backend).
    corruption_streak: usize,
    /// Fallback candidates rejected by the static pre-admission bound
    /// (not serialized — an in-process observability counter).
    bound_rejections: usize,
}

impl RuntimeController {
    /// A controller serving `model` on the tensor-hybrid engine with
    /// fast synchronization.
    pub fn new(model: &ModelConfig, cfg: ControllerConfig) -> Self {
        let sync = SyncMechanism::Fast;
        let engine = HeteroTensorEngine::new(model, sync);
        let pristine = engine.soc().config().clone();
        let mut graphs = GraphCache::new(model.graph_set(), CompileModel::default());
        graphs.preload(&STANDARD_GRAPH_SIZES);
        Self {
            model: model.clone(),
            cfg,
            sync,
            engine: ActiveEngine::Primary(Box::new(engine)),
            pristine,
            planned: SocCondition::quiet(),
            now: SimTime::ZERO,
            energy_j: 0.0,
            slow_streak: 0,
            sync_downgraded: false,
            ttfts: Vec::new(),
            tpots: Vec::new(),
            completions: Vec::new(),
            fallback_plans: Vec::new(),
            shed: 0,
            slo_violations: 0,
            replans: 0,
            fallbacks: 0,
            sync_retries: 0,
            sync_downgrades: 0,
            prefill_tokens: 0,
            prefill_time: SimTime::ZERO,
            decode_tokens: 0,
            decode_time: SimTime::ZERO,
            clog: None,
            tl: None,
            graphs,
            sdc_pending: Vec::new(),
            icounters: IntegrityCounters::default(),
            corruption_streak: 0,
            bound_rejections: 0,
        }
    }

    /// Fallback candidates the static pre-admission bound rejected.
    pub fn bound_rejections(&self) -> usize {
        self.bound_rejections
    }

    /// Start recording a session-wide concurrency event log. Each
    /// engine instance records its own segment; the controller merges
    /// segments (with disjoint buffer/token spaces) across replans and
    /// fallbacks, inserting a quiesce marker at every transition.
    pub fn enable_concurrency_log(&mut self) {
        self.clog = Some(ConcurrencyLog::new());
        self.engine.as_engine().enable_concurrency_log();
    }

    /// Take the session-wide concurrency log, ending recording.
    pub fn take_concurrency_log(&mut self) -> Option<ConcurrencyLog> {
        self.harvest_concurrency_log();
        self.clog.take()
    }

    /// Merge the active engine's recorded segment into the session log.
    fn harvest_concurrency_log(&mut self) {
        if self.clog.is_some() {
            let seg = self.engine.as_engine().take_concurrency_log();
            if let (Some(clog), Some(seg)) = (&mut self.clog, seg) {
                clog.append_shifted(&seg);
            }
        }
    }

    /// Re-arm recording on a freshly installed engine and mark the
    /// transition (replan/fallback quiesce point) in the session log.
    fn rearm_concurrency_log(&mut self, mechanism: SyncMechanism) {
        let at = self.now;
        if let Some(clog) = &mut self.clog {
            clog.push_marker(mechanism, at);
            self.engine.as_engine().enable_concurrency_log();
        }
    }

    /// Arm the session-wide span timeline. Each served request arms the
    /// active engine's recorder, so segments survive replans and
    /// fallbacks; controller reactions appear as `Control` spans on the
    /// [`Track::Controller`] row.
    pub fn enable_timeline(&mut self) {
        self.tl = Some(SpanTimeline::default());
    }

    /// Take the session-wide span timeline, ending recording.
    pub fn take_timeline(&mut self) -> Option<SpanTimeline> {
        self.tl.take()
    }

    /// Push a controller-track span if the timeline is armed.
    fn push_control(&mut self, name: &str, start: SimTime, end: SimTime) {
        if let Some(tl) = &mut self.tl {
            tl.push_span(Track::Controller, SpanKind::Control, name, start, end);
        }
    }

    /// Serve `requests` in arrival order while `trace` disturbs the
    /// SoC; returns the aggregated [`DegradationReport`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Causality`] if the trace is malformed (a window
    /// ending before it starts); any [`EngineError`] an engine phase
    /// surfaces.
    pub fn run(
        &mut self,
        requests: &[InferenceRequest],
        trace: &DisturbanceTrace,
    ) -> Result<DegradationReport, EngineError> {
        self.run_with_sdc(requests, trace, &SdcTrace::new(0))
    }

    /// [`Self::run`] with a seeded silent-data-corruption trace landing
    /// faults while the stream is served. With integrity `Off` the SDC
    /// events are inert (nothing observes them — the silent-corruption
    /// baseline); `Verify` detects and quarantines; `Recover`
    /// additionally recomputes/rebuilds, charging the recovery time to
    /// the victim request.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_with_sdc(
        &mut self,
        requests: &[InferenceRequest],
        trace: &DisturbanceTrace,
        sdc: &SdcTrace,
    ) -> Result<DegradationReport, EngineError> {
        let timeline = trace.timeline()?;
        self.sdc_pending = sdc.events.clone();
        self.sdc_pending.sort_by_key(|e| e.at);
        for req in requests {
            self.serve(req, &timeline)?;
        }
        self.energy_j += self.engine.as_engine().finish().energy_j;

        // Recovery time per disturbance window: from the window closing
        // to the first SLO-meeting completion after it.
        let mut recovered = 0usize;
        let mut unrecovered = 0usize;
        let mut recovery_total = SimTime::ZERO;
        for w in &trace.windows {
            match self.completions.iter().find(|(t, met)| *met && *t >= w.end) {
                Some((t, _)) => {
                    recovered += 1;
                    recovery_total += t.saturating_sub(w.end);
                }
                None => unrecovered += 1,
            }
        }
        let mean_recovery = if recovered == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_nanos(recovery_total.as_nanos() / recovered as u64)
        };

        let mut ttfts = self.ttfts.clone();
        let mut tpots = self.tpots.clone();
        ttfts.sort_unstable();
        tpots.sort_unstable();
        let summary = DegradationSummary {
            total_requests: requests.len(),
            completed: self.completions.len(),
            shed: self.shed,
            slo_violations: self.slo_violations,
            p50_ttft: percentile(&ttfts, 50),
            p99_ttft: percentile(&ttfts, 99),
            p50_tpot: percentile(&tpots, 50),
            p99_tpot: percentile(&tpots, 99),
            replans: self.replans,
            fallbacks: self.fallbacks,
            sync_retries: self.sync_retries,
            sync_downgrades: self.sync_downgrades,
            mean_recovery,
            unrecovered,
        };
        let secs = self.now.as_secs_f64();
        let session = SessionReport {
            engine: if self.cfg.adaptive {
                "Runtime-adaptive".to_string()
            } else {
                "Runtime-static".to_string()
            },
            model: self.model.name.clone(),
            prefill: crate::report::PhaseReport {
                tokens: self.prefill_tokens,
                elapsed: self.prefill_time,
            },
            decode: crate::report::PhaseReport {
                tokens: self.decode_tokens,
                elapsed: self.decode_time,
            },
            power: PowerReport {
                avg_power_w: if secs > 0.0 {
                    self.energy_j / secs
                } else {
                    0.0
                },
                energy_j: self.energy_j,
                makespan: self.now,
            },
            degradation: Some(summary.clone()),
            integrity: self
                .cfg
                .integrity
                .verifies()
                .then(|| self.icounters.summary(self.now)),
            metrics: self
                .tl
                .as_ref()
                .map(|tl| MetricsRegistry::from_timeline(tl).snapshot()),
        };
        Ok(DegradationReport {
            adaptive: self.cfg.adaptive,
            seed: trace.seed,
            summary,
            session,
            fallback_plans: self.fallback_plans.clone(),
        })
    }

    fn serve(&mut self, req: &InferenceRequest, timeline: &Timeline) -> Result<(), EngineError> {
        let start = self.now.max(req.arrival);
        let wait = start.saturating_sub(req.arrival);
        let cond = timeline.condition_at(start).clone();

        // React to the current condition even for requests about to be
        // shed — restoring a downgraded sync path or a fallen-back
        // backend must not wait for an admissible request.
        let mut overhead = SimTime::ZERO;
        let pre_fallbacks = self.fallbacks;
        let pre_replans = self.replans;
        if self.cfg.adaptive {
            overhead += self.adapt(&cond);
        }
        if overhead > SimTime::ZERO {
            let name = if self.fallbacks > pre_fallbacks {
                "fallback"
            } else if self.replans > pre_replans {
                "replan"
            } else {
                "restore"
            };
            self.push_control(name, start, start + overhead);
        }
        if self.cfg.adaptive && wait > self.cfg.slo.shed_wait {
            // The TTFT budget is already spent queueing: shed rather
            // than serve a guaranteed violation and deepen the backlog.
            self.shed += 1;
            self.push_control("shed", start + overhead, start + overhead);
            self.now = start + overhead;
            return Ok(());
        }
        let sync_pen = self.sync_penalty(&cond);
        if sync_pen > SimTime::ZERO {
            self.push_control("sync_retry", start + overhead, start + overhead + sync_pen);
        }
        overhead += sync_pen;
        let integrity = self.integrity_step(start, req);
        if integrity > SimTime::ZERO {
            self.push_control("integrity", start + overhead, start + overhead + integrity);
        }
        overhead += integrity;

        // Execution always experiences the disturbance, adaptive or
        // not; derates apply to the pristine base so they never stack.
        let exec_start = start + overhead;
        let exec_cfg = cond.apply_to(&self.pristine);
        if self.tl.is_some() {
            self.engine.as_engine().enable_timeline();
        }
        let engine = self.engine.as_engine();
        engine.soc_mut().set_config(exec_cfg);
        // The engine clock keeps running across requests (and restarts
        // at zero on rebuild); the segment is re-based onto the
        // controller clock at this request's execution start.
        let eng_clock0 = engine.soc().clock();
        let prefill = engine.try_prefill(req.prompt_tokens)?;
        let decode = engine.try_decode(req.prompt_tokens, req.response_tokens)?;
        if self.tl.is_some() {
            let seg = self.engine.as_engine().take_timeline();
            if let (Some(tl), Some(seg)) = (&mut self.tl, seg) {
                tl.append_shifted(&seg, eng_clock0, exec_start);
            }
        }

        let ttft = wait + overhead + prefill.elapsed;
        let tpot = decode.per_token();
        self.now = start + overhead + prefill.elapsed + decode.elapsed;
        let met = ttft <= self.cfg.slo.ttft && tpot <= self.cfg.slo.tpot;
        if met {
            self.slow_streak = 0;
        } else {
            self.slo_violations += 1;
            self.slow_streak += 1;
        }
        self.ttfts.push(ttft);
        self.tpots.push(tpot);
        self.completions.push((self.now, met));
        self.prefill_tokens += prefill.tokens;
        self.prefill_time += prefill.elapsed;
        self.decode_tokens += decode.tokens;
        self.decode_time += decode.elapsed;
        Ok(())
    }

    /// Price `kernels` on a quiet copy of the current pristine SoC
    /// (pure pricing — the live engine's clock and power are
    /// untouched).
    fn price(&self, backend: Backend, kernels: &[KernelDesc]) -> SimTime {
        Soc::new(self.pristine.clone()).run_serial(backend, kernels)
    }

    /// The per-request integrity pass: land due SDC events, charge the
    /// detection tax, and quarantine/recover what the verifiers flag.
    /// Returns the latency charged to this request.
    ///
    /// The controller serves timing-level engines, so detection here is
    /// event-driven rather than arithmetic: an SDC event that has
    /// landed *is* what the matching verifier (tile checksum, KV seal,
    /// graph fingerprint — the `FunctionalHeteroEngine` implements the
    /// real math) reports. The tax and recovery costs are priced
    /// through the SoC model so the overhead shows up in TTFT.
    fn integrity_step(&mut self, start: SimTime, req: &InferenceRequest) -> SimTime {
        if !self.cfg.integrity.verifies() {
            return SimTime::ZERO;
        }
        let recover = self.cfg.integrity.recovers();
        let layers = self.model.layers as u64;
        let ops = self.model.matmul_ops();

        // Land every event due by this request's start.
        let split = self.sdc_pending.partition_point(|e| e.at <= start);
        let mut tile_flips: Vec<u64> = Vec::new();
        let mut kv_hits: Vec<u64> = Vec::new();
        for e in self.sdc_pending.drain(..split) {
            self.icounters.injected += 1;
            match e.fault {
                SdcFault::TileFlip { elem_draw, .. } => tile_flips.push(elem_draw),
                SdcFault::KvCorrupt { row_draw, .. } => kv_hits.push(row_draw),
                SdcFault::GraphPoison { size_draw } => {
                    let sizes = self.graphs.compiled_sizes();
                    let m = sizes[(size_draw % sizes.len() as u64) as usize];
                    self.graphs.poison(m, size_draw);
                }
            }
        }

        // Detection tax. At production scale the checksum sums ride the
        // GEMM itself (`s` folds into the weight upload, row sums of C
        // accumulate in the epilogue — both vanish inside the GEMM's
        // own O(m·k·n)), so what the CPU verifier pays per tile is
        // reading the two per-row checksum vectors and comparing, plus
        // one fast-sync rendezvous per verified tile; the KV-seal
        // rehash streams the rows appended this request.
        let m = req.prompt_tokens as u64;
        let reductions: Vec<KernelDesc> = ops
            .iter()
            .map(|_| KernelDesc::mem_bound(KernelLabel::Other, 16 * m, 8, 4 * m))
            .collect();
        let kv_bytes = 2 * layers * m * self.model.kv_dim() as u64 * 2;
        let rehash = KernelDesc::mem_bound(KernelLabel::KvAppend, kv_bytes, 8, kv_bytes / 4);
        let per_layer = self.price(Backend::Cpu, &reductions);
        let tiles = layers * ops.len() as u64;
        let rdv = SyncModel::new(self.sync).rendezvous(Dominance::NpuDominant);
        let tax = SimTime::from_nanos(per_layer.as_nanos() * layers + rdv.as_nanos() * tiles)
            + self.price(Backend::Cpu, &[rehash]);
        self.icounters.tiles_verified += tiles as usize;
        self.icounters.kv_rows_verified += req.prompt_tokens * self.model.layers;
        self.icounters.graphs_verified += self.graphs.compiled_sizes().len();
        self.icounters.verify_time += tax;
        let mut overhead = tax;

        // Quarantine and recover what the verifiers flagged.
        let mut detections = 0usize;
        for draw in tile_flips {
            self.icounters.tile_mismatches += 1;
            self.icounters.detected += 1;
            detections += 1;
            if recover {
                // Recompute the tile on the backend that did not
                // produce it; under the NPU-dominant plans the victim
                // tile is NPU work, so the GPU arbitrates.
                let (_, k, n) = ops[(draw % ops.len() as u64) as usize];
                let shape = MatmulShape::new(req.prompt_tokens.max(1), k, n);
                let t = self.price(Backend::Gpu, &[crate::engines::gpu_kernel(shape)]);
                overhead += t;
                self.icounters.tile_recomputes += 1;
                self.icounters.corrected += 1;
                self.icounters.recompute_latencies.push(t);
            } else {
                self.icounters.uncorrectable += 1;
            }
        }
        for draw in kv_hits {
            self.icounters.kv_mismatches += 1;
            self.icounters.detected += 1;
            detections += 1;
            if recover {
                // Roll back to the sealed prefix and replay the
                // dropped suffix through the NPU prefill path.
                let replay = 1 + (draw % 32) as usize;
                let replays: Vec<KernelDesc> = ops
                    .iter()
                    .map(|&(_, k, n)| crate::engines::npu_kernel(MatmulShape::new(replay, k, n)))
                    .collect();
                let t = SimTime::from_nanos(self.price(Backend::Npu, &replays).as_nanos() * layers);
                overhead += t;
                self.icounters.kv_rollbacks += 1;
                self.icounters.replayed_tokens += replay;
                self.icounters.corrected += 1;
                self.icounters.recompute_latencies.push(t);
            } else {
                self.icounters.uncorrectable += 1;
            }
        }
        for size in self.graphs.poisoned_sizes() {
            self.icounters.graph_mismatches += 1;
            self.icounters.detected += 1;
            detections += 1;
            // Either way the poisoned artifact is quarantined (dropped
            // from the store — a miss compiles fresh, it can never
            // dispatch); only `Recover` rebuilds it now and pays the
            // compile time.
            self.graphs.invalidate(size);
            if recover {
                let t = self.graphs.ensure(size);
                overhead += t;
                self.icounters.graph_rebuilds += 1;
                self.icounters.corrected += 1;
                self.icounters.recompute_latencies.push(t);
            } else {
                self.icounters.uncorrectable += 1;
            }
        }

        // A corruption streak reads as a failing backend: escalate to
        // single-backend fallback through the watchdog.
        if detections > 0 {
            self.corruption_streak += 1;
            if recover
                && self.cfg.adaptive
                && self.corruption_streak >= self.cfg.slo.streak
                && matches!(self.engine, ActiveEngine::Primary(_))
            {
                self.slow_streak = self.cfg.slo.streak;
                self.icounters.fallback_escalations += 1;
                self.corruption_streak = 0;
            }
        } else {
            self.corruption_streak = 0;
        }
        overhead
    }

    /// The single-backend fallback the controller would adopt for
    /// `cond`: the healthy backend by efficiency, optionally vetoed by
    /// the static pre-admission bound.
    ///
    /// With [`ControllerConfig::bound_precheck`] enabled, each
    /// candidate's *exact* prefill floor at [`MAX_PROMPT`] (the
    /// single-backend mirrors of [`crate::admit`] — pure cost
    /// arithmetic, no engine build, no simulation) is compared against
    /// the TTFT budget: a preferred candidate that cannot meet the
    /// budget even in the best case is swapped for the alternative when
    /// the alternative can. If both are statically infeasible the
    /// healthy-backend preference stands (degraded service beats no
    /// service).
    pub fn fallback_decision(&mut self, cond: &SocCondition) -> (EngineKind, PartitionPlan) {
        let npu_eff = cond.npu_derate * cond.thermal_factor;
        let gpu_eff = cond.gpu_derate * cond.thermal_factor;
        let gpu_side = (EngineKind::PplOpenCl, PartitionPlan::GpuOnly);
        let npu_side = (
            EngineKind::NpuPipe,
            PartitionPlan::NpuOnly { padded_m: 256 },
        );
        let prefer_gpu = npu_eff <= gpu_eff;
        let (preferred, alternative) = if prefer_gpu {
            (gpu_side, npu_side)
        } else {
            (npu_side, gpu_side)
        };
        if !self.cfg.bound_precheck {
            return preferred;
        }
        let exec_cfg = cond.apply_to(&hetero_soc_config(self.sync));
        let floor = |kind: EngineKind| match kind {
            EngineKind::PplOpenCl => {
                crate::admit::gpu_only_prefill(&self.model, &exec_cfg, MAX_PROMPT)
            }
            _ => crate::admit::npu_pipe_prefill(&self.model, &exec_cfg, MAX_PROMPT),
        };
        if floor(preferred.0) <= self.cfg.slo.ttft {
            return preferred;
        }
        if floor(alternative.0) <= self.cfg.slo.ttft {
            self.bound_rejections += 1;
            return alternative;
        }
        preferred
    }

    /// Apply the adaptive reaction policy for the condition at this
    /// request's start; returns the reaction overhead charged.
    fn adapt(&mut self, cond: &SocCondition) -> SimTime {
        let mut overhead = SimTime::ZERO;

        // Sync downgrade / restore reacts to the flaky window itself:
        // past the retry budget, flagged rendezvous go through the
        // driver path (priced in `sync_penalty`) until the window ends.
        if cond.sync_failures > self.cfg.max_sync_retries && !self.sync_downgraded {
            self.sync_downgraded = true;
            self.sync_downgrades += 1;
        } else if cond.sync_failures == 0 && self.sync_downgraded {
            self.sync_downgraded = false;
        }

        let npu_eff = cond.npu_derate * cond.thermal_factor;
        let gpu_eff = cond.gpu_derate * cond.thermal_factor;
        let severe = npu_eff < 0.2 || gpu_eff < 0.2;
        let watchdog = self.slow_streak >= self.cfg.slo.streak;
        match &self.engine {
            ActiveEngine::Primary(_) if severe || watchdog => {
                // Backend fallback: run on the healthy backend alone,
                // subject to the static pre-admission veto.
                let (kind, plan) = self.fallback_decision(cond);
                self.harvest_concurrency_log();
                self.energy_j += self.engine.as_engine().finish().energy_j;
                let engine = kind.build(&self.model, self.sync);
                self.pristine = engine.soc().config().clone();
                self.engine = ActiveEngine::Fallback(engine);
                self.rearm_concurrency_log(self.sync);
                self.planned = cond.clone();
                self.fallbacks += 1;
                self.slow_streak = 0;
                self.record_plans_uniform(&plan);
                overhead += self.cfg.replan_overhead;
            }
            ActiveEngine::Fallback(_) if cond.is_quiet() => {
                // Disturbance passed: restore the tensor-hybrid primary.
                overhead += self.rebuild(cond);
            }
            ActiveEngine::Primary(_) if *cond != self.planned => {
                // Re-solve the partition against the adjusted profile.
                self.replans += 1;
                overhead += self.rebuild(cond);
                self.record_primary_plans();
            }
            _ => {}
        }
        overhead
    }

    /// Replace the active engine with a primary re-planned for `cond`
    /// under the current sync mechanism.
    fn rebuild(&mut self, cond: &SocCondition) -> SimTime {
        self.harvest_concurrency_log();
        self.energy_j += self.engine.as_engine().finish().energy_j;
        let quiet_base = hetero_soc_config(self.sync);
        let engine = HeteroTensorEngine::with_soc_config(&self.model, cond.apply_to(&quiet_base));
        self.pristine = quiet_base;
        self.engine = ActiveEngine::Primary(Box::new(engine));
        self.rearm_concurrency_log(self.sync);
        self.planned = cond.clone();
        self.cfg.replan_overhead
    }

    /// Record the primary engine's current plans for the model's
    /// weight matmuls at the standard prefill shape.
    fn record_primary_plans(&mut self) {
        let ops = self.model.matmul_ops();
        if let ActiveEngine::Primary(engine) = &mut self.engine {
            for (op, k, n) in ops {
                let plan = engine.plan_for(op, MatmulShape::new(256, k, n));
                self.fallback_plans.push(PlanRecord {
                    op: op.to_string(),
                    m: 256,
                    k,
                    n,
                    plan,
                });
            }
        }
    }

    /// Record one degenerate plan per weight matmul (what a
    /// single-backend fallback effectively runs).
    fn record_plans_uniform(&mut self, plan: &PartitionPlan) {
        for (op, k, n) in self.model.matmul_ops() {
            self.fallback_plans.push(PlanRecord {
                op: op.to_string(),
                m: 256,
                k,
                n,
                plan: plan.clone(),
            });
        }
    }

    /// Extra latency paid to flaky rendezvous this request.
    ///
    /// Only the tensor-hybrid primary rendezvouses across backends;
    /// single-backend fallbacks are unaffected. One merge rendezvous
    /// per layer is exposed to the race. Retries back off
    /// exponentially — `backoff * (2^attempts - 1)` per rendezvous —
    /// and the static baseline retries for every failure. An adaptive
    /// controller caps attempts at its retry budget and, once
    /// downgraded, pays the driver path's fixed rendezvous cost
    /// instead (reliable, no retries).
    fn sync_penalty(&mut self, cond: &SocCondition) -> SimTime {
        if cond.sync_failures == 0 || !matches!(self.engine, ActiveEngine::Primary(_)) {
            return SimTime::ZERO;
        }
        let per_rendezvous = if self.cfg.adaptive && self.sync_downgraded {
            // Flagged rendezvous route through the reliable driver
            // path: record the downgrade as a driver-carried marker.
            let at = self.now;
            if let Some(clog) = &mut self.clog {
                clog.push_marker(SyncMechanism::Driver, at);
            }
            SyncModel::new(SyncMechanism::Driver)
                .rendezvous(Dominance::NpuDominant)
                .as_nanos()
        } else {
            let attempts = if self.cfg.adaptive {
                cond.sync_failures.min(self.cfg.max_sync_retries)
            } else {
                cond.sync_failures
            };
            self.sync_retries += attempts as usize;
            // Each retry re-arms the flag: one marker per attempt.
            let at = self.now;
            if let Some(clog) = &mut self.clog {
                for _ in 0..attempts {
                    clog.push_marker(self.sync, at);
                }
            }
            self.cfg.retry_backoff.as_nanos() * ((1u64 << attempts) - 1)
        };
        SimTime::from_nanos(per_rendezvous * self.model.layers as u64)
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[SimTime], pct: usize) -> SimTime {
    if sorted.is_empty() {
        return SimTime::ZERO;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(adaptive: bool, seed: u64) -> DegradationReport {
        let model = ModelConfig::internlm_1_8b();
        let slo = SloPolicy::calibrated(&model);
        let cfg = if adaptive {
            ControllerConfig::adaptive(slo)
        } else {
            ControllerConfig::static_baseline(slo)
        };
        let requests = conversation_traffic(seed, 24, SimTime::from_millis(500));
        let trace = DisturbanceTrace::standard(seed);
        RuntimeController::new(&model, cfg)
            .run(&requests, &trace)
            .expect("standard trace is well-formed")
    }

    #[test]
    fn quiet_trace_meets_slo_everywhere() {
        let model = ModelConfig::internlm_1_8b();
        let slo = SloPolicy::calibrated(&model);
        let requests = conversation_traffic(7, 8, SimTime::from_millis(1200));
        let trace = DisturbanceTrace::new(7); // no windows
        let report = RuntimeController::new(&model, ControllerConfig::adaptive(slo))
            .run(&requests, &trace)
            .unwrap();
        assert_eq!(report.summary.slo_violations, 0);
        assert_eq!(report.summary.shed, 0);
        assert_eq!(report.summary.fallbacks, 0);
        assert_eq!(report.summary.completed, 8);
        assert!(report.session.power.energy_j > 0.0);
    }

    #[test]
    fn adaptive_reacts_under_standard_trace() {
        let report = small_run(true, 42);
        // The NPU-unavailable window forces a severe one-sided derate:
        // the controller must fall back, and condition changes must
        // trigger replans with recorded plans.
        assert!(report.summary.fallbacks >= 1, "{:?}", report.summary);
        assert!(report.summary.replans >= 1, "{:?}", report.summary);
        assert!(!report.fallback_plans.is_empty());
        assert!(report.summary.sync_retries + report.summary.sync_downgrades >= 1);
        assert!(report.session.degradation.is_some());
    }

    #[test]
    fn adaptive_beats_static_p99_ttft() {
        let adaptive = small_run(true, 42);
        let r#static = small_run(false, 42);
        assert!(
            adaptive.summary.p99_ttft < r#static.summary.p99_ttft,
            "adaptive p99 TTFT {:?} must degrade strictly less than static {:?}",
            adaptive.summary.p99_ttft,
            r#static.summary.p99_ttft
        );
        assert!(adaptive.summary.slo_violation_rate() <= r#static.summary.slo_violation_rate());
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = serde_json::to_string(&small_run(true, 11)).unwrap();
        let b = serde_json::to_string(&small_run(true, 11)).unwrap();
        assert_eq!(a, b);
        let c = serde_json::to_string(&small_run(true, 12)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn traffic_is_seeded_and_monotone() {
        let a = conversation_traffic(3, 16, SimTime::from_millis(100));
        let b = conversation_traffic(3, 16, SimTime::from_millis(100));
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
        for r in &a {
            assert!((64..MAX_PROMPT).contains(&r.prompt_tokens));
            assert!((8..64).contains(&r.response_tokens));
        }
    }

    #[test]
    fn malformed_trace_is_a_typed_error() {
        let model = ModelConfig::tiny();
        let slo = SloPolicy::calibrated(&model);
        let trace = DisturbanceTrace::new(0).with(
            SimTime::from_millis(100),
            SimTime::from_millis(50),
            hetero_soc::disturb::Disturbance::NpuUnavailable,
        );
        let err = RuntimeController::new(&model, ControllerConfig::adaptive(slo))
            .run(&[], &trace)
            .unwrap_err();
        assert!(matches!(err, EngineError::Causality(_)));
    }

    fn sdc_run(mode: IntegrityMode, seed: u64, sdc_seed: u64) -> DegradationReport {
        let model = ModelConfig::internlm_1_8b();
        let slo = SloPolicy::calibrated(&model);
        let cfg = ControllerConfig::adaptive(slo).with_integrity(mode);
        let requests = conversation_traffic(seed, 12, SimTime::from_millis(500));
        // Quiet disturbance trace: isolate the integrity layer.
        let trace = DisturbanceTrace::new(seed);
        RuntimeController::new(&model, cfg)
            .run_with_sdc(&requests, &trace, &SdcTrace::standard(sdc_seed))
            .expect("quiet trace is well-formed")
    }

    #[test]
    fn integrity_off_leaves_sdc_events_inert() {
        let faulted = sdc_run(IntegrityMode::Off, 5, 42);
        assert!(faulted.session.integrity.is_none());
        // Byte-identical to a run that never saw the SDC trace at all:
        // nothing observes silent corruption at the timing level.
        let model = ModelConfig::internlm_1_8b();
        let slo = SloPolicy::calibrated(&model);
        let requests = conversation_traffic(5, 12, SimTime::from_millis(500));
        let clean = RuntimeController::new(&model, ControllerConfig::adaptive(slo))
            .run(&requests, &DisturbanceTrace::new(5))
            .unwrap();
        assert_eq!(
            serde_json::to_string(&faulted).unwrap(),
            serde_json::to_string(&clean).unwrap()
        );
    }

    #[test]
    fn recover_arm_detects_and_repairs_every_injection() {
        let r = sdc_run(IntegrityMode::Recover, 5, 42);
        let s = r.session.integrity.expect("integrity summary present");
        assert_eq!(s.injected, 6, "standard SDC trace lands 3+2+1 faults");
        assert_eq!(s.detected, s.injected, "{s:?}");
        assert_eq!(s.corrected, s.detected, "{s:?}");
        assert_eq!(s.uncorrectable, 0);
        assert_eq!(s.tile_recomputes, 3);
        assert_eq!(s.kv_rollbacks, 2);
        assert_eq!(s.graph_rebuilds, 1);
        assert!(s.replayed_tokens > 0);
        assert!(s.tiles_verified > 0 && s.kv_rows_verified > 0 && s.graphs_verified > 0);
        assert!(s.recompute_p99 >= s.recompute_p50);
    }

    #[test]
    fn verify_arm_detects_but_does_not_repair() {
        let r = sdc_run(IntegrityMode::Verify, 5, 42);
        let s = r.session.integrity.expect("integrity summary present");
        assert_eq!(s.detected, s.injected);
        assert_eq!(s.corrected, 0);
        assert_eq!(s.uncorrectable, s.detected);
        assert_eq!(s.tile_recomputes + s.kv_rollbacks + s.graph_rebuilds, 0);
    }

    #[test]
    fn verify_overhead_is_bounded() {
        // The acceptance bound from the integrity experiment: turning
        // verification on inflates p99 TTFT by less than 15% on a
        // clean trace.
        let off = sdc_run(IntegrityMode::Off, 5, 0);
        let on = sdc_run(IntegrityMode::Verify, 5, 0);
        let (off_p99, on_p99) = (
            off.summary.p99_ttft.as_nanos(),
            on.summary.p99_ttft.as_nanos(),
        );
        assert!(on_p99 >= off_p99, "verification cannot be free");
        assert!(
            on_p99 * 100 < off_p99 * 115,
            "verify-on p99 TTFT {on_p99}ns vs off {off_p99}ns exceeds 15%"
        );
        let s = on.session.integrity.unwrap();
        assert!(s.verify_overhead_pct < 15);
    }

    #[test]
    fn integrity_reports_are_seed_deterministic() {
        let a = serde_json::to_string(&sdc_run(IntegrityMode::Recover, 5, 42)).unwrap();
        let b = serde_json::to_string(&sdc_run(IntegrityMode::Recover, 5, 42)).unwrap();
        assert_eq!(a, b);
        let c = serde_json::to_string(&sdc_run(IntegrityMode::Recover, 5, 43)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn corruption_streak_escalates_to_fallback() {
        use hetero_soc::disturb::SdcEvent;
        let model = ModelConfig::internlm_1_8b();
        let slo = SloPolicy::calibrated(&model);
        let cfg = ControllerConfig::adaptive(slo).with_integrity(IntegrityMode::Recover);
        let mut c = RuntimeController::new(&model, cfg);
        let req = InferenceRequest {
            arrival: SimTime::ZERO,
            prompt_tokens: 64,
            response_tokens: 8,
        };
        for i in 0..c.cfg.slo.streak {
            c.sdc_pending = vec![SdcEvent {
                at: SimTime::ZERO,
                fault: SdcFault::TileFlip {
                    proj_index: i,
                    elem_draw: 7,
                    bit: 30,
                },
            }];
            c.integrity_step(SimTime::from_millis(1), &req);
        }
        assert_eq!(c.icounters.fallback_escalations, 1);
        assert_eq!(c.slow_streak, c.cfg.slo.streak, "watchdog armed");
        assert_eq!(c.corruption_streak, 0, "streak resets after escalating");
    }

    #[test]
    fn bound_precheck_rejects_infeasible_fallback_without_simulation() {
        let model = ModelConfig::internlm_1_8b();
        let slo = SloPolicy::calibrated(&model);
        // Tie on efficiency → the controller prefers the GPU-only
        // fallback; but PPL-quality GPU prefill is ~4x the tensor
        // engine's, so its *exact* static floor at MAX_PROMPT busts
        // the 3x-quiet TTFT budget, while the NPU-pipe floor fits.
        let cond = SocCondition::quiet();
        let cfg_base = hetero_soc_config(SyncMechanism::Fast);
        let exec_cfg = cond.apply_to(&cfg_base);
        let gpu_floor = crate::admit::gpu_only_prefill(&model, &exec_cfg, MAX_PROMPT);
        let npu_floor = crate::admit::npu_pipe_prefill(&model, &exec_cfg, MAX_PROMPT);
        assert!(
            gpu_floor > slo.ttft,
            "gpu floor {gpu_floor} vs ttft {:?}",
            slo.ttft
        );
        assert!(
            npu_floor <= slo.ttft,
            "npu floor {npu_floor} vs ttft {:?}",
            slo.ttft
        );

        // Without the pre-check: healthy-backend preference stands.
        let mut plain = RuntimeController::new(&model, ControllerConfig::adaptive(slo));
        assert_eq!(plain.fallback_decision(&cond).0, EngineKind::PplOpenCl);
        assert_eq!(plain.bound_rejections(), 0);

        // With the pre-check: the infeasible candidate is rejected by
        // static arithmetic alone — no fallback engine is built and no
        // request is simulated.
        let mut checked = RuntimeController::new(
            &model,
            ControllerConfig::adaptive(slo).with_bound_precheck(),
        );
        let (kind, plan) = checked.fallback_decision(&cond);
        assert_eq!(kind, EngineKind::NpuPipe);
        assert_eq!(plan, PartitionPlan::NpuOnly { padded_m: 256 });
        assert_eq!(checked.bound_rejections(), 1);
    }

    #[test]
    fn bound_precheck_keeps_feasible_preference() {
        let model = ModelConfig::internlm_1_8b();
        let slo = SloPolicy::calibrated(&model);
        let mut c = RuntimeController::new(
            &model,
            ControllerConfig::adaptive(slo).with_bound_precheck(),
        );
        // GPU saturated by rendering: the NPU side is preferred and its
        // static floor fits the budget — no veto, no counter bump.
        let cond = SocCondition {
            gpu_derate: 0.1,
            ..SocCondition::quiet()
        };
        let (kind, _) = c.fallback_decision(&cond);
        assert_eq!(kind, EngineKind::NpuPipe);
        assert_eq!(c.bound_rejections(), 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<SimTime> = (1..=100).map(SimTime::from_nanos).collect();
        assert_eq!(percentile(&v, 50), SimTime::from_nanos(50));
        assert_eq!(percentile(&v, 99), SimTime::from_nanos(99));
        assert_eq!(percentile(&v, 100), SimTime::from_nanos(100));
        assert_eq!(percentile(&[], 50), SimTime::ZERO);
    }
}
