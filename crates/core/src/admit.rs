//! Static pre-admission cost mirrors: sound `[lo, hi]` latency bounds
//! and peak-footprint figures for engine executions, computed purely
//! from SoC cost queries — no discrete-event simulation runs and no
//! engine clock advances.
//!
//! The mirrors replay each engine's *scheduling policy* (the same plan
//! tables, chunking rules and backend-switch machine the engines use)
//! but price every step through `Soc::solo_kernel_time` /
//! `Soc::contended_kernel_time`, which are pure `&self` queries.
//! Soundness then reduces to the overlap model's pinned envelope: a
//! parallel section's makespan is never below the larger per-side
//! *solo* sum and never above the larger *contended* sum, while serial
//! kernels, backend switches and rendezvous are exact constants. Every
//! serial step is an exact point, so the hetero mirror's interval
//! width comes only from parallel partitions — and collapses to an
//! equality for the single-backend fallback mirrors, which the runtime
//! controller uses to veto statically TTFT-infeasible fallback plans
//! before building (let alone simulating) the fallback engine.

use hetero_graph::plan::pipe_plan;
use hetero_profiler::{CostInterval, RealExecProvider};
use hetero_soc::calib::STANDARD_GRAPH_SIZES;
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::{Backend, KernelDesc, SimTime, Soc, SocConfig};
use hetero_solver::{PartitionPlan, PlanTable, RegionTable, Solver, SolverConfig};
use hetero_tensor::shape::MatmulShape;

use crate::engines::{gpu_kernel, hetero_soc_config, npu_kernel};
use crate::model::ModelConfig;
use crate::trace::{decode_trace, prefill_trace, OpRole, PhaseTrace};

/// A solved weight-Matmul site in a phase: operator name, logical
/// shape, and the partition plan the mirror (and the engine) adopts.
pub type PlanSite = (&'static str, MatmulShape, PartitionPlan);

/// Static mirror of [`crate::engines::HeteroTensorEngine`]'s
/// scheduling: identical solvers and plan tables, identical
/// backend-switch machine, but all costs are priced as
/// [`CostInterval`]s instead of being executed.
///
/// Because the engine's plan choice and switch sequence are
/// deterministic functions of the model and prompt length, the
/// mirror's interval brackets the engine's observed elapsed time for
/// the same phase sequence.
pub struct HeteroMirror {
    cfg: ModelConfig,
    /// Pricing-only SoC; its clock is never advanced.
    soc: Soc,
    prefill_solver: Solver<RealExecProvider>,
    decode_solver: Solver<RealExecProvider>,
    prefill_table: PlanTable,
    decode_table: PlanTable,
    current: Option<Backend>,
}

impl HeteroMirror {
    /// Mirror of `HeteroTensorEngine::new(model, sync)`.
    pub fn new(model: &ModelConfig, sync: SyncMechanism) -> Self {
        Self::with_soc_config(model, hetero_soc_config(sync))
    }

    /// Mirror of an engine over an explicit SoC configuration (e.g. a
    /// disturbance-adjusted one).
    pub fn with_soc_config(model: &ModelConfig, soc_cfg: SocConfig) -> Self {
        let provider = RealExecProvider::new(soc_cfg.clone());
        // Plans are design artifacts and always assume fast sync,
        // exactly as `HeteroTensorEngine::from_provider`.
        let plan_sync = SyncModel::new(SyncMechanism::Fast);
        let prefill_solver = Solver::new(
            provider.clone(),
            SolverConfig {
                sync: plan_sync.clone(),
                ..SolverConfig::default()
            },
        );
        let decode_solver = Solver::new(
            provider,
            SolverConfig {
                sync: plan_sync,
                ..SolverConfig::decode(1)
            },
        );
        Self {
            cfg: model.clone(),
            soc: Soc::new(soc_cfg),
            prefill_solver,
            decode_solver,
            prefill_table: PlanTable::new(),
            decode_table: PlanTable::new(),
            current: None,
        }
    }

    /// Exact cost of running `kernel` serially on `backend`, including
    /// the backend-switch constant the engine's switch machine would
    /// pay at this point in the sequence.
    fn run_on_bound(&mut self, backend: Backend, kernel: &KernelDesc) -> CostInterval {
        let mut t = SimTime::ZERO;
        if self.current != Some(backend) {
            if self.current.is_some() {
                t += self.soc.config().sync.backend_switch();
            }
            self.current = Some(backend);
        }
        CostInterval::exact(t + self.soc.solo_kernel_time(backend, kernel))
    }

    /// Interval cost of a parallel section: `[max(solo sums),
    /// max(contended sums)]` plus the exact rendezvous constant —
    /// the pinned envelope of `Soc::run_parallel`'s overlap model.
    fn parallel_bound(
        &mut self,
        gpu: &[KernelDesc],
        npu: &[KernelDesc],
        dominance: Dominance,
    ) -> CostInterval {
        let both = [Backend::Gpu, Backend::Npu];
        let sum = |soc: &Soc, backend: Backend, ks: &[KernelDesc], contended: bool| {
            ks.iter()
                .map(|k| {
                    if contended {
                        soc.contended_kernel_time(backend, k, &both)
                    } else {
                        soc.solo_kernel_time(backend, k)
                    }
                })
                .sum::<SimTime>()
        };
        let g_solo = sum(&self.soc, Backend::Gpu, gpu, false);
        let g_cont = sum(&self.soc, Backend::Gpu, gpu, true);
        let n_solo = sum(&self.soc, Backend::Npu, npu, false);
        let n_cont = sum(&self.soc, Backend::Npu, npu, true);
        let lo = g_solo.max(n_solo);
        let hi = g_cont.max(n_cont).max(lo);
        // Both backends just ran; the GPU ends the section primed.
        self.current = Some(Backend::Gpu);
        let rendezvous = self.soc.config().sync.rendezvous(dominance);
        CostInterval { lo, hi } + CostInterval::exact(rendezvous)
    }

    /// Interval cost of one partition plan, mirroring
    /// `HeteroTensorEngine::execute_plan` step for step.
    fn plan_bound(
        &mut self,
        plan: &PartitionPlan,
        shape: MatmulShape,
        dominance: Dominance,
    ) -> CostInterval {
        match plan {
            PartitionPlan::GpuOnly => self.run_on_bound(Backend::Gpu, &gpu_kernel(shape)),
            PartitionPlan::NpuOnly { padded_m } => {
                let k = npu_kernel(MatmulShape {
                    m: *padded_m,
                    ..shape
                });
                self.run_on_bound(Backend::Npu, &k)
            }
            PartitionPlan::NpuPipe { chunks, .. } => {
                chunks.iter().fold(CostInterval::ZERO, |acc, &c| {
                    let k = npu_kernel(MatmulShape { m: c, ..shape });
                    acc + self.run_on_bound(Backend::Npu, &k)
                })
            }
            PartitionPlan::RowCut { gpu_cols, padded_m }
            | PartitionPlan::HybridCut { gpu_cols, padded_m } => {
                let gpu = gpu_kernel(MatmulShape::new(shape.m, shape.k, *gpu_cols));
                let npu = npu_kernel(MatmulShape::new(*padded_m, shape.k, shape.n - gpu_cols));
                self.parallel_bound(&[gpu], &[npu], dominance)
            }
            PartitionPlan::SeqCut {
                npu_chunks,
                gpu_rows,
            } => {
                let npu: Vec<KernelDesc> = npu_chunks
                    .iter()
                    .map(|&c| npu_kernel(MatmulShape { m: c, ..shape }))
                    .collect();
                if *gpu_rows == 0 {
                    npu.iter().fold(CostInterval::ZERO, |acc, k| {
                        acc + self.run_on_bound(Backend::Npu, k)
                    })
                } else {
                    let gpu = gpu_kernel(MatmulShape {
                        m: *gpu_rows,
                        ..shape
                    });
                    self.parallel_bound(&[gpu], &npu, dominance)
                }
            }
        }
    }

    /// Interval over one phase trace; weight Matmuls consult the given
    /// plan table/solver pair, everything else runs on the GPU — the
    /// exact routing of the tensor engine's phase loops.
    fn phase_bound(&mut self, trace: &PhaseTrace, prefill: bool) -> CostInterval {
        let dominance = if prefill {
            Dominance::NpuDominant
        } else {
            Dominance::GpuDominant
        };
        let ops: Vec<_> = trace.iter_all().cloned().collect();
        let mut total = CostInterval::ZERO;
        for op in &ops {
            let step = match op.role {
                OpRole::WeightMatmul => {
                    let shape = op.shape.expect("weight matmul carries a shape");
                    let choice = if prefill {
                        self.prefill_table.get_or_solve(
                            &self.prefill_solver,
                            op.op,
                            shape,
                            dominance,
                        )
                    } else {
                        self.decode_table
                            .get_or_solve(&self.decode_solver, op.op, shape, dominance)
                    };
                    self.plan_bound(&choice.plan, shape, dominance)
                }
                _ => self.run_on_bound(Backend::Gpu, &op.kernel),
            };
            total += step;
        }
        total
    }

    /// Sound `[lo, hi]` bound on the engine's prefill elapsed time for
    /// a prompt of `prompt_len` tokens, from the same switch-machine
    /// state the engine would be in (call in the same phase order).
    pub fn prefill_bound(&mut self, prompt_len: usize) -> CostInterval {
        let trace = prefill_trace(&self.cfg, prompt_len);
        self.phase_bound(&trace, true)
    }

    /// Sound `[lo, hi]` bound on decoding `n_tokens` tokens after a
    /// prompt of `prompt_len`.
    pub fn decode_bound(&mut self, prompt_len: usize, n_tokens: usize) -> CostInterval {
        let mut total = CostInterval::ZERO;
        for t in 0..n_tokens {
            let trace = decode_trace(&self.cfg, prompt_len + t + 1, 1);
            total += self.phase_bound(&trace, false);
        }
        total
    }

    /// The weight-Matmul plan sites of a prefill at `prompt_len`, in
    /// trace order — what the footprint analyzer folds region tables
    /// over.
    pub fn prefill_plans(&mut self, prompt_len: usize) -> Vec<PlanSite> {
        let trace = prefill_trace(&self.cfg, prompt_len);
        let ops: Vec<_> = trace.iter_all().cloned().collect();
        ops.iter()
            .filter(|op| op.role == OpRole::WeightMatmul)
            .map(|op| {
                let shape = op.shape.expect("weight matmul carries a shape");
                let choice = self.prefill_table.get_or_solve(
                    &self.prefill_solver,
                    op.op,
                    shape,
                    Dominance::NpuDominant,
                );
                (op.op, shape, choice.plan)
            })
            .collect()
    }

    /// Static peak pooled activation footprint of a prefill at
    /// `prompt_len`: the max over plan sites of the site's
    /// [`RegionTable`] peak. Plan arenas are transient and disjoint in
    /// time (one logical Matmul in flight at once), so the phase peak
    /// is the per-site max, not the sum.
    pub fn prefill_peak_bytes(&mut self, prompt_len: usize) -> usize {
        self.prefill_plans(prompt_len)
            .iter()
            .map(|(_, shape, plan)| RegionTable::for_plan(plan, *shape).peak_bytes())
            .max()
            .unwrap_or(0)
    }
}

/// Exact prefill latency of the GPU-only (PPL-OpenCL tier) fallback
/// engine under `soc_cfg`: the single-backend engine runs every trace
/// kernel serially on the GPU with no switch machine, so the mirror is
/// a plain sum of solo kernel times.
pub fn gpu_only_prefill(model: &ModelConfig, soc_cfg: &SocConfig, prompt_len: usize) -> SimTime {
    let soc = Soc::new(soc_cfg.clone());
    prefill_trace(model, prompt_len)
        .iter_all()
        .map(|op| soc.solo_kernel_time(Backend::Gpu, &op.kernel))
        .sum()
}

/// Exact prefill latency of the NPU-pipe fallback engine under
/// `soc_cfg`: weight Matmuls decompose into standard-size pipe chunks
/// on the NPU, aux/attention kernels run on the GPU, with the routed
/// core's switch machine (starting unprimed) paying one backend-switch
/// constant per transition.
pub fn npu_pipe_prefill(model: &ModelConfig, soc_cfg: &SocConfig, prompt_len: usize) -> SimTime {
    let soc = Soc::new(soc_cfg.clone());
    let switch = soc.config().sync.backend_switch();
    let chunks = pipe_plan(prompt_len, &STANDARD_GRAPH_SIZES).npu_chunks;
    let mut current: Option<Backend> = None;
    let mut total = SimTime::ZERO;
    let mut run = |backend: Backend, kernel: &KernelDesc, total: &mut SimTime| {
        if current != Some(backend) {
            if current.is_some() {
                *total += switch;
            }
            current = Some(backend);
        }
        *total += soc.solo_kernel_time(backend, kernel);
    };
    for op in prefill_trace(model, prompt_len).iter_all() {
        match op.role {
            OpRole::WeightMatmul => {
                let shape = op.shape.expect("weight matmul carries a shape");
                if shape.m == 1 {
                    run(Backend::Npu, &npu_kernel(shape), &mut total);
                } else {
                    for &c in &chunks {
                        run(
                            Backend::Npu,
                            &npu_kernel(MatmulShape { m: c, ..shape }),
                            &mut total,
                        );
                    }
                }
            }
            OpRole::Attention | OpRole::Aux => run(Backend::Gpu, &op.kernel, &mut total),
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::npu_only::{MisalignStrategy, NpuOnlyEngine};
    use crate::engines::single::{GpuTier, SingleBackendEngine};
    use crate::engines::{Engine, HeteroTensorEngine};

    #[test]
    fn hetero_mirror_brackets_engine_prefill_and_decode() {
        let model = ModelConfig::llama_3b();
        let mut mirror = HeteroMirror::new(&model, SyncMechanism::Fast);
        let mut engine = HeteroTensorEngine::new(&model, SyncMechanism::Fast);
        for len in [135usize, 300] {
            let bound = mirror.prefill_bound(len);
            let observed = engine.prefill(len).elapsed;
            assert!(
                bound.contains(observed),
                "len {len}: observed {observed} outside [{}, {}]",
                bound.lo,
                bound.hi
            );
        }
        let bound = mirror.decode_bound(300, 4);
        let observed = engine.decode(300, 4).elapsed;
        assert!(
            bound.contains(observed),
            "decode observed {observed} outside [{}, {}]",
            bound.lo,
            bound.hi
        );
    }

    #[test]
    fn gpu_only_mirror_is_exact() {
        let model = ModelConfig::llama_3b();
        // The PPL fallback engine's SoC config is hetero_soc_config
        // modulo the sync model, which a single-backend engine never
        // consults.
        let cfg = hetero_soc_config(SyncMechanism::Fast);
        let bound = gpu_only_prefill(&model, &cfg, 300);
        let mut e = SingleBackendEngine::gpu(&model, GpuTier::PplOpenCl);
        assert_eq!(bound, e.prefill(300).elapsed);
    }

    #[test]
    fn npu_pipe_mirror_is_exact() {
        let model = ModelConfig::llama_3b();
        let cfg = hetero_soc_config(SyncMechanism::Fast);
        let bound = npu_pipe_prefill(&model, &cfg, 300);
        let mut e = NpuOnlyEngine::new(&model, MisalignStrategy::Pipe, SyncMechanism::Fast);
        assert_eq!(bound, e.prefill(300).elapsed);
    }

    #[test]
    fn prefill_peak_covers_every_site_table() {
        let model = ModelConfig::llama_3b();
        let mut mirror = HeteroMirror::new(&model, SyncMechanism::Fast);
        let peak = mirror.prefill_peak_bytes(300);
        assert!(peak > 0);
        for (op, shape, plan) in mirror.prefill_plans(300) {
            let site = RegionTable::for_plan(&plan, shape).peak_bytes();
            assert!(
                site <= peak,
                "{op}: site peak {site} above phase peak {peak}"
            );
        }
    }

    #[test]
    fn derated_soc_inflates_the_bound() {
        let model = ModelConfig::llama_3b();
        let quiet = HeteroMirror::new(&model, SyncMechanism::Fast).prefill_bound(256);
        let mut slow_cfg = hetero_soc_config(SyncMechanism::Fast);
        slow_cfg.gpu.achieved_tflops *= 0.5;
        slow_cfg.gpu.mem_efficiency *= 0.5;
        let slow = HeteroMirror::with_soc_config(&model, slow_cfg).prefill_bound(256);
        assert!(slow.hi > quiet.hi, "slow {} vs quiet {}", slow.hi, quiet.hi);
    }
}
