//! Shared pieces of the data-integrity layer: the mode switch, the
//! event counters both execution paths accumulate, and the summary
//! builder.
//!
//! The detection substrate lives in [`hetero_tensor::abft`]; the
//! injection schedule in [`hetero_soc::disturb::SdcTrace`]. This module
//! only aggregates what the functional engine
//! ([`crate::functional_engine::FunctionalHeteroEngine`]) and the
//! runtime controller ([`crate::RuntimeController`]) observe into the
//! all-integer [`IntegritySummary`] carried by session reports.

use hetero_soc::SimTime;
use serde::{Deserialize, Serialize};

use crate::report::IntegritySummary;

/// How much of the integrity layer is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IntegrityMode {
    /// No verification, no recovery — corruption flows through
    /// silently. The baseline arm.
    #[default]
    Off,
    /// Verify every GEMM tile, KV read, and graph dispatch; count
    /// detections as uncorrectable but do not repair.
    Verify,
    /// Verify and repair: cross-backend tile recompute, KV
    /// rollback+replay, graph invalidate+rebuild.
    Recover,
}

impl IntegrityMode {
    /// Whether any verification happens.
    pub fn verifies(self) -> bool {
        !matches!(self, Self::Off)
    }

    /// Whether detected corruption is repaired.
    pub fn recovers(self) -> bool {
        matches!(self, Self::Recover)
    }
}

/// Raw integrity event counts accumulated during a run.
#[derive(Debug, Clone, Default)]
pub struct IntegrityCounters {
    /// Faults actually applied.
    pub injected: usize,
    /// Corruptions flagged by any verifier.
    pub detected: usize,
    /// Detections repaired.
    pub corrected: usize,
    /// Detections left in place.
    pub uncorrectable: usize,
    /// Tiles checked.
    pub tiles_verified: usize,
    /// Tile checksum mismatches.
    pub tile_mismatches: usize,
    /// Cross-backend tile recomputes.
    pub tile_recomputes: usize,
    /// `(layer, row)` seals re-checked.
    pub kv_rows_verified: usize,
    /// Seal mismatches.
    pub kv_mismatches: usize,
    /// Rollbacks to a sealed prefix.
    pub kv_rollbacks: usize,
    /// Tokens re-forwarded during replay.
    pub replayed_tokens: usize,
    /// Graph fingerprints checked.
    pub graphs_verified: usize,
    /// Fingerprint mismatches.
    pub graph_mismatches: usize,
    /// Poisoned graphs rebuilt.
    pub graph_rebuilds: usize,
    /// Corruption-streak escalations to single-backend fallback.
    pub fallback_escalations: usize,
    /// Simulated time charged to verification kernels + rendezvous.
    pub verify_time: SimTime,
    /// Latency of each recovery action, in occurrence order.
    pub recompute_latencies: Vec<SimTime>,
}

impl IntegrityCounters {
    /// Fold the counters into the serializable summary. `total` is the
    /// run's full simulated duration (the denominator of the overhead
    /// percentage).
    pub fn summary(&self, total: SimTime) -> IntegritySummary {
        let mut lat = self.recompute_latencies.clone();
        lat.sort_unstable();
        let pct = |p: usize| -> SimTime {
            if lat.is_empty() {
                SimTime::ZERO
            } else {
                lat[(lat.len() - 1) * p / 100]
            }
        };
        let overhead = if total.as_nanos() == 0 {
            0
        } else {
            self.verify_time.as_nanos() * 100 / total.as_nanos()
        };
        IntegritySummary {
            injected: self.injected,
            detected: self.detected,
            corrected: self.corrected,
            uncorrectable: self.uncorrectable,
            tiles_verified: self.tiles_verified,
            tile_mismatches: self.tile_mismatches,
            tile_recomputes: self.tile_recomputes,
            kv_rows_verified: self.kv_rows_verified,
            kv_mismatches: self.kv_mismatches,
            kv_rollbacks: self.kv_rollbacks,
            replayed_tokens: self.replayed_tokens,
            graphs_verified: self.graphs_verified,
            graph_mismatches: self.graph_mismatches,
            graph_rebuilds: self.graph_rebuilds,
            fallback_escalations: self.fallback_escalations,
            verify_overhead_pct: overhead,
            recompute_p50: pct(50),
            recompute_p99: pct(99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(!IntegrityMode::Off.verifies());
        assert!(IntegrityMode::Verify.verifies());
        assert!(!IntegrityMode::Verify.recovers());
        assert!(IntegrityMode::Recover.verifies());
        assert!(IntegrityMode::Recover.recovers());
    }

    #[test]
    fn summary_percentiles_and_overhead() {
        let mut c = IntegrityCounters {
            verify_time: SimTime::from_millis(5),
            ..IntegrityCounters::default()
        };
        c.recompute_latencies = (1..=100).map(SimTime::from_micros).collect();
        let s = c.summary(SimTime::from_millis(100));
        assert_eq!(s.verify_overhead_pct, 5);
        assert_eq!(s.recompute_p50, SimTime::from_micros(50));
        assert_eq!(s.recompute_p99, SimTime::from_micros(99));
        // Empty-run denominators do not divide by zero.
        let empty = IntegrityCounters::default().summary(SimTime::ZERO);
        assert_eq!(empty.verify_overhead_pct, 0);
        assert_eq!(empty.recompute_p50, SimTime::ZERO);
    }
}
