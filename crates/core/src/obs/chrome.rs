//! Chrome trace-event JSON export.
//!
//! The output loads directly in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`. Encoding choices, all in service of byte
//! stability and lintability:
//!
//! - Spans are `B`/`E` *duration-event pairs* (not `X` complete
//!   events), so "every submit has a matching complete" is a real
//!   property of the artifact that `analyze timeline` can check with
//!   a per-track stack.
//! - Every `ts` is an **integer count of simulated nanoseconds**. The
//!   trace-event format nominally reads `ts` as microseconds, so one
//!   displayed microsecond equals one simulated nanosecond — a pure
//!   relabeling that keeps sub-microsecond sync costs visible and the
//!   file free of floating point.
//! - JSON is rendered by hand, one event per line, with a fixed key
//!   order — two same-seed runs produce byte-identical files (the CI
//!   `cmp` gate).
//! - One process row per [`Track`] (`process_name`/`process_sort_index`
//!   metadata), and `s`/`f` flow events with shared ids crossing
//!   tracks at sync edges.

use super::timeline::{Timeline, Track};

/// Escape a string for a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `tl` as a Chrome trace-event JSON document.
///
/// Metadata rows for all four tracks are always emitted (so the
/// Perfetto layout is stable across engines), followed by each
/// track's `B`/`E` span events in stack order, then flow events
/// sorted by id.
pub fn to_chrome_json(tl: &Timeline) -> String {
    let mut events: Vec<String> = Vec::new();

    for track in Track::ALL {
        let pid = track.pid();
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":1,\
             \"args\":{{\"name\":\"{}\"}}}}",
            track.name()
        ));
        events.push(format!(
            "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"tid\":1,\
             \"args\":{{\"sort_index\":{pid}}}}}"
        ));
    }

    for track in Track::ALL {
        let pid = track.pid();
        // Stack-disciplined traversal: sorted parents-first; close
        // every span whose end precedes the next span's start.
        let mut stack: Vec<(&str, &str, u64)> = Vec::new(); // (name, cat, end)
        let emit_end = |events: &mut Vec<String>, (name, cat, end): (&str, &str, u64)| {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{},\
                 \"pid\":{},\"tid\":1}}",
                escape(name),
                cat,
                end,
                pid
            ));
        };
        for span in tl.track_spans(track) {
            while let Some(top) = stack.last() {
                if top.2 <= span.start.as_nanos() {
                    let top = stack.pop().expect("non-empty stack");
                    emit_end(&mut events, top);
                } else {
                    break;
                }
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\
                 \"pid\":{},\"tid\":1}}",
                escape(&span.name),
                span.kind.cat(),
                span.start.as_nanos(),
                pid
            ));
            stack.push((&span.name, span.kind.cat(), span.end.as_nanos()));
        }
        while let Some(top) = stack.pop() {
            emit_end(&mut events, top);
        }
    }

    let mut flows: Vec<_> = tl.flows().iter().collect();
    flows.sort_by_key(|f| f.id);
    for f in flows {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":{},\
             \"pid\":{},\"tid\":1,\"id\":{}}}",
            escape(&f.name),
            f.from_time.as_nanos(),
            f.from_track.pid(),
            f.id
        ));
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"ts\":{},\
             \"pid\":{},\"tid\":1,\"id\":{}}}",
            escape(&f.name),
            f.to_time.as_nanos(),
            f.to_track.pid(),
            f.id
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::super::timeline::{SpanKind, Timeline, Track};
    use super::*;
    use hetero_soc::SimTime;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn export_parses_and_has_all_track_rows() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Gpu, SpanKind::Kernel, "qkv", us(0), us(10));
        let json = to_chrome_json(&tl);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v["traceEvents"].as_array().expect("array");
        // 4 tracks × 2 metadata rows + 1 B + 1 E.
        assert_eq!(events.len(), 10);
        for name in ["GPU", "NPU", "CPU", "Controller"] {
            assert!(json.contains(&format!("\"name\":\"{name}\"")), "{name} row");
        }
    }

    #[test]
    fn nested_spans_close_children_before_parents() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Cpu, SpanKind::Phase, "prefill", us(0), us(100));
        tl.push_span(Track::Cpu, SpanKind::Kernel, "inner", us(10), us(100));
        let json = to_chrome_json(&tl);
        let inner_e = json.find("\"name\":\"inner\",\"cat\":\"kernel\",\"ph\":\"E\"");
        let outer_e = json.find("\"name\":\"prefill\",\"cat\":\"phase\",\"ph\":\"E\"");
        assert!(inner_e.expect("inner E") < outer_e.expect("outer E"));
    }

    #[test]
    fn flow_events_share_ids_across_tracks() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Gpu, SpanKind::Kernel, "a", us(0), us(10));
        tl.push_span(Track::Npu, SpanKind::Kernel, "b", us(10), us(20));
        tl.push_flow("sync:fast", Track::Gpu, us(10), Track::Npu, us(10));
        let json = to_chrome_json(&tl);
        assert!(json.contains("\"ph\":\"s\",\"ts\":10000,\"pid\":1,\"tid\":1,\"id\":0"));
        assert!(
            json.contains("\"ph\":\"f\",\"bp\":\"e\",\"ts\":10000,\"pid\":2,\"tid\":1,\"id\":0")
        );
    }

    #[test]
    fn timestamps_are_integer_nanoseconds() {
        let mut tl = Timeline::new();
        tl.push_span(
            Track::Gpu,
            SpanKind::Kernel,
            "a",
            SimTime::from_nanos(1),
            us(3),
        );
        let json = to_chrome_json(&tl);
        assert!(json.contains("\"ts\":1,"), "{json}");
        assert!(json.contains("\"ts\":3000,"), "{json}");
    }

    #[test]
    fn names_are_escaped() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Gpu, SpanKind::Kernel, "a\"b\\c", us(0), us(1));
        let json = to_chrome_json(&tl);
        assert!(json.contains("a\\\"b\\\\c"), "{json}");
        serde_json::from_str::<serde_json::Value>(&json).expect("still valid JSON");
    }
}
