//! ASCII swimlane rendering of a timeline for terminal-only
//! inspection (the `timeline` bench bin).
//!
//! Each track becomes one fixed-width row; every column covers an
//! equal slice of simulated time and is painted with the
//! highest-priority span kind active anywhere in that slice:
//! `#` kernel execution, `~` sync wait, `c` graph compile,
//! `*` controller action, `.` idle. Phases are rendered on a separate
//! header row (`P` prefill, `D` decode, `-` other).

use super::timeline::{SpanKind, Timeline, Track};

/// Paint priority: higher wins when kinds share a column.
fn glyph(kind: SpanKind) -> (u8, char) {
    match kind {
        SpanKind::Kernel => (4, '#'),
        SpanKind::Sync => (3, '~'),
        SpanKind::Cache => (2, 'c'),
        SpanKind::Control => (1, '*'),
        SpanKind::Phase => (0, '.'),
    }
}

/// Render `tl` as an ASCII swimlane, `width` columns wide.
///
/// Deterministic: depends only on the timeline's contents. Returns a
/// short notice for an empty timeline.
pub fn render(tl: &Timeline, width: usize) -> String {
    let width = width.max(10);
    let end = tl.end_time().as_nanos();
    if end == 0 || tl.spans().is_empty() {
        return "timeline: (empty)\n".to_string();
    }
    // Column i covers [i*end/width, (i+1)*end/width).
    let col_of = |ns: u64| ((ns.saturating_mul(width as u64)) / end).min(width as u64 - 1) as usize;

    let mut out = String::new();

    // Phase header row.
    let mut phase_row = vec!['-'; width];
    for s in tl.spans().iter().filter(|s| s.kind == SpanKind::Phase) {
        let mark = s.name.chars().next().unwrap_or('-').to_ascii_uppercase();
        for cell in phase_row
            .iter_mut()
            .take(col_of(s.end.as_nanos().saturating_sub(1)) + 1)
            .skip(col_of(s.start.as_nanos()))
        {
            *cell = mark;
        }
    }
    out.push_str(&format!(
        "{:>10} |{}|\n",
        "phase",
        phase_row.iter().collect::<String>()
    ));

    for track in Track::ALL {
        let mut row = vec![(0u8, '.'); width];
        for s in tl.spans().iter().filter(|s| s.track == track) {
            let (prio, ch) = glyph(s.kind);
            if prio == 0 {
                continue;
            }
            let lo = col_of(s.start.as_nanos());
            let hi = col_of(s.end.as_nanos().saturating_sub(1).max(s.start.as_nanos()));
            for cell in row.iter_mut().take(hi + 1).skip(lo) {
                if prio > cell.0 {
                    *cell = (prio, ch);
                }
            }
        }
        let line: String = row.iter().map(|(_, c)| *c).collect();
        out.push_str(&format!("{:>10} |{line}|\n", track.name()));
    }

    out.push_str(&format!(
        "{:>10} |0{:>w$}|\n",
        "t (ms)",
        format!("{:.2}", tl.end_time().as_millis_f64()),
        w = width - 1
    ));
    out.push_str("legend: # kernel  ~ sync wait  c graph compile  * controller  . idle\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_soc::SimTime;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn empty_timeline_renders_notice() {
        assert!(render(&Timeline::new(), 80).contains("(empty)"));
    }

    #[test]
    fn rows_cover_every_track_and_scale() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Cpu, SpanKind::Phase, "prefill", us(0), us(100));
        tl.push_span(Track::Gpu, SpanKind::Kernel, "a", us(0), us(50));
        tl.push_span(Track::Npu, SpanKind::Sync, "switch", us(50), us(100));
        let s = render(&tl, 40);
        for label in ["GPU", "NPU", "CPU", "Controller", "phase", "t (ms)"] {
            assert!(s.contains(label), "missing {label} in:\n{s}");
        }
        // GPU busy in the first half, idle in the second.
        let gpu_row = s.lines().find(|l| l.contains("GPU")).expect("gpu row");
        assert!(gpu_row.contains('#'));
        assert!(gpu_row.contains('.'));
        let npu_row = s.lines().find(|l| l.contains("NPU")).expect("npu row");
        assert!(npu_row.contains('~'));
        // Phase header uses the phase initial.
        assert!(s.lines().next().expect("phase row").contains('P'));
    }

    #[test]
    fn kernel_paints_over_sync_in_shared_column() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Gpu, SpanKind::Sync, "w", us(0), us(100));
        tl.push_span(Track::Gpu, SpanKind::Kernel, "k", us(0), us(100));
        let s = render(&tl, 20);
        let gpu_row = s.lines().find(|l| l.contains("GPU")).expect("gpu row");
        assert!(!gpu_row.contains('~'), "{s}");
    }

    #[test]
    fn render_is_deterministic() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Npu, SpanKind::Kernel, "k", us(3), us(9));
        assert_eq!(render(&tl, 64), render(&tl, 64));
    }
}
