//! Deterministic observability: span timelines, Chrome-trace export,
//! and an all-integer metrics registry.
//!
//! Every timestamp in this module is simulated time ([`SimTime`],
//! integer nanoseconds) taken from the SoC simulator's clock — never
//! the wall clock — so a captured timeline is a pure function of the
//! session's inputs and two same-seed runs serialize byte-identically
//! (the CI trace-determinism gate `cmp`s the files).
//!
//! The layer has three parts:
//!
//! - [`Timeline`] / [`TimelineRecorder`]: spans (kernel execution,
//!   sync waits, graph compiles, controller actions) on one track per
//!   hardware unit ([`Track`]), plus flow edges across synchronization
//!   points. Engines record through the same hook style as the
//!   concurrency log (`enable_timeline` / `take_timeline` on
//!   [`crate::engines::Engine`]).
//! - [`chrome::to_chrome_json`]: exports a timeline as Chrome
//!   trace-event JSON loadable in Perfetto (`ui.perfetto.dev`), with
//!   one process row per track and `s`/`f` flow arrows across sync
//!   edges.
//! - [`MetricsRegistry`] / [`MetricsSnapshot`]: integer counters and
//!   fixed-bucket histograms derived from a timeline, attached to
//!   [`crate::report::SessionReport`] behind an opt-in so existing
//!   golden reports stay byte-identical.
//!
//! # Examples
//!
//! Build a two-span timeline by hand and export it:
//!
//! ```
//! use hetero_soc::SimTime;
//! use heterollm::obs::{chrome, SpanKind, Timeline, Track};
//!
//! let mut tl = Timeline::new();
//! let us = SimTime::from_micros;
//! tl.push_span(Track::Gpu, SpanKind::Kernel, "qkv", us(0), us(40));
//! tl.push_span(Track::Npu, SpanKind::Kernel, "gate_up", us(40), us(90));
//! tl.push_flow("sync:fast", Track::Gpu, us(40), Track::Npu, us(40));
//! assert!(tl.check_well_formed().is_ok());
//!
//! let json = chrome::to_chrome_json(&tl);
//! assert!(json.contains("\"traceEvents\""));
//! assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
//! ```

pub mod chrome;
pub mod metrics;
pub mod swimlane;
pub mod timeline;

pub use metrics::{Histogram, MetricCounter, MetricHistogram, MetricsRegistry, MetricsSnapshot};
pub use timeline::{FlowEdge, Label, Span, SpanKind, Timeline, TimelineRecorder, Track};

#[allow(unused_imports)] // rustdoc link target
use hetero_soc::SimTime;
