//! All-integer metrics: counters and fixed-bucket histograms.
//!
//! Same determinism discipline as
//! [`crate::runtime::DegradationSummary`] and
//! [`crate::report::IntegritySummary`]: every value is a `u64`
//! (counts or nanoseconds), containers iterate in sorted order, and
//! the serialized form is byte-stable across same-seed runs.
//!
//! # Examples
//!
//! ```
//! use hetero_soc::SimTime;
//! use heterollm::obs::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.incr("graph_hits", 3);
//! reg.observe("kernel_ns_gpu", SimTime::from_micros(42));
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters[0].name, "graph_hits");
//! assert_eq!(snap.counters[0].value, 3);
//! assert_eq!(snap.histograms[0].count, 1);
//! // Every serialized value is an integer: no '.' outside names.
//! let json = serde_json::to_string(&snap).unwrap();
//! assert!(!json.contains('.'));
//! ```

use std::collections::BTreeMap;

use hetero_soc::SimTime;
use serde::{Deserialize, Serialize};

use super::timeline::{SpanKind, Timeline, Track};

/// Number of power-of-two histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket duration histogram: bucket `i` counts observations
/// with `floor(log2(ns)) == i` (zero-duration observations land in
/// bucket 0), clamped to [`HISTOGRAM_BUCKETS`] buckets — covering
/// 1 ns to ~2 simulated seconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum_ns: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn observe(&mut self, t: SimTime) {
        let ns = t.as_nanos();
        let bucket = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed durations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Fold another histogram into this one (bucket-wise sums).
    ///
    /// Merging is commutative and associative, so per-device fleet
    /// histograms can be combined in any order with a byte-identical
    /// result.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Upper bound (inclusive, nanoseconds) of the bucket holding the
    /// `num/den` nearest-rank quantile; 0 when the histogram is empty.
    ///
    /// Because buckets are powers of two, the bound is exact to within
    /// one bucket of the true sample quantile — the property the fleet
    /// merge proptests pin against a sorted-sample oracle.
    pub fn quantile_upper_ns(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        // Nearest-rank: the ceil(num/den * count)-th smallest sample
        // (1-based), clamped to at least the first.
        let rank = (u128::from(num) * u128::from(self.count)).div_ceil(u128::from(den));
        let rank = rank.max(1) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return (1u64 << (i + 1)) - 1;
            }
        }
        (1u64 << HISTOGRAM_BUCKETS) - 1
    }
}

/// One named counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricCounter {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One named histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricHistogram {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed durations, nanoseconds.
    pub sum_ns: u64,
    /// Power-of-two bucket counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

/// Serializable, byte-stable view of a [`MetricsRegistry`]: counters
/// and histograms sorted by name, every value an integer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<MetricCounter>,
    /// All histograms, sorted by name.
    pub histograms: Vec<MetricHistogram>,
}

/// Mutable registry of named counters and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// New, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump `name` by `n`.
    pub fn incr(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Record a duration observation under `name`.
    pub fn observe(&mut self, name: &str, t: SimTime) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(t);
    }

    /// Value of counter `name` (zero if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Derive the standard session metrics from a recorded timeline:
    ///
    /// - the timeline's own named counters (graph-cache lookups,
    ///   switches, controller decisions), carried over verbatim;
    /// - `spans_<track>` / `flows_total` structural counts;
    /// - `sync_wait_ns` — total simulated time spent in sync spans;
    /// - `kernel_ns_<track>` histograms of kernel-span durations and a
    ///   `sync_ns` histogram of sync-span durations.
    pub fn from_timeline(tl: &Timeline) -> Self {
        let mut reg = Self::new();
        for (name, n) in tl.counters() {
            reg.incr(name, *n);
        }
        reg.incr("flows_total", tl.flows().len() as u64);
        for track in Track::ALL {
            let name = format!("spans_{}", track.name().to_ascii_lowercase());
            reg.incr(
                &name,
                tl.spans().iter().filter(|s| s.track == track).count() as u64,
            );
        }
        for span in tl.spans() {
            match span.kind {
                SpanKind::Kernel => {
                    let name = format!("kernel_ns_{}", span.track.name().to_ascii_lowercase());
                    reg.observe(&name, span.duration());
                }
                SpanKind::Sync => {
                    reg.incr("sync_wait_ns", span.duration().as_nanos());
                    reg.observe("sync_ns", span.duration());
                }
                SpanKind::Cache => {
                    reg.incr("graph_compile_ns", span.duration().as_nanos());
                }
                SpanKind::Phase | SpanKind::Control => {}
            }
        }
        reg
    }

    /// Fold another registry into this one: counters add, histograms
    /// merge bucket-wise. Order-independent, like
    /// [`Histogram::merge`].
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Freeze into the serializable, name-sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, value)| MetricCounter {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| MetricHistogram {
                    name: name.clone(),
                    count: h.count,
                    sum_ns: h.sum_ns,
                    buckets: h.buckets.to_vec(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::timeline::TimelineRecorder;
    use super::*;
    use hetero_soc::sync::SyncMechanism;
    use hetero_soc::Backend;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new();
        h.observe(SimTime::ZERO); // bucket 0
        h.observe(SimTime::from_nanos(1)); // bucket 0
        h.observe(SimTime::from_nanos(1024)); // bucket 10
        h.observe(SimTime::from_nanos(1500)); // bucket 10
        h.observe(SimTime::from_secs_f64(10.0)); // clamped to last bucket
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[10], 2);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn merge_sums_counts_and_buckets() {
        let mut a = Histogram::new();
        a.observe(SimTime::from_nanos(3));
        a.observe(SimTime::from_micros(10));
        let mut b = Histogram::new();
        b.observe(SimTime::from_nanos(3));
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum_ns(), a.sum_ns() + b.sum_ns());
        assert_eq!(merged.buckets()[1], 2); // two 3 ns observations

        // Commutative: b.merge(a) gives the same histogram.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(merged, other);
    }

    #[test]
    fn quantile_upper_bound_brackets_samples() {
        let mut h = Histogram::new();
        for ns in [10u64, 20, 30, 1000, 5000] {
            h.observe(SimTime::from_nanos(ns));
        }
        // p50 is the 3rd sample (30 ns, bucket 4: [16, 32)).
        assert_eq!(h.quantile_upper_ns(50, 100), 31);
        // p100 is the largest sample (5000 ns, bucket 12).
        assert_eq!(h.quantile_upper_ns(100, 100), 8191);
        assert_eq!(Histogram::new().quantile_upper_ns(99, 100), 0);
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        a.incr("served", 2);
        a.observe("ttft_ns", us(10));
        let mut b = MetricsRegistry::new();
        b.incr("served", 5);
        b.incr("shed", 1);
        b.observe("ttft_ns", us(90));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.counter("served"), 7);
        assert_eq!(ab.histogram("ttft_ns").expect("merged").count(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_all_integer() {
        let mut reg = MetricsRegistry::new();
        reg.incr("z_metric", 1);
        reg.incr("a_metric", 2);
        reg.observe("lat", us(5));
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "a_metric");
        assert_eq!(snap.counters[1].name, "z_metric");
        let json = serde_json::to_string(&snap).expect("serialize");
        assert!(!json.contains('.'), "non-integer value leaked: {json}");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, snap);
    }

    #[test]
    fn from_timeline_derives_span_and_sync_metrics() {
        let mut rec = TimelineRecorder::new();
        rec.kernel_named(Backend::Gpu, "qkv", us(0), us(40));
        rec.switch(
            Backend::Gpu,
            Backend::Npu,
            SyncMechanism::Fast,
            us(40),
            us(43),
        );
        rec.kernel_named(Backend::Npu, "gate_up", us(43), us(90));
        rec.graph_lookup(true);
        let reg = MetricsRegistry::from_timeline(&rec.finish());
        assert_eq!(reg.counter("spans_gpu"), 1);
        assert_eq!(reg.counter("spans_npu"), 2); // kernel + switch wait
        assert_eq!(reg.counter("graph_hits"), 1);
        assert_eq!(reg.counter("switches"), 1);
        assert_eq!(reg.counter("flows_total"), 1);
        assert_eq!(reg.counter("sync_wait_ns"), us(3).as_nanos());
        assert_eq!(reg.histogram("kernel_ns_gpu").expect("gpu hist").count(), 1);
        assert_eq!(reg.histogram("sync_ns").expect("sync hist").count(), 1);
    }

    #[test]
    fn byte_stable_across_identical_builds() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.incr("switches", 7);
            reg.observe("lat", us(10));
            reg.observe("lat", us(20));
            serde_json::to_string(&reg.snapshot()).expect("serialize")
        };
        assert_eq!(build(), build());
    }
}
