//! Span/flow timeline types and the engine-side recorder.
//!
//! A [`Timeline`] is a flat list of closed spans on per-hardware-unit
//! tracks plus flow edges across synchronization points, all stamped
//! with simulated time. Spans on one track must *nest*: two spans
//! either are disjoint or one contains the other — the invariant the
//! Chrome exporter's `B`/`E` encoding relies on and
//! `hetero-analyze`'s `timeline` lint re-checks on the exported
//! artifact.

use std::collections::BTreeMap;
use std::sync::Arc;

use hetero_soc::sync::SyncMechanism;
use hetero_soc::{Backend, KernelDesc, OpKind, SimTime};

/// A shared, immutable display label for spans and flows.
///
/// Cloning a `Label` bumps a reference count instead of copying
/// characters, so splicing per-request engine timelines into the
/// controller-wide timeline ([`Timeline::append_shifted`]) is
/// allocation-free per span, and [`TimelineRecorder`] hands the same
/// interned kernel name to every span that repeats it rather than
/// re-formatting and re-allocating per kernel launch — the dominant
/// allocation on the observed-session hot path.
///
/// It dereferences to `str`, so every read-side consumer (the Chrome
/// exporter, the swimlane renderer, assertions against `&str`
/// literals) treats it exactly like the `String` it replaced.
///
/// # Examples
///
/// ```
/// use heterollm::obs::Label;
///
/// let a = Label::from("matmul[256x4096x4096]");
/// let b = a.clone(); // O(1): shared, not copied
/// assert_eq!(a, b);
/// assert_eq!(b, "matmul[256x4096x4096]");
/// assert!(a.starts_with("matmul")); // derefs to &str
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl std::ops::Deref for Label {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Self(Arc::from(s))
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Self(Arc::from(s))
    }
}

impl From<&String> for Label {
    fn from(s: &String) -> Self {
        Self(Arc::from(s.as_str()))
    }
}

impl From<&Label> for Label {
    fn from(l: &Label) -> Self {
        l.clone()
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One horizontal row of the timeline — a hardware unit or the
/// runtime controller's control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// GPU queue.
    Gpu,
    /// NPU queue.
    Npu,
    /// CPU (aux kernels, graph compiles, rendezvous bookkeeping).
    Cpu,
    /// Runtime controller (replans, fallbacks, quarantines, shedding).
    Controller,
}

impl Track {
    /// All tracks in display order.
    pub const ALL: [Track; 4] = [Track::Gpu, Track::Npu, Track::Cpu, Track::Controller];

    /// Display name (the Perfetto process row label).
    pub const fn name(self) -> &'static str {
        match self {
            Self::Gpu => "GPU",
            Self::Npu => "NPU",
            Self::Cpu => "CPU",
            Self::Controller => "Controller",
        }
    }

    /// Stable process id in the Chrome trace encoding.
    pub const fn pid(self) -> u32 {
        match self {
            Self::Gpu => 1,
            Self::Npu => 2,
            Self::Cpu => 3,
            Self::Controller => 4,
        }
    }

    /// The track a backend's kernels land on.
    pub const fn from_backend(b: Backend) -> Self {
        match b {
            Backend::Gpu => Self::Gpu,
            Backend::Npu => Self::Npu,
            Backend::Cpu => Self::Cpu,
        }
    }
}

/// What a span represents (the Chrome `cat` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Kernel execution (submit at `start`, complete at `end`).
    Kernel,
    /// Synchronization wait: backend switch, rendezvous, queue restart.
    Sync,
    /// NPU graph compilation.
    Cache,
    /// A whole inference phase (prefill, decode) or request.
    Phase,
    /// Runtime-controller action (replan, fallback, quarantine, shed).
    Control,
}

impl SpanKind {
    /// Short lowercase category name.
    pub const fn cat(self) -> &'static str {
        match self {
            Self::Kernel => "kernel",
            Self::Sync => "sync",
            Self::Cache => "cache",
            Self::Phase => "phase",
            Self::Control => "control",
        }
    }
}

/// One closed interval on one track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Track the span occupies.
    pub track: Track,
    /// Category.
    pub kind: SpanKind,
    /// Display name (kernel op, sync mechanism, controller action).
    pub name: Label,
    /// Start, simulated nanoseconds.
    pub start: SimTime,
    /// End, simulated nanoseconds (`end >= start`).
    pub end: SimTime,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// A flow arrow across a synchronization edge (Chrome `s` → `f`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEdge {
    /// Unique id binding the `s` and `f` events.
    pub id: u64,
    /// Display name, e.g. `sync:fast`.
    pub name: Label,
    /// Producing track.
    pub from_track: Track,
    /// Time on the producing track.
    pub from_time: SimTime,
    /// Consuming track.
    pub to_track: Track,
    /// Time on the consuming track (`to_time >= from_time`).
    pub to_time: SimTime,
}

/// A recorded session timeline: spans, flows, and named integer
/// counters (graph-cache hits, controller decisions, …) that have no
/// natural span representation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    spans: Vec<Span>,
    flows: Vec<FlowEdge>,
    counters: BTreeMap<String, u64>,
    next_flow_id: u64,
}

impl Timeline {
    /// New, empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a closed span. `end` is clamped up to `start` so a
    /// zero-cost action still leaves a (zero-length) mark.
    pub fn push_span(
        &mut self,
        track: Track,
        kind: SpanKind,
        name: impl Into<Label>,
        start: SimTime,
        end: SimTime,
    ) {
        self.spans.push(Span {
            track,
            kind,
            name: name.into(),
            start,
            end: end.max(start),
        });
    }

    /// Record a flow edge, returning its id.
    pub fn push_flow(
        &mut self,
        name: impl Into<Label>,
        from_track: Track,
        from_time: SimTime,
        to_track: Track,
        to_time: SimTime,
    ) -> u64 {
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        self.flows.push(FlowEdge {
            id,
            name: name.into(),
            from_track,
            from_time,
            to_track,
            to_time: to_time.max(from_time),
        });
        id
    }

    /// Bump the named counter by `n`.
    pub fn count(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// All spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All flow edges, in recording order.
    pub fn flows(&self) -> &[FlowEdge] {
        &self.flows
    }

    /// Named counters, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.flows.is_empty() && self.counters.is_empty()
    }

    /// Latest time any span or flow touches.
    pub fn end_time(&self) -> SimTime {
        let span_max = self.spans.iter().map(|s| s.end).max();
        let flow_max = self.flows.iter().map(|f| f.to_time).max();
        span_max.max(flow_max).unwrap_or(SimTime::ZERO)
    }

    /// Merge `other` into `self`, mapping every time `t` recorded
    /// against `other`'s local clock to `local_base + (t - other_base)`.
    ///
    /// The runtime controller uses this to splice per-request engine
    /// timelines (whose SoC clocks restart at zero on every engine
    /// rebuild) into controller time, which keeps advancing across
    /// rebuilds and queue gaps. Flow ids are re-based to stay unique;
    /// counters are summed.
    pub fn append_shifted(&mut self, other: &Timeline, other_base: SimTime, local_base: SimTime) {
        let shift = |t: SimTime| local_base + t.saturating_sub(other_base);
        for s in &other.spans {
            self.spans.push(Span {
                track: s.track,
                kind: s.kind,
                name: s.name.clone(),
                start: shift(s.start),
                end: shift(s.end),
            });
        }
        let id_base = self.next_flow_id;
        for f in &other.flows {
            self.flows.push(FlowEdge {
                id: id_base + f.id,
                name: f.name.clone(),
                from_track: f.from_track,
                from_time: shift(f.from_time),
                to_track: f.to_track,
                to_time: shift(f.to_time),
            });
        }
        self.next_flow_id = id_base + other.next_flow_id;
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += n;
        }
    }

    /// Spans of one track sorted for stack-disciplined traversal:
    /// by start ascending, then end *descending* (parents before
    /// children at equal starts), then recording order.
    pub(crate) fn track_spans(&self, track: Track) -> Vec<&Span> {
        let mut spans: Vec<(usize, &Span)> = self
            .spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.track == track)
            .collect();
        spans.sort_by(|(ia, a), (ib, b)| {
            a.start
                .cmp(&b.start)
                .then(b.end.cmp(&a.end))
                .then(ia.cmp(ib))
        });
        spans.into_iter().map(|(_, s)| s).collect()
    }

    /// Check the structural invariants the exported trace must hold:
    /// every span has `end >= start`, spans on one track nest (no
    /// partial overlap), and every flow edge moves forward in time.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for s in &self.spans {
            if s.end < s.start {
                return Err(format!("span {:?} ends before it starts", s.name));
            }
        }
        for track in Track::ALL {
            let mut stack: Vec<&Span> = Vec::new();
            for span in self.track_spans(track) {
                while let Some(top) = stack.last() {
                    if top.end <= span.start {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(top) = stack.last() {
                    if span.end > top.end {
                        return Err(format!(
                            "track {}: span {:?} [{}, {}] partially overlaps {:?} [{}, {}]",
                            track.name(),
                            span.name,
                            span.start.as_nanos(),
                            span.end.as_nanos(),
                            top.name,
                            top.start.as_nanos(),
                            top.end.as_nanos(),
                        ));
                    }
                }
                stack.push(span);
            }
        }
        for f in &self.flows {
            if f.to_time < f.from_time {
                return Err(format!("flow {:?} travels backwards in time", f.name));
            }
        }
        Ok(())
    }
}

/// Engine-side recorder: the timeline analog of
/// [`crate::trace::ConcurrencyRecorder`]. Engines call it at the same
/// hook points (serial kernels, backend switches, parallel sections)
/// with SoC-clock readings taken before and after each action.
///
/// Label memoization: a decode loop launches the *same* kernels layer
/// after layer, token after token, so the recorder interns every
/// derived name ([`Label`]) keyed by what it was derived from (matmul
/// shape, sync mechanism, compile bucket) and hands out O(1) clones —
/// the formatted string is built once per distinct name per session,
/// not once per span.
#[derive(Debug, Default)]
pub struct TimelineRecorder {
    tl: Timeline,
    matmul_labels: BTreeMap<(usize, usize, usize), Label>,
    static_labels: BTreeMap<&'static str, Label>,
    sync_labels: BTreeMap<(&'static str, &'static str), Label>,
    compile_labels: BTreeMap<usize, Label>,
}

/// Display name of a kernel, derived from its descriptor.
pub(crate) fn kernel_span_name(kernel: &KernelDesc) -> String {
    match &kernel.op {
        OpKind::Matmul { shape, .. } => format!("matmul[{}x{}x{}]", shape.m, shape.k, shape.n),
        OpKind::MemBound { label, .. } => label.name().to_string(),
        OpKind::HostCopy { .. } => "host_copy".to_string(),
    }
}

impl TimelineRecorder {
    /// New recorder with an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interned label for a kernel descriptor.
    fn kernel_label(&mut self, kernel: &KernelDesc) -> Label {
        match &kernel.op {
            OpKind::Matmul { shape, .. } => self
                .matmul_labels
                .entry((shape.m, shape.k, shape.n))
                .or_insert_with(|| Label::from(kernel_span_name(kernel)))
                .clone(),
            OpKind::MemBound { label, .. } => Self::intern(&mut self.static_labels, label.name()),
            OpKind::HostCopy { .. } => Self::intern(&mut self.static_labels, "host_copy"),
        }
    }

    /// The interned `prefix:mechanism` label (switch/rendezvous).
    fn sync_label(&mut self, prefix: &'static str, mechanism: SyncMechanism) -> Label {
        self.sync_labels
            .entry((prefix, mechanism.name()))
            .or_insert_with(|| Label::from(format!("{prefix}:{}", mechanism.name())))
            .clone()
    }

    fn intern(map: &mut BTreeMap<&'static str, Label>, s: &'static str) -> Label {
        map.entry(s).or_insert_with(|| Label::from(s)).clone()
    }

    /// A serial kernel ran on `backend` over `[start, end]`.
    pub fn kernel(&mut self, backend: Backend, kernel: &KernelDesc, start: SimTime, end: SimTime) {
        let name = self.kernel_label(kernel);
        let track = Track::from_backend(backend);
        self.tl.push_span(track, SpanKind::Kernel, name, start, end);
    }

    /// A serial kernel with an explicit display name (trace-op label).
    pub fn kernel_named(&mut self, backend: Backend, name: &str, start: SimTime, end: SimTime) {
        let track = Track::from_backend(backend);
        self.tl.push_span(track, SpanKind::Kernel, name, start, end);
    }

    /// A backend switch `from → to` paid `[start, end]` of sync cost.
    /// The wait lands on the destination track; a flow arrow crosses
    /// the sync edge.
    pub fn switch(
        &mut self,
        from: Backend,
        to: Backend,
        mechanism: SyncMechanism,
        start: SimTime,
        end: SimTime,
    ) {
        let name = self.sync_label("switch", mechanism);
        self.tl.push_span(
            Track::from_backend(to),
            SpanKind::Sync,
            name.clone(),
            start,
            end,
        );
        self.tl.push_flow(
            name,
            Track::from_backend(from),
            start,
            Track::from_backend(to),
            end,
        );
        self.tl.count("switches", 1);
    }

    /// A GPU∥NPU parallel section started at `start`; the GPU side
    /// finished at `gpu_end`, the NPU side at `npu_end`, and the
    /// rendezvous completed at `rendezvous_end`. Each side gets a
    /// kernel span; the rendezvous wait lands on the CPU track with a
    /// flow arrow from each producer.
    #[allow(clippy::too_many_arguments)]
    pub fn parallel_section(
        &mut self,
        gpu_name: &str,
        npu_name: &str,
        mechanism: SyncMechanism,
        start: SimTime,
        gpu_end: SimTime,
        npu_end: SimTime,
        rendezvous_end: SimTime,
    ) {
        self.tl
            .push_span(Track::Gpu, SpanKind::Kernel, gpu_name, start, gpu_end);
        self.tl
            .push_span(Track::Npu, SpanKind::Kernel, npu_name, start, npu_end);
        let rendezvous_start = gpu_end.max(npu_end);
        let name = self.sync_label("rendezvous", mechanism);
        self.tl.push_span(
            Track::Cpu,
            SpanKind::Sync,
            name.clone(),
            rendezvous_start,
            rendezvous_end,
        );
        self.tl.push_flow(
            name.clone(),
            Track::Gpu,
            gpu_end,
            Track::Cpu,
            rendezvous_start,
        );
        self.tl
            .push_flow(name, Track::Npu, npu_end, Track::Cpu, rendezvous_start);
        self.tl.count("parallel_sections", 1);
    }

    /// An NPU graph for sequence length `m` compiled over
    /// `[start, end]` (the CPU does the compiling).
    pub fn graph_compile(&mut self, m: usize, start: SimTime, end: SimTime) {
        let name = self
            .compile_labels
            .entry(m)
            .or_insert_with(|| Label::from(format!("graph_compile[{m}]")))
            .clone();
        self.tl
            .push_span(Track::Cpu, SpanKind::Cache, name, start, end);
    }

    /// Count a graph-cache lookup: hit (already compiled) or miss.
    pub fn graph_lookup(&mut self, hit: bool) {
        self.tl
            .count(if hit { "graph_hits" } else { "graph_misses" }, 1);
    }

    /// Bump a named counter (controller decisions, cache events).
    pub fn count(&mut self, name: &str, n: u64) {
        self.tl.count(name, n);
    }

    /// Record a controller-track action span.
    pub fn control(&mut self, name: &str, start: SimTime, end: SimTime) {
        self.tl
            .push_span(Track::Controller, SpanKind::Control, name, start, end);
    }

    /// Finish recording, yielding the timeline.
    pub fn finish(self) -> Timeline {
        self.tl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn spans_and_flows_record() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Gpu, SpanKind::Kernel, "a", us(0), us(10));
        let id = tl.push_flow("sync", Track::Gpu, us(10), Track::Npu, us(12));
        tl.count("graph_hits", 2);
        assert_eq!(tl.spans().len(), 1);
        assert_eq!(tl.flows()[0].id, id);
        assert_eq!(tl.counters()["graph_hits"], 2);
        assert_eq!(tl.end_time(), us(12));
        assert!(tl.check_well_formed().is_ok());
    }

    #[test]
    fn nesting_accepts_contained_and_disjoint_spans() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Cpu, SpanKind::Phase, "prefill", us(0), us(100));
        tl.push_span(Track::Cpu, SpanKind::Kernel, "a", us(0), us(40));
        tl.push_span(Track::Cpu, SpanKind::Kernel, "b", us(40), us(100));
        tl.push_span(Track::Cpu, SpanKind::Phase, "decode", us(100), us(150));
        assert!(tl.check_well_formed().is_ok());
    }

    #[test]
    fn nesting_rejects_partial_overlap() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Gpu, SpanKind::Kernel, "a", us(0), us(10));
        tl.push_span(Track::Gpu, SpanKind::Kernel, "b", us(5), us(15));
        let err = tl.check_well_formed().expect_err("partial overlap");
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn overlap_on_different_tracks_is_fine() {
        let mut tl = Timeline::new();
        tl.push_span(Track::Gpu, SpanKind::Kernel, "a", us(0), us(10));
        tl.push_span(Track::Npu, SpanKind::Kernel, "b", us(5), us(15));
        assert!(tl.check_well_formed().is_ok());
    }

    #[test]
    fn append_shifted_rebases_times_ids_and_counters() {
        let mut seg = Timeline::new();
        seg.push_span(Track::Npu, SpanKind::Kernel, "k", us(2), us(5));
        seg.push_flow("sync", Track::Npu, us(5), Track::Gpu, us(6));
        seg.count("graph_hits", 1);

        let mut tl = Timeline::new();
        tl.push_flow("sync", Track::Gpu, us(0), Track::Npu, us(1));
        tl.count("graph_hits", 2);
        // Segment clock 2µs ↦ controller clock 100µs.
        tl.append_shifted(&seg, us(2), us(100));

        assert_eq!(tl.spans()[0].start, us(100));
        assert_eq!(tl.spans()[0].end, us(103));
        assert_eq!(tl.flows().len(), 2);
        assert_ne!(tl.flows()[0].id, tl.flows()[1].id);
        assert_eq!(tl.flows()[1].from_time, us(103));
        assert_eq!(tl.counters()["graph_hits"], 3);
        // Fresh flows after the merge stay unique.
        let id = tl.push_flow("sync", Track::Gpu, us(0), Track::Npu, us(1));
        assert!(tl.flows().iter().filter(|f| f.id == id).count() == 1);
    }

    #[test]
    fn recorder_parallel_section_produces_cross_track_flows() {
        let mut rec = TimelineRecorder::new();
        rec.parallel_section(
            "matmul[256x4096x4096]",
            "matmul[256x4096x4096]",
            SyncMechanism::Fast,
            us(0),
            us(40),
            us(55),
            us(57),
        );
        let tl = rec.finish();
        assert!(tl.check_well_formed().is_ok());
        assert_eq!(tl.flows().len(), 2);
        assert_eq!(tl.counters()["parallel_sections"], 1);
        let rendezvous = tl
            .spans()
            .iter()
            .find(|s| s.kind == SpanKind::Sync)
            .expect("rendezvous span");
        assert_eq!(rendezvous.track, Track::Cpu);
        assert_eq!(rendezvous.start, us(55));
        assert_eq!(rendezvous.end, us(57));
    }

    #[test]
    fn recorder_switch_records_wait_on_destination_track() {
        let mut rec = TimelineRecorder::new();
        rec.switch(
            Backend::Gpu,
            Backend::Npu,
            SyncMechanism::Driver,
            us(10),
            us(860),
        );
        let tl = rec.finish();
        assert_eq!(tl.spans()[0].track, Track::Npu);
        assert_eq!(tl.spans()[0].name, "switch:driver");
        assert_eq!(tl.flows()[0].from_track, Track::Gpu);
        assert_eq!(tl.counters()["switches"], 1);
    }

    #[test]
    fn kernel_names_derive_from_descriptors() {
        use hetero_tensor::shape::MatmulShape;
        let mm = KernelDesc::matmul_w4a16(MatmulShape { m: 8, k: 16, n: 32 });
        assert_eq!(kernel_span_name(&mm), "matmul[8x16x32]");
        let mb = KernelDesc::mem_bound(hetero_soc::kernel::KernelLabel::Softmax, 1, 1, 1);
        assert_eq!(kernel_span_name(&mb), "softmax");
        assert_eq!(kernel_span_name(&KernelDesc::host_copy(64)), "host_copy");
    }
}
