//! Cold-start modeling: time from app launch to first usable request.
//!
//! §5.2.2 weighs graph-preparation strategies partly by their loading
//! overhead ("Pipe ... has less overhead in graph loading"). Cold start
//! has two components on a phone:
//!
//! 1. **Weight loading** — streaming the W4A16 checkpoint from UFS
//!    flash into the unified memory.
//! 2. **NPU graph preparation** — compiling (or deserializing) the
//!    static graphs the engine's strategy needs before the first
//!    request can run at full speed.
//!
//! Online-prepare defers all graph work to request time (fast launch,
//! slow first request); preloading every standard size does the
//! opposite.

use hetero_graph::{CompileModel, GraphCache};
use hetero_soc::calib::STANDARD_GRAPH_SIZES;
use hetero_soc::SimTime;
use serde::{Deserialize, Serialize};

use crate::model::ModelConfig;

/// Sequential read bandwidth of UFS 4.0 flash, GB/s.
pub const UFS_READ_GBPS: f64 = 2.0;

/// Fraction of full compile cost to *load* a previously compiled graph
/// from the on-disk cache (QNN context blobs deserialize much faster
/// than they compile, but not for free).
pub const GRAPH_LOAD_FRACTION: f64 = 0.15;

/// Cold-start breakdown for one engine configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ColdStartReport {
    /// Time to stream the quantized weights from flash.
    pub weight_load: SimTime,
    /// Time to prepare NPU graphs before the first request.
    pub graph_prep: SimTime,
    /// Total launch-to-ready time.
    pub total: SimTime,
}

/// Graph-preparation strategies at cold start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphPrep {
    /// Compile every standard prefill size plus the decode graph.
    CompileAllStandards,
    /// Load pre-compiled standard graphs from the on-disk cache.
    LoadCachedStandards,
    /// Prepare only the decode graph; prefill graphs are generated at
    /// request time (the Online-prepare strategy).
    DecodeOnly,
}

/// Compute the cold-start breakdown for `model` under `prep`.
pub fn cold_start(model: &ModelConfig, prep: GraphPrep) -> ColdStartReport {
    let weight_load =
        SimTime::from_secs_f64(model.weight_bytes_w4() as f64 / (UFS_READ_GBPS * 1e9));

    let mut cache = GraphCache::new(model.graph_set(), CompileModel::default());
    let graph_prep = match prep {
        GraphPrep::CompileAllStandards => {
            let mut t = cache.preload(&STANDARD_GRAPH_SIZES);
            t += cache.preload(&[1]);
            t
        }
        GraphPrep::LoadCachedStandards => {
            let mut t = cache.preload(&STANDARD_GRAPH_SIZES);
            t += cache.preload(&[1]);
            t.scale(GRAPH_LOAD_FRACTION)
        }
        GraphPrep::DecodeOnly => cache.preload(&[1]),
    };

    ColdStartReport {
        weight_load,
        graph_prep,
        total: weight_load + graph_prep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_load_scales_with_model_size() {
        let small = cold_start(&ModelConfig::internlm_1_8b(), GraphPrep::DecodeOnly);
        let large = cold_start(&ModelConfig::llama_8b(), GraphPrep::DecodeOnly);
        assert!(large.weight_load > small.weight_load.scale(3.0));
        // ≈4.5 GB at 2 GB/s ⇒ ≈2.3 s.
        let s = large.weight_load.as_secs_f64();
        assert!((1.5..3.5).contains(&s), "weight load {s}s");
    }

    #[test]
    fn prep_strategies_order_as_expected() {
        let m = ModelConfig::llama_8b();
        let compile = cold_start(&m, GraphPrep::CompileAllStandards);
        let cached = cold_start(&m, GraphPrep::LoadCachedStandards);
        let lazy = cold_start(&m, GraphPrep::DecodeOnly);
        assert!(compile.graph_prep > cached.graph_prep);
        assert!(cached.graph_prep > lazy.graph_prep);
        // Compiling all standards is seconds of work (6 sizes × 4 ops
        // at hundreds of ms each, Fig. 9).
        assert!(compile.graph_prep.as_secs_f64() > 2.0);
    }

    #[test]
    fn totals_are_component_sums() {
        let r = cold_start(&ModelConfig::llama_3b(), GraphPrep::LoadCachedStandards);
        assert_eq!(r.total, r.weight_load + r.graph_prep);
    }
}
