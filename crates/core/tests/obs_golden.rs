//! Golden-file tests pinning the observability layer's two exported
//! encodings: the Chrome trace-event JSON and the metrics snapshot.
//!
//! Both artifacts are consumed outside the crate — traces load in
//! Perfetto and are `cmp`'d by the CI determinism gate, metrics ride
//! on `SessionReport` — so any change to event layout, key order, or
//! value encoding must be an explicit, reviewed diff. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p heterollm --test obs_golden`.

use heterollm::obs::{chrome, MetricsRegistry, Timeline};
use heterollm::{EngineKind, InferenceSession, ModelConfig};

/// The pinned session: Hetero-tensor on InternLM-1.8B, 64-token
/// prompt, 1 decoded token — small enough that the golden trace stays
/// reviewable, big enough that the solver actually partitions across
/// GPU and NPU (sync flows, graph-cache work, both phases). The tiny
/// config is no good here: its shapes solve to GPU-only plans with no
/// cross-track structure to pin.
fn observed_session() -> Timeline {
    let mut session =
        InferenceSession::new(EngineKind::HeteroTensor, &ModelConfig::internlm_1_8b());
    let (_, tl) = session.run_observed(64, 1);
    tl
}

fn assert_golden(actual: &str, path: &str, what: &str) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, actual).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file checked in");
    assert_eq!(
        actual, golden,
        "{what} encoding changed; review and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_json_is_golden() {
    let tl = observed_session();
    tl.check_well_formed().expect("well-formed timeline");
    assert_golden(
        &chrome::to_chrome_json(&tl),
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/obs_trace.json"),
        "Chrome trace",
    );
}

#[test]
fn metrics_snapshot_json_is_golden_and_all_integer() {
    let tl = observed_session();
    let snap = MetricsRegistry::from_timeline(&tl).snapshot();
    let json = serde_json::to_string_pretty(&snap).expect("serialize snapshot");
    assert!(
        !json.contains('.'),
        "metrics snapshot must be all-integer (no floats, no dotted names): {json}"
    );
    assert_golden(
        &json,
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/obs_metrics.json"),
        "metrics snapshot",
    );
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let a = chrome::to_chrome_json(&observed_session());
    let b = chrome::to_chrome_json(&observed_session());
    assert_eq!(a, b, "same-seed traces must serialize byte-identically");
}

#[test]
fn golden_trace_parses_with_expected_structure() {
    let json = chrome::to_chrome_json(&observed_session());
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");

    // All four process rows present (stable Perfetto layout), every
    // non-metadata event has integer pid/tid/ts, and kernel spans land
    // on more than one backend track.
    for name in ["GPU", "NPU", "CPU", "Controller"] {
        assert!(
            events.iter().any(|e| {
                e["name"].as_str() == Some("process_name")
                    && e["args"]["name"].as_str() == Some(name)
            }),
            "missing process row {name}"
        );
    }
    let mut kernel_pids = std::collections::BTreeSet::new();
    let mut b_count = 0u64;
    let mut e_count = 0u64;
    for ev in events {
        let ph = ev["ph"].as_str().expect("ph");
        if ph == "M" {
            continue;
        }
        for key in ["pid", "tid", "ts"] {
            assert!(
                ev[key].as_u64().is_some(),
                "{key} must be an integer: {ev:?}"
            );
        }
        match ph {
            "B" => {
                b_count += 1;
                if ev["cat"].as_str() == Some("kernel") {
                    kernel_pids.insert(ev["pid"].as_u64().expect("pid"));
                }
            }
            "E" => e_count += 1,
            _ => {}
        }
    }
    assert_eq!(b_count, e_count, "every submit needs a matching complete");
    assert!(
        kernel_pids.len() >= 2,
        "hetero-tensor kernels should span multiple backend tracks, got {kernel_pids:?}"
    );
}

#[test]
fn flows_cross_tracks_at_sync_edges() {
    let json = chrome::to_chrome_json(&observed_session());
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    let mut crossed = false;
    for ev in events {
        if ev["ph"].as_str() == Some("s") {
            let id = ev["id"].as_u64().expect("flow id");
            let finish = events
                .iter()
                .find(|e| e["ph"].as_str() == Some("f") && e["id"].as_u64() == Some(id))
                .expect("matching finish");
            if finish["pid"].as_u64() != ev["pid"].as_u64() {
                crossed = true;
                break;
            }
        }
    }
    assert!(crossed, "at least one flow should cross backend tracks");
}
