//! Property-based tests of KV-cache sealing, corruption detection,
//! and rollback-replay bit-identity — the storage half of the
//! data-integrity layer's contract.

use hetero_tensor::rng::WeightRng;
use hetero_tensor::Tensor;
use heterollm::kv::KvCache;
use proptest::prelude::*;

/// Deterministic `[rows, kv_dim]` tensor for one layer's append.
fn rows(seed: u64, tag: &str, n: usize, kv_dim: usize) -> Tensor {
    WeightRng::new(seed)
        .uniform(tag, &[n, kv_dim], 1.0)
        .unwrap()
}

/// Append `batch` rows to every layer (same data per layer for
/// simplicity) and advance, sealing them.
fn append_batch(kv: &mut KvCache, layers: usize, seed: u64, batch: usize, kv_dim: usize) {
    let k = rows(seed, "k", batch, kv_dim);
    let v = rows(seed.wrapping_add(1), "v", batch, kv_dim);
    for layer in 0..layers {
        kv.append(layer, &k, &v).unwrap();
    }
    kv.advance(batch).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sealed_prefix_verifies_clean(
        seed in 0u64..1000,
        layers in 1usize..4,
        kv_dim in 1usize..8,
        batches in proptest::collection::vec(1usize..6, 1..4),
    ) {
        // Uncorrupted appends must never trip the read-time verifier —
        // the zero-false-positive half of the sealing contract.
        let total: usize = batches.iter().sum();
        let mut kv = KvCache::new(layers, total, kv_dim);
        for (i, &b) in batches.iter().enumerate() {
            append_batch(&mut kv, layers, seed + i as u64, b, kv_dim);
        }
        prop_assert_eq!(kv.verify(), None);
        prop_assert_eq!(kv.sealed_rows(), total * layers);
    }

    #[test]
    fn any_single_bit_corruption_is_detected(
        seed in 0u64..1000,
        layers in 1usize..4,
        kv_dim in 1usize..8,
        len in 1usize..12,
        layer_draw in 0u64..u64::MAX,
        row_draw in 0u64..u64::MAX,
        col_draw in 0u64..u64::MAX,
        bit in 0u32..32,
    ) {
        // Flipping any one bit of any sealed key element is caught at
        // read time and localized to exactly the corrupted (layer, row).
        let mut kv = KvCache::new(layers, len, kv_dim);
        append_batch(&mut kv, layers, seed, len, kv_dim);
        let layer = (layer_draw % layers as u64) as usize;
        let row = (row_draw % len as u64) as usize;
        let col = (col_draw % kv_dim as u64) as usize;
        kv.corrupt_key(layer, row, col, bit).unwrap();
        prop_assert_eq!(kv.verify(), Some((layer, row)));
    }

    #[test]
    fn rollback_and_replay_is_bit_identical(
        seed in 0u64..1000,
        layers in 1usize..4,
        kv_dim in 1usize..8,
        prefix in 1usize..6,
        suffix in 1usize..6,
        col_draw in 0u64..u64::MAX,
        bit in 0u32..32,
    ) {
        // The recovery path: corrupt a row in the suffix, roll back to
        // the sealed prefix, replay the identical appends — the cache
        // must end bit-identical to the never-corrupted run and verify
        // clean again.
        let total = prefix + suffix;
        let mut kv = KvCache::new(layers, total, kv_dim);
        append_batch(&mut kv, layers, seed, prefix, kv_dim);
        append_batch(&mut kv, layers, seed + 100, suffix, kv_dim);
        let pristine: Vec<Tensor> = (0..layers)
            .map(|l| kv.keys(l, total).unwrap())
            .collect();

        let row = prefix + (col_draw % suffix as u64) as usize;
        let col = (col_draw % kv_dim as u64) as usize;
        kv.corrupt_key(0, row, col, bit).unwrap();
        prop_assert!(kv.verify().is_some());

        kv.rollback(prefix).unwrap();
        prop_assert_eq!(kv.len(), prefix);
        // The sealed prefix survives the rollback untouched.
        prop_assert_eq!(kv.verify(), None);

        append_batch(&mut kv, layers, seed + 100, suffix, kv_dim);
        prop_assert_eq!(kv.verify(), None);
        for (l, want) in pristine.iter().enumerate() {
            let got = kv.keys(l, total).unwrap();
            prop_assert_eq!(got.max_abs_diff(want).unwrap(), 0.0);
        }
    }

    #[test]
    fn rollback_past_length_is_an_error(
        layers in 1usize..3,
        kv_dim in 1usize..6,
        len in 1usize..8,
    ) {
        let mut kv = KvCache::new(layers, len, kv_dim);
        append_batch(&mut kv, layers, 7, len, kv_dim);
        prop_assert!(kv.rollback(len + 1).is_err());
        prop_assert!(kv.rollback(len).is_ok());
    }
}
