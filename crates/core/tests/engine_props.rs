//! Property-based tests of the engines over randomized model
//! architectures — the scheduling policies must stay sound for any
//! Llama-shaped decoder, not just the four evaluation presets.

use hetero_soc::sync::SyncMechanism;
use heterollm::{EngineKind, ModelConfig};
use proptest::prelude::*;

/// Random but valid Llama-style architecture.
fn arb_model() -> impl Strategy<Value = ModelConfig> {
    (
        1usize..=6,                                                      // layers
        prop_oneof![Just(512usize), Just(1024), Just(2048), Just(3072)], // hidden
        1usize..=4,                                                      // ffn multiple of hidden
        prop_oneof![Just(4usize), Just(8), Just(16)],                    // heads
        0usize..=2,                                                      // kv group shift
        prop_oneof![Just(8192usize), Just(32000), Just(92544)],          // vocab
    )
        .prop_map(|(layers, hidden, ffn_mult, heads, kv_shift, vocab)| {
            let kv_heads = (heads >> kv_shift).max(1);
            ModelConfig {
                name: format!("rand-{layers}l-{hidden}h-{heads}a"),
                hidden,
                ffn: hidden * ffn_mult,
                layers,
                heads,
                kv_heads,
                vocab,
                max_seq: 2048,
                rope_theta: 10_000.0,
                norm_eps: 1e-5,
                kv_dtype: hetero_tensor::DType::F16,
            }
        })
        .prop_filter("head_dim must be even for RoPE", |m| m.head_dim() % 2 == 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_engine_completes_on_random_models(
        model in arb_model(),
        prompt in 1usize..400,
    ) {
        for kind in [
            EngineKind::HeteroTensor,
            EngineKind::HeteroLayer,
            EngineKind::PplOpenCl,
            EngineKind::NpuPipe,
            EngineKind::MllmNpu,
        ] {
            let mut e = kind.build(&model, SyncMechanism::Fast);
            let p = e.prefill(prompt);
            prop_assert!(p.elapsed > hetero_soc::SimTime::ZERO, "{}", kind.name());
            let d = e.decode(prompt, 2);
            prop_assert_eq!(d.tokens, 2);
        }
    }

    #[test]
    fn hetero_tensor_never_loses_to_ppl(
        model in arb_model(),
        prompt in 32usize..512,
    ) {
        // The solver's serial fallback guarantees Hetero-tensor is at
        // least competitive with the GPU-only engine it builds on
        // (within sync-overhead noise).
        let mut ht = EngineKind::HeteroTensor.build(&model, SyncMechanism::Fast);
        let mut ppl = EngineKind::PplOpenCl.build(&model, SyncMechanism::Fast);
        let h = ht.prefill(prompt).tokens_per_sec();
        let p = ppl.prefill(prompt).tokens_per_sec();
        prop_assert!(h > p * 0.9, "{}: hetero {h} vs ppl {p}", model.name);
    }

    #[test]
    fn prefill_time_monotone_in_prompt_length(
        model in arb_model(),
        base in 16usize..256,
        grow in 32usize..256,
    ) {
        let mut a = EngineKind::HeteroTensor.build(&model, SyncMechanism::Fast);
        let mut b = EngineKind::HeteroTensor.build(&model, SyncMechanism::Fast);
        let t_small = a.prefill(base).elapsed;
        let t_large = b.prefill(base + grow).elapsed;
        prop_assert!(t_large >= t_small, "{}: {t_large} < {t_small}", model.name);
    }

    #[test]
    fn decode_slower_with_longer_context(
        model in arb_model(),
    ) {
        let mut short = EngineKind::PplOpenCl.build(&model, SyncMechanism::Fast);
        let mut long = EngineKind::PplOpenCl.build(&model, SyncMechanism::Fast);
        let a = short.decode(32, 4).elapsed;
        let b = long.decode(1024, 4).elapsed;
        prop_assert!(b >= a, "KV growth must not speed decoding up");
    }

    #[test]
    fn energy_consistent_with_power_and_time(
        model in arb_model(),
        prompt in 32usize..256,
    ) {
        let mut e = EngineKind::HeteroLayer.build(&model, SyncMechanism::Fast);
        e.prefill(prompt);
        let clock = e.soc().clock().as_secs_f64();
        let power = e.finish();
        prop_assert!((power.energy_j - power.avg_power_w * clock).abs() < 1e-6);
        prop_assert!(power.avg_power_w > 0.2 && power.avg_power_w < 10.0);
    }
}
