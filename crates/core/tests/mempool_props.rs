//! Property tests of the shared memory pool's accounting: `PoolStats`
//! must agree with a straightforward reference model over arbitrary
//! acquire/release sequences — `peak_live_bytes` is the true high-water
//! mark of live bytes, `allocated_bytes` covers exactly the slots ever
//! mapped, and reuse only ever happens within a size class.

use std::collections::HashMap;

use heterollm::mempool::{BufferHandle, MemoryPool};
use proptest::prelude::*;

/// The size class `MemoryPool` rounds a request up to.
fn size_class(bytes: u64) -> u64 {
    bytes.max(4096).next_power_of_two()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accounting matches the reference model after every operation.
    #[test]
    fn pool_accounting_matches_model(
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..(1 << 22)), 1..200),
    ) {
        let mut pool = MemoryPool::new();
        let mut live: Vec<BufferHandle> = Vec::new();
        let mut free_slots: HashMap<u64, u64> = HashMap::new();
        let (mut model_live, mut model_peak, mut model_allocated) = (0u64, 0u64, 0u64);
        let (mut model_reuses, mut model_allocs) = (0u64, 0u64);
        for (is_acquire, val) in ops {
            if is_acquire || live.is_empty() {
                let size = size_class(val);
                let slot = free_slots.entry(size).or_insert(0);
                if *slot > 0 {
                    *slot -= 1;
                    model_reuses += 1;
                } else {
                    model_allocs += 1;
                    model_allocated += size;
                }
                model_live += size;
                model_peak = model_peak.max(model_live);
                let h = pool.acquire(val);
                prop_assert_eq!(h.bytes, size, "rounded to the size class");
                prop_assert!(
                    live.iter().all(|l| l.id() != h.id()),
                    "live handle ids must be unique"
                );
                live.push(h);
            } else {
                let h = live.swap_remove(val as usize % live.len());
                *free_slots.entry(h.bytes).or_insert(0) += 1;
                model_live -= h.bytes;
                pool.release(h);
            }
            let s = pool.stats();
            prop_assert_eq!(pool.live_bytes(), model_live);
            prop_assert_eq!(s.peak_live_bytes, model_peak, "true high-water mark");
            prop_assert_eq!(s.allocated_bytes, model_allocated);
            prop_assert_eq!(s.reuses, model_reuses);
            prop_assert_eq!(s.allocations, model_allocs);
            prop_assert!(s.peak_live_bytes >= pool.live_bytes());
            prop_assert!(pool.live_bytes() <= s.allocated_bytes);
        }
        // allocated_bytes covers the live handles plus the free slots.
        let live_sum: u64 = live.iter().map(|h| h.bytes).sum();
        let free_sum: u64 = free_slots.iter().map(|(size, n)| size * n).sum();
        prop_assert_eq!(pool.stats().allocated_bytes, live_sum + free_sum);
    }

    /// Draining everything and re-acquiring the same shapes performs no
    /// new allocation and cannot raise the peak.
    #[test]
    fn steady_state_reuses_without_growth(
        shapes in proptest::collection::vec(1u64..(1 << 22), 1..16),
        rounds in 1usize..8,
    ) {
        let mut pool = MemoryPool::new();
        let first: Vec<BufferHandle> = shapes.iter().map(|&b| pool.acquire(b)).collect();
        let baseline = pool.stats();
        for h in first {
            pool.release(h);
        }
        for _ in 0..rounds {
            let handles: Vec<BufferHandle> = shapes.iter().map(|&b| pool.acquire(b)).collect();
            for h in handles {
                pool.release(h);
            }
        }
        let s = pool.stats();
        prop_assert_eq!(s.allocations, baseline.allocations, "steady state maps nothing new");
        prop_assert_eq!(s.allocated_bytes, baseline.allocated_bytes);
        prop_assert_eq!(s.peak_live_bytes, baseline.peak_live_bytes);
        prop_assert_eq!(pool.live_bytes(), 0);
    }
}
