//! Golden-sequence tests for the operator traces.
//!
//! The trace is the contract between the model definition and every
//! engine; these tests pin the exact operator sequence (Fig. 7's
//! execution flow) so an accidental reordering or omission cannot slip
//! through refactors unnoticed.

use heterollm::trace::{decode_trace, prefill_trace, OpRole};
use heterollm::ModelConfig;

const LAYER_GOLDEN: [&str; 13] = [
    "attn_norm",
    "qkv",
    "rope",
    "kv_append",
    "attention",
    "softmax",
    "attn_out",
    "residual1",
    "ffn_norm",
    "gate_up",
    "swiglu",
    "ffn_down",
    "residual2",
];

#[test]
fn prefill_layer_sequence_is_golden() {
    let t = prefill_trace(&ModelConfig::llama_8b(), 256);
    let names: Vec<&str> = t.layer.iter().map(|o| o.op).collect();
    assert_eq!(names, LAYER_GOLDEN);
    assert_eq!(
        t.prologue.iter().map(|o| o.op).collect::<Vec<_>>(),
        ["embed"]
    );
    assert_eq!(
        t.epilogue.iter().map(|o| o.op).collect::<Vec<_>>(),
        ["final_norm", "lm_head"]
    );
    assert_eq!(t.layers, 32);
}

#[test]
fn decode_layer_sequence_matches_prefill() {
    // Decode runs the same operator set; only shapes differ.
    let p = prefill_trace(&ModelConfig::llama_3b(), 64);
    let d = decode_trace(&ModelConfig::llama_3b(), 65, 1);
    let pn: Vec<&str> = p.layer.iter().map(|o| o.op).collect();
    let dn: Vec<&str> = d.layer.iter().map(|o| o.op).collect();
    assert_eq!(pn, dn);
}

#[test]
fn role_assignment_is_stable() {
    let t = prefill_trace(&ModelConfig::llama_8b(), 128);
    for op in t.layer.iter() {
        let expected = match op.op {
            "qkv" | "attn_out" | "gate_up" | "ffn_down" => OpRole::WeightMatmul,
            "attention" => OpRole::Attention,
            _ => OpRole::Aux,
        };
        assert_eq!(op.role, expected, "{}", op.op);
    }
}

#[test]
fn weight_matmul_shapes_match_model_dims() {
    let cfg = ModelConfig::llama_8b();
    let t = prefill_trace(&cfg, 256);
    for op in t.layer.iter().filter(|o| o.role == OpRole::WeightMatmul) {
        let s = op.shape.expect("shape");
        assert_eq!(s.m, 256, "{}", op.op);
        match op.op {
            "qkv" => assert_eq!((s.k, s.n), (cfg.hidden, cfg.hidden + 2 * cfg.kv_dim())),
            "attn_out" => assert_eq!((s.k, s.n), (cfg.hidden, cfg.hidden)),
            "gate_up" => assert_eq!((s.k, s.n), (cfg.hidden, 2 * cfg.ffn)),
            "ffn_down" => assert_eq!((s.k, s.n), (cfg.ffn, cfg.hidden)),
            other => panic!("unexpected weight matmul {other}"),
        }
    }
    // LM head computes only the final position during prefill.
    let head = t.epilogue.last().expect("lm_head");
    assert_eq!(head.shape.expect("shape").m, 1);
}

#[test]
fn trace_totals_are_additive_across_layers() {
    let cfg = ModelConfig::llama_3b();
    let t = prefill_trace(&cfg, 64);
    let per_layer: u64 = t.layer.iter().map(|o| o.kernel.flops()).sum();
    let pro: u64 = t.prologue.iter().map(|o| o.kernel.flops()).sum();
    let epi: u64 = t.epilogue.iter().map(|o| o.kernel.flops()).sum();
    assert_eq!(t.total_flops(), pro + cfg.layers as u64 * per_layer + epi);
}

#[test]
fn functional_execution_launches_exactly_the_timed_trace() {
    // DESIGN.md's consistency promise: the kernels the functional model
    // actually launches are precisely the weight Matmuls the timing
    // trace prices — same ops, same shapes, same order.
    use heterollm::functional::FunctionalModel;
    use heterollm::trace::decode_trace;

    let cfg = ModelConfig::tiny();
    let prompt_len = 9usize;
    let mut model = FunctionalModel::new(cfg.clone(), 5).unwrap();
    let prompt: Vec<u32> = (0..prompt_len as u32).collect();
    model.prefill(&prompt).unwrap();
    model.decode_step(1).unwrap();

    let mut expected = Vec::new();
    let prefill = prefill_trace(&cfg, prompt_len);
    for op in prefill
        .iter_all()
        .filter(|o| o.role == OpRole::WeightMatmul)
    {
        expected.push(op.shape.unwrap());
    }
    let decode = decode_trace(&cfg, prompt_len + 1, 1);
    for op in decode.iter_all().filter(|o| o.role == OpRole::WeightMatmul) {
        expected.push(op.shape.unwrap());
    }
    assert_eq!(model.executed_matmuls(), expected.as_slice());
}
