//! Golden-file test pinning the JSON encoding of
//! [`heterollm::report::IntegritySummary`].
//!
//! The integrity report is consumed by the CI determinism gate
//! (`fault_sweep --integrity` runs twice and `cmp`s the output), so
//! any change to field names, field order, or value encoding must be
//! an explicit, reviewed diff. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p heterollm --test integrity_golden`.

use hetero_soc::disturb::SdcTrace;
use heterollm::functional_engine::FunctionalHeteroEngine;
use heterollm::integrity::IntegrityMode;
use heterollm::ModelConfig;

/// The deterministic summary the unit tests also pin: tiny weights
/// (seed 77), the standard SDC trace (seed 42), recover mode.
fn recover_summary_json() -> String {
    let mut engine = FunctionalHeteroEngine::new(ModelConfig::tiny(), 77)
        .unwrap()
        .with_integrity(IntegrityMode::Recover);
    engine.inject(&SdcTrace::standard(42));
    engine.generate(&[3, 17, 99, 4, 42, 7, 250, 1], 12).unwrap();
    let summary = engine.integrity_summary().expect("recover summary");
    serde_json::to_string_pretty(&summary).expect("serialize summary")
}

#[test]
fn integrity_summary_json_is_golden() {
    let json = recover_summary_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/integrity_summary.json"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file checked in");
    assert_eq!(
        json, golden,
        "IntegritySummary JSON encoding changed; review and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn integrity_summary_covers_every_counter() {
    // The golden file must exercise the full shape: every field name
    // appears, and the structural counters are non-zero so a field
    // accidentally hard-wired to zero cannot hide.
    let json = recover_summary_json();
    for field in [
        "injected",
        "detected",
        "corrected",
        "uncorrectable",
        "tiles_verified",
        "tile_mismatches",
        "tile_recomputes",
        "kv_rows_verified",
        "kv_mismatches",
        "kv_rollbacks",
        "replayed_tokens",
        "graphs_verified",
        "graph_mismatches",
        "graph_rebuilds",
        "fallback_escalations",
        "verify_overhead_pct",
        "recompute_p50",
        "recompute_p99",
    ] {
        assert!(json.contains(&format!("\"{field}\"")), "missing {field}");
    }
}
