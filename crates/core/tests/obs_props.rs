//! Property-based tests of the observability layer: for any engine,
//! model preset, prompt/decode length, and sync mechanism, an observed
//! session must yield a well-formed timeline whose export and metrics
//! keep their structural contracts.

use hetero_soc::sync::SyncMechanism;
use heterollm::obs::{chrome, MetricsRegistry, SpanKind, Track};
use heterollm::{EngineKind, InferenceSession, ModelConfig};
use proptest::prelude::*;

fn arb_engine() -> impl Strategy<Value = EngineKind> {
    prop_oneof![
        Just(EngineKind::HeteroTensor),
        Just(EngineKind::HeteroLayer),
        Just(EngineKind::PplOpenCl),
        Just(EngineKind::MllmNpu),
        Just(EngineKind::LlamaCpp),
    ]
}

fn arb_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(ModelConfig::tiny()),
        Just(ModelConfig::internlm_1_8b()),
        Just(ModelConfig::llama_3b()),
    ]
}

fn arb_sync() -> impl Strategy<Value = SyncMechanism> {
    prop_oneof![Just(SyncMechanism::Fast), Just(SyncMechanism::Driver)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Spans always nest per track, ends never precede starts, and the
    /// exported JSON parses with every submit matched by a complete.
    #[test]
    fn observed_sessions_are_well_formed(
        kind in arb_engine(),
        model in arb_model(),
        prompt in 1usize..220,
        decode in 0usize..5,
        sync in arb_sync(),
    ) {
        let mut session = InferenceSession::with_sync(kind, &model, sync);
        let (_, tl) = session.run_observed(prompt, decode);
        prop_assert!(tl.check_well_formed().is_ok(), "{:?}", tl.check_well_formed());

        let json = chrome::to_chrome_json(&tl);
        let v: serde_json::Value = serde_json::from_str(&json).expect("trace parses");
        let events = v["traceEvents"].as_array().expect("traceEvents");

        // Per-track B/E stack discipline over the file order.
        let mut depth = std::collections::BTreeMap::new();
        let mut submits = 0i64;
        for ev in events {
            match ev["ph"].as_str().expect("ph") {
                "B" => {
                    *depth.entry(ev["pid"].as_u64().expect("pid")).or_insert(0i64) += 1;
                    submits += 1;
                }
                "E" => {
                    let d = depth.entry(ev["pid"].as_u64().expect("pid")).or_insert(0i64);
                    *d -= 1;
                    prop_assert!(*d >= 0, "complete without submit");
                    submits -= 1;
                }
                _ => {}
            }
        }
        prop_assert_eq!(submits, 0, "unmatched submits at end of trace");
    }

    /// The metrics snapshot agrees with the timeline it came from and
    /// stays all-integer for every session shape.
    #[test]
    fn metrics_agree_with_timeline(
        kind in arb_engine(),
        prompt in 1usize..220,
        decode in 0usize..5,
    ) {
        let mut session = InferenceSession::new(kind, &ModelConfig::tiny());
        let (report, tl) = session.run_observed(prompt, decode);

        let reg = MetricsRegistry::from_timeline(&tl);
        prop_assert_eq!(reg.counter("flows_total"), tl.flows().len() as u64);
        for track in Track::ALL {
            let name = format!("spans_{}", track.name().to_ascii_lowercase());
            let expect = tl.spans().iter().filter(|s| s.track == track).count() as u64;
            prop_assert_eq!(reg.counter(&name), expect);
        }
        let sync_ns: u64 = tl
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Sync)
            .map(|s| s.duration().as_nanos())
            .sum();
        prop_assert_eq!(reg.counter("sync_wait_ns"), sync_ns);

        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        prop_assert!(!json.contains('.'), "all-integer snapshot: {}", json);
        // The observed report carries the same snapshot.
        prop_assert_eq!(report.metrics.as_ref(), Some(&snap));
    }
}
