//! Property tests pinning the fleet's statistical and state-machine
//! contracts:
//!
//! - Merged per-device power-of-two histograms report the same
//!   quantile *bucket* as a sorted-sample oracle over the pooled
//!   samples, and merging is order-independent (fleet quantiles do
//!   not depend on device enumeration order).
//! - Seeded backoff schedules are byte-identical per seed,
//!   non-decreasing, and their total is bounded by the policy's
//!   advertised bound.
//! - The circuit breaker never moves `Open → Closed` without a
//!   successful half-open probe, for any interleaving of outcomes.
//! - The online drift profiler is deterministic (same samples, same
//!   estimates), stays exactly inside the static
//!   [`heterollm::admit::HeteroMirror`] cost interval on undisturbed
//!   devices, and converges monotonically toward the true slowdown
//!   under a constant brownout.
//! - Per-priority-class accounting balances under both routing arms:
//!   `offered == served + shed + lost`, and the class penalty is
//!   exactly the shed-weight charges plus the lost-penalty charges.

use hetero_fleet::{
    calibrate_profiles_with_socs, BreakerConfig, BreakerState, CircuitBreaker, DeviceProfile,
    FleetConfig, FleetSim, OnlineProfiler, RetryPolicy, RouterPolicy, CALIB_DECODE, CALIB_PROMPT,
    DRIFT_RESOLVE_THRESHOLD_PPM, PPM,
};
use hetero_soc::SimTime;
use heterollm::admit::HeteroMirror;
use heterollm::obs::metrics::HISTOGRAM_BUCKETS;
use heterollm::obs::{Histogram, MetricsRegistry};
use heterollm::ModelConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Calibrated Table-1 profiles paired with the static `[lo, hi]`
/// admission bound for the calibration request shape on the same SoC
/// config — computed once (engine calibration + mirror pricing are
/// deterministic but not free).
fn profiles_with_bounds() -> &'static [(DeviceProfile, u64, u64)] {
    static CACHE: OnceLock<Vec<(DeviceProfile, u64, u64)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        let model = ModelConfig::internlm_1_8b();
        let (profiles, socs) = calibrate_profiles_with_socs(&model);
        profiles
            .into_iter()
            .zip(socs)
            .map(|(p, cfg)| {
                let mut mirror = HeteroMirror::with_soc_config(&model, cfg);
                let bound = mirror.prefill_bound(CALIB_PROMPT)
                    + mirror.decode_bound(CALIB_PROMPT, CALIB_DECODE);
                (p, bound.lo.as_nanos(), bound.hi.as_nanos())
            })
            .collect()
    })
}

/// The bucket an observation lands in (mirrors `Histogram::observe`).
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Sorted-sample oracle: the value at the same nearest-rank the
/// histogram quantile uses (`rank = ceil(q · n)`, 1-based).
fn oracle_rank_value(sorted: &[u64], num: u64, den: u64) -> u64 {
    let rank = ((u128::from(num) * sorted.len() as u128).div_ceil(u128::from(den))).max(1) as usize;
    sorted[rank - 1]
}

fn arb_device_samples() -> impl Strategy<Value = Vec<Vec<u64>>> {
    // A handful of devices, each with its own latency scale so the
    // pooled distribution is genuinely multi-modal.
    proptest::collection::vec(proptest::collection::vec(1u64..1 << 40, 1..40), 1..8)
}

fn arb_retry_policy() -> impl Strategy<Value = RetryPolicy> {
    (2u32..8, 1u64..10_000_000, 2u32..6, 0u32..100).prop_map(
        |(max_attempts, base_ns, factor, jitter_pct)| RetryPolicy {
            max_attempts,
            base: SimTime::from_nanos(base_ns),
            factor,
            cap: SimTime::from_nanos(base_ns.saturating_mul(50)),
            jitter_pct,
            timeout: SimTime::from_millis(250),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fleet quantiles from merged per-device histograms land in the
    /// same power-of-two bucket as the sorted-sample oracle over the
    /// pooled samples.
    #[test]
    fn merged_quantiles_match_sorted_oracle(per_device in arb_device_samples()) {
        let mut merged = Histogram::default();
        let mut pooled: Vec<u64> = Vec::new();
        for samples in &per_device {
            let mut h = Histogram::default();
            for &s in samples {
                h.observe(SimTime::from_nanos(s));
                pooled.push(s);
            }
            merged.merge(&h);
        }
        pooled.sort_unstable();
        prop_assert_eq!(merged.count(), pooled.len() as u64);
        for (num, den) in [(50u64, 100u64), (99, 100), (999, 1000)] {
            let got = merged.quantile_upper_ns(num, den);
            let want = oracle_rank_value(&pooled, num, den);
            prop_assert_eq!(
                bucket_of(got),
                bucket_of(want),
                "q={}/{}: histogram said {} (bucket {}), oracle rank value {} (bucket {})",
                num, den, got, bucket_of(got), want, bucket_of(want)
            );
            // The reported value is an upper bound on the oracle.
            prop_assert!(got >= want.min((1 << HISTOGRAM_BUCKETS) - 1));
        }
    }

    /// Histogram merging is order-independent: forward, reverse, and
    /// re-associated merge orders yield identical registries.
    #[test]
    fn histogram_merge_is_order_independent(per_device in arb_device_samples()) {
        let regs: Vec<MetricsRegistry> = per_device
            .iter()
            .enumerate()
            .map(|(d, samples)| {
                let mut r = MetricsRegistry::new();
                r.incr("served", samples.len() as u64);
                r.incr(&format!("device_{d}"), 1);
                for &s in samples {
                    r.observe("ttft_ns", SimTime::from_nanos(s));
                }
                r
            })
            .collect();
        let mut forward = MetricsRegistry::new();
        for r in &regs {
            forward.merge(r);
        }
        let mut reverse = MetricsRegistry::new();
        for r in regs.iter().rev() {
            reverse.merge(r);
        }
        // Re-associated: pairwise-merge halves, then combine.
        let mid = regs.len() / 2;
        let (mut left, mut right) = (MetricsRegistry::new(), MetricsRegistry::new());
        for r in &regs[..mid] {
            left.merge(r);
        }
        for r in &regs[mid..] {
            right.merge(r);
        }
        left.merge(&right);
        prop_assert_eq!(forward.snapshot(), reverse.snapshot());
        prop_assert_eq!(forward.snapshot(), left.snapshot());
    }

    /// Backoff schedules: same seed byte-identical, delays never
    /// decrease, and the total never exceeds the advertised bound.
    #[test]
    fn backoff_schedule_contracts(
        policy in arb_retry_policy(),
        seed in 0u64..u64::MAX,
        request_id in 0u64..u64::MAX,
    ) {
        let a = policy.schedule(seed, request_id);
        let b = policy.schedule(seed, request_id);
        prop_assert_eq!(&a, &b, "same seed must replay byte-identically");
        prop_assert_eq!(a.len(), policy.max_attempts as usize - 1);
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "delays decreased: {a:?}");
        let total: SimTime = a.iter().copied().sum();
        prop_assert!(total <= policy.total_backoff_bound());
    }

    /// For any outcome interleaving, the breaker reaches `Closed`
    /// only from `HalfOpen` via a probe success, and every departure
    /// from `Open` goes through `HalfOpen`.
    #[test]
    fn breaker_never_skips_half_open(
        threshold in 1u32..5,
        cooldown_ms in 1u64..500,
        // Event stream: (advance_ms, outcome) where outcome is
        // success / failure / bare poll.
        events in proptest::collection::vec((0u64..300, 0u8..3), 1..60),
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: SimTime::from_millis(cooldown_ms),
        });
        let mut now = SimTime::ZERO;
        for (advance, outcome) in events {
            now += SimTime::from_millis(advance);
            match outcome {
                0 => b.record_success(now),
                1 => b.record_failure(now),
                _ => {
                    b.poll(now);
                }
            }
        }
        for t in b.transitions() {
            prop_assert!(
                !(t.from == BreakerState::Open && t.to == BreakerState::Closed),
                "illegal Open → Closed at {:?}", t.at
            );
            if t.to == BreakerState::Closed {
                prop_assert_eq!(t.from, BreakerState::HalfOpen);
            }
            if t.from == BreakerState::Open {
                prop_assert_eq!(t.to, BreakerState::HalfOpen);
            }
        }
        // Transition log timestamps never run backwards.
        prop_assert!(b.transitions().windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// The drift profiler is a pure function of its sample stream:
    /// identically-fed profilers agree estimate-for-estimate (the
    /// byte-identical-log guarantee rests on this).
    #[test]
    fn profiler_is_deterministic_over_its_samples(
        expected_ns in 1_000_000u64..100_000_000_000,
        calib in proptest::collection::vec(1_000u64..1 << 50, 0..8),
        stream in proptest::collection::vec((1_000u64..1 << 50, 1_000u64..1 << 40), 0..60),
    ) {
        let mut a = OnlineProfiler::new(expected_ns);
        let mut b = OnlineProfiler::new(expected_ns);
        a.calibrate(&calib);
        b.calibrate(&calib);
        prop_assert_eq!(a.estimate_ppm(), b.estimate_ppm());
        for &(observed, expected) in &stream {
            a.observe(observed, expected);
            b.observe(observed, expected);
            prop_assert_eq!(a.estimate_ppm(), b.estimate_ppm());
            prop_assert_eq!(a.estimated_service_ns(), b.estimated_service_ns());
        }
        prop_assert_eq!(&a, &b);
    }

    /// On an undisturbed device, the profiler's service estimate stays
    /// inside the static admission-mirror `[lo, hi]` interval for the
    /// calibration shape, no matter what on-profile request shapes it
    /// observes. (The calibrated per-token latencies are quotients of
    /// a real engine run the mirror brackets; the only slack allowed
    /// is their truncation loss — under one token's worth each.)
    #[test]
    fn undisturbed_profilers_stay_inside_the_static_interval(
        profile_sel in 0usize..64,
        shapes in proptest::collection::vec((1usize..2048, 1usize..256), 0..40),
    ) {
        let table = profiles_with_bounds();
        let (profile, lo, hi) = &table[profile_sel % table.len()];
        let expected = profile.service_estimate(CALIB_PROMPT, CALIB_DECODE).as_nanos();
        let mut p = OnlineProfiler::new(expected);
        // Quiet few-shot calibration, then quiet traffic: every
        // observation matches the static profile exactly.
        p.calibrate(&[expected; 4]);
        for &(prompt, decode) in &shapes {
            let e = profile.service_estimate(prompt, decode).as_nanos();
            p.observe(e, e);
        }
        prop_assert_eq!(p.estimate_ppm(), PPM, "undisturbed estimate drifted");
        let est = p.estimated_service_ns();
        let slack = (CALIB_PROMPT + CALIB_DECODE) as u64;
        prop_assert!(
            est + slack >= *lo && est <= *hi,
            "estimate {est} ns outside static interval [{lo}, {hi}] for {}",
            profile.soc
        );
        prop_assert!(!p.needs_resolve(DRIFT_RESOLVE_THRESHOLD_PPM));
    }

    /// Under a constant brownout the EWMA climbs monotonically toward
    /// the observed slowdown, never overshoots it, and lands within
    /// integer-fixed-point slack of it — so the drift re-solve trigger
    /// fires exactly when the sustained slowdown warrants it.
    #[test]
    fn constant_brownout_converges_monotonically(
        expected_ns in 1_000_000u64..10_000_000_000,
        slowdown_ppm in 1_300_000u64..4_000_000,
    ) {
        let observed = ((u128::from(expected_ns) * u128::from(slowdown_ppm))
            / u128::from(PPM)) as u64;
        // The quantized target the profiler can actually see.
        let target = observed.saturating_mul(PPM) / expected_ns;
        let mut p = OnlineProfiler::new(expected_ns);
        let mut prev = p.estimate_ppm();
        for step in 0..128 {
            p.observe(observed, expected_ns);
            let est = p.estimate_ppm();
            prop_assert!(est >= prev, "EWMA regressed at step {step}: {prev} -> {est}");
            prop_assert!(est <= target, "EWMA overshot the constant slowdown");
            prev = est;
        }
        prop_assert!(
            target - prev <= 16,
            "did not converge: est {prev} vs target {target}"
        );
        prop_assert!(p.needs_resolve(DRIFT_RESOLVE_THRESHOLD_PPM));
    }
}

proptest! {
    // Full fleet replays per case: keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-priority-class accounting balances for both routing arms
    /// at any seed and scale: every offered request is served, shed,
    /// or lost — nothing double-counted, nothing dropped — and the
    /// class penalty is exactly `shed × weight × slo_ttft + lost ×
    /// lost_penalty`, where the shed weight is 4×/2×/1× for
    /// interactive/standard/batch.
    #[test]
    fn class_accounting_balances_for_both_arms(
        seed in 1u64..u64::MAX,
        devices in 8usize..24,
        requests in 60usize..200,
    ) {
        let sim = FleetSim::new(FleetConfig::standard(seed, devices, requests));
        for policy in [RouterPolicy::Robust, RouterPolicy::RoundRobin] {
            let (arm, log) = sim.run_events(policy);
            let lost_penalty = log.deadline_ns;
            let (mut offered, mut served, mut shed, mut lost) = (0u64, 0u64, 0u64, 0u64);
            for (idx, class) in arm.by_priority.iter().enumerate() {
                prop_assert_eq!(
                    class.offered,
                    class.served + class.shed + class.lost,
                    "{} class `{}` leaks requests: {:?}",
                    arm.policy, class.class, class
                );
                prop_assert!(class.slo_met <= class.served);
                let shed_weight = 4u64 >> idx;
                prop_assert_eq!(
                    class.penalty_ns,
                    class.shed * shed_weight * arm.slo_ttft_ns
                        + class.lost * lost_penalty,
                    "{} class `{}` penalty mispriced",
                    arm.policy, class.class
                );
                offered += class.offered;
                served += class.served;
                shed += class.shed;
                lost += class.lost;
            }
            // Class totals reconcile with the arm-level counters.
            prop_assert_eq!(offered, arm.offered);
            prop_assert_eq!(served, arm.served);
            prop_assert_eq!(shed, arm.shed);
            prop_assert_eq!(lost, arm.lost);
            prop_assert_eq!(arm.offered, requests as u64);
        }
    }
}

proptest! {
    // Two full fleet replays (serial + parallel) per case: keep the
    // case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The determinism-under-parallelism contract, at the library
    /// level: a [`FleetSim`] built with any `jobs > 1` produces
    /// byte-identical serialized [`hetero_fleet::ArmReport`]s and
    /// canonically-ordered [`hetero_fleet::FleetEventLog`]s to the
    /// serial `jobs = 1` build, for random seeds, fleet sizes, and
    /// worker counts. The executor merges per-device calibration
    /// results by index, so thread scheduling must never leak into
    /// the world.
    #[test]
    fn parallel_fleet_is_byte_identical_to_serial(
        seed in 1u64..u64::MAX,
        devices in 4usize..16,
        requests in 40usize..120,
        jobs in 2usize..8,
    ) {
        let config = FleetConfig::standard(seed, devices, requests);
        let serial = FleetSim::with_jobs(config.clone(), 1);
        let parallel = FleetSim::with_jobs(config, jobs);
        prop_assert_eq!(
            serial.calibration().devices.clone(),
            parallel.calibration().devices.clone(),
            "per-device calibration depends on worker count {}", jobs
        );
        let (cmp_s, pair_s) = serial.compare_events();
        let (cmp_p, pair_p) = parallel.compare_events();
        prop_assert_eq!(
            serde_json::to_string(&cmp_s).unwrap(),
            serde_json::to_string(&cmp_p).unwrap(),
            "ArmReport JSON diverged at jobs {}", jobs
        );
        prop_assert_eq!(
            serde_json::to_string(&pair_s).unwrap(),
            serde_json::to_string(&pair_p).unwrap(),
            "FleetEventLog pair diverged at jobs {}", jobs
        );
    }
}
