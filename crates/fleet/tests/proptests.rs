//! Property tests pinning the fleet's statistical and state-machine
//! contracts:
//!
//! - Merged per-device power-of-two histograms report the same
//!   quantile *bucket* as a sorted-sample oracle over the pooled
//!   samples, and merging is order-independent (fleet quantiles do
//!   not depend on device enumeration order).
//! - Seeded backoff schedules are byte-identical per seed,
//!   non-decreasing, and their total is bounded by the policy's
//!   advertised bound.
//! - The circuit breaker never moves `Open → Closed` without a
//!   successful half-open probe, for any interleaving of outcomes.

use hetero_fleet::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use hetero_soc::SimTime;
use heterollm::obs::metrics::HISTOGRAM_BUCKETS;
use heterollm::obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// The bucket an observation lands in (mirrors `Histogram::observe`).
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Sorted-sample oracle: the value at the same nearest-rank the
/// histogram quantile uses (`rank = ceil(q · n)`, 1-based).
fn oracle_rank_value(sorted: &[u64], num: u64, den: u64) -> u64 {
    let rank = ((u128::from(num) * sorted.len() as u128).div_ceil(u128::from(den))).max(1) as usize;
    sorted[rank - 1]
}

fn arb_device_samples() -> impl Strategy<Value = Vec<Vec<u64>>> {
    // A handful of devices, each with its own latency scale so the
    // pooled distribution is genuinely multi-modal.
    proptest::collection::vec(proptest::collection::vec(1u64..1 << 40, 1..40), 1..8)
}

fn arb_retry_policy() -> impl Strategy<Value = RetryPolicy> {
    (2u32..8, 1u64..10_000_000, 2u32..6, 0u32..100).prop_map(
        |(max_attempts, base_ns, factor, jitter_pct)| RetryPolicy {
            max_attempts,
            base: SimTime::from_nanos(base_ns),
            factor,
            cap: SimTime::from_nanos(base_ns.saturating_mul(50)),
            jitter_pct,
            timeout: SimTime::from_millis(250),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fleet quantiles from merged per-device histograms land in the
    /// same power-of-two bucket as the sorted-sample oracle over the
    /// pooled samples.
    #[test]
    fn merged_quantiles_match_sorted_oracle(per_device in arb_device_samples()) {
        let mut merged = Histogram::default();
        let mut pooled: Vec<u64> = Vec::new();
        for samples in &per_device {
            let mut h = Histogram::default();
            for &s in samples {
                h.observe(SimTime::from_nanos(s));
                pooled.push(s);
            }
            merged.merge(&h);
        }
        pooled.sort_unstable();
        prop_assert_eq!(merged.count(), pooled.len() as u64);
        for (num, den) in [(50u64, 100u64), (99, 100), (999, 1000)] {
            let got = merged.quantile_upper_ns(num, den);
            let want = oracle_rank_value(&pooled, num, den);
            prop_assert_eq!(
                bucket_of(got),
                bucket_of(want),
                "q={}/{}: histogram said {} (bucket {}), oracle rank value {} (bucket {})",
                num, den, got, bucket_of(got), want, bucket_of(want)
            );
            // The reported value is an upper bound on the oracle.
            prop_assert!(got >= want.min((1 << HISTOGRAM_BUCKETS) - 1));
        }
    }

    /// Histogram merging is order-independent: forward, reverse, and
    /// re-associated merge orders yield identical registries.
    #[test]
    fn histogram_merge_is_order_independent(per_device in arb_device_samples()) {
        let regs: Vec<MetricsRegistry> = per_device
            .iter()
            .enumerate()
            .map(|(d, samples)| {
                let mut r = MetricsRegistry::new();
                r.incr("served", samples.len() as u64);
                r.incr(&format!("device_{d}"), 1);
                for &s in samples {
                    r.observe("ttft_ns", SimTime::from_nanos(s));
                }
                r
            })
            .collect();
        let mut forward = MetricsRegistry::new();
        for r in &regs {
            forward.merge(r);
        }
        let mut reverse = MetricsRegistry::new();
        for r in regs.iter().rev() {
            reverse.merge(r);
        }
        // Re-associated: pairwise-merge halves, then combine.
        let mid = regs.len() / 2;
        let (mut left, mut right) = (MetricsRegistry::new(), MetricsRegistry::new());
        for r in &regs[..mid] {
            left.merge(r);
        }
        for r in &regs[mid..] {
            right.merge(r);
        }
        left.merge(&right);
        prop_assert_eq!(forward.snapshot(), reverse.snapshot());
        prop_assert_eq!(forward.snapshot(), left.snapshot());
    }

    /// Backoff schedules: same seed byte-identical, delays never
    /// decrease, and the total never exceeds the advertised bound.
    #[test]
    fn backoff_schedule_contracts(
        policy in arb_retry_policy(),
        seed in 0u64..u64::MAX,
        request_id in 0u64..u64::MAX,
    ) {
        let a = policy.schedule(seed, request_id);
        let b = policy.schedule(seed, request_id);
        prop_assert_eq!(&a, &b, "same seed must replay byte-identically");
        prop_assert_eq!(a.len(), policy.max_attempts as usize - 1);
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "delays decreased: {a:?}");
        let total: SimTime = a.iter().copied().sum();
        prop_assert!(total <= policy.total_backoff_bound());
    }

    /// For any outcome interleaving, the breaker reaches `Closed`
    /// only from `HalfOpen` via a probe success, and every departure
    /// from `Open` goes through `HalfOpen`.
    #[test]
    fn breaker_never_skips_half_open(
        threshold in 1u32..5,
        cooldown_ms in 1u64..500,
        // Event stream: (advance_ms, outcome) where outcome is
        // success / failure / bare poll.
        events in proptest::collection::vec((0u64..300, 0u8..3), 1..60),
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: SimTime::from_millis(cooldown_ms),
        });
        let mut now = SimTime::ZERO;
        for (advance, outcome) in events {
            now += SimTime::from_millis(advance);
            match outcome {
                0 => b.record_success(now),
                1 => b.record_failure(now),
                _ => {
                    b.poll(now);
                }
            }
        }
        for t in b.transitions() {
            prop_assert!(
                !(t.from == BreakerState::Open && t.to == BreakerState::Closed),
                "illegal Open → Closed at {:?}", t.at
            );
            if t.to == BreakerState::Closed {
                prop_assert_eq!(t.from, BreakerState::HalfOpen);
            }
            if t.from == BreakerState::Open {
                prop_assert_eq!(t.to, BreakerState::HalfOpen);
            }
        }
        // Transition log timestamps never run backwards.
        prop_assert!(b.transitions().windows(2).all(|w| w[0].at <= w[1].at));
    }
}
