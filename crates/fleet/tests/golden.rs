//! Golden-file test pinning the fleet event-log JSON schema, plus the
//! observational-recording guarantee.
//!
//! `fleet_sweep --events-out` files and `analyze monitor FILE` both
//! speak this encoding, so any change to variant names, field names,
//! or ordering must show up as an explicit, reviewed diff. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p hetero-fleet --test golden`.

use hetero_fleet::{
    BreakerCause, BreakerState, FleetConfig, FleetEvent, FleetEventLog, FleetSim, Priority,
    ProfileCause, RouterPolicy, EVENT_LOG_VERSION,
};
use hetero_soc::SimTime;

/// A tiny hand-built log with one event of every kind, in canonical
/// order after `normalize()`.
fn one_of_each_log() -> FleetEventLog {
    let t = SimTime::from_millis;
    let mut log = FleetEventLog {
        version: EVENT_LOG_VERSION,
        seed: 7,
        policy: "robust".to_string(),
        devices: 2,
        requests: 3,
        slo_ttft_ns: 1_000_000_000,
        deadline_ns: 4_000_000_000,
        census_interval_ns: 50_000_000,
        rollout_window_ns: 5_000_000_000,
        events: vec![
            FleetEvent::RolloutStage {
                at: t(5000),
                stage: 1,
                pct: 1,
                canary: 1,
            },
            FleetEvent::ProfileUpdate {
                at: t(5000),
                device: 1,
                slowdown_ppm: 1_000_000,
                revision: 1,
                cause: ProfileCause::CanaryApply,
            },
            FleetEvent::Rollback {
                at: t(9000),
                stage: 1,
            },
            FleetEvent::Promote {
                at: t(9500),
                stage: 2,
            },
            FleetEvent::Complete {
                at: t(900),
                req: 0,
                device: 1,
                ttft: t(120),
                tpot: t(9),
            },
            FleetEvent::Offered {
                at: t(100),
                req: 0,
                priority: Priority::Interactive,
                prompt_tokens: 128,
                decode_tokens: 64,
            },
            FleetEvent::CensusRefresh {
                at: t(50),
                healthy: 2,
            },
            FleetEvent::Shed {
                at: t(150),
                req: 1,
                priority: Priority::Batch,
            },
            FleetEvent::Dispatch {
                at: t(100),
                req: 0,
                device: 0,
                attempt: 0,
                priority: Priority::Interactive,
            },
            FleetEvent::DispatchFail {
                at: t(350),
                req: 0,
                device: 0,
                attempt: 0,
            },
            FleetEvent::Retry {
                at: t(350),
                req: 0,
                attempt: 1,
                delay: t(2),
            },
            FleetEvent::Dispatch {
                at: t(352),
                req: 0,
                device: 1,
                attempt: 1,
                priority: Priority::Interactive,
            },
            FleetEvent::Lost {
                at: t(4200),
                req: 2,
            },
            FleetEvent::Breaker {
                at: t(350),
                device: 0,
                from: BreakerState::Closed,
                to: BreakerState::Open,
                cause: BreakerCause::FailureThreshold,
            },
            FleetEvent::FaultOpen {
                at: t(300),
                storm: 0,
            },
            FleetEvent::FaultClose {
                at: t(600),
                storm: 0,
            },
        ],
    };
    log.normalize();
    log
}

#[test]
fn event_log_json_is_golden() {
    let mut json = serde_json::to_string(&one_of_each_log()).expect("serialize event log");
    json.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/event_log.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &json).expect("write golden");
    }
    let golden = std::fs::read_to_string(path).expect("golden file checked in");
    assert_eq!(
        json, golden,
        "event-log JSON schema changed; bump EVENT_LOG_VERSION, review, and regenerate with \
         UPDATE_GOLDEN=1"
    );
}

#[test]
fn event_log_json_roundtrips() {
    let log = one_of_each_log();
    let json = serde_json::to_string(&log).expect("serialize");
    let back: FleetEventLog = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, log);
}

#[test]
fn recording_is_observational_reports_stay_byte_identical() {
    // The recorded replay must produce the same ArmReport bytes as
    // the unrecorded one — event logging may not perturb routing,
    // retries, or RNG draws.
    let sim = FleetSim::new(FleetConfig::standard(42, 32, 240));
    for policy in [RouterPolicy::Robust, RouterPolicy::RoundRobin] {
        let plain = sim.run(policy);
        let (recorded, log) = sim.run_events(policy);
        assert_eq!(
            serde_json::to_string(&plain).expect("serialize"),
            serde_json::to_string(&recorded).expect("serialize"),
            "{policy:?}: recording changed the report"
        );
        assert!(!log.events.is_empty());
        assert_eq!(log.version, EVENT_LOG_VERSION);
        // Canonical order is established at emission time.
        let mut sorted = log.events.clone();
        sorted.sort_by_key(FleetEvent::sort_key);
        assert_eq!(sorted, log.events, "{policy:?}: log not normalized");
    }
}
