//! Per-device calibration micro-sessions.
//!
//! Class-level calibration ([`crate::device::calibrate_profiles`])
//! prices every device of a Table-1 SoC class identically. Real
//! fleets are not that uniform: two phones with the same SoC differ
//! by binning, DVFS tables, DRAM vendor, and ambient temperature —
//! the silicon lottery. This module runs one *real engine
//! micro-session per device* on a per-device perturbed copy of its
//! class [`hetero_soc::SocConfig`] and records how far that device's
//! measured per-token latencies sit from its class profile, as
//! all-integer parts-per-million adjustments.
//!
//! The sessions are completely independent — each is a pure function
//! of `(seed, device index)`: the perturbation is drawn from the
//! device-indexed splitmix64 stream, the engine runs on its own SoC
//! simulator instance, and the result lands in the output vector *by
//! device index*. That makes the stage embarrassingly parallel, and
//! [`heterollm::exec::Executor`] runs it under `--jobs N` with
//! byte-identical output for every worker count (the determinism
//! contract `fleet_sweep` is gated on).
//!
//! A device whose engine faults during calibration falls back to its
//! class profile exactly ([`DeviceCalibration::neutral`]) and is
//! counted, mirroring how class calibration skips faulting SoCs.

use hetero_soc::SocConfig;
use heterollm::engines::HeteroTensorEngine;
use heterollm::exec::Executor;
use heterollm::{InferenceSession, ModelConfig};
use serde::{Deserialize, Serialize};

use crate::device::DeviceProfile;
use crate::draw;
use crate::profiler::PPM;

/// Draw-offset namespace for per-device silicon-lottery perturbation
/// (decorrelated from fault-plan and selection namespaces).
const OFF_SILICON: u64 = 11 << 40;

/// Prompt length of the per-device micro-session. Much shorter than
/// the class shape ([`crate::device::CALIB_PROMPT`]): the class pass
/// anchors absolute latency, this pass only measures the *ratio* to
/// it, and a 1k-device sweep runs 1k of these.
pub const DEVICE_CALIB_PROMPT: usize = 64;
/// Decode steps of the per-device micro-session.
pub const DEVICE_CALIB_DECODE: usize = 4;

/// Half-width of the silicon-lottery bandwidth perturbation, ppm.
/// Memory bandwidth moves by at most ±3%, which keeps every device
/// well inside the online profiler's 25% drift-resolve threshold:
/// binning spread must never masquerade as drift.
pub const SILICON_SPREAD_PPM: u64 = 30_000;

/// How one device's measured per-token latencies sit relative to its
/// class profile, in parts per million (exactly [`PPM`] = on-profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCalibration {
    /// Measured prefill ns/token as ppm of the class profile's.
    pub prefill_adjust_ppm: u64,
    /// Measured decode ns/token as ppm of the class profile's.
    pub decode_adjust_ppm: u64,
}

impl DeviceCalibration {
    /// The class profile verbatim — used when a device's calibration
    /// session faults.
    pub const fn neutral() -> Self {
        Self {
            prefill_adjust_ppm: PPM,
            decode_adjust_ppm: PPM,
        }
    }
}

/// The calibrated fleet: one [`DeviceCalibration`] per device plus
/// the count of devices whose sessions faulted (and fell back to
/// their class profile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetCalibration {
    /// Per-device adjustments, indexed by device id.
    pub devices: Vec<DeviceCalibration>,
    /// Devices whose calibration session faulted.
    pub faulted: u64,
}

/// The per-device silicon-lottery bandwidth factor, drawn uniformly
/// from `[1 - spread, 1 + spread]` on the device-indexed stream.
fn silicon_factor(seed: u64, device: usize) -> f64 {
    let span = 2 * SILICON_SPREAD_PPM + 1;
    let ppm = PPM - SILICON_SPREAD_PPM + draw(seed, OFF_SILICON + device as u64) % span;
    ppm as f64 / PPM as f64
}

/// A device's individual SoC: its class config with every memory
/// bandwidth cap scaled by the silicon-lottery factor.
fn device_soc(class: &SocConfig, factor: f64) -> SocConfig {
    let mut cfg = class.clone();
    cfg.mem.soc_peak_gbps *= factor;
    cfg.mem.cpu_cap_gbps *= factor;
    cfg.mem.gpu_cap_gbps *= factor;
    cfg.mem.npu_cap_gbps *= factor;
    cfg
}

/// Calibrate every device in the fleet: run the per-device
/// micro-session for devices `0..devices` across `jobs` workers and
/// return the index-ordered adjustments.
///
/// Device `d` belongs to class `d % profiles.len()` (the same
/// assignment the replay loop uses). The output is byte-identical for
/// every `jobs` value — each task depends only on `(seed, d)` and the
/// executor merges by index.
pub fn calibrate_devices(
    model: &ModelConfig,
    profiles: &[DeviceProfile],
    socs: &[SocConfig],
    seed: u64,
    devices: usize,
    jobs: usize,
) -> FleetCalibration {
    assert_eq!(profiles.len(), socs.len(), "profile/soc tables misaligned");
    assert!(!profiles.is_empty(), "no calibrated class profiles");
    let per_device = Executor::new(jobs).run(devices, |d| {
        let class = d % profiles.len();
        let factor = silicon_factor(seed, d);
        let engine = HeteroTensorEngine::with_soc_config(model, device_soc(&socs[class], factor));
        let mut session = InferenceSession::from_engine(Box::new(engine));
        let Ok(report) = session.try_run(DEVICE_CALIB_PROMPT, DEVICE_CALIB_DECODE) else {
            return None;
        };
        let prefill_ns = report.prefill.elapsed.as_nanos() / DEVICE_CALIB_PROMPT as u64;
        let decode_ns = report.decode.per_token().as_nanos();
        // Project the measured per-token latencies onto the class
        // profile's *micro-session* measurement, not its headline
        // numbers: the short shape pays proportionally more fixed
        // cost, and only same-shape ratios cancel that.
        Some((class, prefill_ns, decode_ns))
    });
    // The class's own micro-session baseline, computed once per class
    // on the *unperturbed* config so ratios are anchored per class.
    let class_baseline: Vec<Option<(u64, u64)>> = socs
        .iter()
        .map(|cfg| {
            let engine = HeteroTensorEngine::with_soc_config(model, cfg.clone());
            let mut session = InferenceSession::from_engine(Box::new(engine));
            let report = session
                .try_run(DEVICE_CALIB_PROMPT, DEVICE_CALIB_DECODE)
                .ok()?;
            Some((
                report.prefill.elapsed.as_nanos() / DEVICE_CALIB_PROMPT as u64,
                report.decode.per_token().as_nanos(),
            ))
        })
        .collect();
    let mut faulted = 0u64;
    let devices = per_device
        .into_iter()
        .map(|measured| {
            let baselined = measured.and_then(|(class, prefill_ns, decode_ns)| {
                class_baseline[class].map(|(base_prefill, base_decode)| DeviceCalibration {
                    prefill_adjust_ppm: prefill_ns.saturating_mul(PPM) / base_prefill.max(1),
                    decode_adjust_ppm: decode_ns.saturating_mul(PPM) / base_decode.max(1),
                })
            });
            baselined.unwrap_or_else(|| {
                faulted += 1;
                DeviceCalibration::neutral()
            })
        })
        .collect();
    FleetCalibration { devices, faulted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::calibrate_profiles_with_socs;

    #[test]
    fn per_device_calibration_is_jobs_invariant_and_bounded() {
        let model = ModelConfig::internlm_1_8b();
        let (profiles, socs) = calibrate_profiles_with_socs(&model);
        let serial = calibrate_devices(&model, &profiles, &socs, 42, 12, 1);
        let parallel = calibrate_devices(&model, &profiles, &socs, 42, 12, 4);
        assert_eq!(serial, parallel, "jobs must not change the output");
        assert_eq!(serial.devices.len(), 12);
        assert_eq!(serial.faulted, 0);
        for c in &serial.devices {
            // ±3% bandwidth wiggle cannot move per-token time by more
            // than ~10%, let alone toward the 25% drift threshold.
            assert!(c.prefill_adjust_ppm.abs_diff(PPM) < 100_000, "{c:?}");
            assert!(c.decode_adjust_ppm.abs_diff(PPM) < 100_000, "{c:?}");
        }
        // The lottery is not a constant: some spread must exist.
        assert!(
            serial
                .devices
                .windows(2)
                .any(|w| w[0].prefill_adjust_ppm != w[1].prefill_adjust_ppm),
            "silicon lottery produced a uniform fleet"
        );
    }

    #[test]
    fn silicon_factor_stays_in_band_and_varies() {
        let mut seen_lo = false;
        let mut seen_hi = false;
        for d in 0..200 {
            let f = silicon_factor(7, d);
            assert!((0.97..=1.03).contains(&f), "{f}");
            seen_lo |= f < 0.995;
            seen_hi |= f > 1.005;
        }
        assert!(seen_lo && seen_hi, "draws never left the midband");
    }
}
