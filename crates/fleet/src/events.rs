//! Typed, seed-deterministic fleet event logs.
//!
//! [`crate::router::FleetSim::run_events`] emits one [`FleetEventLog`]
//! per replayed arm: every admission decision, dispatch, retry (with
//! its computed delay), completion, breaker transition (with cause),
//! census refresh, and fault-window boundary, all stamped with
//! integer-nanosecond [`SimTime`]s. The log is *observational* — the
//! recorded replay produces a byte-identical [`crate::ArmReport`] to
//! an unrecorded one — and is the substrate the
//! `hetero_analyze::monitor` past-time-LTL sweep certifies.
//!
//! Events are kept in **canonical order**: sorted by a content-based
//! total key ([`FleetEvent::sort_key`]) rather than emission order, so
//! any per-device interleaved merge of the same events normalizes to
//! the same byte sequence and monitor verdicts cannot depend on merge
//! order.

use hetero_soc::SimTime;
use serde::{Deserialize, Serialize};

use crate::policy::{BreakerCause, BreakerState};
use crate::workload::Priority;

/// Schema version of [`FleetEventLog`] (bumped on any field change;
/// the fleet golden test pins the serialized form). v2 added the four
/// rollout events (`RolloutStage`, `ProfileUpdate`, `Promote`,
/// `Rollback`) and the `rollout_window_ns` header field.
pub const EVENT_LOG_VERSION: u32 = 2;

/// Why a device's profile estimate or policy revision changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileCause {
    /// Few-shot micro-benchmark at session start seeded the estimate.
    Calibration,
    /// The online EWMA crossed the re-solve drift threshold.
    Drift,
    /// The rollout controller shipped the candidate revision to a
    /// canary device.
    CanaryApply,
    /// The rollout controller reverted a canary device to the
    /// baseline revision after a failed stage.
    Rollback,
}

fn profile_cause_rank(c: ProfileCause) -> u64 {
    match c {
        ProfileCause::Calibration => 0,
        ProfileCause::Drift => 1,
        ProfileCause::CanaryApply => 2,
        ProfileCause::Rollback => 3,
    }
}

/// One observable fleet occurrence, integer-ns timestamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// A request arrived at the router.
    Offered {
        /// Arrival time.
        at: SimTime,
        /// Request id.
        req: u64,
        /// Admission-control class.
        priority: Priority,
        /// Prompt tokens to prefill.
        prompt_tokens: u64,
        /// Tokens to decode.
        decode_tokens: u64,
    },
    /// The health-probe subsystem refreshed its census (one per probe
    /// tick; `healthy` counts probe-reachable devices at the tick).
    CensusRefresh {
        /// Probe-tick time.
        at: SimTime,
        /// Probe-reachable devices at the tick.
        healthy: u64,
    },
    /// Admission control rejected the request.
    Shed {
        /// Decision time (the request's arrival).
        at: SimTime,
        /// Request id.
        req: u64,
        /// Class the shed request belonged to.
        priority: Priority,
    },
    /// The router committed attempt `attempt` of `req` to `device`.
    Dispatch {
        /// Routing-decision time.
        at: SimTime,
        /// Request id.
        req: u64,
        /// Target device index.
        device: u64,
        /// Zero-based dispatch attempt.
        attempt: u32,
        /// Class of the dispatched request.
        priority: Priority,
    },
    /// A dispatched attempt was declared failed after the attempt
    /// timeout.
    DispatchFail {
        /// Failure-declaration time (dispatch start + timeout).
        at: SimTime,
        /// Request id.
        req: u64,
        /// Device the attempt was on.
        device: u64,
        /// Zero-based attempt that failed.
        attempt: u32,
    },
    /// The router scheduled another attempt after a computed backoff
    /// delay.
    Retry {
        /// Scheduling time (the failure or give-up instant).
        at: SimTime,
        /// Request id.
        req: u64,
        /// Zero-based attempt being scheduled.
        attempt: u32,
        /// Computed backoff delay before that attempt.
        delay: SimTime,
    },
    /// A request finished serving.
    Complete {
        /// Service end time.
        at: SimTime,
        /// Request id.
        req: u64,
        /// Device that served it.
        device: u64,
        /// Time to first token.
        ttft: SimTime,
        /// Time per output token.
        tpot: SimTime,
    },
    /// A request exhausted its budget/deadline and was stranded.
    Lost {
        /// The request's lost-penalty deadline.
        at: SimTime,
        /// Request id.
        req: u64,
    },
    /// A per-device circuit breaker changed state.
    Breaker {
        /// Transition time.
        at: SimTime,
        /// Device the breaker guards.
        device: u64,
        /// State before.
        from: BreakerState,
        /// State after.
        to: BreakerState,
        /// What drove the transition.
        cause: BreakerCause,
    },
    /// A correlated fault-storm window opened.
    FaultOpen {
        /// Window start.
        at: SimTime,
        /// Storm index within the fault plan.
        storm: u32,
    },
    /// A correlated fault-storm window closed (crash + cold-start
    /// replay done).
    FaultClose {
        /// Window end.
        at: SimTime,
        /// Storm index within the fault plan.
        storm: u32,
    },
    /// A staged rollout opened a stage: the candidate revision now
    /// runs on `canary` devices (`pct`% of the fleet).
    RolloutStage {
        /// Stage open time.
        at: SimTime,
        /// One-based stage index.
        stage: u32,
        /// Fleet percentage this stage exposes.
        pct: u32,
        /// Devices in the stage's canary cohort.
        canary: u64,
    },
    /// A device's profile estimate or policy revision changed.
    ProfileUpdate {
        /// Update time.
        at: SimTime,
        /// Device the update concerns.
        device: u64,
        /// The device's current slowdown estimate, parts per million
        /// of its static calibrated profile (1_000_000 = on-profile).
        slowdown_ppm: u64,
        /// Policy revision the device runs after the update
        /// (0 = baseline).
        revision: u64,
        /// What drove the update.
        cause: ProfileCause,
    },
    /// The rollout controller judged a stage clean and promoted the
    /// candidate past it.
    Promote {
        /// Verdict time.
        at: SimTime,
        /// One-based stage the verdict covers.
        stage: u32,
    },
    /// The rollout controller judged a stage regressed and rolled the
    /// candidate back.
    Rollback {
        /// Verdict time.
        at: SimTime,
        /// One-based stage the verdict covers.
        stage: u32,
    },
}

fn breaker_state_rank(s: BreakerState) -> u64 {
    match s {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

fn breaker_cause_rank(c: BreakerCause) -> u64 {
    match c {
        BreakerCause::CooldownElapsed => 0,
        BreakerCause::ProbeSuccess => 1,
        BreakerCause::ProbeFailure => 2,
        BreakerCause::FailureThreshold => 3,
    }
}

impl FleetEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            FleetEvent::Offered { at, .. }
            | FleetEvent::CensusRefresh { at, .. }
            | FleetEvent::Shed { at, .. }
            | FleetEvent::Dispatch { at, .. }
            | FleetEvent::DispatchFail { at, .. }
            | FleetEvent::Retry { at, .. }
            | FleetEvent::Complete { at, .. }
            | FleetEvent::Lost { at, .. }
            | FleetEvent::Breaker { at, .. }
            | FleetEvent::FaultOpen { at, .. }
            | FleetEvent::FaultClose { at, .. }
            | FleetEvent::RolloutStage { at, .. }
            | FleetEvent::ProfileUpdate { at, .. }
            | FleetEvent::Promote { at, .. }
            | FleetEvent::Rollback { at, .. } => at,
        }
    }

    /// The same event with its timestamp shifted forward by `delta`.
    /// Durations carried in fields (`ttft`, `tpot`, `delay`) are
    /// relative and stay put — only `at` moves. Used by the rollout
    /// controller to place each stage's replay window on one shared
    /// timeline.
    #[must_use]
    pub fn shifted(&self, delta: SimTime) -> FleetEvent {
        let mut ev = *self;
        match &mut ev {
            FleetEvent::Offered { at, .. }
            | FleetEvent::CensusRefresh { at, .. }
            | FleetEvent::Shed { at, .. }
            | FleetEvent::Dispatch { at, .. }
            | FleetEvent::DispatchFail { at, .. }
            | FleetEvent::Retry { at, .. }
            | FleetEvent::Complete { at, .. }
            | FleetEvent::Lost { at, .. }
            | FleetEvent::Breaker { at, .. }
            | FleetEvent::FaultOpen { at, .. }
            | FleetEvent::FaultClose { at, .. }
            | FleetEvent::RolloutStage { at, .. }
            | FleetEvent::ProfileUpdate { at, .. }
            | FleetEvent::Promote { at, .. }
            | FleetEvent::Rollback { at, .. } => *at += delta,
        }
        ev
    }

    /// The request the event belongs to, if any.
    pub fn req(&self) -> Option<u64> {
        match *self {
            FleetEvent::Offered { req, .. }
            | FleetEvent::Shed { req, .. }
            | FleetEvent::Dispatch { req, .. }
            | FleetEvent::DispatchFail { req, .. }
            | FleetEvent::Retry { req, .. }
            | FleetEvent::Complete { req, .. }
            | FleetEvent::Lost { req, .. } => Some(req),
            _ => None,
        }
    }

    /// The device the event concerns, if any.
    pub fn device(&self) -> Option<u64> {
        match *self {
            FleetEvent::Dispatch { device, .. }
            | FleetEvent::DispatchFail { device, .. }
            | FleetEvent::Complete { device, .. }
            | FleetEvent::Breaker { device, .. }
            | FleetEvent::ProfileUpdate { device, .. } => Some(device),
            _ => None,
        }
    }

    /// Stable kind name (used in diagnostics and bench summaries).
    pub fn kind(&self) -> &'static str {
        match self {
            FleetEvent::Offered { .. } => "offered",
            FleetEvent::CensusRefresh { .. } => "census-refresh",
            FleetEvent::Shed { .. } => "shed",
            FleetEvent::Dispatch { .. } => "dispatch",
            FleetEvent::DispatchFail { .. } => "dispatch-fail",
            FleetEvent::Retry { .. } => "retry",
            FleetEvent::Complete { .. } => "complete",
            FleetEvent::Lost { .. } => "lost",
            FleetEvent::Breaker { .. } => "breaker",
            FleetEvent::FaultOpen { .. } => "fault-open",
            FleetEvent::FaultClose { .. } => "fault-close",
            FleetEvent::RolloutStage { .. } => "rollout-stage",
            FleetEvent::ProfileUpdate { .. } => "profile-update",
            FleetEvent::Promote { .. } => "promote",
            FleetEvent::Rollback { .. } => "rollback",
        }
    }

    /// Same-timestamp ordering rank. Rollout stage boundaries open
    /// their window before anything inside it; window boundaries sort
    /// before the observations inside the tick; completions and
    /// breaker transitions (which happen *at* service end) sort before
    /// the admission/dispatch activity of requests arriving at the
    /// same instant; census refreshes and profile updates precede the
    /// decisions they inform; rollout verdicts (`Promote`/`Rollback`)
    /// close their stage after every observation inside it.
    fn rank(&self) -> u64 {
        match self {
            FleetEvent::RolloutStage { .. } => 0,
            FleetEvent::FaultClose { .. } => 1,
            FleetEvent::FaultOpen { .. } => 2,
            FleetEvent::Complete { .. } => 3,
            FleetEvent::Breaker { .. } => 4,
            FleetEvent::CensusRefresh { .. } => 5,
            FleetEvent::ProfileUpdate { .. } => 6,
            FleetEvent::Offered { .. } => 7,
            FleetEvent::Shed { .. } => 8,
            FleetEvent::Dispatch { .. } => 9,
            FleetEvent::DispatchFail { .. } => 10,
            FleetEvent::Retry { .. } => 11,
            FleetEvent::Lost { .. } => 12,
            FleetEvent::Promote { .. } => 13,
            FleetEvent::Rollback { .. } => 14,
        }
    }

    /// Content-based total ordering key: `(t_ns, kind rank,
    /// discriminating fields)`. Two events compare equal under this
    /// key only if they are field-for-field identical, so sorting by
    /// it canonicalizes any interleaved merge of the same event set.
    pub fn sort_key(&self) -> (u64, u64, u64, u64, u64, u64) {
        let t = self.at().as_nanos();
        let r = self.rank();
        match *self {
            FleetEvent::Offered { req, priority, .. } | FleetEvent::Shed { req, priority, .. } => {
                (t, r, req, priority.index() as u64, 0, 0)
            }
            FleetEvent::CensusRefresh { healthy, .. } => (t, r, healthy, 0, 0, 0),
            FleetEvent::Dispatch {
                req,
                device,
                attempt,
                ..
            }
            | FleetEvent::DispatchFail {
                req,
                device,
                attempt,
                ..
            } => (t, r, req, device, u64::from(attempt), 0),
            FleetEvent::Retry {
                req,
                attempt,
                delay,
                ..
            } => (t, r, req, u64::from(attempt), delay.as_nanos(), 0),
            FleetEvent::Complete {
                req, device, ttft, ..
            } => (t, r, req, device, ttft.as_nanos(), 0),
            FleetEvent::Lost { req, .. } => (t, r, req, 0, 0, 0),
            FleetEvent::Breaker {
                device,
                from,
                to,
                cause,
                ..
            } => (
                t,
                r,
                device,
                breaker_cause_rank(cause),
                breaker_state_rank(from),
                breaker_state_rank(to),
            ),
            FleetEvent::FaultOpen { storm, .. } | FleetEvent::FaultClose { storm, .. } => {
                (t, r, u64::from(storm), 0, 0, 0)
            }
            FleetEvent::RolloutStage {
                stage, pct, canary, ..
            } => (t, r, u64::from(stage), u64::from(pct), canary, 0),
            FleetEvent::ProfileUpdate {
                device,
                slowdown_ppm,
                revision,
                cause,
                ..
            } => (
                t,
                r,
                device,
                profile_cause_rank(cause),
                slowdown_ppm,
                revision,
            ),
            FleetEvent::Promote { stage, .. } | FleetEvent::Rollback { stage, .. } => {
                (t, r, u64::from(stage), 0, 0, 0)
            }
        }
    }
}

/// One arm's typed event log plus the contract constants the temporal
/// specs are evaluated against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetEventLog {
    /// Schema version ([`EVENT_LOG_VERSION`]).
    pub version: u32,
    /// Run seed of the replayed world.
    pub seed: u64,
    /// Routing policy name (`robust` / `round-robin`).
    pub policy: String,
    /// Fleet size.
    pub devices: u64,
    /// Requests offered.
    pub requests: u64,
    /// TTFT SLO the world was sized against, nanoseconds.
    pub slo_ttft_ns: u64,
    /// Per-request retry deadline (the 4×-SLO lost-penalty point),
    /// nanoseconds after arrival.
    pub deadline_ns: u64,
    /// Census contract: routing decisions must not act on a census
    /// older than this, nanoseconds.
    pub census_interval_ns: u64,
    /// Rollout stage window span, nanoseconds: stage `k` of a staged
    /// rollout occupies `[k·span, (k+1)·span)` on the shared timeline
    /// and its verdict must land inside the window. Zero means the log
    /// contains no rollout (plain `fleet_sweep` arms), which disables
    /// the rollout temporal specs.
    #[serde(default)]
    pub rollout_window_ns: u64,
    /// Canonically ordered events.
    pub events: Vec<FleetEvent>,
}

impl FleetEventLog {
    /// Sort `events` into canonical content order (stable under any
    /// interleaved merge of the same event set).
    pub fn normalize(&mut self) {
        self.events.sort_by_key(FleetEvent::sort_key);
    }
}

/// Both arms' logs from one [`crate::router::FleetSim::compare_events`]
/// replay — the on-disk shape `fleet_sweep --events-out` writes and
/// `analyze monitor FILE` reads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetLogPair {
    /// The robust arm's log.
    pub robust: FleetEventLog,
    /// The round-robin arm's log.
    pub naive: FleetEventLog,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn sort_key_orders_ticks_canonically() {
        let census = FleetEvent::CensusRefresh {
            at: t(50),
            healthy: 4,
        };
        let dispatch = FleetEvent::Dispatch {
            at: t(50),
            req: 1,
            device: 0,
            attempt: 0,
            priority: Priority::Standard,
        };
        let close = FleetEvent::FaultClose {
            at: t(50),
            storm: 0,
        };
        let mut evs = [dispatch, census, close];
        evs.sort_by_key(FleetEvent::sort_key);
        assert_eq!(evs[0].kind(), "fault-close");
        assert_eq!(evs[1].kind(), "census-refresh");
        assert_eq!(evs[2].kind(), "dispatch");
    }

    #[test]
    fn sort_key_discriminates_identical_timestamps() {
        let a = FleetEvent::Dispatch {
            at: t(1),
            req: 3,
            device: 7,
            attempt: 0,
            priority: Priority::Batch,
        };
        let b = FleetEvent::Dispatch {
            at: t(1),
            req: 4,
            device: 7,
            attempt: 0,
            priority: Priority::Batch,
        };
        assert_ne!(a.sort_key(), b.sort_key());
        assert_eq!(a.sort_key(), a.sort_key());
    }

    #[test]
    fn rollout_events_bracket_their_stage_window() {
        let stage = FleetEvent::RolloutStage {
            at: t(100),
            stage: 1,
            pct: 1,
            canary: 3,
        };
        let apply = FleetEvent::ProfileUpdate {
            at: t(100),
            device: 2,
            slowdown_ppm: 1_000_000,
            revision: 1,
            cause: ProfileCause::CanaryApply,
        };
        let offered = FleetEvent::Offered {
            at: t(100),
            req: 0,
            priority: Priority::Interactive,
            prompt_tokens: 8,
            decode_tokens: 8,
        };
        let rollback = FleetEvent::Rollback {
            at: t(100),
            stage: 1,
        };
        let mut evs = [rollback, offered, apply, stage];
        evs.sort_by_key(FleetEvent::sort_key);
        assert_eq!(evs[0].kind(), "rollout-stage");
        assert_eq!(evs[1].kind(), "profile-update");
        assert_eq!(evs[2].kind(), "offered");
        assert_eq!(evs[3].kind(), "rollback");
        assert_eq!(apply.device(), Some(2));
        assert_eq!(apply.req(), None);
    }

    #[test]
    fn shifted_moves_timestamps_but_not_durations() {
        let ev = FleetEvent::Complete {
            at: t(5),
            req: 1,
            device: 0,
            ttft: t(2),
            tpot: t(1),
        };
        let moved = ev.shifted(SimTime::from_millis(100));
        assert_eq!(moved.at(), t(105));
        let FleetEvent::Complete { ttft, tpot, .. } = moved else {
            panic!("variant changed");
        };
        assert_eq!((ttft, tpot), (t(2), t(1)));
    }

    #[test]
    fn accessors_expose_slice_keys() {
        let ev = FleetEvent::Breaker {
            at: t(9),
            device: 5,
            from: BreakerState::Open,
            to: BreakerState::HalfOpen,
            cause: BreakerCause::CooldownElapsed,
        };
        assert_eq!(ev.device(), Some(5));
        assert_eq!(ev.req(), None);
        assert_eq!(ev.at(), t(9));
    }
}
