#![warn(missing_docs)]

//! Fleet-scale fault-tolerant serving over the HeteroLLM simulator.
//!
//! The paper characterizes one mobile SoC; production serving runs
//! *millions* of them, and at that scale failures are per-device:
//! crashes, link loss, thermal brownouts, correlated fault storms.
//! This crate layers a cluster-level request router over hundreds to
//! thousands of simulated device sessions (heterogeneous Table-1 SoC
//! profiles, per-device [`hetero_soc::disturb::DisturbanceTrace`]s)
//! and gives it the full robustness toolkit:
//!
//! - per-device health probes and EWMA latency tracking
//!   ([`device::Device`]),
//! - deterministic retry/timeout/exponential-backoff-with-jitter
//!   ([`policy::RetryPolicy`] — seeded, integer-nanosecond,
//!   byte-identical across runs),
//! - per-device circuit breakers with typed state transitions
//!   ([`policy::CircuitBreaker`]),
//! - admission control with priority-aware load shedding
//!   ([`policy::AdmissionControl`]),
//! - a fleet-level fault injector layered on `hetero_soc::disturb`
//!   ([`fault::FaultInjector`] — device crash/restart with cold-start
//!   replay via [`heterollm::coldstart`], link delay/loss, correlated
//!   fault storms, brownout via thermal traces).
//!
//! [`router::FleetSim`] replays an identical seeded workload and
//! fault plan under either the robust policy or naive round-robin and
//! reports fleet-wide SLO attainment ([`report::ArmReport`] — all
//! integers, per-device histograms merged through
//! [`heterollm::obs::MetricsRegistry`]), so the `fleet_sweep` bench
//! can gate on the robust router strictly dominating round-robin
//! under the same storm.
//!
//! Everything follows the repo-wide determinism discipline: all
//! randomness is splitmix64 draws over the run seed, all reported
//! values are integer nanoseconds or counts, and same-seed runs
//! serialize byte-identically (CI `cmp`s two runs).

pub mod calib;
pub mod device;
pub mod events;
pub mod fault;
pub mod policy;
pub mod profiler;
pub mod report;
pub mod rollout;
pub mod router;
pub mod workload;

pub use calib::{
    calibrate_devices, DeviceCalibration, FleetCalibration, DEVICE_CALIB_DECODE,
    DEVICE_CALIB_PROMPT, SILICON_SPREAD_PPM,
};
pub use device::{
    calibrate_profiles, calibrate_profiles_with_socs, Device, DeviceProfile, CALIB_DECODE,
    CALIB_PROMPT,
};
pub use events::{FleetEvent, FleetEventLog, FleetLogPair, ProfileCause, EVENT_LOG_VERSION};
pub use fault::{FaultInjector, FaultPlanConfig};
pub use policy::{
    AdmissionControl, BreakerCause, BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker,
    RetryPolicy,
};
pub use profiler::{OnlineProfiler, DRIFT_RESOLVE_THRESHOLD_PPM, FEW_SHOT_SAMPLES, PPM};
pub use report::{ArmReport, FleetComparison, PriorityStats};
pub use rollout::{
    PolicyRevision, RolloutConfig, RolloutController, RolloutLogSet, RolloutReport, StageReport,
    ROLLOUT_STAGES,
};
pub use router::{FleetConfig, FleetSim, RouterPolicy, MAX_DISPATCHES};
pub use workload::{fleet_traffic, FleetRequest, Priority};

/// The `i`-th draw of a splitmix64 stream over `seed` (the same
/// decorrelation scheme `hetero_soc::disturb` and
/// `heterollm::runtime` use).
pub(crate) fn draw(seed: u64, i: u64) -> u64 {
    hetero_tensor::rng::splitmix64(seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}
