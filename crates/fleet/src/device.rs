//! Fleet devices: heterogeneous SoC profiles calibrated from real
//! engine sessions, plus per-device router-side state.
//!
//! Building a full [`heterollm::engines::HeteroTensorEngine`] per
//! device would make a 1k-device sweep pay 1k DES runs per request.
//! Instead the fleet calibrates each *distinct* Table-1 profile once
//! — by driving a real engine through the fallible
//! [`InferenceSession::try_run`] session API — and prices requests
//! from the calibrated per-token latencies, derated by the device's
//! current fault condition. Engine faults during calibration are
//! counted, not panicked on: that is exactly why the session API is
//! typed.

use hetero_soc::specs::{project_config, table1};
use hetero_soc::{SimTime, SocConfig};
use heterollm::engines::HeteroTensorEngine;
use heterollm::obs::MetricsRegistry;
use heterollm::{InferenceSession, ModelConfig};
use serde::{Deserialize, Serialize};

use crate::policy::{BreakerConfig, CircuitBreaker};

/// Prompt length used to calibrate per-token prefill latency (also
/// the online profiler's few-shot micro-benchmark shape).
pub const CALIB_PROMPT: usize = 256;
/// Decode steps used to calibrate per-token decode latency.
pub const CALIB_DECODE: usize = 16;

/// One distinct SoC profile in the fleet, calibrated from a real
/// engine run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Vendor + SoC name (Table 1).
    pub soc: String,
    /// Calibrated quiet prefill latency per prompt token.
    pub prefill_ns_per_token: u64,
    /// Calibrated quiet decode latency per output token.
    pub decode_ns_per_token: u64,
}

impl DeviceProfile {
    /// Quiet service estimate for one request shape.
    pub fn service_estimate(&self, prompt_tokens: usize, decode_tokens: usize) -> SimTime {
        SimTime::from_nanos(
            self.prefill_ns_per_token * prompt_tokens as u64
                + self.decode_ns_per_token * decode_tokens as u64,
        )
    }
}

/// Calibrate one [`DeviceProfile`] per projectable Table-1 SoC by
/// running the Hetero-tensor engine on the projected
/// [`hetero_soc::SocConfig`] behind the fallible session API. SoCs
/// whose engines fault during calibration are skipped (counted by the
/// caller as configuration faults) rather than aborting the sweep.
pub fn calibrate_profiles(model: &ModelConfig) -> Vec<DeviceProfile> {
    calibrate_profiles_with_socs(model).0
}

/// [`calibrate_profiles`] plus the projected [`SocConfig`] behind each
/// profile, index-aligned — consumers that re-solve partition plans
/// for a drifted device (the rollout overlay) need the config the
/// profile was calibrated on.
pub fn calibrate_profiles_with_socs(model: &ModelConfig) -> (Vec<DeviceProfile>, Vec<SocConfig>) {
    let mut profiles = Vec::new();
    let mut socs = Vec::new();
    for spec in table1() {
        let Some(cfg) = project_config(&spec) else {
            continue; // No FP16 NPU: not a HeteroLLM target.
        };
        let engine = HeteroTensorEngine::with_soc_config(model, cfg.clone());
        let mut session = InferenceSession::from_engine(Box::new(engine));
        let Ok(report) = session.try_run(CALIB_PROMPT, CALIB_DECODE) else {
            continue; // Engine fault — a device-config fault, not a crash.
        };
        profiles.push(DeviceProfile {
            soc: format!("{} {}", spec.vendor, spec.soc),
            prefill_ns_per_token: report.prefill.elapsed.as_nanos() / CALIB_PROMPT as u64,
            decode_ns_per_token: report.decode.per_token().as_nanos(),
        });
        socs.push(cfg);
    }
    (profiles, socs)
}

/// Router-side state for one device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Fleet-wide id.
    pub id: u32,
    /// Index into the calibrated profile table.
    pub profile: usize,
    /// When the device's local queue drains.
    pub busy_until: SimTime,
    /// EWMA of observed service latency, nanoseconds (α = 1/8).
    pub ewma_ns: u64,
    /// The device's circuit breaker.
    pub breaker: CircuitBreaker,
    /// Per-device metrics (merged fleet-wide at report time).
    pub metrics: MetricsRegistry,
    /// Total simulated busy time.
    pub busy_ns: u64,
}

impl Device {
    /// New idle device seeded with the profile's quiet estimate so
    /// scoring is meaningful before the first observation.
    pub fn new(id: u32, profile: usize, ewma_init: SimTime, breaker: BreakerConfig) -> Self {
        Self {
            id,
            profile,
            busy_until: SimTime::ZERO,
            ewma_ns: ewma_init.as_nanos(),
            breaker: CircuitBreaker::new(breaker),
            metrics: MetricsRegistry::new(),
            busy_ns: 0,
        }
    }

    /// Fold one observed service latency into the EWMA.
    pub fn observe_latency(&mut self, t: SimTime) {
        self.ewma_ns = (self.ewma_ns * 7 + t.as_nanos()) / 8;
    }

    /// Routing score at `now`: estimated latency plus queue wait
    /// (lower is better).
    pub fn score(&self, now: SimTime) -> u64 {
        self.ewma_ns
            .saturating_add(self.busy_until.saturating_sub(now).as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_covers_projectable_socs() {
        let profiles = calibrate_profiles(&ModelConfig::internlm_1_8b());
        assert_eq!(profiles.len(), 3, "three Table-1 SoCs have FP16 NPUs");
        assert!(profiles.iter().any(|p| p.soc.contains("Qualcomm")));
        for p in &profiles {
            assert!(p.prefill_ns_per_token > 0);
            assert!(p.decode_ns_per_token > p.prefill_ns_per_token);
        }
        // Heterogeneous: profiles differ.
        assert!(profiles
            .windows(2)
            .any(|w| w[0].prefill_ns_per_token != w[1].prefill_ns_per_token));
    }

    #[test]
    fn ewma_tracks_and_queue_wait_raises_score() {
        let mut d = Device::new(0, 0, SimTime::from_millis(100), BreakerConfig::standard());
        let before = d.ewma_ns;
        d.observe_latency(SimTime::from_millis(20));
        assert!(d.ewma_ns < before);
        // Queue wait raises the score.
        d.busy_until = SimTime::from_millis(500);
        assert!(d.score(SimTime::ZERO) > d.ewma_ns);
    }
}
