//! Fleet-level fault injection, layered on [`hetero_soc::disturb`].
//!
//! Per-session disturbances (render bursts, thermal throttle, memory
//! contention) model a *busy* device; this module adds the failure
//! modes that only exist at fleet scale:
//!
//! - **Device crash/restart** — the device is unreachable for the
//!   crash window plus a cold-start replay
//!   ([`heterollm::coldstart::cold_start`] with cached graphs: weights
//!   re-stream from flash, NPU graphs reload).
//! - **Correlated fault storms** — a seeded fraction of the whole
//!   fleet crashes at the same instant (pushed OS update, power
//!   event), which is what actually breaks naive routing.
//! - **Link delay / link loss** — the request path to a device slows
//!   or drops entirely while the device itself is fine.
//! - **Brownout** — a per-device [`DisturbanceTrace`] timeline
//!   (thermal throttle, contention, NPU claims) derates service
//!   speed.
//!
//! Everything is generated from splitmix64 draws over the run seed:
//! same seed, byte-identical fault plan.

use hetero_soc::disturb::{DisturbanceTrace, SocCondition, Timeline};
use hetero_soc::SimTime;
use heterollm::coldstart::{cold_start, GraphPrep};
use heterollm::ModelConfig;
use serde::{Deserialize, Serialize};

use crate::draw;

/// Draw-offset namespaces so fault classes decorrelate.
const OFF_STORM: u64 = 1 << 40;
const OFF_CRASH: u64 = 2 << 40;
const OFF_DELAY: u64 = 3 << 40;
const OFF_LOSS: u64 = 4 << 40;
const OFF_DISTURB: u64 = 5 << 40;

/// Cap on the brownout slowdown factor derived from a disturbance
/// condition (an NPU-unavailable window alone is ~8×).
const MAX_SLOWDOWN: f64 = 20.0;

/// Shape of the seeded fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Correlated crash storms across the horizon.
    pub storms: u32,
    /// Percent of the fleet each storm crashes.
    pub storm_fraction_pct: u32,
    /// Crash window length per storm (restart replay is added on
    /// top).
    pub storm_duration: SimTime,
    /// Percent of devices with one independent crash.
    pub crash_rate_pct: u32,
    /// Percent of devices with one link-delay window.
    pub link_delay_pct: u32,
    /// Percent of devices with one link-loss window.
    pub link_loss_pct: u32,
    /// Percent of devices running under a standard
    /// [`DisturbanceTrace`] (brownout).
    pub disturb_pct: u32,
}

impl FaultPlanConfig {
    /// The shipped storm plan: two fleet-wide storms crashing 25%
    /// each, 10% independent crashes, 20%/10% link delay/loss, 30%
    /// browned-out devices.
    pub fn standard() -> Self {
        Self {
            storms: 2,
            storm_fraction_pct: 25,
            storm_duration: SimTime::from_millis(150),
            crash_rate_pct: 10,
            link_delay_pct: 20,
            link_loss_pct: 10,
            disturb_pct: 30,
        }
    }
}

/// One closed fault window (`[start, end)`).
type Window = (SimTime, SimTime);

/// The materialized per-device fault plan for one run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    downtime: Vec<Vec<Window>>,
    delay: Vec<Vec<(SimTime, SimTime, SimTime)>>,
    loss: Vec<Vec<Window>>,
    timelines: Vec<Option<Timeline>>,
    restart_cost: SimTime,
    storms: Vec<Window>,
}

impl FaultInjector {
    /// Generate the seeded plan for `devices` devices of `model`
    /// across `[0, horizon)`.
    pub fn generate(
        seed: u64,
        devices: usize,
        model: &ModelConfig,
        horizon: SimTime,
        cfg: &FaultPlanConfig,
    ) -> Self {
        let restart_cost = cold_start(model, GraphPrep::LoadCachedStandards).total;
        let h = horizon.as_nanos();
        let mut downtime = vec![Vec::new(); devices];
        let mut delay = vec![Vec::new(); devices];
        let mut loss = vec![Vec::new(); devices];
        let mut timelines = vec![None; devices];

        // Correlated storms: one instant, a seeded device subset. The
        // fleet-wide window is recorded even when the draw happens to
        // select no device — the storm is a world-level occurrence.
        let mut storms = Vec::new();
        for k in 0..u64::from(cfg.storms) {
            let nominal = h * (k + 1) / (u64::from(cfg.storms) + 1);
            let jitter = draw(seed, OFF_STORM + k) % (h / 20 + 1);
            let at = SimTime::from_nanos(nominal.saturating_sub(jitter));
            storms.push((at, at + cfg.storm_duration + restart_cost));
            for (d, down) in downtime.iter_mut().enumerate() {
                let pick = draw(seed, OFF_STORM + 64 + k * devices as u64 + d as u64) % 100;
                if (pick as u32) < cfg.storm_fraction_pct {
                    down.push((at, at + cfg.storm_duration + restart_cost));
                }
            }
        }

        for d in 0..devices as u64 {
            // Independent crash: one per selected device.
            if (draw(seed, OFF_CRASH + 3 * d) % 100) < u64::from(cfg.crash_rate_pct) {
                let at = SimTime::from_nanos(draw(seed, OFF_CRASH + 3 * d + 1) % h.max(1));
                let dur = SimTime::from_millis(20 + draw(seed, OFF_CRASH + 3 * d + 2) % 180);
                downtime[d as usize].push((at, at + dur + restart_cost));
            }
            // Link delay window.
            if (draw(seed, OFF_DELAY + 4 * d) % 100) < u64::from(cfg.link_delay_pct) {
                let at = SimTime::from_nanos(draw(seed, OFF_DELAY + 4 * d + 1) % h.max(1));
                let dur = SimTime::from_millis(200 + draw(seed, OFF_DELAY + 4 * d + 2) % 600);
                let added = SimTime::from_millis(1 + draw(seed, OFF_DELAY + 4 * d + 3) % 9);
                delay[d as usize].push((at, at + dur, added));
            }
            // Link loss window.
            if (draw(seed, OFF_LOSS + 3 * d) % 100) < u64::from(cfg.link_loss_pct) {
                let at = SimTime::from_nanos(draw(seed, OFF_LOSS + 3 * d + 1) % h.max(1));
                let dur = SimTime::from_millis(200 + draw(seed, OFF_LOSS + 3 * d + 2) % 600);
                loss[d as usize].push((at, at + dur));
            }
            // Brownout: a standard per-device disturbance trace.
            if (draw(seed, OFF_DISTURB + d) % 100) < u64::from(cfg.disturb_pct) {
                let trace = DisturbanceTrace::standard(seed ^ (d.rotate_left(23)));
                let tl = trace
                    .timeline()
                    .expect("standard disturbance traces are well-formed");
                timelines[d as usize] = Some(tl);
            }
        }

        for windows in downtime.iter_mut().chain(loss.iter_mut()) {
            windows.sort_by_key(|w| (w.0, w.1));
        }
        storms.sort_by_key(|w| (w.0, w.1));
        Self {
            downtime,
            delay,
            loss,
            timelines,
            restart_cost,
            storms,
        }
    }

    /// The fleet-wide correlated storm windows `[start, end)` (crash
    /// plus cold-start replay), sorted by start.
    pub fn storm_windows(&self) -> &[(SimTime, SimTime)] {
        &self.storms
    }

    /// Cold-start replay cost appended to every crash window.
    pub fn restart_cost(&self) -> SimTime {
        self.restart_cost
    }

    /// Whether the device is crashed (or replaying its cold start)
    /// at `t`.
    pub fn crashed_at(&self, device: usize, t: SimTime) -> bool {
        self.downtime[device].iter().any(|&(s, e)| s <= t && t < e)
    }

    /// First instant in `[from, to)` at which the device is down, if
    /// any (a crash landing mid-service fails the request).
    pub fn first_downtime_in(&self, device: usize, from: SimTime, to: SimTime) -> Option<SimTime> {
        self.downtime[device]
            .iter()
            .filter(|&&(s, e)| s < to && from < e)
            .map(|&(s, _)| s.max(from))
            .min()
    }

    /// Whether the request path to the device is dropping at `t`.
    pub fn link_lost_at(&self, device: usize, t: SimTime) -> bool {
        self.loss[device].iter().any(|&(s, e)| s <= t && t < e)
    }

    /// Added link latency toward the device at `t`.
    pub fn link_delay_at(&self, device: usize, t: SimTime) -> SimTime {
        self.delay[device]
            .iter()
            .filter(|&&(s, e, _)| s <= t && t < e)
            .map(|&(_, _, d)| d)
            .sum()
    }

    /// Whether the data path to the device works at `t`: neither
    /// crashed nor behind a lost link.
    pub fn reachable_at(&self, device: usize, t: SimTime) -> bool {
        !self.crashed_at(device, t) && !self.link_lost_at(device, t)
    }

    /// What a health probe at `t` observes. The lightweight
    /// control-path probe detects crashes but does **not** traverse
    /// the request data path, so link-loss windows are invisible to
    /// it — circuit breakers are the layer that catches what probes
    /// miss.
    pub fn probe_reachable_at(&self, device: usize, t: SimTime) -> bool {
        !self.crashed_at(device, t)
    }

    /// Service-time multiplier (≥ 1) from the device's brownout
    /// condition at `t`.
    pub fn slowdown_at(&self, device: usize, t: SimTime) -> f64 {
        match &self.timelines[device] {
            None => 1.0,
            Some(tl) => condition_slowdown(tl.condition_at(t)),
        }
    }
}

/// Fold a [`SocCondition`] into one service-speed multiplier: the
/// worse compute derate (heterogeneous engines lean on both
/// backends), the thermal step, and the bandwidth fraction compound;
/// the result is clamped to [`MAX_SLOWDOWN`].
pub fn condition_slowdown(c: &SocCondition) -> f64 {
    let compute = c.gpu_derate.min(c.npu_derate) * c.thermal_factor * c.bw_fraction;
    (1.0 / compute.max(1.0 / MAX_SLOWDOWN)).clamp(1.0, MAX_SLOWDOWN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(seed: u64) -> FaultInjector {
        FaultInjector::generate(
            seed,
            64,
            &ModelConfig::internlm_1_8b(),
            SimTime::from_secs_f64(20.0),
            &FaultPlanConfig::standard(),
        )
    }

    #[test]
    fn same_seed_same_plan() {
        let a = injector(42);
        let b = injector(42);
        for d in 0..64 {
            assert_eq!(a.downtime[d], b.downtime[d]);
            assert_eq!(a.loss[d], b.loss[d]);
            assert_eq!(a.delay[d], b.delay[d]);
        }
    }

    #[test]
    fn storms_are_correlated_and_partial() {
        let inj = injector(42);
        let crashed: Vec<usize> = (0..64).filter(|&d| !inj.downtime[d].is_empty()).collect();
        assert!(!crashed.is_empty(), "some devices crash");
        assert!(crashed.len() < 64, "storms never take the whole fleet");
        // Storm windows include the cold-start replay.
        let (s, e) = inj.downtime[crashed[0]][0];
        assert!(e - s >= inj.restart_cost());
    }

    #[test]
    fn downtime_lookup_matches_windows() {
        let inj = injector(7);
        for d in 0..64 {
            for &(s, e) in &inj.downtime[d] {
                assert!(inj.crashed_at(d, s));
                assert!(!inj.crashed_at(d, e));
                assert_eq!(inj.first_downtime_in(d, s, e), Some(s));
                assert!(!inj.reachable_at(d, s));
            }
        }
    }

    #[test]
    fn slowdown_is_bounded_and_quiet_is_identity() {
        assert_eq!(condition_slowdown(&SocCondition::quiet()), 1.0);
        let mut c = SocCondition::quiet();
        c.npu_derate = 0.12;
        let s = condition_slowdown(&c);
        assert!(s > 8.0 && s <= MAX_SLOWDOWN);
        c.thermal_factor = 0.01;
        assert!(condition_slowdown(&c) <= MAX_SLOWDOWN);
    }
}
