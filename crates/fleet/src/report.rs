//! All-integer fleet reports.
//!
//! Same determinism discipline as `heterollm`'s
//! `DegradationSummary`/`MetricsSnapshot`: every value is a count or
//! integer nanoseconds, every container iterates in a fixed order,
//! and same-seed runs serialize byte-identically (the CI `cmp` gate).

use heterollm::obs::{MetricsRegistry, MetricsSnapshot};
use serde::{Deserialize, Serialize};

use crate::workload::Priority;

/// Per-priority-class accounting for one arm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriorityStats {
    /// Class name (`interactive` / `standard` / `batch`).
    pub class: String,
    /// Requests offered.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests lost (dispatched but never completed).
    pub lost: u64,
    /// Served requests meeting both TTFT and TPOT SLOs.
    pub slo_met: u64,
    /// Total SLO penalty charged to this class, nanoseconds: every
    /// shed request is charged a class-weighted TTFT-SLO penalty
    /// (interactive 4×, standard 2×, batch 1× — shedding interactive
    /// traffic is the worst outcome admission control can buy), and
    /// every lost request is charged the full lost-penalty deadline.
    pub penalty_ns: u64,
}

impl PriorityStats {
    /// Empty stats for one class.
    pub fn new(p: Priority) -> Self {
        Self {
            class: p.name().to_string(),
            offered: 0,
            served: 0,
            shed: 0,
            lost: 0,
            slo_met: 0,
            penalty_ns: 0,
        }
    }
}

/// Fleet-wide outcome of one routing arm under the seeded fault
/// storm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmReport {
    /// Routing policy name (`robust` / `round-robin`).
    pub policy: String,
    /// Fleet size.
    pub devices: u64,
    /// Requests offered to the router.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed at admission (priority-aware, robust arm only).
    pub shed: u64,
    /// Unrecovered requests: dispatched but never completed.
    pub lost: u64,
    /// Retry dispatches beyond each request's first attempt.
    pub retries: u64,
    /// Circuit-breaker trips across the fleet.
    pub breaker_trips: u64,
    /// TTFT quantiles (merged power-of-two histograms, bucket upper
    /// bounds, nanoseconds). Lost requests are recorded at the
    /// penalty deadline so tail quantiles reflect them.
    pub ttft_p50_ns: u64,
    /// p99 TTFT upper bound, nanoseconds.
    pub ttft_p99_ns: u64,
    /// p999 TTFT upper bound, nanoseconds.
    pub ttft_p999_ns: u64,
    /// p50 TPOT upper bound, nanoseconds.
    pub tpot_p50_ns: u64,
    /// p99 TPOT upper bound, nanoseconds.
    pub tpot_p99_ns: u64,
    /// p999 TPOT upper bound, nanoseconds.
    pub tpot_p999_ns: u64,
    /// TTFT SLO used for attainment, nanoseconds.
    pub slo_ttft_ns: u64,
    /// TPOT SLO used for attainment, nanoseconds.
    pub slo_tpot_ns: u64,
    /// Served requests meeting both SLOs (goodput).
    pub goodput: u64,
    /// `goodput * 1_000_000 / offered`.
    pub attainment_ppm: u64,
    /// Fleet busy time over `horizon × devices`, parts per million —
    /// the capacity-idle signal the `shed-starvation` analyzer rule
    /// reads.
    pub busy_ppm: u64,
    /// Per-class breakdown, ordered like [`Priority::ALL`].
    pub by_priority: Vec<PriorityStats>,
    /// Merged per-device metrics registry (counters + histograms).
    pub metrics: MetricsSnapshot,
}

/// Both arms under the identical seeded workload and fault plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetComparison {
    /// Run seed.
    pub seed: u64,
    /// Fleet size.
    pub devices: u64,
    /// Requests offered.
    pub requests: u64,
    /// The robust router arm.
    pub robust: ArmReport,
    /// The naive round-robin arm.
    pub naive: ArmReport,
}

/// Pull the three report quantiles out of a merged histogram in `reg`
/// (0 when the histogram never got an observation).
pub fn quantiles_ns(reg: &MetricsRegistry, name: &str) -> (u64, u64, u64) {
    match reg.histogram(name) {
        None => (0, 0, 0),
        Some(h) => (
            h.quantile_upper_ns(50, 100),
            h.quantile_upper_ns(99, 100),
            h.quantile_upper_ns(999, 1000),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_soc::SimTime;

    #[test]
    fn report_serializes_all_integer() {
        let mut reg = MetricsRegistry::new();
        reg.incr("served", 3);
        reg.observe("ttft_ns", SimTime::from_millis(12));
        let arm = ArmReport {
            policy: "robust".into(),
            devices: 8,
            offered: 3,
            served: 3,
            shed: 0,
            lost: 0,
            retries: 1,
            breaker_trips: 0,
            ttft_p50_ns: 1,
            ttft_p99_ns: 2,
            ttft_p999_ns: 3,
            tpot_p50_ns: 4,
            tpot_p99_ns: 5,
            tpot_p999_ns: 6,
            slo_ttft_ns: 7,
            slo_tpot_ns: 8,
            goodput: 3,
            attainment_ppm: 1_000_000,
            busy_ppm: 10,
            by_priority: Priority::ALL
                .iter()
                .map(|&p| PriorityStats::new(p))
                .collect(),
            metrics: reg.snapshot(),
        };
        let json = serde_json::to_string(&arm).expect("serialize");
        assert!(!json.contains('.'), "non-integer value leaked: {json}");
        let back: ArmReport = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, arm);
    }

    #[test]
    fn quantiles_come_from_merged_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for i in 1..=50u64 {
            a.observe("ttft_ns", SimTime::from_micros(i));
            b.observe("ttft_ns", SimTime::from_micros(100 * i));
        }
        let mut merged = MetricsRegistry::new();
        merged.merge(&a);
        merged.merge(&b);
        let (p50, p99, p999) = quantiles_ns(&merged, "ttft_ns");
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p50 > 0);
        assert_eq!(quantiles_ns(&merged, "missing"), (0, 0, 0));
    }
}
