//! Seeded fleet request streams.
//!
//! Same idiom as `heterollm::runtime::conversation_traffic`, extended
//! with per-request priority classes for admission control.

use hetero_soc::SimTime;
use serde::{Deserialize, Serialize};

use crate::draw;

/// Priority class of one request, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// A user is waiting on the first token (chat foreground).
    Interactive,
    /// Latency matters but a retry dialog is acceptable.
    Standard,
    /// Offline work (summarization queues, embeddings backfill).
    Batch,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Stable lowercase name (used as a metrics suffix).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }

    /// Index into [`Priority::ALL`].
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }
}

/// One request offered to the fleet router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetRequest {
    /// Stable request id (also the retry-jitter decorrelator).
    pub id: u64,
    /// Arrival time at the router.
    pub arrival: SimTime,
    /// Prompt tokens to prefill.
    pub prompt_tokens: usize,
    /// Tokens to decode.
    pub decode_tokens: usize,
    /// Admission-control class.
    pub priority: Priority,
}

/// Generate `count` seeded requests with mean inter-arrival gap
/// `mean_gap`: gaps are 25%–175% of the mean, prompts 32–511 tokens,
/// responses 8–63 tokens, priorities split ≈50/30/20 across
/// interactive/standard/batch. Deterministic in `seed`.
pub fn fleet_traffic(seed: u64, count: usize, mean_gap: SimTime) -> Vec<FleetRequest> {
    let mut arrival = SimTime::ZERO;
    (0..count as u64)
        .map(|i| {
            let pct = 25 + draw(seed, 4 * i) % 150;
            arrival += SimTime::from_nanos(mean_gap.as_nanos() * pct / 100);
            let pclass = match draw(seed, 4 * i + 3) % 10 {
                0..=4 => Priority::Interactive,
                5..=7 => Priority::Standard,
                _ => Priority::Batch,
            };
            FleetRequest {
                id: i,
                arrival,
                prompt_tokens: 32 + (draw(seed, 4 * i + 1) % 480) as usize,
                decode_tokens: 8 + (draw(seed, 4 * i + 2) % 56) as usize,
                priority: pclass,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_deterministic_and_ordered() {
        let a = fleet_traffic(7, 100, SimTime::from_millis(5));
        let b = fleet_traffic(7, 100, SimTime::from_millis(5));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|r| r.prompt_tokens >= 32));
    }

    #[test]
    fn all_priorities_appear() {
        let reqs = fleet_traffic(42, 200, SimTime::from_millis(1));
        for p in Priority::ALL {
            assert!(reqs.iter().any(|r| r.priority == p), "{} missing", p.name());
        }
    }
}
