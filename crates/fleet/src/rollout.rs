//! Staged canary rollout of candidate routing policies with
//! auto-rollback, driven by the online drift profiler.
//!
//! A candidate [`PolicyRevision`] (a re-tuned partition-plan table,
//! modeled as per-profile service multipliers) is shipped to seeded
//! device cohorts in stages — [`ROLLOUT_STAGES`] percent of the fleet
//! — and each stage replays the *identical* seeded workload and fault
//! plan in its own time window of the master event log. Canary
//! devices run the candidate; a matching share of requests is pinned
//! to the canary pool so the canary-vs-control comparison sees the
//! same traffic mix. After each window the controller compares the
//! two groups on all-integer SLO deltas (attainment ppm, merged-
//! histogram TTFT quantile ratios, with a min-sample starvation
//! guard) and either promotes to the next stage or rolls back,
//! reverting every canary.
//!
//! Every decision is a typed event in the canonical
//! [`FleetEventLog`] — [`FleetEvent::RolloutStage`],
//! [`FleetEvent::ProfileUpdate`], [`FleetEvent::Promote`],
//! [`FleetEvent::Rollback`] — so `hetero_analyze` can certify the
//! rollout after the fact: promotion-legality, rollback-completeness
//! and blast-radius are pLTL specs over this log, and the rollout
//! state machine is model-checked exhaustively.
//!
//! Cohorts are nested (stage cohorts are prefixes of one seeded
//! Fisher–Yates permutation), so a device exposed at 1% stays exposed
//! at 10% — blast radius grows monotonically and rollback at stage
//! `k` bounds exposure to the stage-`k` cohort.

use std::collections::BTreeMap;

use hetero_profiler::RealExecProvider;
use hetero_soc::sync::Dominance;
use hetero_soc::{SimTime, SocConfig};
use hetero_solver::{resolve_for_drift, SolverConfig};
use hetero_tensor::shape::MatmulShape;
use serde::{Deserialize, Serialize};

use crate::device::{CALIB_DECODE, CALIB_PROMPT};
use crate::draw;
use crate::events::{FleetEvent, FleetEventLog, ProfileCause, EVENT_LOG_VERSION};
use crate::profiler::{OnlineProfiler, DRIFT_RESOLVE_THRESHOLD_PPM, FEW_SHOT_SAMPLES, PPM};
use crate::report::ArmReport;
use crate::router::FleetSim;

/// Draw-offset namespace for the cohort permutation (decorrelated
/// from routing's `9 << 40` and the fault plan's lower namespaces).
const OFF_COHORT: u64 = 10 << 40;

/// Draw-offset namespace for pinning requests to the canary pool.
const OFF_CANARY_POOL: u64 = 11 << 40;

/// Drift estimates are bucketed to this granularity before a
/// partition re-solve so one solver run serves every device of the
/// same profile drifting in the same band.
const RESOLVE_BUCKET_PPM: u64 = 250_000;

/// Staged exposure schedule, percent of the fleet per stage.
pub const ROLLOUT_STAGES: [u32; 4] = [1, 10, 50, 100];

/// A candidate routing-policy revision under rollout: per-profile
/// service-time multipliers (ppm, `1_000_000` = unchanged) modeling a
/// re-tuned partition-plan table. A multiplier above `PPM` on a
/// profile is a stage inversion — the plan that benched faster in the
/// lab runs the NPU-dominant stage slower on that device subclass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyRevision {
    /// Monotone revision id (0 is reserved for the baseline).
    pub revision: u64,
    /// Human-readable candidate name (appears in the log's policy).
    pub name: String,
    /// Prefill service multiplier per profile index, ppm.
    pub prefill_mult_ppm: Vec<u64>,
    /// Decode service multiplier per profile index, ppm.
    pub decode_mult_ppm: Vec<u64>,
}

impl PolicyRevision {
    /// A candidate applying the same multiplier to every profile.
    pub fn uniform(revision: u64, name: &str, profiles: usize, mult_ppm: u64) -> Self {
        Self {
            revision,
            name: name.to_string(),
            prefill_mult_ppm: vec![mult_ppm; profiles],
            decode_mult_ppm: vec![mult_ppm; profiles],
        }
    }

    /// A candidate regressing only the profiles in `targets` (the
    /// device subclass whose NPU the candidate plan inverts), leaving
    /// the rest unchanged.
    pub fn targeting(
        revision: u64,
        name: &str,
        profiles: usize,
        targets: &[usize],
        mult_ppm: u64,
    ) -> Self {
        let mut mults = vec![PPM; profiles];
        for &t in targets {
            if t < profiles {
                mults[t] = mult_ppm;
            }
        }
        Self {
            revision,
            name: name.to_string(),
            prefill_mult_ppm: mults.clone(),
            decode_mult_ppm: mults,
        }
    }
}

/// Controller tuning: exposure schedule, verdict thresholds, decision
/// timing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutConfig {
    /// Exposure per stage, percent of the fleet.
    pub stages: Vec<u32>,
    /// Minimum canary-group completions for a statistical verdict;
    /// below it the stage is `starved` and the controller rolls back
    /// conservatively rather than promoting blind.
    pub min_canary_samples: u64,
    /// Maximum tolerated canary attainment drop vs control, ppm.
    pub max_attainment_drop_ppm: u64,
    /// Maximum tolerated canary median normalized-service regression
    /// vs control, percent. Service ratios (observed / static-profile
    /// expectation, ppm — the same normalization the drift profiler
    /// uses) are profile-independent, so a small cohort that happens
    /// to skew toward slow SoC profiles does not read as a
    /// regression; quantiles are exact order statistics, so the ratio
    /// is meaningful at canary sample sizes.
    pub max_p50_regress_pct: u64,
    /// Maximum tolerated canary p99 normalized-service regression vs
    /// control, percent (the tail gate; wider, because small canary
    /// samples make tails noisy).
    pub max_p99_regress_pct: u64,
    /// Minimum completions in *both* groups before the p99 tail gate
    /// applies — a 10-sample p99 is the sample maximum, and one
    /// brownout-window sample would fail a healthy candidate.
    pub tail_min_samples: u64,
    /// Lag from the end of a stage window's retry horizon to the
    /// promote/rollback decision event.
    pub decision_lag: SimTime,
    /// Lag from a rollback decision to the canary revert events.
    pub revert_lag: SimTime,
}

impl RolloutConfig {
    /// The shipped schedule: 1% → 10% → 50% → 100%, ≥ 8 canary
    /// samples, ≤ 15% attainment drop, ≤ 50% median and ≤ 100% p99
    /// normalized-service regression (tail gate needs ≥ 128 samples
    /// per group, so it arms at the 50% stage), 1 ms decision and
    /// revert lags.
    pub fn standard() -> Self {
        Self {
            stages: ROLLOUT_STAGES.to_vec(),
            min_canary_samples: 8,
            max_attainment_drop_ppm: 150_000,
            max_p50_regress_pct: 50,
            max_p99_regress_pct: 100,
            tail_min_samples: 128,
            decision_lag: SimTime::from_millis(1),
            revert_lag: SimTime::from_millis(1),
        }
    }
}

/// All-integer per-group SLO stats accumulated during one stage
/// window. Quantiles are exact order statistics over the raw samples
/// (sorted at verdict time, so order-independent): the fleet report's
/// power-of-two histogram buckets quantize a one-bucket jump to a 2×
/// ratio, which at canary sample sizes cannot distinguish a real 2×
/// regression from a value straddling a bucket edge.
#[derive(Debug, Default)]
pub(crate) struct GroupStats {
    /// Raw per-completion TTFTs, arrival order (observability).
    ttft_ns: Vec<u64>,
    /// Raw per-completion normalized service ratios (observed ns ·
    /// 10⁶ / static-profile expectation), arrival order — the
    /// verdict's profile-independent regression signal.
    service_ppm: Vec<u64>,
    /// Completions attributed to the group.
    pub(crate) served: u64,
    /// Completions meeting both SLOs.
    pub(crate) slo_met: u64,
}

/// Exact upper quantile of unsorted samples: the smallest sample with
/// at least `num/den` of the mass at or below it (0 when empty).
fn exact_quantile_ns(samples: &[u64], num: u64, den: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() as u64 * num).div_ceil(den).max(1) - 1;
    sorted[(rank as usize).min(sorted.len() - 1)]
}

impl GroupStats {
    fn new() -> Self {
        Self::default()
    }

    fn attainment_ppm(&self) -> u64 {
        (self.slo_met * PPM).checked_div(self.served).unwrap_or(0)
    }

    fn ttft_quantiles(&self) -> (u64, u64, u64) {
        (
            exact_quantile_ns(&self.ttft_ns, 50, 100),
            exact_quantile_ns(&self.ttft_ns, 99, 100),
            exact_quantile_ns(&self.ttft_ns, 999, 1000),
        )
    }

    fn service_quantiles_ppm(&self) -> (u64, u64) {
        (
            exact_quantile_ns(&self.service_ppm, 50, 100),
            exact_quantile_ns(&self.service_ppm, 99, 100),
        )
    }
}

/// The per-stage state the replay loop consults: which devices run
/// the candidate, each device's online drift profiler, and the
/// canary/control accounting. Built by [`RolloutController`] per
/// window, threaded through `FleetSim::replay` by `&mut`.
pub(crate) struct StageOverlay {
    candidate: PolicyRevision,
    pct: u32,
    /// Whether each device runs the candidate this window.
    pub(crate) canary: Vec<bool>,
    /// Per-device online drift profilers (few-shot calibrated).
    pub(crate) profilers: Vec<OnlineProfiler>,
    /// Per-device service gain from a drift-triggered partition
    /// re-solve, ppm (`PPM` = no re-solve yet or plan kept).
    resolved_gain_ppm: Vec<u64>,
    drift_emitted: Vec<bool>,
    drift_resolves: u64,
    resolve_cache: BTreeMap<(usize, u64), u64>,
    socs: Vec<SocConfig>,
    model_hidden: usize,
    model_ffn: usize,
    pub(crate) canary_group: GroupStats,
    pub(crate) control_group: GroupStats,
}

/// Scale a duration by a ppm ratio, round-down integer math.
pub(crate) fn scale_ppm(t: SimTime, ppm: u64) -> SimTime {
    SimTime::from_nanos(((u128::from(t.as_nanos()) * u128::from(ppm)) / u128::from(PPM)) as u64)
}

impl StageOverlay {
    /// Whether request `req_id` is pinned to the canary pool this
    /// stage: a seeded-phase exact-share assignment (`pct` of every
    /// 100 consecutive ids), so canary traffic share tracks the
    /// stage's device exposure exactly — a binomial draw could starve
    /// a 1% stage of evidence entirely — while the phase keeps the
    /// pinned subset seed-dependent.
    pub(crate) fn is_canary_request(&self, seed: u64, req_id: u64) -> bool {
        let phase = draw(seed, OFF_CANARY_POOL + u64::from(self.pct)) % 100;
        (req_id + phase) % 100 < u64::from(self.pct)
    }

    /// Candidate service multipliers for device `idx` (ppm), with any
    /// drift-resolve gain folded in. Control devices run the baseline
    /// plan (multiplier [`PPM`]) but still benefit from re-solves.
    pub(crate) fn service_mults_ppm(&self, idx: usize, profile_idx: usize) -> (u64, u64) {
        let (pm, dm) = if self.canary[idx] {
            (
                self.candidate.prefill_mult_ppm[profile_idx],
                self.candidate.decode_mult_ppm[profile_idx],
            )
        } else {
            (PPM, PPM)
        };
        let gain = self.resolved_gain_ppm[idx];
        (pm * gain / PPM, dm * gain / PPM)
    }

    /// Fold one completion into device `idx`'s profiler. The first
    /// time the estimate crosses the re-solve threshold this window,
    /// re-solve the device's partition plan under the drifted costs
    /// and return the [`ProfileCause::Drift`] event to log.
    pub(crate) fn observe_completion(
        &mut self,
        idx: usize,
        profile_idx: usize,
        observed_ns: u64,
        expected_ns: u64,
        at: SimTime,
    ) -> Option<FleetEvent> {
        self.profilers[idx].observe(observed_ns, expected_ns);
        if self.drift_emitted[idx]
            || !self.profilers[idx].needs_resolve(DRIFT_RESOLVE_THRESHOLD_PPM)
        {
            return None;
        }
        Some(self.resolve_drift(idx, profile_idx, at))
    }

    /// Record a completion's SLO outcome and normalized service ratio
    /// into its group.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_outcome(
        &mut self,
        canary_device: bool,
        service_ppm: u64,
        ttft: SimTime,
        tpot: SimTime,
        slo_ttft: SimTime,
        slo_tpot: SimTime,
    ) {
        let group = if canary_device {
            &mut self.canary_group
        } else {
            &mut self.control_group
        };
        group.served += 1;
        group.ttft_ns.push(ttft.as_nanos());
        group.service_ppm.push(service_ppm);
        if ttft <= slo_ttft && tpot <= slo_tpot {
            group.slo_met += 1;
        }
    }

    /// Mark device `idx` drifted: re-solve its partition plan under
    /// the estimated slowdown (one solver run per profile × drift
    /// bucket, cached) and build the `Drift` event.
    fn resolve_drift(&mut self, idx: usize, profile_idx: usize, at: SimTime) -> FleetEvent {
        self.drift_emitted[idx] = true;
        self.drift_resolves += 1;
        let est = self.profilers[idx].estimate_ppm();
        let bucket = (est / RESOLVE_BUCKET_PPM) * RESOLVE_BUCKET_PPM;
        let gain = match self.resolve_cache.get(&(profile_idx, bucket)) {
            Some(&g) => g,
            None => {
                let provider = RealExecProvider::new(self.socs[profile_idx].clone());
                let shape = MatmulShape::new(CALIB_PROMPT, self.model_hidden, self.model_ffn);
                let r = resolve_for_drift(
                    &provider,
                    &SolverConfig::default(),
                    shape,
                    Dominance::NpuDominant,
                    bucket,
                );
                self.resolve_cache.insert((profile_idx, bucket), r.gain_ppm);
                r.gain_ppm
            }
        };
        self.resolved_gain_ppm[idx] = gain;
        FleetEvent::ProfileUpdate {
            at,
            device: idx as u64,
            slowdown_ppm: est,
            revision: if self.canary[idx] {
                self.candidate.revision
            } else {
                0
            },
            cause: ProfileCause::Drift,
        }
    }
}

/// One stage's all-integer verdict evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage number, 1-based.
    pub stage: u32,
    /// Exposure, percent of the fleet.
    pub pct: u32,
    /// Canary cohort size, devices.
    pub canary_devices: u64,
    /// Canary-group completions.
    pub canary_served: u64,
    /// Control-group completions.
    pub control_served: u64,
    /// Canary SLO attainment over completions, ppm.
    pub canary_attainment_ppm: u64,
    /// Control SLO attainment over completions, ppm.
    pub control_attainment_ppm: u64,
    /// Canary median TTFT, ns (merged-histogram upper bound).
    pub canary_ttft_p50_ns: u64,
    /// Control median TTFT, ns.
    pub control_ttft_p50_ns: u64,
    /// Canary p99 TTFT, ns.
    pub canary_ttft_p99_ns: u64,
    /// Control p99 TTFT, ns.
    pub control_ttft_p99_ns: u64,
    /// Canary median normalized service ratio, ppm of the static
    /// profile (the verdict's profile-independent signal).
    pub canary_service_p50_ppm: u64,
    /// Control median normalized service ratio, ppm.
    pub control_service_p50_ppm: u64,
    /// Canary p99 normalized service ratio, ppm.
    pub canary_service_p99_ppm: u64,
    /// Control p99 normalized service ratio, ppm.
    pub control_service_p99_ppm: u64,
    /// Requests lost fleet-wide during the stage window.
    pub lost: u64,
    /// Drift-triggered partition re-solves during the window.
    pub drift_resolves: u64,
    /// `promote`, `rollback`, or `starved` (rolled back for lack of
    /// canary evidence).
    pub verdict: String,
}

/// Outcome of one full staged rollout, all integers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutReport {
    /// Candidate name.
    pub candidate: String,
    /// Candidate revision id.
    pub revision: u64,
    /// Run seed.
    pub seed: u64,
    /// Fleet size.
    pub devices: u64,
    /// Requests offered per window.
    pub requests: u64,
    /// Baseline-window fleet SLO attainment, ppm.
    pub baseline_attainment_ppm: u64,
    /// Baseline-window fleet p99 TTFT, ns.
    pub baseline_ttft_p99_ns: u64,
    /// Fleet attainment of the last replayed window, ppm.
    pub final_attainment_ppm: u64,
    /// `promoted` or `rolled-back`.
    pub outcome: String,
    /// Last stage reached, 1-based.
    pub final_stage: u32,
    /// Largest canary cohort ever exposed, devices.
    pub exposed_devices: u64,
    /// `exposed_devices · 10⁶ / devices` — the blast radius.
    pub exposed_ppm: u64,
    /// Stage-open to rollback-decision latency, ns (0 if promoted).
    pub rollback_latency_ns: u64,
    /// Requests lost across every window (baseline included).
    pub lost: u64,
    /// Verdict threshold echoed for the evidence lint.
    pub min_canary_samples: u64,
    /// Verdict threshold echoed for the evidence lint.
    pub max_attainment_drop_ppm: u64,
    /// Verdict threshold echoed for the evidence lint.
    pub max_p50_regress_pct: u64,
    /// Verdict threshold echoed for the evidence lint.
    pub max_p99_regress_pct: u64,
    /// Verdict threshold echoed for the evidence lint.
    pub tail_min_samples: u64,
    /// Per-stage evidence, in replay order.
    pub stages: Vec<StageReport>,
}

/// A set of rollout event logs (one per candidate), the JSON shape
/// `rollout_sweep --events-out` writes and `analyze monitor` reads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutLogSet {
    /// One master log per rollout run.
    pub runs: Vec<FleetEventLog>,
}

/// The staged-rollout controller: replays one seeded fleet world per
/// stage window and promotes or rolls back on all-integer SLO deltas.
pub struct RolloutController<'a> {
    sim: &'a FleetSim,
    cfg: RolloutConfig,
}

impl<'a> RolloutController<'a> {
    /// Controller over one materialized fleet world.
    pub fn new(sim: &'a FleetSim, cfg: RolloutConfig) -> Self {
        Self { sim, cfg }
    }

    /// The seeded cohort permutation: stage cohorts are prefixes, so
    /// exposure is nested and monotone.
    pub fn cohort_permutation(&self) -> Vec<usize> {
        let n = self.sim.config().devices;
        let seed = self.sim.config().seed;
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (draw(seed, OFF_COHORT + i as u64) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    /// Width of one rollout window on the master timeline: the replay
    /// horizon, the lost-penalty retry tail, and a slack second for
    /// the decision and revert events.
    pub fn window_span(&self) -> SimTime {
        self.sim.horizon() + self.sim.lost_penalty() + SimTime::from_millis(1_000)
    }

    /// Run the staged rollout of `candidate`: a baseline window, then
    /// one window per stage until promotion at 100% or rollback.
    /// Returns the all-integer report and the master event log
    /// (canonically ordered, byte-identical per seed).
    pub fn run(&self, candidate: &PolicyRevision) -> (RolloutReport, FleetEventLog) {
        let sim = self.sim;
        let n = sim.config().devices;
        let span = self.window_span();
        let mut master = FleetEventLog {
            version: EVENT_LOG_VERSION,
            seed: sim.config().seed,
            policy: format!("rollout-{}", candidate.name),
            devices: n as u64,
            requests: sim.config().requests as u64,
            slo_ttft_ns: sim.slo_ttft().as_nanos(),
            deadline_ns: sim.lost_penalty().as_nanos(),
            census_interval_ns: sim.config().probe_interval.as_nanos(),
            rollout_window_ns: span.as_nanos(),
            events: Vec::new(),
        };
        let perm = self.cohort_permutation();

        // Window 0: baseline — the overlay machinery active (profiler
        // scoring, drift re-solves) but zero canaries, so stage
        // verdicts compare against the same serving stack.
        let (base_report, base_events, _) = self.window(candidate, 0, &[]);
        master.events.extend(base_events);
        let baseline_attainment_ppm = base_report.attainment_ppm;
        let baseline_ttft_p99_ns = base_report.ttft_p99_ns;
        let mut lost = base_report.lost;

        let decision_at = sim.horizon() + sim.lost_penalty() + self.cfg.decision_lag;
        let mut stages = Vec::new();
        let mut outcome = "promoted";
        let mut final_stage = 0u32;
        let mut exposed_devices = 0u64;
        let mut rollback_latency_ns = 0u64;
        let mut final_attainment_ppm = baseline_attainment_ppm;

        for (k, &pct) in self.cfg.stages.iter().enumerate() {
            let stage_no = k as u32 + 1;
            let cohort = (n * pct as usize).div_ceil(100).min(n);
            let base_t = SimTime::from_nanos(span.as_nanos() * (k as u64 + 1));
            let (win_report, mut events, overlay) = self.window(candidate, pct, &perm[..cohort]);
            events.push(FleetEvent::RolloutStage {
                at: SimTime::ZERO,
                stage: stage_no,
                pct,
                canary: cohort as u64,
            });

            let report = self.stage_report(
                stage_no,
                pct,
                cohort as u64,
                &overlay,
                &win_report,
                baseline_attainment_ppm,
                baseline_ttft_p99_ns,
            );
            let promote = report.verdict == "promote";
            if promote {
                events.push(FleetEvent::Promote {
                    at: decision_at,
                    stage: stage_no,
                });
            } else {
                events.push(FleetEvent::Rollback {
                    at: decision_at,
                    stage: stage_no,
                });
                let revert_at = decision_at + self.cfg.revert_lag;
                for &d in &perm[..cohort] {
                    events.push(FleetEvent::ProfileUpdate {
                        at: revert_at,
                        device: d as u64,
                        slowdown_ppm: PPM,
                        revision: candidate.revision,
                        cause: ProfileCause::Rollback,
                    });
                }
            }
            master
                .events
                .extend(events.iter().map(|e| e.shifted(base_t)));

            lost += win_report.lost;
            exposed_devices = exposed_devices.max(cohort as u64);
            final_stage = stage_no;
            final_attainment_ppm = win_report.attainment_ppm;
            stages.push(report);
            if !promote {
                outcome = "rolled-back";
                rollback_latency_ns = decision_at.as_nanos();
                break;
            }
        }

        master.normalize();
        let report = RolloutReport {
            candidate: candidate.name.clone(),
            revision: candidate.revision,
            seed: sim.config().seed,
            devices: n as u64,
            requests: sim.config().requests as u64,
            baseline_attainment_ppm,
            baseline_ttft_p99_ns,
            final_attainment_ppm,
            outcome: outcome.to_string(),
            final_stage,
            exposed_devices,
            exposed_ppm: (exposed_devices * PPM).checked_div(n as u64).unwrap_or(0),
            rollback_latency_ns,
            lost,
            min_canary_samples: self.cfg.min_canary_samples,
            max_attainment_drop_ppm: self.cfg.max_attainment_drop_ppm,
            max_p50_regress_pct: self.cfg.max_p50_regress_pct,
            max_p99_regress_pct: self.cfg.max_p99_regress_pct,
            tail_min_samples: self.cfg.tail_min_samples,
            stages,
        };
        (report, master)
    }

    /// Replay one stage window: build the overlay (canary flags,
    /// few-shot-calibrated profilers, candidate-apply events), run
    /// the seeded world through it, and return the fleet report, the
    /// stage-local events, and the overlay's group accounting.
    fn window(
        &self,
        candidate: &PolicyRevision,
        pct: u32,
        cohort: &[usize],
    ) -> (ArmReport, Vec<FleetEvent>, StageOverlay) {
        let sim = self.sim;
        let n = sim.config().devices;
        let profiles = sim.profiles();
        let mut canary = vec![false; n];
        for &d in cohort {
            canary[d] = true;
        }

        let mut events = Vec::new();
        // The candidate lands on its cohort at window open.
        for &d in cohort {
            let profile_idx = d % profiles.len();
            events.push(FleetEvent::ProfileUpdate {
                at: SimTime::ZERO,
                device: d as u64,
                slowdown_ppm: candidate.prefill_mult_ppm[profile_idx],
                revision: candidate.revision,
                cause: ProfileCause::CanaryApply,
            });
        }

        let mut overlay = StageOverlay {
            candidate: candidate.clone(),
            pct,
            canary,
            profilers: Vec::with_capacity(n),
            resolved_gain_ppm: vec![PPM; n],
            drift_emitted: vec![false; n],
            drift_resolves: 0,
            resolve_cache: BTreeMap::new(),
            socs: sim.socs().to_vec(),
            model_hidden: sim.config().model.hidden,
            model_ffn: sim.config().model.ffn,
            canary_group: GroupStats::new(),
            control_group: GroupStats::new(),
        };

        // Few-shot micro-benchmark at session start: each device runs
        // the calibration shape FEW_SHOT_SAMPLES times on its own
        // serving stack (candidate multipliers included on canaries)
        // under whatever disturbance the fault plan has at the probe
        // instants, and seeds its profiler with the mean.
        let probe = sim.config().probe_interval;
        for d in 0..n {
            let profile_idx = d % profiles.len();
            let profile = &profiles[profile_idx];
            let expected = profile.service_estimate(CALIB_PROMPT, CALIB_DECODE);
            let mut profiler = OnlineProfiler::new(expected.as_nanos());
            let (pm, dm) = overlay.service_mults_ppm(d, profile_idx);
            let quiet = scale_ppm(
                SimTime::from_nanos(profile.prefill_ns_per_token * CALIB_PROMPT as u64),
                pm,
            ) + scale_ppm(
                SimTime::from_nanos(profile.decode_ns_per_token * CALIB_DECODE as u64),
                dm,
            );
            let samples: Vec<u64> = (0..FEW_SHOT_SAMPLES)
                .map(|j| {
                    let t = SimTime::from_nanos(probe.as_nanos() * j as u64);
                    quiet.scale(sim.injector().slowdown_at(d, t)).as_nanos()
                })
                .collect();
            profiler.calibrate(&samples);
            events.push(FleetEvent::ProfileUpdate {
                at: SimTime::ZERO,
                device: d as u64,
                slowdown_ppm: profiler.estimate_ppm(),
                revision: if overlay.canary[d] {
                    candidate.revision
                } else {
                    0
                },
                cause: ProfileCause::Calibration,
            });
            overlay.profilers.push(profiler);
        }
        // A candidate bad enough to show up in the few-shot bench
        // drifts immediately: re-solve before the first request.
        for d in 0..n {
            if overlay.profilers[d].needs_resolve(DRIFT_RESOLVE_THRESHOLD_PPM) {
                let ev = overlay.resolve_drift(d, d % profiles.len(), SimTime::ZERO);
                events.push(ev);
            }
        }

        let (report, stage_log) = sim.replay_stage(&mut overlay);
        events.extend(stage_log.events);
        (report, events, overlay)
    }

    /// The all-integer stage verdict. Stages below 100% compare the
    /// canary group against the same-window control group; the 100%
    /// stage has no control group and compares the whole fleet
    /// against the baseline window.
    #[allow(clippy::too_many_arguments)]
    fn stage_report(
        &self,
        stage_no: u32,
        pct: u32,
        canary_devices: u64,
        overlay: &StageOverlay,
        win_report: &ArmReport,
        baseline_attainment_ppm: u64,
        baseline_ttft_p99_ns: u64,
    ) -> StageReport {
        let cfg = &self.cfg;
        let canary = &overlay.canary_group;
        let control = &overlay.control_group;
        let (c_p50, c_p99, _) = canary.ttft_quantiles();
        let (k_p50, k_p99, _) = control.ttft_quantiles();
        let (c_sv50, c_sv99) = canary.service_quantiles_ppm();
        let (k_sv50, k_sv99) = control.service_quantiles_ppm();
        let canary_att = canary.attainment_ppm();
        let control_att = control.attainment_ppm();

        let regressed = |att: u64,
                         att_ref: u64,
                         p50: u64,
                         p50_ref: u64,
                         p99: u64,
                         p99_ref: u64,
                         tail_ok: bool| {
            att + cfg.max_attainment_drop_ppm < att_ref
                || (p50_ref > 0
                    && p50.saturating_mul(100)
                        > p50_ref.saturating_mul(100 + cfg.max_p50_regress_pct))
                || (tail_ok
                    && p99_ref > 0
                    && p99.saturating_mul(100)
                        > p99_ref.saturating_mul(100 + cfg.max_p99_regress_pct))
        };
        let verdict = if pct < 100 {
            let tail_ok =
                canary.served >= cfg.tail_min_samples && control.served >= cfg.tail_min_samples;
            if canary.served < cfg.min_canary_samples {
                "starved"
            } else if regressed(
                canary_att,
                control_att,
                c_sv50,
                k_sv50,
                c_sv99,
                k_sv99,
                tail_ok,
            ) {
                "rollback"
            } else {
                "promote"
            }
        } else if regressed(
            win_report.attainment_ppm,
            baseline_attainment_ppm,
            0,
            0,
            win_report.ttft_p99_ns,
            baseline_ttft_p99_ns,
            true,
        ) {
            "rollback"
        } else {
            "promote"
        };

        StageReport {
            stage: stage_no,
            pct,
            canary_devices,
            canary_served: canary.served,
            control_served: control.served,
            canary_attainment_ppm: canary_att,
            control_attainment_ppm: control_att,
            canary_ttft_p50_ns: c_p50,
            control_ttft_p50_ns: k_p50,
            canary_ttft_p99_ns: c_p99,
            control_ttft_p99_ns: k_p99,
            canary_service_p50_ppm: c_sv50,
            control_service_p50_ppm: k_sv50,
            canary_service_p99_ppm: c_sv99,
            control_service_p99_ppm: k_sv99,
            lost: win_report.lost,
            drift_resolves: overlay.drift_resolves,
            verdict: verdict.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::FleetConfig;

    fn small_sim(seed: u64) -> FleetSim {
        FleetSim::new(FleetConfig::standard(seed, 48, 1000))
    }

    #[test]
    fn cohorts_are_seeded_nested_prefixes() {
        let sim = small_sim(42);
        let ctl = RolloutController::new(&sim, RolloutConfig::standard());
        let a = ctl.cohort_permutation();
        let b = ctl.cohort_permutation();
        assert_eq!(a, b, "cohort permutation must be seed-deterministic");
        assert_eq!(a.len(), 48);
        let mut sorted = a;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..48).collect::<Vec<_>>(), "must be a permutation");
        // Stage cohorts are prefixes: 1% ⊂ 10% ⊂ 50% ⊂ 100% by
        // construction — assert the sizes are monotone and nested.
        let sizes: Vec<usize> = ROLLOUT_STAGES
            .iter()
            .map(|&p| (48 * p as usize).div_ceil(100))
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn regressing_candidate_rolls_back_in_stage_one() {
        let sim = small_sim(42);
        let ctl = RolloutController::new(&sim, RolloutConfig::standard());
        let bad = PolicyRevision::uniform(7, "npu-inversion", sim.profiles().len(), 2_500_000);
        let (report, log) = ctl.run(&bad);
        assert_eq!(report.outcome, "rolled-back");
        assert_eq!(report.final_stage, 1, "must catch the regression at 1%");
        assert!(
            report.exposed_ppm < 50_000,
            "blast radius {} ppm too wide",
            report.exposed_ppm
        );
        assert!(report.rollback_latency_ns > 0);
        assert!(
            report.stages[0].drift_resolves > 0,
            "2.5x inversion must trip the drift profiler"
        );
        // The rollback and its reverts are in the log.
        assert!(log
            .events
            .iter()
            .any(|e| matches!(e, FleetEvent::Rollback { stage: 1, .. })));
        assert!(log.events.iter().any(|e| matches!(
            e,
            FleetEvent::ProfileUpdate {
                cause: ProfileCause::Rollback,
                ..
            }
        )));
        assert!(!log
            .events
            .iter()
            .any(|e| matches!(e, FleetEvent::Promote { .. })));
    }

    #[test]
    fn improving_candidate_promotes_to_full_fleet() {
        let sim = small_sim(42);
        let ctl = RolloutController::new(&sim, RolloutConfig::standard());
        let good = PolicyRevision::uniform(8, "tuned-partition", sim.profiles().len(), 930_000);
        let (report, log) = ctl.run(&good);
        assert_eq!(report.outcome, "promoted", "stages: {:?}", report.stages);
        assert_eq!(report.final_stage, ROLLOUT_STAGES.len() as u32);
        assert!(report.final_attainment_ppm >= report.baseline_attainment_ppm);
        assert_eq!(
            log.events
                .iter()
                .filter(|e| matches!(e, FleetEvent::Promote { .. }))
                .count(),
            ROLLOUT_STAGES.len()
        );
        assert!(!log
            .events
            .iter()
            .any(|e| matches!(e, FleetEvent::Rollback { .. })));
    }

    #[test]
    fn same_seed_rollout_is_byte_identical() {
        let bad = |sim: &FleetSim| {
            PolicyRevision::uniform(7, "npu-inversion", sim.profiles().len(), 2_500_000)
        };
        let sim_a = small_sim(11);
        let sim_b = small_sim(11);
        let (ra, la) = RolloutController::new(&sim_a, RolloutConfig::standard()).run(&bad(&sim_a));
        let (rb, lb) = RolloutController::new(&sim_b, RolloutConfig::standard()).run(&bad(&sim_b));
        assert_eq!(
            serde_json::to_string(&ra).expect("serialize"),
            serde_json::to_string(&rb).expect("serialize")
        );
        assert_eq!(
            serde_json::to_string(&la).expect("serialize"),
            serde_json::to_string(&lb).expect("serialize")
        );
    }
}
