//! The cluster-level request router and fleet simulator.
//!
//! [`FleetSim`] materializes one seeded world — request stream, fault
//! plan, calibrated device profiles — and replays it under either
//! routing policy, so arms differ *only* in policy:
//!
//! - [`RouterPolicy::RoundRobin`] — the naive baseline: next device
//!   modulo fleet size, one attempt, no health state. A dispatch into
//!   a crash or a lost link strands the request.
//! - [`RouterPolicy::Robust`] — health-probe-informed
//!   power-of-d-choices selection scored by EWMA latency plus queue
//!   wait, seeded exponential-backoff retries with per-request device
//!   exclusion, per-device circuit breakers, and priority-aware
//!   admission control. Retries are deadline-bounded: the exponential
//!   schedule runs first, then the capped delay, until the request's
//!   lost-penalty deadline — fault windows are finite and far shorter
//!   than the deadline, so a routed request always recovers.
//!
//! The router is a discrete-time replay over requests in arrival
//! order; each device serves its own queue (`busy_until`), so the
//! fleet serves in parallel while the replay stays sequential and
//! deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hetero_soc::{SimTime, SocConfig};
use heterollm::obs::MetricsRegistry;
use heterollm::ModelConfig;
use serde::{Deserialize, Serialize};

use crate::calib::{calibrate_devices, FleetCalibration};
use crate::device::{calibrate_profiles_with_socs, Device, DeviceProfile};
use crate::draw;
use crate::events::{FleetEvent, FleetEventLog, FleetLogPair, EVENT_LOG_VERSION};
use crate::fault::{FaultInjector, FaultPlanConfig};
use crate::policy::{AdmissionControl, BreakerConfig, RetryPolicy};
use crate::profiler::PPM;
use crate::report::{quantiles_ns, ArmReport, FleetComparison, PriorityStats};
use crate::rollout::{scale_ppm, StageOverlay};
use crate::workload::{fleet_traffic, FleetRequest, Priority};

/// Draw-offset namespace for candidate sampling (decorrelated from
/// the fault-plan offsets in [`crate::fault`]).
const OFF_SELECT: u64 = 9 << 40;

/// Candidates sampled per selection round (power-of-d-choices).
const SELECT_SAMPLES: u64 = 16;

/// Hard safety cap on dispatch attempts per request (robust arm).
///
/// The real bound is the per-request deadline; this cap only bounds
/// the loop if a zero-delay policy sneaks past the `retry-storm`
/// lint, and keeps each request inside its private draw namespace
/// (`MAX_DISPATCHES × SELECT_SAMPLES = 1024` draws per request).
/// Public so the `hetero_analyze` model checker explores the same
/// attempt budget the replay loop enforces.
pub const MAX_DISPATCHES: u32 = 64;

/// Reference request shape for sizing arrival rate and EWMA seeds.
const TYPICAL_PROMPT: usize = 272;
/// Reference decode length for the same.
const TYPICAL_DECODE: usize = 36;

/// Routing policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Naive round-robin: no health, no retry, no shedding.
    RoundRobin,
    /// The full robustness toolkit.
    Robust,
}

impl RouterPolicy {
    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::Robust => "robust",
        }
    }
}

/// Configuration of one fleet world.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Run seed (workload, faults, jitter, sampling).
    pub seed: u64,
    /// Fleet size.
    pub devices: usize,
    /// Requests offered.
    pub requests: usize,
    /// Model every device serves.
    pub model: ModelConfig,
    /// Target fleet utilization in percent; the arrival rate is
    /// derived from it and the calibrated mean service time.
    pub target_busy_pct: u32,
    /// Retry/backoff/timeout schedule (robust arm).
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning (robust arm).
    pub breaker: BreakerConfig,
    /// Load-shedding thresholds (robust arm).
    pub admission: AdmissionControl,
    /// Health-probe period: the router's view of reachability lags
    /// real state by at most this much.
    pub probe_interval: SimTime,
    /// Fault-plan shape.
    pub fault: FaultPlanConfig,
}

impl FleetConfig {
    /// The shipped configuration at `seed` with `devices` devices and
    /// `requests` requests on InternLM-1.8B at ~60% fleet load.
    pub fn standard(seed: u64, devices: usize, requests: usize) -> Self {
        Self {
            seed,
            devices,
            requests,
            model: ModelConfig::internlm_1_8b(),
            target_busy_pct: 60,
            retry: RetryPolicy::standard(),
            breaker: BreakerConfig::standard(),
            admission: AdmissionControl::standard(),
            probe_interval: SimTime::from_millis(50),
            fault: FaultPlanConfig::standard(),
        }
    }
}

/// One materialized fleet world, replayable under any policy.
pub struct FleetSim {
    config: FleetConfig,
    profiles: Vec<DeviceProfile>,
    socs: Vec<SocConfig>,
    calibration: FleetCalibration,
    requests: Vec<FleetRequest>,
    injector: FaultInjector,
    horizon: SimTime,
    slo_ttft: SimTime,
    slo_tpot: SimTime,
    lost_penalty: SimTime,
}

impl FleetSim {
    /// [`Self::with_jobs`] on one worker — the serial construction
    /// every pre-executor caller gets.
    ///
    /// # Panics
    ///
    /// Panics if no Table-1 SoC yields a usable profile (requires an
    /// FP16-capable NPU and a fault-free calibration run).
    pub fn new(config: FleetConfig) -> Self {
        Self::with_jobs(config, 1)
    }

    /// Calibrate class profiles, run the per-device calibration
    /// micro-sessions across `jobs` workers, generate the seeded
    /// workload and fault plan, and derive fleet SLOs (3× the slowest
    /// profile's quiet per-token latencies at a 512-token prompt).
    ///
    /// `jobs` lives *outside* [`FleetConfig`] because it must never
    /// change the world: the materialized sim — profiles, per-device
    /// calibration, workload, fault plan — is byte-identical for every
    /// `jobs` value (see [`crate::calib`]); only construction
    /// wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if no Table-1 SoC yields a usable profile (requires an
    /// FP16-capable NPU and a fault-free calibration run).
    pub fn with_jobs(config: FleetConfig, jobs: usize) -> Self {
        let (profiles, socs) = calibrate_profiles_with_socs(&config.model);
        assert!(
            !profiles.is_empty(),
            "no projectable Table-1 SoC profile calibrated"
        );
        let calibration = calibrate_devices(
            &config.model,
            &profiles,
            &socs,
            config.seed,
            config.devices,
            jobs,
        );
        let mean_service = profiles
            .iter()
            .map(|p| {
                p.service_estimate(TYPICAL_PROMPT, TYPICAL_DECODE)
                    .as_nanos()
            })
            .sum::<u64>()
            / profiles.len() as u64;
        // offered_rate ≈ target_busy × devices / mean_service.
        let mean_gap = SimTime::from_nanos(
            (mean_service * 100 / u64::from(config.target_busy_pct).max(1))
                / config.devices.max(1) as u64,
        );
        let requests = fleet_traffic(config.seed, config.requests, mean_gap);
        let last_arrival = requests.last().map_or(SimTime::ZERO, |r| r.arrival);
        let horizon = last_arrival + SimTime::from_secs_f64(2.0);
        let injector = FaultInjector::generate(
            config.seed,
            config.devices,
            &config.model,
            horizon,
            &config.fault,
        );
        let slowest_prefill = profiles
            .iter()
            .map(|p| p.prefill_ns_per_token)
            .max()
            .unwrap_or(0);
        let slowest_decode = profiles
            .iter()
            .map(|p| p.decode_ns_per_token)
            .max()
            .unwrap_or(0);
        let slo_ttft = SimTime::from_nanos(3 * slowest_prefill * 512);
        let slo_tpot = SimTime::from_nanos(3 * slowest_decode);
        let lost_penalty = SimTime::from_nanos(4 * slo_ttft.as_nanos());
        Self {
            config,
            profiles,
            socs,
            calibration,
            requests,
            injector,
            horizon,
            slo_ttft,
            slo_tpot,
            lost_penalty,
        }
    }

    /// The calibrated profile table.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.profiles
    }

    /// The per-device silicon-lottery calibration.
    pub fn calibration(&self) -> &FleetCalibration {
        &self.calibration
    }

    /// The world's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Profile-aligned SoC configs (drift re-solves run the solver on
    /// the config each profile was calibrated on).
    pub(crate) fn socs(&self) -> &[SocConfig] {
        &self.socs
    }

    /// The seeded fault injector (the rollout controller's few-shot
    /// micro-benchmarks sample its disturbances).
    pub(crate) fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Replay horizon (last arrival plus drain slack).
    pub(crate) fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Per-request lost-penalty deadline.
    pub(crate) fn lost_penalty(&self) -> SimTime {
        self.lost_penalty
    }

    /// The generated request stream.
    pub fn requests(&self) -> &[FleetRequest] {
        &self.requests
    }

    /// TTFT SLO, nanoseconds.
    pub fn slo_ttft(&self) -> SimTime {
        self.slo_ttft
    }

    /// TPOT SLO, nanoseconds.
    pub fn slo_tpot(&self) -> SimTime {
        self.slo_tpot
    }

    /// Replay the world under both policies.
    pub fn compare(&self) -> FleetComparison {
        FleetComparison {
            seed: self.config.seed,
            devices: self.config.devices as u64,
            requests: self.config.requests as u64,
            robust: self.run(RouterPolicy::Robust),
            naive: self.run(RouterPolicy::RoundRobin),
        }
    }

    /// Replay the world under both policies while recording typed
    /// event logs. The reports are byte-identical to [`Self::compare`]
    /// — recording is purely observational.
    pub fn compare_events(&self) -> (FleetComparison, FleetLogPair) {
        let (robust, robust_log) = self.run_events(RouterPolicy::Robust);
        let (naive, naive_log) = self.run_events(RouterPolicy::RoundRobin);
        (
            FleetComparison {
                seed: self.config.seed,
                devices: self.config.devices as u64,
                requests: self.config.requests as u64,
                robust,
                naive,
            },
            FleetLogPair {
                robust: robust_log,
                naive: naive_log,
            },
        )
    }

    /// The probe-view timestamp for `t`: reality as of the last probe
    /// tick.
    fn probe_view(&self, t: SimTime) -> SimTime {
        let p = self.config.probe_interval.as_nanos().max(1);
        SimTime::from_nanos(t.as_nanos() / p * p)
    }

    /// Robust candidate selection: sample [`SELECT_SAMPLES`] seeded
    /// candidates, drop devices already failed for this request,
    /// breaker-blocked, or unreachable as of the last health probe,
    /// and keep the best score. Falls back to a full deterministic
    /// scan when every sample is filtered (mid-storm).
    ///
    /// Under a rollout overlay, selection is pool-restricted
    /// (`want_canary`) so canary traffic share tracks the stage's
    /// device exposure, and speed scoring uses each device's *online
    /// profiler estimate* instead of the probe's ground-truth
    /// slowdown — the drift-aware routing the profiler exists for.
    /// When no device of the request's pool is selectable (storm over
    /// a 1% cohort), selection fails over to the whole fleet rather
    /// than stranding the request; outcomes are attributed to the
    /// *serving* device's group, so the comparison stays pure.
    #[allow(clippy::too_many_arguments)]
    fn select_robust(
        &self,
        devices: &mut [Device],
        req: &FleetRequest,
        attempt: u32,
        t: SimTime,
        failed: &[usize],
        overlay: Option<&StageOverlay>,
        want_canary: Option<bool>,
    ) -> Option<usize> {
        let probe_t = self.probe_view(t);
        let n = devices.len() as u64;
        let eval =
            |idx: usize, devices: &mut [Device], pool: Option<bool>| -> Option<(u64, usize)> {
                if failed.contains(&idx) {
                    return None;
                }
                if !devices[idx].breaker.allows(t) {
                    return None;
                }
                if !self.injector.probe_reachable_at(idx, probe_t) {
                    return None;
                }
                let score = match overlay {
                    Some(ov) => {
                        if let Some(w) = pool {
                            if ov.canary[idx] != w {
                                return None;
                            }
                        }
                        // Drift-aware scoring: the profiler's integer
                        // estimate stands in for the probe's slowdown.
                        ((u128::from(devices[idx].score(t))
                            * u128::from(ov.profilers[idx].estimate_ppm()))
                            / u128::from(PPM)) as u64
                    }
                    None => {
                        // Probes measure service speed too: a browned-out
                        // device (thermal throttle, NPU claimed) scores
                        // worse by its probe-observed slowdown, steering
                        // load off it.
                        let slow = self.injector.slowdown_at(idx, probe_t);
                        (devices[idx].score(t) as f64 * slow) as u64
                    }
                };
                Some((score, idx))
            };
        let mut best: Option<(u64, usize)> = None;
        for j in 0..SELECT_SAMPLES {
            let idx = draw(
                self.config.seed,
                OFF_SELECT + req.id * 1024 + u64::from(attempt) * SELECT_SAMPLES + j,
            ) % n;
            if let Some(key) = eval(idx as usize, devices, want_canary) {
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        if best.is_none() {
            for idx in 0..devices.len() {
                if let Some(key) = eval(idx, devices, want_canary) {
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        if best.is_none() && want_canary.is_some() {
            // Pool exhausted: fail over to the whole fleet.
            for idx in 0..devices.len() {
                if let Some(key) = eval(idx, devices, None) {
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
        }
        best.map(|(_, idx)| idx)
    }

    /// Replay the world under one policy.
    pub fn run(&self, policy: RouterPolicy) -> ArmReport {
        self.replay(policy, None, None).0
    }

    /// Replay the world under one policy while recording the typed
    /// event log. The report is byte-identical to [`Self::run`].
    pub fn run_events(&self, policy: RouterPolicy) -> (ArmReport, FleetEventLog) {
        let log = FleetEventLog {
            version: EVENT_LOG_VERSION,
            seed: self.config.seed,
            policy: policy.name().to_string(),
            devices: self.config.devices as u64,
            requests: self.config.requests as u64,
            slo_ttft_ns: self.slo_ttft.as_nanos(),
            deadline_ns: self.lost_penalty.as_nanos(),
            census_interval_ns: self.config.probe_interval.as_nanos(),
            rollout_window_ns: 0,
            events: Vec::new(),
        };
        let (report, log) = self.replay(policy, Some(log), None);
        (report, log.expect("recording replay returns its log"))
    }

    /// Replay the world under the robust policy through a rollout
    /// stage overlay, recording stage-local events. The overlay
    /// carries the canary flags, profilers, and group accounting back
    /// to the rollout controller.
    pub(crate) fn replay_stage(&self, overlay: &mut StageOverlay) -> (ArmReport, FleetEventLog) {
        let log = FleetEventLog {
            version: EVENT_LOG_VERSION,
            seed: self.config.seed,
            policy: "rollout-stage".to_string(),
            devices: self.config.devices as u64,
            requests: self.config.requests as u64,
            slo_ttft_ns: self.slo_ttft.as_nanos(),
            deadline_ns: self.lost_penalty.as_nanos(),
            census_interval_ns: self.config.probe_interval.as_nanos(),
            rollout_window_ns: 0,
            events: Vec::new(),
        };
        let (report, log) = self.replay(RouterPolicy::Robust, Some(log), Some(overlay));
        (report, log.expect("recording replay returns its log"))
    }

    /// Push `ev` onto the log when recording is on.
    fn emit(log: &mut Option<FleetEventLog>, ev: FleetEvent) {
        if let Some(l) = log.as_mut() {
            l.events.push(ev);
        }
    }

    /// The replay loop shared by [`Self::run`] (no log),
    /// [`Self::run_events`] (recording), and [`Self::replay_stage`]
    /// (recording through a rollout overlay). Recording never touches
    /// the draw streams or any routing state, so the returned report
    /// does not depend on whether a log is attached; without an
    /// overlay the routing path is bit-for-bit the pre-rollout one.
    fn replay(
        &self,
        policy: RouterPolicy,
        mut log: Option<FleetEventLog>,
        mut overlay: Option<&mut StageOverlay>,
    ) -> (ArmReport, Option<FleetEventLog>) {
        let cfg = &self.config;
        let n = cfg.devices;
        let mut devices: Vec<Device> = (0..n)
            .map(|d| {
                let profile = d % self.profiles.len();
                let ewma = self.profiles[profile].service_estimate(TYPICAL_PROMPT, TYPICAL_DECODE);
                Device::new(d as u32, profile, ewma, cfg.breaker)
            })
            .collect();
        let mut router = MetricsRegistry::new();
        let mut by_priority: Vec<PriorityStats> = Priority::ALL
            .iter()
            .map(|&p| PriorityStats::new(p))
            .collect();
        let mut releases: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        let mut healthy = n;
        let mut healthy_tick = u64::MAX;
        let mut rr_next = 0usize;
        let (mut served, mut shed, mut lost, mut retries, mut goodput) =
            (0u64, 0u64, 0u64, 0u64, 0u64);

        // Naive: one shot. Robust: retry until the per-request
        // deadline (the lost-penalty point) — the exponential
        // schedule first, then the capped delay. Fault windows are
        // finite and much shorter than the deadline, so recovery is
        // structural, not probabilistic.
        let budget = match policy {
            RouterPolicy::RoundRobin => 1,
            RouterPolicy::Robust => MAX_DISPATCHES,
        };

        if log.is_some() {
            // World-level fault windows exist under either policy.
            for (k, &(open, close)) in self.injector.storm_windows().iter().enumerate() {
                Self::emit(
                    &mut log,
                    FleetEvent::FaultOpen {
                        at: open,
                        storm: k as u32,
                    },
                );
                Self::emit(
                    &mut log,
                    FleetEvent::FaultClose {
                        at: close,
                        storm: k as u32,
                    },
                );
            }
            // The probe subsystem ticks on its own clock regardless of
            // traffic; record its census at every tick through the
            // last instant a deadline-bounded retry can still fire.
            // Only the robust router runs probes at all.
            if policy == RouterPolicy::Robust {
                let period = cfg.probe_interval.as_nanos().max(1);
                let end = self.horizon.as_nanos() + self.lost_penalty.as_nanos();
                let mut tick_ns = 0u64;
                while tick_ns <= end {
                    let probe_t = SimTime::from_nanos(tick_ns);
                    let reachable = (0..n)
                        .filter(|&d| self.injector.probe_reachable_at(d, probe_t))
                        .count();
                    Self::emit(
                        &mut log,
                        FleetEvent::CensusRefresh {
                            at: probe_t,
                            healthy: reachable as u64,
                        },
                    );
                    tick_ns += period;
                }
            }
        }

        for req in &self.requests {
            let now = req.arrival;
            let class = &mut by_priority[req.priority.index()];
            class.offered += 1;
            Self::emit(
                &mut log,
                FleetEvent::Offered {
                    at: now,
                    req: req.id,
                    priority: req.priority,
                    prompt_tokens: req.prompt_tokens as u64,
                    decode_tokens: req.decode_tokens as u64,
                },
            );
            while releases
                .peek()
                .is_some_and(|Reverse(r)| *r <= now.as_nanos())
            {
                releases.pop();
            }

            if policy == RouterPolicy::Robust {
                // Refresh the router's health census once per probe tick.
                let tick = now.as_nanos() / cfg.probe_interval.as_nanos().max(1);
                if tick != healthy_tick {
                    healthy_tick = tick;
                    let probe_t = self.probe_view(now);
                    healthy = (0..n)
                        .filter(|&d| {
                            devices[d].breaker.allows(probe_t)
                                && self.injector.probe_reachable_at(d, probe_t)
                        })
                        .count();
                }
                if cfg
                    .admission
                    .should_shed(req.priority, releases.len(), healthy)
                {
                    shed += 1;
                    class.shed += 1;
                    // A shed request is a refused user: charge the
                    // class-weighted TTFT-SLO penalty (interactive
                    // 4×, standard 2×, batch 1×) so the report prices
                    // shedding instead of hiding it.
                    let penalty = SimTime::from_nanos(
                        self.slo_ttft.as_nanos() * (4u64 >> req.priority.index()),
                    );
                    class.penalty_ns += penalty.as_nanos();
                    router.observe("shed_penalty_ns", penalty);
                    router.incr(&format!("shed_{}", req.priority.name()), 1);
                    Self::emit(
                        &mut log,
                        FleetEvent::Shed {
                            at: now,
                            req: req.id,
                            priority: req.priority,
                        },
                    );
                    continue;
                }
            }

            // Under a rollout overlay, pin the request to the canary
            // or control pool for the whole retry chain.
            let want_canary = overlay
                .as_deref()
                .map(|ov| ov.is_canary_request(cfg.seed, req.id));
            let schedule = cfg.retry.schedule(cfg.seed, req.id);
            let deadline = now + self.lost_penalty;
            // Delay before the next attempt: the seeded exponential
            // schedule while it lasts, then the policy's cap.
            let backoff = |attempt: u32| {
                schedule
                    .get(attempt as usize)
                    .copied()
                    .unwrap_or(cfg.retry.cap)
            };
            let mut t = now;
            let mut failed: Vec<usize> = Vec::new();
            let mut done = false;
            for attempt in 0..budget {
                if attempt > 0 && t >= deadline {
                    break;
                }
                let picked = match policy {
                    RouterPolicy::RoundRobin => {
                        let idx = rr_next % n;
                        rr_next += 1;
                        Some(idx)
                    }
                    RouterPolicy::Robust => self.select_robust(
                        &mut devices,
                        req,
                        attempt,
                        t,
                        &failed,
                        overlay.as_deref(),
                        want_canary,
                    ),
                };
                let Some(idx) = picked else {
                    // Nobody routable right now: wait out the backoff.
                    let delay = backoff(attempt);
                    if attempt + 1 < budget {
                        Self::emit(
                            &mut log,
                            FleetEvent::Retry {
                                at: t,
                                req: req.id,
                                attempt: attempt + 1,
                                delay,
                            },
                        );
                    }
                    t += delay;
                    continue;
                };
                if attempt > 0 {
                    retries += 1;
                    devices[idx].metrics.incr("retry_dispatches", 1);
                }
                Self::emit(
                    &mut log,
                    FleetEvent::Dispatch {
                        at: t,
                        req: req.id,
                        device: idx as u64,
                        attempt,
                        priority: req.priority,
                    },
                );
                let start = t.max(devices[idx].busy_until);
                let link = self.injector.link_delay_at(idx, start);
                let profile = &self.profiles[devices[idx].profile];
                let slowdown = self.injector.slowdown_at(idx, start);
                // Price from the class profile, adjusted to *this*
                // device's measured silicon-lottery ratio, then
                // derated by the current fault condition.
                let cal = &self.calibration.devices[idx];
                let mut prefill = scale_ppm(
                    SimTime::from_nanos(profile.prefill_ns_per_token * req.prompt_tokens as u64),
                    cal.prefill_adjust_ppm,
                )
                .scale(slowdown);
                let mut decode = scale_ppm(
                    SimTime::from_nanos(profile.decode_ns_per_token * req.decode_tokens as u64),
                    cal.decode_adjust_ppm,
                )
                .scale(slowdown);
                if let Some(ov) = overlay.as_deref() {
                    // Canary devices run the candidate's plan; any
                    // drift-resolved device runs its re-solved plan.
                    let (pm, dm) = ov.service_mults_ppm(idx, devices[idx].profile);
                    prefill = scale_ppm(prefill, pm);
                    decode = scale_ppm(decode, dm);
                }
                let end = start + prefill + decode;

                let faulted = self.injector.link_lost_at(idx, start)
                    || self.injector.first_downtime_in(idx, start, end).is_some();
                if faulted {
                    let fail_at = start + cfg.retry.timeout;
                    devices[idx].metrics.incr("dispatch_failures", 1);
                    if policy == RouterPolicy::Robust {
                        devices[idx].breaker.record_failure(fail_at);
                    }
                    failed.push(idx);
                    Self::emit(
                        &mut log,
                        FleetEvent::DispatchFail {
                            at: fail_at,
                            req: req.id,
                            device: idx as u64,
                            attempt,
                        },
                    );
                    let delay = backoff(attempt);
                    if attempt + 1 < budget {
                        Self::emit(
                            &mut log,
                            FleetEvent::Retry {
                                at: fail_at,
                                req: req.id,
                                attempt: attempt + 1,
                                delay,
                            },
                        );
                    }
                    t = fail_at + delay;
                    continue;
                }

                devices[idx].busy_until = end;
                devices[idx].busy_ns += (end - start).as_nanos();
                releases.push(Reverse(end.as_nanos()));
                let ttft = (start - req.arrival) + link + prefill;
                let tpot = SimTime::from_nanos(decode.as_nanos() / req.decode_tokens.max(1) as u64);
                devices[idx].metrics.observe("ttft_ns", ttft);
                devices[idx].metrics.observe("tpot_ns", tpot);
                devices[idx].metrics.incr("served", 1);
                devices[idx].observe_latency(prefill + decode);
                if policy == RouterPolicy::Robust {
                    devices[idx].breaker.record_success(end);
                }
                Self::emit(
                    &mut log,
                    FleetEvent::Complete {
                        at: end,
                        req: req.id,
                        device: idx as u64,
                        ttft,
                        tpot,
                    },
                );
                served += 1;
                class.served += 1;
                if ttft <= self.slo_ttft && tpot <= self.slo_tpot {
                    goodput += 1;
                    class.slo_met += 1;
                }
                if let Some(ov) = overlay.as_deref_mut() {
                    // Feed the device's online profiler; the first
                    // threshold crossing re-solves its partition plan
                    // and logs the drift.
                    let expected = profile.service_estimate(req.prompt_tokens, req.decode_tokens);
                    let observed = (prefill + decode).as_nanos();
                    let service_ppm = observed.saturating_mul(PPM) / expected.as_nanos().max(1);
                    if let Some(ev) = ov.observe_completion(
                        idx,
                        devices[idx].profile,
                        observed,
                        expected.as_nanos(),
                        end,
                    ) {
                        Self::emit(&mut log, ev);
                    }
                    let served_by_canary = ov.canary[idx];
                    ov.record_outcome(
                        served_by_canary,
                        service_ppm,
                        ttft,
                        tpot,
                        self.slo_ttft,
                        self.slo_tpot,
                    );
                }
                done = true;
                break;
            }
            if !done {
                lost += 1;
                class.lost += 1;
                class.penalty_ns += self.lost_penalty.as_nanos();
                router.incr("lost", 1);
                // A stranded user never saw a token: record the
                // penalty deadline so tail quantiles carry the loss.
                router.observe("ttft_ns", self.lost_penalty);
                Self::emit(
                    &mut log,
                    FleetEvent::Lost {
                        at: deadline,
                        req: req.id,
                    },
                );
            }
        }

        if log.is_some() {
            // Drain the typed breaker transition logs into the event
            // stream, then fix canonical order once.
            for (di, d) in devices.iter().enumerate() {
                for tr in d.breaker.transitions() {
                    Self::emit(
                        &mut log,
                        FleetEvent::Breaker {
                            at: tr.at,
                            device: di as u64,
                            from: tr.from,
                            to: tr.to,
                            cause: tr.cause,
                        },
                    );
                }
            }
            if let Some(l) = log.as_mut() {
                l.normalize();
            }
        }

        let breaker_trips: u64 = devices.iter().map(|d| d.breaker.trips()).sum();
        router.incr("breaker_trips", breaker_trips);
        router.incr("retries", retries);
        let mut merged = router;
        for d in &devices {
            merged.merge(&d.metrics);
        }
        let (ttft_p50, ttft_p99, ttft_p999) = quantiles_ns(&merged, "ttft_ns");
        let (tpot_p50, tpot_p99, tpot_p999) = quantiles_ns(&merged, "tpot_ns");
        let busy_total: u64 = devices.iter().map(|d| d.busy_ns).sum();
        let offered = self.requests.len() as u64;
        let report = ArmReport {
            policy: policy.name().to_string(),
            devices: n as u64,
            offered,
            served,
            shed,
            lost,
            retries,
            breaker_trips,
            ttft_p50_ns: ttft_p50,
            ttft_p99_ns: ttft_p99,
            ttft_p999_ns: ttft_p999,
            tpot_p50_ns: tpot_p50,
            tpot_p99_ns: tpot_p99,
            tpot_p999_ns: tpot_p999,
            slo_ttft_ns: self.slo_ttft.as_nanos(),
            slo_tpot_ns: self.slo_tpot.as_nanos(),
            goodput,
            attainment_ppm: (goodput * 1_000_000).checked_div(offered).unwrap_or(0),
            busy_ppm: {
                let cap = self.horizon.as_nanos().saturating_mul(n as u64).max(1);
                ((u128::from(busy_total) * 1_000_000) / u128::from(cap)) as u64
            },
            by_priority,
            metrics: merged.snapshot(),
        };
        (report, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim(seed: u64) -> FleetSim {
        FleetSim::new(FleetConfig::standard(seed, 48, 400))
    }

    #[test]
    fn same_seed_byte_identical_comparison() {
        let a = small_sim(42).compare();
        let b = small_sim(42).compare();
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize")
        );
    }

    #[test]
    fn robust_arm_recovers_everything_round_robin_does_not() {
        let cmp = small_sim(42).compare();
        assert_eq!(cmp.robust.lost, 0, "robust arm strands requests");
        assert!(cmp.naive.lost > 0, "storm never bit the naive arm");
        assert!(cmp.robust.retries > 0, "retries should fire mid-storm");
        assert!(cmp.robust.breaker_trips > 0, "breakers should trip");
    }

    #[test]
    fn robust_arm_dominates_on_slo_attainment_and_goodput() {
        let cmp = small_sim(42).compare();
        assert!(cmp.robust.attainment_ppm > cmp.naive.attainment_ppm);
        assert!(cmp.robust.goodput > cmp.naive.goodput);
        assert!(cmp.robust.ttft_p999_ns < cmp.naive.ttft_p999_ns);
    }

    #[test]
    fn accounting_balances_per_class_and_fleet_wide() {
        let cmp = small_sim(7).compare();
        for arm in [&cmp.robust, &cmp.naive] {
            assert_eq!(arm.offered, arm.served + arm.shed + arm.lost);
            let by_class: u64 = arm.by_priority.iter().map(|c| c.offered).sum();
            assert_eq!(by_class, arm.offered);
            for c in &arm.by_priority {
                assert_eq!(c.offered, c.served + c.shed + c.lost);
            }
        }
        // Only the robust arm sheds, and interactive never sheds on
        // utilization alone.
        assert_eq!(cmp.naive.shed, 0);
        assert_eq!(cmp.robust.by_priority[0].class, "interactive");
    }
}
