//! On-device online drift profiler.
//!
//! The fleet's static [`crate::DeviceProfile`]s are calibrated once,
//! on a quiet device. In the field, sustained load invalidates that:
//! thermal brownouts, NPU contention, and candidate policy revisions
//! all move real service time off the calibrated per-token latencies.
//! [`OnlineProfiler`] tracks that drift per device as an all-integer
//! ratio: a few-shot micro-benchmark seeds the estimate at session
//! start, then every completion folds `observed / expected` (parts
//! per million of the static profile) into an EWMA with the same
//! α = 1/8 the router's latency EWMA uses.
//!
//! The estimate feeds two consumers:
//!
//! - routing: [`crate::router::FleetSim`] scores candidates by the
//!   profiler estimate instead of the probe's ground-truth slowdown
//!   when a rollout overlay is active;
//! - re-planning: crossing [`DRIFT_RESOLVE_THRESHOLD_PPM`] triggers a
//!   per-device partition re-solve
//!   (`hetero_solver::resolve_for_drift`), emitting a
//!   [`crate::FleetEvent::ProfileUpdate`] with
//!   [`crate::ProfileCause::Drift`].
//!
//! Everything is deterministic and integer: same samples, same
//! estimates, byte-identical logs.

use serde::{Deserialize, Serialize};

/// Parts-per-million scale of all drift ratios.
pub const PPM: u64 = 1_000_000;

/// Drift (above the static profile) at which a device's stale
/// partition plan is re-solved: 25% sustained slowdown.
pub const DRIFT_RESOLVE_THRESHOLD_PPM: u64 = 250_000;

/// Few-shot calibration samples taken at session start.
pub const FEW_SHOT_SAMPLES: usize = 4;

/// Per-device online latency-drift estimator.
///
/// Tracks service-time drift as `est_ppm`, an EWMA of
/// `observed_ns · 10⁶ / expected_ns` where `expected` is the static
/// calibrated profile's quiet estimate for the same request shape.
/// When observations match the static profile exactly the estimate is
/// exactly [`PPM`] — no rounding slack — so undisturbed devices stay
/// inside the static cost interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineProfiler {
    /// Static quiet service estimate for the calibration shape,
    /// nanoseconds (the denominator the estimate projects onto).
    expected_ns: u64,
    /// EWMA drift estimate, ppm of the static profile (α = 1/8).
    est_ppm: u64,
}

impl OnlineProfiler {
    /// New profiler projecting onto `expected_ns` (the static quiet
    /// service estimate for the calibration request shape), starting
    /// exactly on-profile.
    pub fn new(expected_ns: u64) -> Self {
        Self {
            expected_ns: expected_ns.max(1),
            est_ppm: PPM,
        }
    }

    /// Seed the estimate from a few-shot micro-benchmark: the mean of
    /// `samples` (observed calibration-shape service times, ns)
    /// becomes the starting drift ratio. Empty input keeps the
    /// on-profile default.
    pub fn calibrate(&mut self, samples: &[u64]) {
        if samples.is_empty() {
            return;
        }
        let mean = samples.iter().sum::<u64>() / samples.len() as u64;
        self.est_ppm = mean.saturating_mul(PPM) / self.expected_ns;
    }

    /// Fold one completed request into the estimate: `observed_ns`
    /// actual service time against `expected_ns`, the static profile's
    /// quiet estimate for the same request shape.
    pub fn observe(&mut self, observed_ns: u64, expected_ns: u64) {
        let sample_ppm = observed_ns.saturating_mul(PPM) / expected_ns.max(1);
        self.est_ppm = (self.est_ppm * 7 + sample_ppm) / 8;
    }

    /// Current drift estimate, ppm of the static profile.
    pub fn estimate_ppm(&self) -> u64 {
        self.est_ppm
    }

    /// Current service-time estimate for the calibration shape, ns.
    pub fn estimated_service_ns(&self) -> u64 {
        ((u128::from(self.expected_ns) * u128::from(self.est_ppm)) / u128::from(PPM)) as u64
    }

    /// Absolute drift away from the static profile, ppm.
    pub fn drift_ppm(&self) -> u64 {
        self.est_ppm.abs_diff(PPM)
    }

    /// Whether the device has drifted *slower* than the static profile
    /// far enough that its stale partition plan should be re-solved
    /// (speedups never force a re-solve: the stale plan still meets
    /// its bound).
    pub fn needs_resolve(&self, threshold_ppm: u64) -> bool {
        self.est_ppm >= PPM + threshold_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_profile_observations_keep_the_estimate_exact() {
        let mut p = OnlineProfiler::new(50_000_000);
        p.calibrate(&[50_000_000; FEW_SHOT_SAMPLES]);
        assert_eq!(p.estimate_ppm(), PPM);
        for _ in 0..100 {
            p.observe(50_000_000, 50_000_000);
        }
        assert_eq!(p.estimate_ppm(), PPM, "no rounding slack on-profile");
        assert_eq!(p.estimated_service_ns(), 50_000_000);
        assert!(!p.needs_resolve(DRIFT_RESOLVE_THRESHOLD_PPM));
    }

    #[test]
    fn sustained_slowdown_crosses_the_resolve_threshold() {
        let mut p = OnlineProfiler::new(10_000_000);
        // 2× brownout, constant.
        for _ in 0..32 {
            p.observe(20_000_000, 10_000_000);
        }
        assert!(p.estimate_ppm() > PPM + DRIFT_RESOLVE_THRESHOLD_PPM);
        assert!(p.needs_resolve(DRIFT_RESOLVE_THRESHOLD_PPM));
        assert!(p.estimate_ppm() <= 2 * PPM);
    }

    #[test]
    fn speedups_never_force_a_resolve() {
        let mut p = OnlineProfiler::new(10_000_000);
        for _ in 0..64 {
            p.observe(5_000_000, 10_000_000);
        }
        assert!(p.estimate_ppm() < PPM);
        assert!(p.drift_ppm() > DRIFT_RESOLVE_THRESHOLD_PPM);
        assert!(!p.needs_resolve(DRIFT_RESOLVE_THRESHOLD_PPM));
    }

    #[test]
    fn calibration_seeds_the_starting_ratio() {
        let mut p = OnlineProfiler::new(10_000_000);
        p.calibrate(&[15_000_000; FEW_SHOT_SAMPLES]);
        assert_eq!(p.estimate_ppm(), 1_500_000);
        assert_eq!(p.estimated_service_ns(), 15_000_000);
    }
}
