//! Router robustness policies: retry/backoff, circuit breakers, and
//! priority-aware admission control.
//!
//! All schedules are integer-nanosecond and seeded — the same seed
//! yields a byte-identical backoff schedule, which the fleet
//! determinism gate (and a proptest) pins.

use hetero_soc::SimTime;
use serde::{Deserialize, Serialize};

use crate::draw;
use crate::workload::Priority;

/// Deterministic retry schedule: exponential backoff with seeded
/// jitter, a delay cap, and a bounded attempt budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total dispatch attempts per request (first try included).
    /// Zero means "retry forever" and is rejected by the
    /// `retry-storm` analyzer rule.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base: SimTime,
    /// Multiplier applied per retry (must be ≥ 2 to count as
    /// backoff; the analyzer denies smaller factors).
    pub factor: u32,
    /// Upper bound on any single backoff delay (pre-jitter).
    pub cap: SimTime,
    /// Jitter span as a percentage of the capped delay; the drawn
    /// jitter is added on top.
    pub jitter_pct: u32,
    /// How long a dispatched attempt waits before the router declares
    /// it failed (crash/link-loss detection latency).
    pub timeout: SimTime,
}

impl RetryPolicy {
    /// The shipped robust-router schedule: 4 attempts, 2 ms → 8 ms →
    /// 32 ms (×4, capped at 200 ms), 20% jitter, 250 ms attempt
    /// timeout.
    pub fn standard() -> Self {
        Self {
            max_attempts: 4,
            base: SimTime::from_millis(2),
            factor: 4,
            cap: SimTime::from_millis(200),
            jitter_pct: 20,
            timeout: SimTime::from_millis(250),
        }
    }

    /// Raw (pre-monotonization) delay before retry `attempt`
    /// (1-based: `attempt = 1` is the delay between the first failure
    /// and the second try).
    fn raw_backoff(&self, seed: u64, request_id: u64, attempt: u32) -> SimTime {
        let growth = u64::from(self.factor).saturating_pow(attempt.saturating_sub(1));
        let exp = self.base.as_nanos().saturating_mul(growth);
        let capped = exp.min(self.cap.as_nanos());
        let span = capped / 100 * u64::from(self.jitter_pct);
        let jitter = if span == 0 {
            0
        } else {
            draw(seed ^ request_id.rotate_left(17), u64::from(attempt)) % (span + 1)
        };
        SimTime::from_nanos(capped + jitter)
    }

    /// The full backoff schedule for one request: one delay per retry
    /// (so `max_attempts - 1` entries), monotonized so delays never
    /// decrease even when jitter at the cap would dip. Deterministic
    /// in `(seed, request_id)`.
    pub fn schedule(&self, seed: u64, request_id: u64) -> Vec<SimTime> {
        let mut prev = SimTime::ZERO;
        (1..self.max_attempts)
            .map(|attempt| {
                let d = self.raw_backoff(seed, request_id, attempt).max(prev);
                prev = d;
                d
            })
            .collect()
    }

    /// Upper bound on the summed backoff delays of one request:
    /// every delay is at most `cap` plus the full jitter span.
    pub fn total_backoff_bound(&self) -> SimTime {
        let per = self.cap.as_nanos() + self.cap.as_nanos() / 100 * u64::from(self.jitter_pct);
        SimTime::from_nanos(per.saturating_mul(u64::from(self.max_attempts.saturating_sub(1))))
    }
}

/// Circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: no dispatches until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request may pass.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Why a breaker changed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerCause {
    /// Consecutive failures reached the trip threshold.
    FailureThreshold,
    /// The open cooldown elapsed.
    CooldownElapsed,
    /// The half-open probe succeeded.
    ProbeSuccess,
    /// The half-open probe failed.
    ProbeFailure,
}

/// One typed breaker state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerTransition {
    /// When the transition happened.
    pub at: SimTime,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// What drove it.
    pub cause: BreakerCause,
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures before tripping open.
    pub failure_threshold: u32,
    /// How long an open breaker blocks dispatches.
    pub cooldown: SimTime,
}

impl BreakerConfig {
    /// The shipped tuning: trip after 2 consecutive failures, 500 ms
    /// cooldown.
    pub fn standard() -> Self {
        Self {
            failure_threshold: 2,
            cooldown: SimTime::from_millis(500),
        }
    }
}

/// Per-device circuit breaker.
///
/// The state machine only leaves [`BreakerState::Open`] through
/// [`BreakerState::HalfOpen`], and only reaches
/// [`BreakerState::Closed`] from there on a probe success — the
/// invariant the breaker proptest checks over the typed transition
/// log.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: SimTime,
    transitions: Vec<BreakerTransition>,
}

impl CircuitBreaker {
    /// New breaker in the closed state.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: SimTime::ZERO,
            transitions: Vec::new(),
        }
    }

    fn transition(&mut self, at: SimTime, to: BreakerState, cause: BreakerCause) {
        // The replay advances per-request chains, not one global
        // clock, so raw call times can interleave backwards across
        // requests (a completion recorded after a later chain already
        // polled this breaker). The state machine itself is serialized
        // in call order; clamp timestamps strictly monotone so the
        // emitted transition log carries that serialization and sorts
        // back into it.
        let at = match self.transitions.last() {
            Some(prev) if at <= prev.at => prev.at + SimTime::from_nanos(1),
            _ => at,
        };
        self.transitions.push(BreakerTransition {
            at,
            from: self.state,
            to,
            cause,
        });
        self.state = to;
    }

    /// Advance the timed part of the state machine: an open breaker
    /// whose cooldown has elapsed becomes half-open.
    pub fn poll(&mut self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now >= self.open_until {
            self.transition(now, BreakerState::HalfOpen, BreakerCause::CooldownElapsed);
        }
        self.state
    }

    /// Whether a dispatch may pass at `now` (closed, or half-open
    /// probe).
    pub fn allows(&mut self, now: SimTime) -> bool {
        self.poll(now) != BreakerState::Open
    }

    /// Record a successful dispatch outcome.
    pub fn record_success(&mut self, now: SimTime) {
        self.poll(now);
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.transition(now, BreakerState::Closed, BreakerCause::ProbeSuccess);
        }
    }

    /// Record a failed dispatch outcome.
    pub fn record_failure(&mut self, now: SimTime) {
        self.poll(now);
        self.consecutive_failures += 1;
        match self.state {
            BreakerState::Closed => {
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.open_until = now + self.config.cooldown;
                    self.transition(now, BreakerState::Open, BreakerCause::FailureThreshold);
                }
            }
            BreakerState::HalfOpen => {
                self.open_until = now + self.config.cooldown;
                self.transition(now, BreakerState::Open, BreakerCause::ProbeFailure);
            }
            BreakerState::Open => {}
        }
    }

    /// Current state (without advancing the clock).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Number of times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.transitions
            .iter()
            .filter(|t| t.to == BreakerState::Open)
            .count() as u64
    }

    /// The typed transition log.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }
}

/// Priority-aware load shedding thresholds.
///
/// A request is shed at admission when the fleet's busy fraction (in
/// percent, over devices the router believes healthy) is at or above
/// its class threshold. Batch sheds first, interactive effectively
/// never (threshold above 100%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// Busy-percent shed thresholds indexed like [`Priority::ALL`].
    pub shed_busy_pct: [u32; 3],
}

impl AdmissionControl {
    /// The shipped policy: batch sheds at 70% utilization, standard
    /// at 90%, interactive only under total outage (101 = never by
    /// utilization).
    pub fn standard() -> Self {
        Self {
            shed_busy_pct: [101, 90, 70],
        }
    }

    /// Whether to shed a request of `priority` when `busy` of
    /// `healthy` believed-healthy devices are occupied.
    pub fn should_shed(&self, priority: Priority, busy: usize, healthy: usize) -> bool {
        if healthy == 0 {
            // Nothing to route to; shedding is forced regardless of
            // class (counted separately by the router).
            return true;
        }
        let pct = busy * 100 / healthy;
        pct as u32 >= self.shed_busy_pct[priority.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn schedule_is_seed_deterministic_and_monotone() {
        let p = RetryPolicy::standard();
        let a = p.schedule(42, 7);
        let b = p.schedule(42, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_ne!(a, p.schedule(43, 7), "different seed, different jitter");
    }

    #[test]
    fn schedule_total_is_bounded() {
        let p = RetryPolicy::standard();
        for rid in 0..50 {
            let total: SimTime = p.schedule(9, rid).into_iter().sum();
            assert!(total <= p.total_backoff_bound());
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_half_open() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: ms(100),
        });
        b.record_failure(ms(1));
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(ms(2));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(ms(50)));
        // Cooldown elapses: half-open, probe allowed.
        assert!(b.allows(ms(102)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(ms(110));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
        // No Open → Closed transition anywhere in the log.
        assert!(!b
            .transitions()
            .iter()
            .any(|t| t.from == BreakerState::Open && t.to == BreakerState::Closed));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: ms(100),
        });
        b.record_failure(ms(1));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allows(ms(150)));
        b.record_failure(ms(160));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        let probe_fail = b
            .transitions()
            .iter()
            .find(|t| t.cause == BreakerCause::ProbeFailure)
            .expect("reopen recorded");
        assert_eq!(probe_fail.from, BreakerState::HalfOpen);
    }

    #[test]
    fn admission_sheds_batch_before_standard() {
        let a = AdmissionControl::standard();
        assert!(a.should_shed(Priority::Batch, 70, 100));
        assert!(!a.should_shed(Priority::Standard, 70, 100));
        assert!(a.should_shed(Priority::Standard, 90, 100));
        assert!(!a.should_shed(Priority::Interactive, 100, 100));
        assert!(a.should_shed(Priority::Interactive, 0, 0));
    }
}
