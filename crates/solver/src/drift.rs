//! Per-device partition re-solve from drifted online profiles.
//!
//! A device whose NPU has drifted slower than its calibrated profile
//! (sustained thermal brownout, stage-level NPU inversion from a bad
//! candidate policy) is still running the partition plan solved for
//! the *calibrated* costs. [`resolve_for_drift`] re-prices that stale
//! plan under the drifted costs, re-solves for a fresh plan under the
//! same drift, and reports the achievable gain as an all-integer
//! ppm ratio — the entry point `hetero_fleet`'s rollout overlay calls
//! when a device's [`OnlineProfiler`] estimate crosses the re-solve
//! threshold.
//!
//! [`OnlineProfiler`]: ../hetero_fleet/profiler/struct.OnlineProfiler.html

use hetero_profiler::db::BwCondition;
use hetero_profiler::CostProvider;
use hetero_soc::sync::Dominance;
use hetero_soc::{Backend, SimTime};
use hetero_tensor::shape::MatmulShape;
use hetero_tensor::DType;

use crate::plan::PartitionPlan;
use crate::solver::{Solver, SolverConfig};

/// ppm scale of drift ratios (matches `hetero_fleet::profiler`).
const PPM: u64 = 1_000_000;

/// A cost provider whose NPU kernels run `derate_ppm / 10⁶` slower
/// than the wrapped provider's (1_000_000 = undrifted). GPU and CPU
/// costs pass through: the drift model is NPU-side (thermal throttle
/// and stage inversion both hit the static-graph NPU path).
#[derive(Debug, Clone)]
pub struct DeratedProvider<P> {
    inner: P,
    derate_ppm: u64,
}

impl<P> DeratedProvider<P> {
    /// Wrap `inner`, scaling NPU costs by `derate_ppm` (≥ 10⁶).
    pub fn new(inner: P, derate_ppm: u64) -> Self {
        Self {
            inner,
            derate_ppm: derate_ppm.max(PPM),
        }
    }
}

impl<P: CostProvider> CostProvider for DeratedProvider<P> {
    fn matmul_cost(
        &self,
        backend: Backend,
        shape: MatmulShape,
        act_dtype: DType,
        weight_dtype: DType,
        condition: BwCondition,
    ) -> SimTime {
        let base = self
            .inner
            .matmul_cost(backend, shape, act_dtype, weight_dtype, condition);
        match backend {
            Backend::Npu => SimTime::from_nanos(
                ((u128::from(base.as_nanos()) * u128::from(self.derate_ppm)) / u128::from(PPM))
                    as u64,
            ),
            Backend::Gpu | Backend::Cpu => base,
        }
    }
}

/// Outcome of one drifted re-solve, all integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftResolve {
    /// The plan solved for the calibrated (undrifted) costs.
    pub stale_plan: PartitionPlan,
    /// The plan solved under the drifted costs.
    pub resolved_plan: PartitionPlan,
    /// Worst-case cost of the stale plan under the drifted costs, ns.
    pub stale_ns: u64,
    /// Worst-case cost of the resolved plan under the drifted costs,
    /// ns.
    pub resolved_ns: u64,
    /// `resolved_ns · 10⁶ / stale_ns`, clamped to ≤ 10⁶: the service
    /// multiplier re-planning buys (1_000_000 = re-solve kept the
    /// stale plan).
    pub gain_ppm: u64,
    /// Whether the re-solve chose a different partition.
    pub replanned: bool,
}

/// Re-solve `shape` under an NPU drift of `npu_derate_ppm` and price
/// the stale (calibrated-cost) plan against the fresh one, both under
/// the drifted costs via the sound interval upper bound
/// ([`Solver::plan_cost_interval`]), so the comparison is
/// apples-to-apples with the solver's own objective.
pub fn resolve_for_drift<P: CostProvider + Clone>(
    provider: &P,
    cfg: &SolverConfig,
    shape: MatmulShape,
    dominance: Dominance,
    npu_derate_ppm: u64,
) -> DriftResolve {
    let calibrated = Solver::new(provider.clone(), cfg.clone());
    let stale_plan = calibrated.solve(shape, dominance).plan;

    let drifted = Solver::new(
        DeratedProvider::new(provider.clone(), npu_derate_ppm),
        cfg.clone(),
    );
    let resolved_plan = drifted.solve(shape, dominance).plan;

    let stale_ns = drifted
        .plan_cost_interval(&stale_plan, shape, dominance)
        .hi
        .as_nanos();
    let resolved_ns = drifted
        .plan_cost_interval(&resolved_plan, shape, dominance)
        .hi
        .as_nanos();
    let gain_ppm = (resolved_ns.saturating_mul(PPM) / stale_ns.max(1)).min(PPM);
    let replanned = resolved_plan != stale_plan;
    DriftResolve {
        stale_plan,
        resolved_plan,
        stale_ns,
        resolved_ns,
        gain_ppm,
        replanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_profiler::RealExecProvider;
    use hetero_soc::SocConfig;

    fn provider() -> RealExecProvider {
        RealExecProvider::new(SocConfig::snapdragon_8gen3())
    }

    #[test]
    fn undrifted_resolve_is_a_noop() {
        let shape = MatmulShape::new(256, 4096, 4096);
        let r = resolve_for_drift(
            &provider(),
            &SolverConfig::default(),
            shape,
            Dominance::NpuDominant,
            PPM,
        );
        assert_eq!(r.stale_plan, r.resolved_plan);
        assert_eq!(r.gain_ppm, PPM);
        assert!(!r.replanned);
    }

    #[test]
    fn heavy_npu_drift_shifts_work_to_the_gpu_and_never_hurts() {
        // FFN-up-like shape: NPU-leaning when calibrated, worth
        // re-partitioning toward the GPU once the NPU drifts.
        let shape = MatmulShape::new(256, 4096, 14336);
        for derate in [1_500_000u64, 2_500_000, 5_000_000] {
            let r = resolve_for_drift(
                &provider(),
                &SolverConfig::default(),
                shape,
                Dominance::NpuDominant,
                derate,
            );
            assert!(
                r.resolved_ns <= r.stale_ns,
                "derate={derate}: re-solve made things worse ({} > {})",
                r.resolved_ns,
                r.stale_ns
            );
            assert!(r.gain_ppm <= PPM);
        }
        // At 2.5× NPU drift the calibrated NPU-leaning plan must lose
        // to a re-partition: the gain is real, not just non-negative.
        let r = resolve_for_drift(
            &provider(),
            &SolverConfig::default(),
            shape,
            Dominance::NpuDominant,
            2_500_000,
        );
        assert!(r.replanned, "2.5x NPU drift kept the stale plan");
        assert!(r.gain_ppm < PPM);
    }

    #[test]
    fn derated_provider_scales_only_npu_costs() {
        let p = provider();
        let d = DeratedProvider::new(p.clone(), 2_000_000);
        let shape = MatmulShape::new(256, 4096, 4096);
        let npu_base = p.matmul_cost(
            Backend::Npu,
            shape,
            DType::Int4,
            DType::F16,
            BwCondition::Solo,
        );
        let npu_derated = d.matmul_cost(
            Backend::Npu,
            shape,
            DType::Int4,
            DType::F16,
            BwCondition::Solo,
        );
        assert_eq!(npu_derated.as_nanos(), npu_base.as_nanos() * 2);
        let gpu_base = p.matmul_cost(
            Backend::Gpu,
            shape,
            DType::F16,
            DType::Int4,
            BwCondition::Solo,
        );
        let gpu_derated = d.matmul_cost(
            Backend::Gpu,
            shape,
            DType::F16,
            DType::Int4,
            BwCondition::Solo,
        );
        assert_eq!(gpu_derated, gpu_base);
    }
}
