//! Partition plan types.

use hetero_soc::SimTime;
use serde::{Deserialize, Serialize};

/// How one Matmul `[m,k] x [k,n]` is split across backends (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionPlan {
    /// Whole problem on the GPU.
    GpuOnly,
    /// Whole problem on the NPU (requires a compiled graph for `m`,
    /// padding `m` up to `padded_m`).
    NpuOnly {
        /// The graph's (standard) sequence size; ≥ `m`.
        padded_m: usize,
    },
    /// Whole problem on the NPU as sequential standard-size chunks
    /// (pipe / multi-sequence-length cutting without GPU help). The
    /// final chunk may include padding.
    NpuPipe {
        /// Standard chunk sizes summing to ≥ `m`.
        chunks: Vec<usize>,
        /// Rows of padding inside the last chunk.
        padded_rows: usize,
    },
    /// Row-cutting: the weight's output dimension `n` is split; the GPU
    /// takes `gpu_cols` columns, the NPU the rest, in parallel.
    RowCut {
        /// Output features assigned to the GPU.
        gpu_cols: usize,
        /// The NPU side's graph sequence size; ≥ `m`.
        padded_m: usize,
    },
    /// Sequence-length cutting: the activation's `m` rows are split;
    /// the NPU runs standard-size chunks sequentially while the GPU
    /// takes the misaligned margin, in parallel.
    SeqCut {
        /// Standard chunk sizes executed on the NPU.
        npu_chunks: Vec<usize>,
        /// Rows assigned to the GPU (`m − Σchunks`).
        gpu_rows: usize,
    },
    /// Hybrid-cutting: padding on the sequence dimension *and* a row
    /// cut — the NPU runs `[padded_m, k, n − gpu_cols]`, the GPU
    /// `[m, k, gpu_cols]`, in parallel (§4.1.1).
    HybridCut {
        /// The NPU graph's sequence size; ≥ `m`.
        padded_m: usize,
        /// Output features assigned to the GPU.
        gpu_cols: usize,
    },
}

impl PartitionPlan {
    /// Whether this plan uses both backends in parallel.
    pub fn is_parallel(&self) -> bool {
        matches!(
            self,
            Self::RowCut { .. } | Self::SeqCut { gpu_rows: 1.., .. } | Self::HybridCut { .. }
        )
    }

    /// Whether the NPU participates at all.
    pub fn uses_npu(&self) -> bool {
        !matches!(self, Self::GpuOnly)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Self::GpuOnly => "gpu-only",
            Self::NpuOnly { .. } => "npu-only",
            Self::NpuPipe { .. } => "npu-pipe",
            Self::RowCut { .. } => "row-cut",
            Self::SeqCut { .. } => "seq-cut",
            Self::HybridCut { .. } => "hybrid-cut",
        }
    }
}

/// A solved plan with its estimated latency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanChoice {
    /// The chosen partition.
    pub plan: PartitionPlan,
    /// The solver's latency estimate under the objective.
    pub est_time: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_classification() {
        assert!(!PartitionPlan::GpuOnly.is_parallel());
        assert!(!PartitionPlan::NpuOnly { padded_m: 256 }.is_parallel());
        assert!(PartitionPlan::RowCut {
            gpu_cols: 512,
            padded_m: 256
        }
        .is_parallel());
        assert!(PartitionPlan::HybridCut {
            padded_m: 512,
            gpu_cols: 256
        }
        .is_parallel());
        assert!(PartitionPlan::SeqCut {
            npu_chunks: vec![256],
            gpu_rows: 44
        }
        .is_parallel());
        assert!(!PartitionPlan::SeqCut {
            npu_chunks: vec![256, 32],
            gpu_rows: 0
        }
        .is_parallel());
    }

    #[test]
    fn npu_usage() {
        assert!(!PartitionPlan::GpuOnly.uses_npu());
        assert!(PartitionPlan::NpuPipe {
            chunks: vec![32],
            padded_rows: 8
        }
        .uses_npu());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PartitionPlan::GpuOnly.label(), "gpu-only");
        assert_eq!(
            PartitionPlan::RowCut {
                gpu_cols: 1,
                padded_m: 1
            }
            .label(),
            "row-cut"
        );
    }
}
