//! Partition plan types.
//!
//! The types themselves live in [`hetero_graph::partition`], beside the
//! sequence-length planners that generate their NPU chunks, so that the
//! `hetero-analyze` invariant checker can lint plans without depending
//! on the solver. This module re-exports them under the historical
//! `hetero_solver::plan` path.

pub use hetero_graph::partition::{PartitionPlan, PlanChoice};
