#![warn(missing_docs)]

//! Tensor partition solver (§4.3).
//!
//! Given a Matmul problem, an inference phase, and profiler-backed
//! costs, the solver evaluates GPU-only, NPU-only and every aligned
//! GPU–NPU partition, minimizing the paper's objective:
//!
//! ```text
//! T_total = min( max(T_gpu^p1, T_npu^p2) + T_sync + T_copy,
//!                T_gpu^all,
//!                T_npu^all + T_sync + T_copy )
//! ```
//!
//! Partition candidates are pruned by the NPU's stage-performance
//! alignment: row cuts to multiples of 256, sequence cuts to multiples
//! of 32. The [`table::PlanTable`] caches solved plans per operator and
//! sequence length — the control-plane "runtime decider".

pub mod bound;
pub mod drift;
pub mod plan;
pub mod regions;
pub mod solver;
pub mod table;

pub use drift::{resolve_for_drift, DeratedProvider, DriftResolve};
pub use plan::{PartitionPlan, PlanChoice};
pub use regions::{PlanRegion, RegionTable};
pub use solver::{Solver, SolverConfig};
pub use table::PlanTable;
