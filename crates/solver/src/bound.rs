//! Static `[lo, hi]` cost intervals for partition plans.
//!
//! The solver's `solve` picks a plan by *estimating* its latency; this
//! module exposes the same cost arithmetic as a sound interval per
//! plan, aligned with the plan's sync-schedule event layout so the
//! abstract interpreter in `hetero-analyze` can propagate the
//! intervals through the submission DAG.
//!
//! Soundness argument (matched against `hetero_soc::Soc`):
//!
//! - Serial plans (`GpuOnly`, `NpuOnly`, `NpuPipe`, degenerate
//!   `SeqCut`) execute via `run_serial`, which charges exactly the
//!   solo kernel time — their intervals are exact points.
//! - Parallel plans execute via `run_parallel`, whose overlap model
//!   runs both sides contended until the shorter finishes and re-prices
//!   the remainder solo. The makespan is therefore never below the
//!   larger *solo* duration and never above the larger *contended*
//!   duration (pinned by `hetero-soc`'s
//!   `contended_time_never_faster_than_solo` and the overlap tests) —
//!   exactly the `[max(lo), max(hi)]` interval this module returns.
//! - Rendezvous and backend-switch costs are fixed constants of the
//!   sync model, unaffected by bandwidth conditions: exact points.

use hetero_profiler::db::BwCondition;
use hetero_profiler::{CostInterval, CostProvider};
use hetero_soc::sync::Dominance;
use hetero_tensor::shape::MatmulShape;

use crate::plan::PartitionPlan;
use crate::solver::Solver;

impl<P: CostProvider> Solver<P> {
    /// Interval cost of one NPU chunk of `shape`'s problem at `m`
    /// rows: `[solo, contended]` under the solver's operand-permutation
    /// convention.
    fn npu_interval(&self, m: usize, shape: MatmulShape) -> CostInterval {
        let s = MatmulShape { m, ..shape };
        let lo = self.npu_cost(s, BwCondition::Solo);
        let hi = self.npu_cost(s, BwCondition::Contended).max(lo);
        CostInterval { lo, hi }
    }

    /// Interval cost of a GPU sub-problem.
    fn gpu_interval(&self, s: MatmulShape) -> CostInterval {
        let lo = self.gpu_cost(s, BwCondition::Solo);
        let hi = self.gpu_cost(s, BwCondition::Contended).max(lo);
        CostInterval { lo, hi }
    }

    /// Per-event cost intervals for `plan`, in the exact order of
    /// `SyncSchedule::for_plan`'s event layout:
    ///
    /// | plan | events |
    /// |---|---|
    /// | `GpuOnly` | `[gpu submit]` |
    /// | `NpuOnly` | `[npu submit, switch]` |
    /// | `NpuPipe` / `SeqCut{gpu_rows: 0}` | `[npu submit…, switch]` |
    /// | `RowCut` / `HybridCut` | `[gpu submit, npu submit, rendezvous]` |
    /// | `SeqCut{gpu_rows > 0}` | `[gpu submit, npu submit…, rendezvous]` |
    ///
    /// Serial plans run each side solo (exact points); parallel plans
    /// carry `[solo, contended]` compute intervals with an exact
    /// rendezvous constant.
    pub fn event_cost_intervals(
        &self,
        plan: &PartitionPlan,
        shape: MatmulShape,
        dominance: Dominance,
    ) -> Vec<CostInterval> {
        let cfg = self.config();
        let switch = CostInterval::exact(cfg.sync.backend_switch());
        let rendezvous = CostInterval::exact(cfg.sync.rendezvous(dominance));
        match plan {
            PartitionPlan::GpuOnly => {
                vec![CostInterval::exact(self.gpu_cost(shape, BwCondition::Solo))]
            }
            PartitionPlan::NpuOnly { padded_m } => {
                let s = MatmulShape {
                    m: *padded_m,
                    ..shape
                };
                vec![
                    CostInterval::exact(self.npu_cost(s, BwCondition::Solo)),
                    switch,
                ]
            }
            PartitionPlan::NpuPipe { chunks, .. } => {
                let mut out: Vec<CostInterval> = chunks
                    .iter()
                    .map(|&c| {
                        let s = MatmulShape { m: c, ..shape };
                        CostInterval::exact(self.npu_cost(s, BwCondition::Solo))
                    })
                    .collect();
                out.push(switch);
                out
            }
            PartitionPlan::RowCut { gpu_cols, padded_m }
            | PartitionPlan::HybridCut { padded_m, gpu_cols } => {
                vec![
                    self.gpu_interval(MatmulShape::new(shape.m, shape.k, *gpu_cols)),
                    self.npu_interval(
                        *padded_m,
                        MatmulShape::new(shape.m, shape.k, shape.n - gpu_cols),
                    ),
                    rendezvous,
                ]
            }
            PartitionPlan::SeqCut {
                npu_chunks,
                gpu_rows,
            } => {
                if *gpu_rows == 0 {
                    let mut out: Vec<CostInterval> = npu_chunks
                        .iter()
                        .map(|&c| {
                            let s = MatmulShape { m: c, ..shape };
                            CostInterval::exact(self.npu_cost(s, BwCondition::Solo))
                        })
                        .collect();
                    out.push(switch);
                    return out;
                }
                let mut out = vec![self.gpu_interval(MatmulShape {
                    m: *gpu_rows,
                    ..shape
                })];
                out.extend(npu_chunks.iter().map(|&c| self.npu_interval(c, shape)));
                out.push(rendezvous);
                out
            }
        }
    }

    /// Closed-form completion-time interval of `plan`: serial plans sum
    /// their events; parallel plans take the pointwise max of the GPU
    /// side against the summed NPU side, plus the rendezvous constant.
    ///
    /// For parallel plans, `hi` equals the estimate `solve` would
    /// assign the plan (contended max + rendezvous), and serial
    /// intervals are the exact estimate — so the bound degrades to the
    /// solver's objective when the interval collapses.
    pub fn plan_cost_interval(
        &self,
        plan: &PartitionPlan,
        shape: MatmulShape,
        dominance: Dominance,
    ) -> CostInterval {
        let events = self.event_cost_intervals(plan, shape, dominance);
        match plan {
            PartitionPlan::GpuOnly
            | PartitionPlan::NpuOnly { .. }
            | PartitionPlan::NpuPipe { .. } => {
                events.into_iter().fold(CostInterval::ZERO, |a, b| a + b)
            }
            PartitionPlan::SeqCut { gpu_rows: 0, .. } => {
                events.into_iter().fold(CostInterval::ZERO, |a, b| a + b)
            }
            PartitionPlan::RowCut { .. } | PartitionPlan::HybridCut { .. } => {
                let gpu = events[0];
                let npu = events[1];
                gpu.join_max(npu) + events[2]
            }
            PartitionPlan::SeqCut { .. } => {
                let gpu = events[0];
                let npu = events[1..events.len() - 1]
                    .iter()
                    .fold(CostInterval::ZERO, |a, &b| a + b);
                gpu.join_max(npu) + events[events.len() - 1]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverConfig;
    use hetero_profiler::RealExecProvider;
    use hetero_soc::SocConfig;

    fn solver() -> Solver<RealExecProvider> {
        Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            SolverConfig::default(),
        )
    }

    #[test]
    fn serial_plan_interval_is_exact_and_matches_estimate() {
        let s = solver();
        let shape = MatmulShape::new(256, 4096, 4096);
        let plan = PartitionPlan::NpuOnly { padded_m: 256 };
        let iv = s.plan_cost_interval(&plan, shape, Dominance::NpuDominant);
        assert_eq!(iv.lo, iv.hi, "serial plans are exact points");
        let est = s.npu_cost(shape, BwCondition::Solo) + s.config().sync.backend_switch();
        assert_eq!(iv.hi, est);
    }

    #[test]
    fn parallel_plan_hi_matches_solver_estimate() {
        let s = solver();
        let shape = MatmulShape::new(256, 14336, 4096);
        let plan = PartitionPlan::HybridCut {
            padded_m: 256,
            gpu_cols: 1024,
        };
        let iv = s.plan_cost_interval(&plan, shape, Dominance::NpuDominant);
        assert!(iv.is_valid());
        // The solver prices a hybrid cut as max(contended sides) + sync;
        // the interval's upper bound must reproduce that estimate.
        let npu = s.npu_cost(
            MatmulShape::new(256, shape.k, shape.n - 1024),
            BwCondition::Contended,
        );
        let gpu = s.gpu_cost(
            MatmulShape::new(shape.m, shape.k, 1024),
            BwCondition::Contended,
        );
        let est = npu.max(gpu) + s.config().sync.rendezvous(Dominance::NpuDominant);
        assert_eq!(iv.hi, est);
        assert!(iv.lo <= iv.hi);
    }

    #[test]
    fn chosen_plan_estimate_always_inside_interval() {
        let s = solver();
        for m in [1usize, 64, 135, 300, 512, 1024, 2100] {
            let shape = MatmulShape::new(m, 4096, 4096);
            let choice = s.solve(shape, Dominance::NpuDominant);
            let iv = s.plan_cost_interval(&choice.plan, shape, Dominance::NpuDominant);
            assert!(
                iv.contains(choice.est_time),
                "m={m}: est {} outside [{}, {}]",
                choice.est_time,
                iv.lo,
                iv.hi
            );
        }
    }

    #[test]
    fn event_layout_matches_schedule_shape() {
        let s = solver();
        let shape = MatmulShape::new(300, 4096, 4096);
        for (plan, expect) in [
            (PartitionPlan::GpuOnly, 1),
            (PartitionPlan::NpuOnly { padded_m: 512 }, 2),
            (
                PartitionPlan::NpuPipe {
                    chunks: vec![256, 64],
                    padded_rows: 20,
                },
                3,
            ),
            (
                PartitionPlan::HybridCut {
                    padded_m: 512,
                    gpu_cols: 1024,
                },
                3,
            ),
            (
                PartitionPlan::SeqCut {
                    npu_chunks: vec![256, 32],
                    gpu_rows: 12,
                },
                4,
            ),
        ] {
            let events = s.event_cost_intervals(&plan, shape, Dominance::NpuDominant);
            assert_eq!(events.len(), expect, "{plan:?}");
            assert!(events.iter().all(CostInterval::is_valid), "{plan:?}");
        }
    }
}
