//! The partition solver.

use hetero_graph::plan::{candidate_plans, next_standard, pipe_plan};
use hetero_profiler::db::BwCondition;
use hetero_profiler::CostProvider;
use hetero_soc::calib::{ROW_PARTITION_ALIGN, STANDARD_GRAPH_SIZES};
use hetero_soc::sync::{Dominance, SyncMechanism, SyncModel};
use hetero_soc::{Backend, SimTime};
use hetero_tensor::shape::MatmulShape;
use hetero_tensor::DType;

use crate::plan::{PartitionPlan, PlanChoice};

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Weight storage type (W4A16 ⇒ INT4).
    pub weight_dtype: DType,
    /// Pre-compiled NPU graph sequence sizes.
    pub standards: Vec<usize>,
    /// Row-cut alignment (output-feature dimension).
    pub row_align: usize,
    /// Synchronization cost model used for `T_sync + T_copy`.
    pub sync: SyncModel,
    /// Whether operands are permuted into the NPU-preferred order
    /// (`[m,k]x[k,n] → ([n,k]x[k,m])ᵀ`, §4) before costing the NPU.
    pub permute_for_npu: bool,
    /// Minimum relative latency gain a *parallel* plan must deliver
    /// over the best single-backend plan to be selected. §4.3: "for
    /// certain tensor sizes where GPU-NPU parallelism does not yield
    /// any performance benefits, the solver opts not to partition" —
    /// marginal splits waste GPU power (Fig. 19) and GPU headroom
    /// (Fig. 18) for noise-level speedups.
    pub min_parallel_gain: f64,
    /// Whether row-cutting (and hybrid-cutting) candidates are
    /// considered. Disabling strategy families supports the ablation
    /// study of the partition design space.
    pub enable_row_cut: bool,
    /// Whether sequence-length-cutting candidates are considered.
    pub enable_seq_cut: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            weight_dtype: DType::Int4,
            standards: STANDARD_GRAPH_SIZES.to_vec(),
            row_align: ROW_PARTITION_ALIGN,
            sync: SyncModel::new(SyncMechanism::Fast),
            permute_for_npu: true,
            min_parallel_gain: 0.10,
            enable_row_cut: true,
            enable_seq_cut: true,
        }
    }
}

impl SolverConfig {
    /// Configuration for the decode phase: graphs exist only for the
    /// designated decoding length (1, or `n` for speculative decoding).
    pub fn decode(decode_len: usize) -> Self {
        Self {
            standards: vec![decode_len],
            ..Self::default()
        }
    }
}

/// The tensor partition solver (§4.3).
///
/// # Examples
///
/// ```
/// use hetero_profiler::RealExecProvider;
/// use hetero_soc::sync::Dominance;
/// use hetero_soc::SocConfig;
/// use hetero_solver::{Solver, SolverConfig};
/// use hetero_tensor::shape::MatmulShape;
///
/// let solver = Solver::new(
///     RealExecProvider::new(SocConfig::snapdragon_8gen3()),
///     SolverConfig::default(),
/// );
/// // The NPU-hostile FFN-down shape gets a parallel partition.
/// let choice = solver.solve(MatmulShape::new(256, 14336, 4096), Dominance::NpuDominant);
/// assert!(choice.plan.is_parallel());
/// ```
#[derive(Debug, Clone)]
pub struct Solver<P> {
    provider: P,
    cfg: SolverConfig,
}

impl<P: CostProvider> Solver<P> {
    /// New solver over a cost provider.
    pub fn new(provider: P, cfg: SolverConfig) -> Self {
        Self { provider, cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.cfg
    }

    pub(crate) fn npu_cost(&self, shape: MatmulShape, condition: BwCondition) -> SimTime {
        if self.cfg.permute_for_npu {
            // Permuted execution `[n,k] x [k,m]`: the INT4 weight is the
            // streamed operand, the FP16 activation is stationary.
            self.provider.matmul_cost(
                Backend::Npu,
                shape.reversed(),
                self.cfg.weight_dtype,
                DType::F16,
                condition,
            )
        } else {
            self.provider.matmul_cost(
                Backend::Npu,
                shape,
                DType::F16,
                self.cfg.weight_dtype,
                condition,
            )
        }
    }

    pub(crate) fn gpu_cost(&self, shape: MatmulShape, condition: BwCondition) -> SimTime {
        self.provider.matmul_cost(
            Backend::Gpu,
            shape,
            DType::F16,
            self.cfg.weight_dtype,
            condition,
        )
    }

    fn row_cuts(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        (1..)
            .map(|i| i * self.cfg.row_align)
            .take_while(move |&c| c < n)
    }

    /// Solve for the optimal partition of `[m,k] x [k,n]`.
    ///
    /// `dominance` selects the rendezvous cost regime (prefill is
    /// NPU-dominant, decode GPU-dominant; Fig. 11).
    pub fn solve(&self, shape: MatmulShape, dominance: Dominance) -> PlanChoice {
        let mut best_serial = PlanChoice {
            plan: PartitionPlan::GpuOnly,
            est_time: self.gpu_cost(shape, BwCondition::Solo),
        };
        let mut best_parallel: Option<PlanChoice> = None;
        let mut consider = |plan: PartitionPlan, t: SimTime| {
            if plan.is_parallel() {
                if best_parallel.as_ref().is_none_or(|b| t < b.est_time) {
                    best_parallel = Some(PlanChoice { plan, est_time: t });
                }
            } else if t < best_serial.est_time {
                best_serial = PlanChoice { plan, est_time: t };
            }
        };

        let switch = self.cfg.sync.backend_switch();
        let rendezvous = self.cfg.sync.rendezvous(dominance);

        // NPU-only via a single (possibly padded) graph.
        if let Some(padded_m) = next_standard(shape.m, &self.cfg.standards) {
            let t = self.npu_cost(
                MatmulShape {
                    m: padded_m,
                    ..shape
                },
                BwCondition::Solo,
            );
            consider(PartitionPlan::NpuOnly { padded_m }, t + switch);
        } else {
            // m exceeds the largest graph: sequential pipe chunks.
            let pipe = pipe_plan(shape.m, &self.cfg.standards);
            let t: SimTime = pipe
                .npu_chunks
                .iter()
                .map(|&c| self.npu_cost(MatmulShape { m: c, ..shape }, BwCondition::Solo))
                .sum();
            consider(
                PartitionPlan::NpuPipe {
                    chunks: pipe.npu_chunks.clone(),
                    padded_rows: pipe.padded_rows,
                },
                t + switch,
            );
        }

        // Row-cutting (and hybrid-cutting when m is misaligned): the
        // NPU runs [padded_m, k, n−c], the GPU [m, k, c], in parallel.
        if let (true, Some(padded_m)) = (
            self.cfg.enable_row_cut,
            next_standard(shape.m, &self.cfg.standards),
        ) {
            for c in self.row_cuts(shape.n) {
                let npu = self.npu_cost(
                    MatmulShape::new(padded_m, shape.k, shape.n - c),
                    BwCondition::Contended,
                );
                let gpu = self.gpu_cost(
                    MatmulShape::new(shape.m, shape.k, c),
                    BwCondition::Contended,
                );
                let t = npu.max(gpu) + rendezvous;
                let plan = if padded_m == shape.m {
                    PartitionPlan::RowCut {
                        gpu_cols: c,
                        padded_m,
                    }
                } else {
                    PartitionPlan::HybridCut {
                        padded_m,
                        gpu_cols: c,
                    }
                };
                consider(plan, t);
            }
        }

        // Sequence-length cutting: NPU standard chunks + GPU margin.
        let seq_candidates = if self.cfg.enable_seq_cut {
            candidate_plans(shape.m, &self.cfg.standards)
        } else {
            Vec::new()
        };
        for cand in seq_candidates {
            if cand.npu_chunks.is_empty() {
                continue; // GPU-only already considered.
            }
            if cand.margin == 0 {
                // Fully covered by exact chunks — a *serial* NPU plan,
                // so the NPU streams with exclusive bandwidth.
                let solo: SimTime = cand
                    .npu_chunks
                    .iter()
                    .map(|&c| self.npu_cost(MatmulShape { m: c, ..shape }, BwCondition::Solo))
                    .sum();
                consider(
                    PartitionPlan::SeqCut {
                        npu_chunks: cand.npu_chunks.clone(),
                        gpu_rows: 0,
                    },
                    solo + switch,
                );
                continue;
            }
            let npu: SimTime = cand
                .npu_chunks
                .iter()
                .map(|&c| self.npu_cost(MatmulShape { m: c, ..shape }, BwCondition::Contended))
                .sum();
            let gpu = self.gpu_cost(
                MatmulShape {
                    m: cand.margin,
                    ..shape
                },
                BwCondition::Contended,
            );
            let t = npu.max(gpu) + rendezvous;
            consider(
                PartitionPlan::SeqCut {
                    npu_chunks: cand.npu_chunks.clone(),
                    gpu_rows: cand.margin,
                },
                t,
            );
        }

        // A parallel plan must clear the minimum-gain bar (§4.3).
        let mut choice = match best_parallel {
            Some(p)
                if p.est_time.as_secs_f64()
                    < best_serial.est_time.as_secs_f64() * (1.0 - self.cfg.min_parallel_gain) =>
            {
                p
            }
            _ => best_serial,
        };
        // Canonicalize degenerate forms (SeqCut with an empty GPU share
        // is an NpuPipe, etc.) so downstream sync accounting is honest.
        choice.plan = choice.plan.normalize();
        #[cfg(feature = "validate")]
        self.validate_choice(&choice, shape);
        choice
    }

    /// Debug-build self-check: re-verify the chosen plan against the
    /// shared structural invariants in [`hetero_graph::partition`]
    /// (shape conservation, tile alignment, graph membership,
    /// canonical form). Compiled out of release binaries; a violation
    /// here is a solver bug, so it panics rather than diagnosing.
    #[cfg(feature = "validate")]
    fn validate_choice(&self, choice: &PlanChoice, shape: MatmulShape) {
        if !cfg!(debug_assertions) {
            return;
        }
        let plan = &choice.plan;
        let mut violations = plan.conservation_violations(shape.m, shape.n);
        violations.extend(plan.alignment_violations(hetero_soc::calib::NPU_TILE));
        violations.extend(plan.membership_violations(&self.cfg.standards));
        assert!(
            violations.is_empty(),
            "solver produced invalid plan {plan:?} for {shape:?}: {violations:?}"
        );
        assert!(
            plan.is_normalized(),
            "solver produced non-canonical plan {plan:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_profiler::RealExecProvider;
    use hetero_soc::SocConfig;

    fn solver() -> Solver<RealExecProvider> {
        Solver::new(
            RealExecProvider::new(SocConfig::snapdragon_8gen3()),
            SolverConfig::default(),
        )
    }

    #[test]
    fn aligned_prefill_qkv_prefers_npu() {
        // Well-shaped large matmul: NPU is ≈10× the GPU; plans that
        // keep (nearly) everything on the NPU must win.
        let choice = solver().solve(MatmulShape::new(256, 4096, 4096), Dominance::NpuDominant);
        assert!(choice.plan.uses_npu(), "{:?}", choice.plan);
        match &choice.plan {
            PartitionPlan::NpuOnly { padded_m } => assert_eq!(*padded_m, 256),
            PartitionPlan::RowCut { gpu_cols, .. } => {
                assert!(*gpu_cols <= 1024, "GPU share too large: {gpu_cols}");
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn ffn_down_gets_row_cut() {
        // The NPU-hostile FFN-down shape: the solver should offload a
        // significant share to the GPU via row-cutting (§4.1.1).
        let shape = MatmulShape::new(256, 14336, 4096);
        let choice = solver().solve(shape, Dominance::NpuDominant);
        assert!(
            choice.plan.is_parallel(),
            "expected parallel plan, got {:?}",
            choice.plan
        );
        if let PartitionPlan::RowCut { gpu_cols, .. } = choice.plan {
            assert!((256..4096).contains(&gpu_cols));
        }
    }

    #[test]
    fn row_cut_beats_both_single_backends_on_ffn_down() {
        let s = solver();
        let shape = MatmulShape::new(256, 14336, 4096);
        let choice = s.solve(shape, Dominance::NpuDominant);
        let gpu_only = s.gpu_cost(shape, BwCondition::Solo);
        let npu_only = s.npu_cost(shape, BwCondition::Solo);
        assert!(choice.est_time < gpu_only);
        assert!(choice.est_time < npu_only);
    }

    #[test]
    fn misaligned_seq_uses_seq_or_hybrid_cut() {
        // m=300: graphs exist for 256/512 etc. The solver should avoid
        // pure padding-to-512 in favour of a heterogeneous plan.
        let shape = MatmulShape::new(300, 4096, 4096);
        let choice = solver().solve(shape, Dominance::NpuDominant);
        match &choice.plan {
            PartitionPlan::SeqCut {
                npu_chunks,
                gpu_rows,
            } => {
                assert_eq!(npu_chunks.iter().sum::<usize>() + gpu_rows, 300);
            }
            PartitionPlan::HybridCut { padded_m, .. } => assert_eq!(*padded_m, 512),
            other => panic!("expected heterogeneous plan, got {other:?}"),
        }
    }

    #[test]
    fn decode_uses_row_cut_for_bandwidth() {
        // Decode m=1: memory-bound; GPU+NPU row-cut aggregates
        // bandwidth and must beat single backends.
        let cfg = SolverConfig::decode(1);
        let s = Solver::new(RealExecProvider::new(SocConfig::snapdragon_8gen3()), cfg);
        let shape = MatmulShape::new(1, 4096, 14336);
        let choice = s.solve(shape, Dominance::GpuDominant);
        assert!(
            matches!(choice.plan, PartitionPlan::RowCut { .. }),
            "expected row-cut, got {:?}",
            choice.plan
        );
    }

    #[test]
    fn tiny_problems_stay_on_one_backend() {
        // Partitioning a tiny matmul can't amortize even fast sync.
        let choice = solver().solve(MatmulShape::new(32, 64, 64), Dominance::NpuDominant);
        assert!(!choice.plan.is_parallel(), "{:?}", choice.plan);
    }

    #[test]
    fn estimate_is_never_worse_than_gpu_only() {
        let s = solver();
        for shape in [
            MatmulShape::new(64, 4096, 4096),
            MatmulShape::new(300, 4096, 14336),
            MatmulShape::new(1024, 14336, 4096),
        ] {
            let choice = s.solve(shape, Dominance::NpuDominant);
            assert!(choice.est_time <= s.gpu_cost(shape, BwCondition::Solo));
        }
    }

    #[test]
    fn huge_misaligned_seq_still_covered() {
        // m beyond the largest standard graph.
        let shape = MatmulShape::new(2100, 4096, 4096);
        let choice = solver().solve(shape, Dominance::NpuDominant);
        assert!(choice.plan.uses_npu());
        if let PartitionPlan::SeqCut {
            npu_chunks,
            gpu_rows,
        } = &choice.plan
        {
            assert_eq!(npu_chunks.iter().sum::<usize>() + gpu_rows, 2100);
        }
    }
}
