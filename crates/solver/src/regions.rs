//! Static buffer-liveness tables for partition plans.
//!
//! For each plan the solver can emit, this module derives the pooled
//! tensor regions the plan's execution touches — activation input,
//! per-side partial outputs — with their live ranges expressed in
//! *schedule steps* (indices into `SyncSchedule::for_plan`'s event
//! list). The abstract interpreter in `hetero-analyze` folds these
//! tables into a sound peak-footprint bound, and the `buffer-leak`
//! rule checks that no region stays live past its last structural
//! reader.
//!
//! Region sizes follow the runtime's `MemoryPool` accounting: every
//! acquisition is rounded up to a power of two with a 4 KiB floor, so
//! the static sum over-approximates (never under-approximates) what
//! the pool's high-water mark can reach for the same acquisitions.

use hetero_tensor::shape::MatmulShape;

use crate::plan::PartitionPlan;

/// Bytes per activation/output element (F16 activations, W4A16).
const ACT_BYTES: usize = 2;

/// The pool's allocation granularity floor (mirrors
/// `hetero_core::mem::MemoryPool`).
const POOL_MIN_BYTES: usize = 4096;

/// Round a request the way the runtime memory pool does: power of two,
/// 4 KiB floor.
pub fn pool_rounded(bytes: usize) -> usize {
    bytes.max(POOL_MIN_BYTES).next_power_of_two()
}

/// One pooled region a plan's execution acquires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRegion {
    /// Human-readable label (`"input"`, `"gpu-partial"`, …).
    pub label: String,
    /// Bump-allocated byte offset inside the plan's arena.
    pub offset: usize,
    /// Requested bytes (before pool rounding).
    pub bytes: usize,
    /// First schedule step (event index) at which the region is live.
    pub live_from: usize,
    /// Last schedule step at which the region is live (inclusive).
    pub live_until: usize,
    /// Schedule steps that structurally read the region.
    pub readers: Vec<usize>,
}

impl PlanRegion {
    /// Pool-rounded size of this region.
    pub fn rounded_bytes(&self) -> usize {
        pool_rounded(self.bytes)
    }

    /// Whether the region stays live past its last structural reader —
    /// the shape of defect the `buffer-leak` rule reports.
    pub fn leaks(&self) -> bool {
        match self.readers.iter().max() {
            Some(&last) => self.live_until > last,
            None => true, // live but never read: trivially a leak
        }
    }
}

/// Buffer-liveness table for one plan: all regions plus the schedule
/// step count they index into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTable {
    /// Number of schedule steps (events) the live ranges index into.
    pub steps: usize,
    /// Regions acquired over the plan's execution.
    pub regions: Vec<PlanRegion>,
}

impl RegionTable {
    /// Derive the region table for `plan` solving `shape`.
    ///
    /// The layout mirrors the sync-schedule event order used by
    /// `SyncSchedule::for_plan` and `Solver::event_cost_intervals`:
    /// the activation input is live from step 0 through the last
    /// compute step that reads it, and each side's partial output is
    /// live from the step producing it through the rendezvous/switch
    /// step that publishes it.
    pub fn for_plan(plan: &PartitionPlan, shape: MatmulShape) -> Self {
        let input_bytes = shape.m * shape.k * ACT_BYTES;
        let mut regions: Vec<PlanRegion> = Vec::new();
        let steps = match plan {
            PartitionPlan::GpuOnly => {
                regions.push(PlanRegion {
                    label: "input".into(),
                    offset: 0,
                    bytes: input_bytes,
                    live_from: 0,
                    live_until: 0,
                    readers: vec![0],
                });
                regions.push(PlanRegion {
                    label: "gpu-out".into(),
                    offset: 0,
                    bytes: shape.m * shape.n * ACT_BYTES,
                    live_from: 0,
                    live_until: 0,
                    readers: vec![0],
                });
                1
            }
            PartitionPlan::NpuOnly { padded_m } => {
                // Events: [npu submit, switch].
                regions.push(PlanRegion {
                    label: "input".into(),
                    offset: 0,
                    bytes: padded_m * shape.k * ACT_BYTES,
                    live_from: 0,
                    live_until: 0,
                    readers: vec![0],
                });
                regions.push(PlanRegion {
                    label: "npu-out".into(),
                    offset: 0,
                    bytes: padded_m * shape.n * ACT_BYTES,
                    live_from: 0,
                    live_until: 1,
                    readers: vec![0, 1],
                });
                2
            }
            PartitionPlan::NpuPipe { chunks, .. }
            | PartitionPlan::SeqCut {
                npu_chunks: chunks,
                gpu_rows: 0,
            } => {
                // Events: [chunk 0 … chunk K-1, switch].
                let switch = chunks.len();
                regions.push(PlanRegion {
                    label: "input".into(),
                    offset: 0,
                    bytes: input_bytes,
                    live_from: 0,
                    live_until: switch.saturating_sub(1),
                    readers: (0..switch.max(1)).collect(),
                });
                for (i, &c) in chunks.iter().enumerate() {
                    regions.push(PlanRegion {
                        label: format!("npu-chunk-{i}"),
                        offset: 0,
                        bytes: c * shape.n * ACT_BYTES,
                        live_from: i,
                        live_until: switch,
                        readers: vec![i, switch],
                    });
                }
                switch + 1
            }
            PartitionPlan::RowCut { gpu_cols, padded_m }
            | PartitionPlan::HybridCut { padded_m, gpu_cols } => {
                // Events: [gpu submit, npu submit, rendezvous].
                regions.push(PlanRegion {
                    label: "input".into(),
                    offset: 0,
                    bytes: (*padded_m).max(shape.m) * shape.k * ACT_BYTES,
                    live_from: 0,
                    live_until: 1,
                    readers: vec![0, 1],
                });
                regions.push(PlanRegion {
                    label: "gpu-partial".into(),
                    offset: 0,
                    bytes: shape.m * gpu_cols * ACT_BYTES,
                    live_from: 0,
                    live_until: 2,
                    readers: vec![0, 2],
                });
                regions.push(PlanRegion {
                    label: "npu-partial".into(),
                    offset: 0,
                    bytes: padded_m * (shape.n - gpu_cols) * ACT_BYTES,
                    live_from: 1,
                    live_until: 2,
                    readers: vec![1, 2],
                });
                3
            }
            PartitionPlan::SeqCut {
                npu_chunks,
                gpu_rows,
            } => {
                // Events: [gpu submit, chunk 0 … chunk K-1, rendezvous].
                let rendezvous = 1 + npu_chunks.len();
                regions.push(PlanRegion {
                    label: "input".into(),
                    offset: 0,
                    bytes: input_bytes,
                    live_from: 0,
                    live_until: rendezvous - 1,
                    readers: (0..rendezvous).collect(),
                });
                regions.push(PlanRegion {
                    label: "gpu-partial".into(),
                    offset: 0,
                    bytes: gpu_rows * shape.n * ACT_BYTES,
                    live_from: 0,
                    live_until: rendezvous,
                    readers: vec![0, rendezvous],
                });
                for (i, &c) in npu_chunks.iter().enumerate() {
                    regions.push(PlanRegion {
                        label: format!("npu-chunk-{i}"),
                        offset: 0,
                        bytes: c * shape.n * ACT_BYTES,
                        live_from: 1 + i,
                        live_until: rendezvous,
                        readers: vec![1 + i, rendezvous],
                    });
                }
                rendezvous + 1
            }
        };
        // Bump-allocate offsets in declaration order, at pool-rounded
        // granularity, so regions can never alias.
        let mut cursor = 0usize;
        for r in &mut regions {
            r.offset = cursor;
            cursor += r.rounded_bytes();
        }
        Self { steps, regions }
    }

    /// Pool-rounded bytes live at schedule step `step`.
    pub fn live_bytes_at(&self, step: usize) -> usize {
        self.regions
            .iter()
            .filter(|r| r.live_from <= step && step <= r.live_until)
            .map(PlanRegion::rounded_bytes)
            .sum()
    }

    /// The max-plateau of [`Self::live_bytes_at`] over all steps — the
    /// static peak pooled footprint of the plan.
    pub fn peak_bytes(&self) -> usize {
        (0..self.steps)
            .map(|s| self.live_bytes_at(s))
            .max()
            .unwrap_or(0)
    }

    /// Regions that stay live past their last structural reader.
    pub fn leaked_regions(&self) -> Vec<&PlanRegion> {
        self.regions.iter().filter(|r| r.leaks()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_rounding_matches_mempool_policy() {
        assert_eq!(pool_rounded(1), 4096);
        assert_eq!(pool_rounded(4096), 4096);
        assert_eq!(pool_rounded(4097), 8192);
        assert_eq!(pool_rounded(1 << 20), 1 << 20);
        assert_eq!(pool_rounded((1 << 20) + 1), 1 << 21);
    }

    #[test]
    fn step_counts_match_schedule_layout() {
        let shape = MatmulShape::new(300, 4096, 4096);
        let cases = [
            (PartitionPlan::GpuOnly, 1),
            (PartitionPlan::NpuOnly { padded_m: 512 }, 2),
            (
                PartitionPlan::NpuPipe {
                    chunks: vec![256, 64],
                    padded_rows: 20,
                },
                3,
            ),
            (
                PartitionPlan::HybridCut {
                    padded_m: 512,
                    gpu_cols: 1024,
                },
                3,
            ),
            (
                PartitionPlan::SeqCut {
                    npu_chunks: vec![256, 32],
                    gpu_rows: 12,
                },
                4,
            ),
        ];
        for (plan, expect) in cases {
            assert_eq!(
                RegionTable::for_plan(&plan, shape).steps,
                expect,
                "{plan:?}"
            );
        }
    }

    #[test]
    fn freshly_derived_tables_never_leak() {
        let shape = MatmulShape::new(300, 4096, 4096);
        for plan in [
            PartitionPlan::GpuOnly,
            PartitionPlan::NpuOnly { padded_m: 512 },
            PartitionPlan::SeqCut {
                npu_chunks: vec![256, 32],
                gpu_rows: 12,
            },
        ] {
            let table = RegionTable::for_plan(&plan, shape);
            assert!(table.leaked_regions().is_empty(), "{plan:?}");
        }
    }

    #[test]
    fn crafted_leak_is_detected() {
        let shape = MatmulShape::new(256, 4096, 4096);
        let mut table = RegionTable::for_plan(&PartitionPlan::GpuOnly, shape);
        table.steps += 1;
        table.regions[0].live_until = 1; // past its only reader at step 0
        let leaks = table.leaked_regions();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].label, "input");
    }

    #[test]
    fn offsets_are_disjoint() {
        let shape = MatmulShape::new(300, 4096, 14336);
        let table = RegionTable::for_plan(
            &PartitionPlan::HybridCut {
                padded_m: 512,
                gpu_cols: 2048,
            },
            shape,
        );
        let mut spans: Vec<(usize, usize)> = table
            .regions
            .iter()
            .map(|r| (r.offset, r.offset + r.rounded_bytes()))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping regions: {spans:?}");
        }
    }

    #[test]
    fn parallel_peak_exceeds_either_side_alone() {
        let shape = MatmulShape::new(256, 4096, 4096);
        let table = RegionTable::for_plan(
            &PartitionPlan::RowCut {
                gpu_cols: 1024,
                padded_m: 256,
            },
            shape,
        );
        // At the npu-submit step, input + both partials are all live.
        let peak = table.peak_bytes();
        assert_eq!(peak, table.live_bytes_at(1));
        assert!(peak > table.regions[0].rounded_bytes());
    }
}
